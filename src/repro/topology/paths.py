"""Shortest-path machinery shared by routing and congestion control.

The key structure is the *shortest-path DAG* toward a destination: the
subgraph of links ``u -> v`` with ``dist(u, dst) == dist(v, dst) + 1``.
Every minimal route from any source to ``dst`` is a path in this DAG, so
path counting, path enumeration and the per-link weight distributions used
by R2C2's rate computation (§3.3) can all be done with dynamic programming
over it — no exponential path enumeration, which matters because the paper
notes an average pair in a modest torus already has over a thousand minimal
paths.
"""

from __future__ import annotations

import weakref
from typing import Dict, Iterator, List, Sequence, Tuple

from ..errors import TopologyError
from ..types import NodeId
from .base import Topology


class ShortestPathDag:
    """The DAG of minimal next-hops toward a fixed destination.

    Attributes:
        dst: The destination all paths lead to.
        dist: ``dist[u]`` is the hop distance from ``u`` to ``dst``
            (``-1`` if unreachable).
    """

    def __init__(self, topology: Topology, dst: NodeId) -> None:
        self._topology = topology
        self.dst = dst
        self.dist: List[int] = topology.distances_to(dst)
        self._next_hops: Dict[NodeId, Tuple[NodeId, ...]] = {}

    def next_hops(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Neighbors of *node* that lie on some minimal path to the dst."""
        cached = self._next_hops.get(node)
        if cached is not None:
            return cached
        if self.dist[node] < 0:
            raise TopologyError(f"{self.dst} unreachable from {node}")
        hops = tuple(
            nxt
            for nxt in self._topology.neighbors(node)
            if self.dist[nxt] == self.dist[node] - 1
        )
        self._next_hops[node] = hops
        return hops


#: topology -> {dst: ShortestPathDag}; weak keys so discarded topologies
#: (parameter sweeps, tests) release their DAGs.
_DAG_CACHE: "weakref.WeakKeyDictionary[Topology, Dict[NodeId, ShortestPathDag]]" = (
    weakref.WeakKeyDictionary()
)


def shared_dag(topology: Topology, dst: NodeId) -> ShortestPathDag:
    """The memoized shortest-path DAG toward *dst* on *topology*.

    Per-packet path sampling builds a DAG per call when constructed
    directly — one BFS plus a cold next-hop memo for every data packet.
    Sharing the instance per ``(topology, dst)`` amortizes both across the
    whole simulation.  Topologies are immutable after construction, so the
    cache never needs invalidation.
    """
    per_topo = _DAG_CACHE.get(topology)
    if per_topo is None:
        per_topo = {}
        _DAG_CACHE[topology] = per_topo
    dag = per_topo.get(dst)
    if dag is None:
        dag = ShortestPathDag(topology, dst)
        per_topo[dst] = dag
    return dag


def count_shortest_paths(topology: Topology, src: NodeId, dst: NodeId) -> int:
    """Number of distinct minimal paths from *src* to *dst*.

    Computed by dynamic programming over the shortest-path DAG, so it is
    exact even when the count is astronomically large (Python integers).
    For a displacement of ``(3, 3, 3)`` in a large 3D torus this returns the
    paper's headline figure of 1,680 paths (§2.2.2).
    """
    if src == dst:
        return 1
    dag = ShortestPathDag(topology, dst)
    if dag.dist[src] < 0:
        return 0
    counts: Dict[NodeId, int] = {dst: 1}

    def count(node: NodeId) -> int:
        cached = counts.get(node)
        if cached is not None:
            return cached
        total = sum(count(nxt) for nxt in dag.next_hops(node))
        counts[node] = total
        return total

    # Iterative accumulation by increasing distance avoids deep recursion on
    # large topologies.
    by_dist: Dict[int, List[NodeId]] = {}
    for node in topology.nodes():
        d = dag.dist[node]
        if 0 <= d <= dag.dist[src]:
            by_dist.setdefault(d, []).append(node)
    for d in sorted(by_dist):
        if d == 0:
            continue
        for node in by_dist[d]:
            counts[node] = sum(counts.get(nxt, 0) for nxt in dag.next_hops(node))
    return counts.get(src, 0)


def enumerate_shortest_paths(
    topology: Topology, src: NodeId, dst: NodeId, limit: int = 1000
) -> Iterator[List[NodeId]]:
    """Yield minimal paths from *src* to *dst*, up to *limit* of them.

    Deterministic order (port order at each branch).  Intended for tests and
    small examples; production code should use DAG-based DP instead.
    """
    if limit <= 0:
        return
    if src == dst:
        yield [src]
        return
    dag = ShortestPathDag(topology, dst)
    if dag.dist[src] < 0:
        return
    yielded = 0
    stack: List[Tuple[NodeId, List[NodeId]]] = [(src, [src])]
    while stack and yielded < limit:
        node, path = stack.pop()
        if node == dst:
            yield path
            yielded += 1
            continue
        # Reverse so that the smallest-port branch is explored first.
        for nxt in reversed(dag.next_hops(node)):
            stack.append((nxt, path + [nxt]))


def is_minimal_path(topology: Topology, path: Sequence[NodeId]) -> bool:
    """True if *path* is a valid shortest path on *topology*."""
    if len(path) < 1:
        return False
    src, dst = path[0], path[-1]
    if topology.distance(src, dst) != len(path) - 1:
        return False
    return is_valid_path(topology, path)


def is_valid_path(topology: Topology, path: Sequence[NodeId]) -> bool:
    """True if consecutive nodes of *path* are joined by links."""
    if len(path) == 0:
        return False
    return all(
        topology.has_link(path[i], path[i + 1]) for i in range(len(path) - 1)
    )


def path_links(topology: Topology, path: Sequence[NodeId]) -> List[int]:
    """Link ids traversed by *path*, in order."""
    return [topology.link_id(path[i], path[i + 1]) for i in range(len(path) - 1)]
