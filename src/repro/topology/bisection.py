"""Bisection-capacity calculations.

The Figure 2 table reports routing throughput "as fraction of network
bisection capacity"; the SeaMicro rack is advertised by its 1.28 Tbps
bisection bandwidth.  This module provides closed forms for the regular
topologies plus a brute-force / spectral-partition fallback for arbitrary
graphs.
"""

from __future__ import annotations

import itertools

from ..errors import TopologyError
from .base import Topology
from .clos import FoldedClosTopology
from .hypercube import HypercubeTopology
from .torus import MeshTopology, TorusTopology


def bisection_channel_count(topology: Topology) -> int:
    """Number of directed links crossing a best (balanced, minimal) bisection.

    Closed forms (directed-channel counts; each cable is two channels):

    * torus, dims ``(k0, .., kn)``: cutting the largest even dimension k in
      half severs ``2 * 2 * (N / k)`` directed channels (two cut planes due
      to wraparound, two directions each).
    * mesh: one cut plane, ``2 * (N / k)`` channels.
    * hypercube: ``N`` channels (N/2 cables in one bit dimension).
    * folded Clos: the leaf-spine stage, ``2 * n_leaves * n_spines / ...``—
      we cut hosts in half which severs half the leaf uplinks; for the
      standard definition we report the host-side bisection,
      ``n_spines * n_leaves`` directed channels when leaves are split evenly.

    For other graphs a brute-force minimum balanced cut is computed (only
    feasible for small node counts).
    """
    if isinstance(topology, TorusTopology):
        return _torus_bisection(topology)
    if isinstance(topology, MeshTopology):
        return _mesh_bisection(topology)
    if isinstance(topology, HypercubeTopology):
        return topology.n_nodes
    if isinstance(topology, FoldedClosTopology):
        # Splitting hosts evenly across leaves: traffic between halves uses
        # leaf->spine->leaf; the limiting stage is the spine stage, with
        # n_leaves * n_spines cables but only half usable by crossing
        # traffic in each direction.
        return topology.n_leaves * topology.n_spines
    return _brute_force_bisection(topology)


def bisection_bandwidth_bps(topology: Topology) -> float:
    """Aggregate capacity (bits/s) across the bisection, one direction summed
    with the other (i.e. counting every crossing directed channel once).

    Composed multi-rack graphs (heterogeneous link capacities, too many
    nodes for the brute-force fallback) provide their own estimate through
    a ``composed_bisection_bps()`` hook — see
    :meth:`repro.interrack.topology.MultiRackFabric.composed_bisection_bps`
    and :meth:`repro.topology.synth.FatTreeFabric.composed_bisection_bps`.
    """
    hook = getattr(topology, "composed_bisection_bps", None)
    if hook is not None:
        return float(hook())
    return bisection_channel_count(topology) * topology.capacity_bps


def _largest_even_dim(dims) -> int:
    even = [d for d in dims if d % 2 == 0]
    if not even:
        raise TopologyError(
            f"bisection closed form needs at least one even dimension, got {dims}"
        )
    return max(even)


def _torus_bisection(topology: TorusTopology) -> int:
    k = _largest_even_dim(topology.dims)
    return 4 * topology.n_nodes // k


def _mesh_bisection(topology: MeshTopology) -> int:
    k = _largest_even_dim(topology.dims)
    return 2 * topology.n_nodes // k


def _brute_force_bisection(topology: Topology) -> int:
    """Exact minimum balanced-cut search; exponential, for tiny graphs only."""
    n = topology.n_nodes
    if n > 16:
        raise TopologyError(
            f"brute-force bisection limited to 16 nodes, topology has {n}"
        )
    if n % 2 != 0:
        raise TopologyError("bisection requires an even number of nodes")
    nodes = list(topology.nodes())
    best = None
    # Fix node 0 on side A to halve the search space.
    for rest in itertools.combinations(nodes[1:], n // 2 - 1):
        side_a = {0, *rest}
        crossing = sum(
            1
            for link in topology.links
            if (link.src in side_a) != (link.dst in side_a)
        )
        if best is None or crossing < best:
            best = crossing
    assert best is not None
    return best
