"""Topology abstractions for direct-connect rack fabrics.

A :class:`Topology` is an immutable directed graph with dense node and link
ids, per-link capacity and latency, and a handful of derived structures that
the rest of the stack relies on:

* ``neighbors(node)`` / ``in_neighbors(node)`` adjacency,
* ``port_of(src, dst)`` — the local *port number* of each outgoing link,
  which is what the R2C2 data-plane encodes into the 3-bit-per-hop source
  route (§4.2 of the paper),
* hop-count distances with per-source caching,
* failure views (``without_links`` / ``without_nodes``) that return plain
  :class:`GraphTopology` instances with the same node ids.

Subclasses for regular topologies (torus, mesh, hypercube, folded Clos) add
coordinates and analytic distances where available.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import TopologyError
from ..types import Link, LinkId, NodeId, gbps


#: Default link parameters, mirroring the paper's simulation setup
#: (10 Gbps links with 100 ns per-hop latency, §5.2).
DEFAULT_CAPACITY_BPS = gbps(10)
DEFAULT_LATENCY_NS = 100


class Topology:
    """An immutable directed-graph topology.

    Construction takes the number of nodes and an iterable of directed
    ``(src, dst)`` edges.  Every edge receives the same capacity and latency;
    heterogeneous fabrics can be expressed by subclassing and overriding
    :meth:`_build_links`, but the rack fabrics the paper studies are
    homogeneous ("all network links inside the rack have the same capacity",
    §3.2).
    """

    def __init__(
        self,
        n_nodes: int,
        edges: Iterable[Tuple[NodeId, NodeId]],
        capacity_bps: float = DEFAULT_CAPACITY_BPS,
        latency_ns: int = DEFAULT_LATENCY_NS,
        name: str = "graph",
    ) -> None:
        if n_nodes <= 0:
            raise TopologyError(f"topology needs at least one node, got {n_nodes}")
        if capacity_bps <= 0:
            raise TopologyError(f"link capacity must be positive, got {capacity_bps}")
        if latency_ns < 0:
            raise TopologyError(f"link latency must be non-negative, got {latency_ns}")

        self._n_nodes = n_nodes
        self._name = name
        self._capacity_bps = float(capacity_bps)
        self._latency_ns = int(latency_ns)

        out_adj: List[List[NodeId]] = [[] for _ in range(n_nodes)]
        seen = set()
        for src, dst in edges:
            if not (0 <= src < n_nodes and 0 <= dst < n_nodes):
                raise TopologyError(f"edge ({src}, {dst}) outside node range 0..{n_nodes - 1}")
            if src == dst:
                raise TopologyError(f"self-loop on node {src} is not allowed")
            if (src, dst) in seen:
                raise TopologyError(f"duplicate edge ({src}, {dst})")
            seen.add((src, dst))
            out_adj[src].append(dst)

        # Ports are assigned in sorted-neighbor order so that the mapping is
        # deterministic and identical on every node that rebuilds it.
        links: List[Link] = []
        link_index: Dict[Tuple[NodeId, NodeId], LinkId] = {}
        neighbors: List[Tuple[NodeId, ...]] = []
        for node in range(n_nodes):
            out_adj[node].sort()
            neighbors.append(tuple(out_adj[node]))
            for dst in out_adj[node]:
                link_id = len(links)
                links.append(Link(link_id, node, dst, self._capacity_bps, self._latency_ns))
                link_index[(node, dst)] = link_id

        in_adj: List[List[NodeId]] = [[] for _ in range(n_nodes)]
        for link in links:
            in_adj[link.dst].append(link.src)

        self._links: Tuple[Link, ...] = tuple(links)
        self._link_index = link_index
        self._neighbors = tuple(neighbors)
        self._in_neighbors = tuple(tuple(sorted(a)) for a in in_adj)
        self._dist_cache: Dict[NodeId, List[int]] = {}

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Human-readable topology name (e.g. ``"torus(8x8x8)"``)."""
        return self._name

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return self._n_nodes

    @property
    def n_links(self) -> int:
        """Number of directed links."""
        return len(self._links)

    @property
    def links(self) -> Tuple[Link, ...]:
        """All directed links, indexed by :class:`~repro.types.LinkId`."""
        return self._links

    @property
    def capacity_bps(self) -> float:
        """Per-link capacity in bits per second (homogeneous fabric)."""
        return self._capacity_bps

    @property
    def latency_ns(self) -> int:
        """Per-link propagation latency in nanoseconds."""
        return self._latency_ns

    def nodes(self) -> range:
        """Iterable of all node ids."""
        return range(self._n_nodes)

    def neighbors(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Out-neighbors of *node* in ascending order (port order)."""
        self._check_node(node)
        return self._neighbors[node]

    def in_neighbors(self, node: NodeId) -> Tuple[NodeId, ...]:
        """In-neighbors of *node* in ascending order."""
        self._check_node(node)
        return self._in_neighbors[node]

    def degree(self, node: NodeId) -> int:
        """Out-degree of *node*."""
        return len(self.neighbors(node))

    def max_degree(self) -> int:
        """Maximum out-degree over all nodes."""
        return max(len(n) for n in self._neighbors)

    def has_link(self, src: NodeId, dst: NodeId) -> bool:
        """True if the directed link ``src -> dst`` exists."""
        return (src, dst) in self._link_index

    def link_id(self, src: NodeId, dst: NodeId) -> LinkId:
        """Dense id of the directed link ``src -> dst``.

        Raises:
            TopologyError: if the link does not exist.
        """
        try:
            return self._link_index[(src, dst)]
        except KeyError:
            raise TopologyError(f"no link {src} -> {dst} in {self._name}") from None

    def link(self, src: NodeId, dst: NodeId) -> Link:
        """The :class:`~repro.types.Link` for ``src -> dst``."""
        return self._links[self.link_id(src, dst)]

    # ------------------------------------------------------------------
    # Ports (3-bit source-route encoding support)
    # ------------------------------------------------------------------
    def port_of(self, src: NodeId, dst: NodeId) -> int:
        """Port number of the link ``src -> dst`` on node *src*.

        Ports number outgoing links ``0 .. degree-1`` in ascending neighbor
        order; the R2C2 data packet encodes a path as one port per hop.
        """
        try:
            return self._neighbors[src].index(dst)
        except (ValueError, IndexError):
            raise TopologyError(f"{dst} is not a neighbor of {src} in {self._name}") from None

    def neighbor_at_port(self, node: NodeId, port: int) -> NodeId:
        """Inverse of :meth:`port_of`."""
        neigh = self.neighbors(node)
        if not (0 <= port < len(neigh)):
            raise TopologyError(f"node {node} has no port {port} (degree {len(neigh)})")
        return neigh[port]

    def path_to_ports(self, path: Sequence[NodeId]) -> List[int]:
        """Convert a node path ``[n0, n1, ..., nk]`` to a port list."""
        return [self.port_of(path[i], path[i + 1]) for i in range(len(path) - 1)]

    def ports_to_path(self, src: NodeId, ports: Sequence[int]) -> List[NodeId]:
        """Expand a source node plus port list back to the node path."""
        path = [src]
        for port in ports:
            path.append(self.neighbor_at_port(path[-1], port))
        return path

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def distance(self, src: NodeId, dst: NodeId) -> int:
        """Hop-count distance from *src* to *dst*.

        Generic implementation runs a cached BFS per source; coordinate
        topologies override this with closed forms.

        Raises:
            TopologyError: if *dst* is unreachable from *src*.
        """
        dist = self.distances_from(src)[dst]
        if dist < 0:
            raise TopologyError(f"{dst} unreachable from {src} in {self._name}")
        return dist

    def distances_from(self, src: NodeId) -> List[int]:
        """BFS distances from *src* to every node; ``-1`` = unreachable."""
        self._check_node(src)
        cached = self._dist_cache.get(src)
        if cached is not None:
            return cached
        dist = [-1] * self._n_nodes
        dist[src] = 0
        queue = deque([src])
        while queue:
            node = queue.popleft()
            d = dist[node] + 1
            for nxt in self._neighbors[node]:
                if dist[nxt] < 0:
                    dist[nxt] = d
                    queue.append(nxt)
        self._dist_cache[src] = dist
        return dist

    def distances_to(self, dst: NodeId) -> List[int]:
        """Distances from every node to *dst* (BFS over reversed links)."""
        self._check_node(dst)
        dist = [-1] * self._n_nodes
        dist[dst] = 0
        queue = deque([dst])
        while queue:
            node = queue.popleft()
            d = dist[node] + 1
            for prev in self._in_neighbors[node]:
                if dist[prev] < 0:
                    dist[prev] = d
                    queue.append(prev)
        return dist

    def diameter(self) -> int:
        """Longest shortest-path distance over all connected pairs."""
        best = 0
        for src in self.nodes():
            best = max(best, max(self.distances_from(src)))
        return best

    def average_distance(self) -> float:
        """Mean hop count over all ordered pairs of distinct nodes."""
        total = 0
        count = 0
        for src in self.nodes():
            for dst, d in enumerate(self.distances_from(src)):
                if dst != src and d > 0:
                    total += d
                    count += 1
        return total / count if count else 0.0

    def is_connected(self) -> bool:
        """True if every node is reachable from node 0 (and vice versa)."""
        if self._n_nodes == 1:
            return True
        return (
            all(d >= 0 for d in self.distances_from(0))
            and all(d >= 0 for d in self.distances_to(0))
        )

    # ------------------------------------------------------------------
    # Coordinates (overridden by regular topologies)
    # ------------------------------------------------------------------
    @property
    def dims(self) -> Optional[Tuple[int, ...]]:
        """Dimension sizes for coordinate topologies, else ``None``."""
        return None

    def coordinates(self, node: NodeId) -> Tuple[int, ...]:
        """Coordinates of *node*; only meaningful for coordinate topologies."""
        raise TopologyError(f"{self._name} has no coordinate system")

    def node_at(self, coords: Sequence[int]) -> NodeId:
        """Node id at *coords*; only meaningful for coordinate topologies."""
        raise TopologyError(f"{self._name} has no coordinate system")

    # ------------------------------------------------------------------
    # Failure views
    # ------------------------------------------------------------------
    def without_links(self, failed: Iterable[Tuple[NodeId, NodeId]]) -> "Topology":
        """A copy of this topology with the given directed links removed.

        Node ids are preserved; the result is a plain :class:`Topology`, so
        coordinate-based routing no longer applies to it.
        """
        failed_set = set(failed)
        edges = [
            (link.src, link.dst)
            for link in self._links
            if (link.src, link.dst) not in failed_set
        ]
        return Topology(
            self._n_nodes,
            edges,
            capacity_bps=self._capacity_bps,
            latency_ns=self._latency_ns,
            name=f"{self._name}-degraded",
        )

    def without_nodes(self, failed: Iterable[NodeId]) -> "Topology":
        """A copy with the given nodes' links removed.

        The failed nodes remain as isolated ids so that the dense id space
        (and hence flow/table indexing everywhere else) is preserved.
        """
        failed_set = set(failed)
        edges = [
            (link.src, link.dst)
            for link in self._links
            if link.src not in failed_set and link.dst not in failed_set
        ]
        return Topology(
            self._n_nodes,
            edges,
            capacity_bps=self._capacity_bps,
            latency_ns=self._latency_ns,
            name=f"{self._name}-degraded",
        )

    # ------------------------------------------------------------------
    # Partitioning (sharded simulation support)
    # ------------------------------------------------------------------
    def partition(self, k: int, strategy: str = "auto"):
        """Split the nodes into *k* shards for parallel simulation.

        Returns a :class:`~repro.topology.partition.Partition`; see that
        module for the cut strategies.  Composes with failure views — the
        partition of a degraded topology only sees surviving links.
        """
        from .partition import partition_topology

        return partition_topology(self, k, strategy=strategy)

    # ------------------------------------------------------------------
    def _check_node(self, node: NodeId) -> None:
        if not (0 <= node < self._n_nodes):
            raise TopologyError(f"node {node} outside range 0..{self._n_nodes - 1}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self._name}: {self._n_nodes} nodes, {self.n_links} links>"


class GraphTopology(Topology):
    """A topology built from an explicit undirected edge list.

    Each undirected edge ``(a, b)`` becomes the two directed links ``a -> b``
    and ``b -> a``.  Useful for tests and irregular fabrics.
    """

    def __init__(
        self,
        n_nodes: int,
        undirected_edges: Iterable[Tuple[NodeId, NodeId]],
        capacity_bps: float = DEFAULT_CAPACITY_BPS,
        latency_ns: int = DEFAULT_LATENCY_NS,
        name: str = "graph",
    ) -> None:
        directed: List[Tuple[NodeId, NodeId]] = []
        for a, b in undirected_edges:
            directed.append((a, b))
            directed.append((b, a))
        super().__init__(
            n_nodes, directed, capacity_bps=capacity_bps, latency_ns=latency_ns, name=name
        )
