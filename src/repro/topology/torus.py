"""k-ary n-cube torus and mesh topologies.

These are the fabrics the paper's rack-scale computers use: the AMD SeaMicro
and HP Moonshot racks are 3D tori, and the Figure 2 routing study runs on an
8-ary 2-cube (an 8x8 2D torus).  Node ids map to coordinates in row-major
order: for dims ``(a, b, c)`` the node at ``(x, y, z)`` has id
``x * b * c + y * c + z``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import TopologyError
from ..types import NodeId
from .base import DEFAULT_CAPACITY_BPS, DEFAULT_LATENCY_NS, Topology


def _row_major_strides(dims: Sequence[int]) -> List[int]:
    strides = [1] * len(dims)
    for i in range(len(dims) - 2, -1, -1):
        strides[i] = strides[i + 1] * dims[i + 1]
    return strides


class _CoordinateTopology(Topology):
    """Shared coordinate machinery for torus and mesh."""

    def __init__(self, dims_tuple: Tuple[int, ...], edges, capacity_bps, latency_ns, name):
        self._dims = dims_tuple
        self._strides = _row_major_strides(dims_tuple)
        n_nodes = 1
        for d in dims_tuple:
            n_nodes *= d
        super().__init__(n_nodes, edges, capacity_bps=capacity_bps, latency_ns=latency_ns, name=name)

    @property
    def dims(self) -> Tuple[int, ...]:
        return self._dims

    @property
    def n_dims(self) -> int:
        """Number of dimensions."""
        return len(self._dims)

    def coordinates(self, node: NodeId) -> Tuple[int, ...]:
        self._check_node(node)
        coords = []
        for stride, size in zip(self._strides, self._dims):
            coords.append((node // stride) % size)
        return tuple(coords)

    def node_at(self, coords: Sequence[int]) -> NodeId:
        if len(coords) != len(self._dims):
            raise TopologyError(f"expected {len(self._dims)} coordinates, got {len(coords)}")
        node = 0
        for c, stride, size in zip(coords, self._strides, self._dims):
            if not (0 <= c < size):
                raise TopologyError(f"coordinate {c} outside 0..{size - 1}")
            node += c * stride
        return node


def _validate_dims(dims: Sequence[int], kind: str) -> Tuple[int, ...]:
    dims_tuple = tuple(int(d) for d in dims)
    if not dims_tuple:
        raise TopologyError(f"{kind} needs at least one dimension")
    if any(d < 2 for d in dims_tuple):
        raise TopologyError(f"every {kind} dimension must be >= 2, got {dims_tuple}")
    return dims_tuple


class TorusTopology(_CoordinateTopology):
    """An n-dimensional torus (k-ary n-cube when all dims are equal).

    Every node connects to its ``+1`` and ``-1`` neighbor (mod k) in each
    dimension.  A dimension of size two contributes a single neighbor (the
    ``+1`` and ``-1`` wraps coincide).

    Args:
        dims: Dimension sizes, e.g. ``(8, 8, 8)`` for a 512-node 3D torus.
    """

    def __init__(
        self,
        dims: Sequence[int],
        capacity_bps: float = DEFAULT_CAPACITY_BPS,
        latency_ns: int = DEFAULT_LATENCY_NS,
    ) -> None:
        dims_tuple = _validate_dims(dims, "torus")
        strides = _row_major_strides(dims_tuple)
        n_nodes = 1
        for d in dims_tuple:
            n_nodes *= d

        edges = set()
        for node in range(n_nodes):
            coords = []
            for stride, size in zip(strides, dims_tuple):
                coords.append((node // stride) % size)
            for axis, size in enumerate(dims_tuple):
                for delta in (1, -1):
                    nxt = list(coords)
                    nxt[axis] = (nxt[axis] + delta) % size
                    other = sum(c * s for c, s in zip(nxt, strides))
                    if other != node:
                        edges.add((node, other))

        name = "torus(" + "x".join(str(d) for d in dims_tuple) + ")"
        super().__init__(dims_tuple, sorted(edges), capacity_bps, latency_ns, name)

    def distance(self, src: NodeId, dst: NodeId) -> int:
        """Closed-form torus distance: per-dimension ring distance, summed."""
        a = self.coordinates(src)
        b = self.coordinates(dst)
        total = 0
        for ca, cb, size in zip(a, b, self._dims):
            delta = abs(ca - cb)
            total += min(delta, size - delta)
        return total

    def ring_offsets(self, src: NodeId, dst: NodeId) -> List[List[int]]:
        """Minimal signed offsets per dimension.

        For each dimension returns the list of signed offsets that realize
        the minimal ring distance.  Usually a single entry; exactly at the
        half-way point of an even ring both ``+k/2`` and ``-k/2`` are minimal
        and both are returned.
        """
        a = self.coordinates(src)
        b = self.coordinates(dst)
        result: List[List[int]] = []
        for ca, cb, size in zip(a, b, self._dims):
            fwd = (cb - ca) % size
            back = fwd - size  # negative or zero
            if fwd == 0:
                result.append([0])
            elif fwd < -back:
                result.append([fwd])
            elif fwd > -back:
                result.append([back])
            else:
                result.append([fwd, back])
        return result


class MeshTopology(_CoordinateTopology):
    """An n-dimensional mesh: a torus without the wraparound links."""

    def __init__(
        self,
        dims: Sequence[int],
        capacity_bps: float = DEFAULT_CAPACITY_BPS,
        latency_ns: int = DEFAULT_LATENCY_NS,
    ) -> None:
        dims_tuple = _validate_dims(dims, "mesh")
        strides = _row_major_strides(dims_tuple)
        n_nodes = 1
        for d in dims_tuple:
            n_nodes *= d

        edges = []
        for node in range(n_nodes):
            coords = []
            for stride, size in zip(strides, dims_tuple):
                coords.append((node // stride) % size)
            for axis, size in enumerate(dims_tuple):
                if coords[axis] + 1 < size:
                    other = node + strides[axis]
                    edges.append((node, other))
                    edges.append((other, node))

        name = "mesh(" + "x".join(str(d) for d in dims_tuple) + ")"
        super().__init__(dims_tuple, edges, capacity_bps, latency_ns, name)

    def distance(self, src: NodeId, dst: NodeId) -> int:
        """Closed-form mesh (Manhattan) distance."""
        a = self.coordinates(src)
        b = self.coordinates(dst)
        return sum(abs(ca - cb) for ca, cb in zip(a, b))
