"""Topology partitioning for sharded simulation (see :mod:`repro.distsim`).

A :class:`Partition` splits a topology's nodes into ``k`` disjoint, jointly
exhaustive shards and exposes the *cut* — the directed links whose endpoints
live in different shards.  The conservative synchronization protocol derives
its lookahead from the minimum cut-link latency: a shard that has executed up
to virtual time ``t`` cannot influence a remote shard before ``t +
lookahead``, so all shards may safely run ``lookahead`` beyond the global
minimum next-event time.

Cut placement never affects simulation *results* (the sharded engine is
exact regardless of the cut); it only affects *speed*, via cut size (message
volume) and shard balance.  Strategies:

* coordinate topologies (torus/mesh/hypercube): contiguous slabs along the
  longest dimension — the classic plane cut, minimizing cut size for
  row-major workloads;
* folded Clos: hosts stay with their leaf, leaves are split into contiguous
  ranges, spines into contiguous ranges — the subtree cut (only leaf-spine
  links cross);
* multi-rack fabrics (anything exposing ``rack_of``/``n_racks``, i.e.
  :class:`~repro.interrack.topology.MultiRackFabric` and synthesized
  :class:`~repro.topology.synth.FatTreeFabric`): racks are grouped into
  contiguous ranges so only gateway cables cross shards and the
  conservative window's lookahead becomes the gateway latency — the
  natural minimum cut of a composed graph;
* anything else (including the plain :class:`~repro.topology.Topology`
  failure views return): contiguous node-id blocks.

Partitions compose with failure views in either order: partitioning a
degraded topology sees only the surviving links, and the assignment depends
only on node ids/coordinates, which views preserve.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import TopologyError
from ..types import Link, NodeId
from .base import Topology


class Partition:
    """An immutable assignment of every node to one of ``k`` shards."""

    def __init__(self, topology: Topology, assignment: Sequence[int], k: int) -> None:
        if len(assignment) != topology.n_nodes:
            raise TopologyError(
                f"assignment covers {len(assignment)} nodes, topology has {topology.n_nodes}"
            )
        shards: List[List[NodeId]] = [[] for _ in range(k)]
        for node, shard in enumerate(assignment):
            if not (0 <= shard < k):
                raise TopologyError(f"node {node} assigned to shard {shard}, k={k}")
            shards[shard].append(node)
        for shard, members in enumerate(shards):
            if not members:
                raise TopologyError(f"shard {shard} of {k} is empty")
        self._topology = topology
        self._k = k
        self._assignment: Tuple[int, ...] = tuple(assignment)
        self._shards: Tuple[Tuple[NodeId, ...], ...] = tuple(
            tuple(members) for members in shards
        )
        self._cut: Optional[Tuple[Link, ...]] = None

    @property
    def topology(self) -> Topology:
        """The partitioned topology."""
        return self._topology

    @property
    def k(self) -> int:
        """Number of shards."""
        return self._k

    @property
    def assignment(self) -> Tuple[int, ...]:
        """Shard id per node, indexed by node id."""
        return self._assignment

    def shard_of(self, node: NodeId) -> int:
        """Shard owning *node*."""
        return self._assignment[node]

    def nodes_of(self, shard: int) -> Tuple[NodeId, ...]:
        """Nodes owned by *shard*, in ascending id order."""
        return self._shards[shard]

    def shards(self) -> Tuple[Tuple[NodeId, ...], ...]:
        """All shards' node tuples, indexed by shard id."""
        return self._shards

    def cut_edges(self) -> Tuple[Link, ...]:
        """Directed links crossing shard boundaries, in global link order."""
        if self._cut is None:
            assignment = self._assignment
            self._cut = tuple(
                link
                for link in self._topology.links
                if assignment[link.src] != assignment[link.dst]
            )
        return self._cut

    def internal_edges(self, shard: int) -> Tuple[Link, ...]:
        """Links with both endpoints inside *shard*, in global link order."""
        assignment = self._assignment
        return tuple(
            link
            for link in self._topology.links
            if assignment[link.src] == shard and assignment[link.dst] == shard
        )

    def lookahead_ns(self) -> Optional[int]:
        """Minimum latency over cut links; ``None`` when the cut is empty.

        An empty cut (k=1, or shards in disconnected components) means the
        shards can never influence each other, i.e. infinite lookahead.
        """
        cut = self.cut_edges()
        if not cut:
            return None
        return min(link.latency_ns for link in cut)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = "/".join(str(len(s)) for s in self._shards)
        return (
            f"<Partition k={self._k} of {self._topology.name}: "
            f"sizes {sizes}, cut {len(self.cut_edges())} links>"
        )


def partition_topology(topology: Topology, k: int, strategy: str = "auto") -> Partition:
    """Split *topology* into *k* shards using the requested *strategy*.

    Strategies: ``"auto"`` (pick per topology type), ``"slab"`` (contiguous
    ranges along the longest coordinate dimension; requires coordinates),
    ``"subtree"`` (folded-Clos leaf subtrees; requires a Clos), ``"rack"``
    (contiguous rack ranges; requires a multi-rack fabric), ``"blocks"``
    (contiguous node-id ranges; always available).
    """
    if k <= 0:
        raise TopologyError(f"shard count must be positive, got {k}")
    if k > topology.n_nodes:
        raise TopologyError(
            f"cannot split {topology.n_nodes} nodes into {k} shards"
        )

    if strategy == "auto":
        if _is_multirack(topology):
            strategy = "rack"
        elif _is_clos(topology):
            strategy = "subtree"
        elif topology.dims is not None:
            strategy = "slab"
        else:
            strategy = "blocks"

    if strategy == "slab":
        assignment = _slab_assignment(topology, k)
    elif strategy == "subtree":
        assignment = _subtree_assignment(topology, k)
    elif strategy == "rack":
        assignment = _rack_assignment(topology, k)
    elif strategy == "blocks":
        assignment = _block_assignment(topology.n_nodes, k)
    else:
        raise TopologyError(f"unknown partition strategy {strategy!r}")
    return Partition(topology, assignment, k)


def _block_assignment(n_nodes: int, k: int) -> List[int]:
    """Contiguous id blocks, balanced to within one node."""
    return [node * k // n_nodes for node in range(n_nodes)]


def _slab_assignment(topology: Topology, k: int) -> List[int]:
    """Contiguous coordinate ranges along the longest dimension."""
    dims = topology.dims
    if dims is None:
        raise TopologyError(f"{topology.name} has no coordinates for a slab cut")
    axis = max(range(len(dims)), key=lambda i: dims[i])
    if k > dims[axis]:
        # More shards than planes along the longest axis: fall back to id
        # blocks, which for row-major coordinate topologies are still
        # spatially contiguous boxes.
        return _block_assignment(topology.n_nodes, k)
    size = dims[axis]
    return [
        topology.coordinates(node)[axis] * k // size for node in topology.nodes()
    ]


def _is_multirack(topology: Topology) -> bool:
    return hasattr(topology, "rack_of") and hasattr(topology, "n_racks")


def _rack_assignment(topology: Topology, k: int) -> List[int]:
    """Rack-aligned cut: racks grouped into ``k`` contiguous ranges.

    Only gateway cables cross shards, so the conservative window's
    lookahead equals the gateway latency.  Works for any topology exposing
    ``rack_of``/``n_racks`` — :class:`~repro.interrack.topology.
    MultiRackFabric` (where it cuts exactly the bridge links) and
    :class:`~repro.topology.synth.FatTreeFabric` (whose switches are
    spread round-robin over rack groups by its ``rack_of``).  With more
    shards than racks a rack would have to straddle shards, so we fall
    back to id blocks — which for rack-contiguous node ids is still a
    near-rack-aligned cut.

    Note failure views return plain :class:`Topology` objects without rack
    attributes; "auto" then degrades to blocks, which preserves the same
    contiguous-id structure.
    """
    if not _is_multirack(topology):
        raise TopologyError(f"{topology.name} is not a multi-rack fabric")
    n_racks = topology.n_racks
    if k > n_racks:
        return _block_assignment(topology.n_nodes, k)
    return [topology.rack_of(node) * k // n_racks for node in topology.nodes()]


def _is_clos(topology: Topology) -> bool:
    return (
        hasattr(topology, "leaf_of")
        and hasattr(topology, "n_leaves")
        and hasattr(topology, "n_spines")
    )


def _subtree_assignment(topology: Topology, k: int) -> List[int]:
    """Folded-Clos cut: hosts follow their leaf, spines split evenly.

    Leaves are grouped into ``k`` contiguous ranges so only leaf-spine links
    cross shards; if there are fewer leaves than shards the topology is too
    small for a subtree cut and we fall back to id blocks.
    """
    if not _is_clos(topology):
        raise TopologyError(f"{topology.name} is not a folded Clos")
    n_leaves = topology.n_leaves
    if k > n_leaves:
        return _block_assignment(topology.n_nodes, k)
    assignment = [0] * topology.n_nodes
    for host in topology.hosts():
        leaf_rank = topology.leaf_of(host) - topology.n_hosts
        assignment[host] = leaf_rank * k // n_leaves
    for rank in range(n_leaves):
        assignment[topology.n_hosts + rank] = rank * k // n_leaves
    n_spines = topology.n_spines
    spine_base = topology.n_hosts + n_leaves
    for rank in range(n_spines):
        assignment[spine_base + rank] = rank * k // n_spines if n_spines >= k else rank % k
    return assignment
