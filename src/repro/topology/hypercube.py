"""Binary hypercube topology.

Included because hypercubes are the other classic direct-connect fabric from
the interconnection-networks literature the paper builds on; they exercise
the routing and congestion-control layers with a different degree/diameter
trade-off than tori.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..errors import TopologyError
from ..types import NodeId
from .base import DEFAULT_CAPACITY_BPS, DEFAULT_LATENCY_NS, Topology


class HypercubeTopology(Topology):
    """An *n*-dimensional binary hypercube with ``2**n`` nodes.

    Node ids are interpreted as bit strings; two nodes are adjacent iff their
    ids differ in exactly one bit.
    """

    def __init__(
        self,
        n_dims: int,
        capacity_bps: float = DEFAULT_CAPACITY_BPS,
        latency_ns: int = DEFAULT_LATENCY_NS,
    ) -> None:
        if n_dims < 1:
            raise TopologyError(f"hypercube needs n_dims >= 1, got {n_dims}")
        self._n_dims = n_dims
        n_nodes = 1 << n_dims
        edges = []
        for node in range(n_nodes):
            for bit in range(n_dims):
                other = node ^ (1 << bit)
                edges.append((node, other))
        super().__init__(
            n_nodes,
            edges,
            capacity_bps=capacity_bps,
            latency_ns=latency_ns,
            name=f"hypercube({n_dims})",
        )

    @property
    def dims(self) -> Tuple[int, ...]:
        """A hypercube is a 2-ary n-cube: n dimensions of size two."""
        return (2,) * self._n_dims

    @property
    def n_dims(self) -> int:
        """Number of dimensions (bits)."""
        return self._n_dims

    def coordinates(self, node: NodeId) -> Tuple[int, ...]:
        """Bit vector of *node*, most significant bit first."""
        self._check_node(node)
        return tuple((node >> (self._n_dims - 1 - i)) & 1 for i in range(self._n_dims))

    def node_at(self, coords: Sequence[int]) -> NodeId:
        if len(coords) != self._n_dims:
            raise TopologyError(f"expected {self._n_dims} coordinates, got {len(coords)}")
        node = 0
        for bit in coords:
            if bit not in (0, 1):
                raise TopologyError(f"hypercube coordinates are bits, got {bit}")
            node = (node << 1) | bit
        return node

    def distance(self, src: NodeId, dst: NodeId) -> int:
        """Hamming distance between the two node ids."""
        self._check_node(src)
        self._check_node(dst)
        return bin(src ^ dst).count("1")
