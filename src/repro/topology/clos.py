"""Two-level folded-Clos (leaf-spine) topology.

Section 6 of the paper observes that R2C2's broadcast-based congestion
control also applies to switched intra-rack networks, quoting a 512-node rack
built from 32-port switches in a two-level folded Clos where one broadcast
costs only ~8.7 KB of total traffic.  This module builds that topology so the
claim can be checked numerically and so the congestion-control layer can be
exercised on a non-direct-connect fabric.

Hosts occupy ids ``0 .. n_hosts-1``; leaf switches and spine switches follow.
"""

from __future__ import annotations

from typing import Tuple

from ..errors import TopologyError
from ..types import NodeId
from .base import DEFAULT_CAPACITY_BPS, DEFAULT_LATENCY_NS, Topology


class FoldedClosTopology(Topology):
    """A two-level folded Clos built from fixed-radix switches.

    Each leaf switch dedicates half its ``radix`` ports to hosts and half to
    spines; each spine connects to every leaf.  With radix *r* and *l* leaves
    this supports ``l * r / 2`` hosts using ``r / 2`` spines.

    Args:
        n_hosts: Number of host nodes; must be a multiple of ``radix // 2``.
        radix: Switch port count (even, >= 4).
    """

    def __init__(
        self,
        n_hosts: int,
        radix: int = 32,
        capacity_bps: float = DEFAULT_CAPACITY_BPS,
        latency_ns: int = DEFAULT_LATENCY_NS,
    ) -> None:
        if radix < 4 or radix % 2 != 0:
            raise TopologyError(f"radix must be an even number >= 4, got {radix}")
        hosts_per_leaf = radix // 2
        if n_hosts <= 0 or n_hosts % hosts_per_leaf != 0:
            raise TopologyError(
                f"n_hosts ({n_hosts}) must be a positive multiple of radix/2 ({hosts_per_leaf})"
            )
        n_leaves = n_hosts // hosts_per_leaf
        n_spines = radix // 2
        if n_leaves > radix:
            raise TopologyError(
                f"{n_leaves} leaves exceed spine radix {radix}; "
                f"a two-level Clos with radix {radix} supports at most "
                f"{radix * hosts_per_leaf} hosts"
            )

        self._n_hosts = n_hosts
        self._n_leaves = n_leaves
        self._n_spines = n_spines
        self._radix = radix

        leaf_base = n_hosts
        spine_base = n_hosts + n_leaves
        edges = []
        for host in range(n_hosts):
            leaf = leaf_base + host // hosts_per_leaf
            edges.append((host, leaf))
            edges.append((leaf, host))
        for leaf_idx in range(n_leaves):
            leaf = leaf_base + leaf_idx
            for spine_idx in range(n_spines):
                spine = spine_base + spine_idx
                edges.append((leaf, spine))
                edges.append((spine, leaf))

        super().__init__(
            n_hosts + n_leaves + n_spines,
            edges,
            capacity_bps=capacity_bps,
            latency_ns=latency_ns,
            name=f"clos({n_hosts}h,{n_leaves}l,{n_spines}s)",
        )

    @property
    def n_hosts(self) -> int:
        """Number of host (end-point) nodes."""
        return self._n_hosts

    @property
    def n_leaves(self) -> int:
        """Number of leaf switches."""
        return self._n_leaves

    @property
    def n_spines(self) -> int:
        """Number of spine switches."""
        return self._n_spines

    @property
    def radix(self) -> int:
        """Switch radix the fabric was built from."""
        return self._radix

    def hosts(self) -> range:
        """Ids of the host nodes."""
        return range(self._n_hosts)

    def switches(self) -> range:
        """Ids of all switch nodes (leaves then spines)."""
        return range(self._n_hosts, self.n_nodes)

    def is_host(self, node: NodeId) -> bool:
        """True if *node* is a host rather than a switch."""
        self._check_node(node)
        return node < self._n_hosts

    def leaf_of(self, host: NodeId) -> NodeId:
        """The leaf switch a host hangs off."""
        if not self.is_host(host):
            raise TopologyError(f"node {host} is a switch, not a host")
        return self._n_hosts + host // (self._radix // 2)

    def host_pairs(self) -> Tuple[Tuple[NodeId, NodeId], ...]:
        """All ordered pairs of distinct hosts (for traffic patterns)."""
        return tuple(
            (a, b) for a in self.hosts() for b in self.hosts() if a != b
        )
