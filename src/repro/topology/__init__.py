"""Direct-connect rack topologies and path machinery (paper §2.1).

Public surface:

* :class:`Topology` / :class:`GraphTopology` — generic immutable topologies.
* :class:`TorusTopology`, :class:`MeshTopology`, :class:`HypercubeTopology`,
  :class:`FoldedClosTopology` — the fabrics discussed in the paper.
* :class:`ShortestPathDag`, :func:`count_shortest_paths`,
  :func:`enumerate_shortest_paths` — minimal-path structure.
* :func:`bisection_channel_count`, :func:`bisection_bandwidth_bps`.
* :class:`Partition` / :func:`partition_topology` — shard cuts for the
  parallel simulation engine (:mod:`repro.distsim`).
* :class:`FabricSpec` / :func:`synthesize` — automated inter-rack fabric
  synthesis under port/cost budgets (:mod:`repro.topology.synth`).
"""

from .base import DEFAULT_CAPACITY_BPS, DEFAULT_LATENCY_NS, GraphTopology, Topology
from .bisection import bisection_bandwidth_bps, bisection_channel_count
from .clos import FoldedClosTopology
from .hypercube import HypercubeTopology
from .partition import Partition, partition_topology
from .synth import (
    SYNTH_DESIGNS,
    FabricSpec,
    FatTreeFabric,
    SynthesizedFabric,
    synthesize,
)
from .paths import (
    ShortestPathDag,
    count_shortest_paths,
    enumerate_shortest_paths,
    is_minimal_path,
    is_valid_path,
    path_links,
)
from .torus import MeshTopology, TorusTopology

__all__ = [
    "DEFAULT_CAPACITY_BPS",
    "DEFAULT_LATENCY_NS",
    "FabricSpec",
    "FatTreeFabric",
    "FoldedClosTopology",
    "GraphTopology",
    "HypercubeTopology",
    "MeshTopology",
    "Partition",
    "SYNTH_DESIGNS",
    "ShortestPathDag",
    "SynthesizedFabric",
    "Topology",
    "TorusTopology",
    "bisection_bandwidth_bps",
    "bisection_channel_count",
    "count_shortest_paths",
    "enumerate_shortest_paths",
    "is_minimal_path",
    "is_valid_path",
    "partition_topology",
    "path_links",
    "synthesize",
]
