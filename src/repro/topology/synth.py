"""Automated inter-rack fabric synthesis (ROADMAP: "scale past the rack").

The paper's §6 leaves inter-rack networking as future work; the seed's
:mod:`repro.interrack` hand-wires two designs (a ring of racks and one
aggregation switch).  This module *synthesizes* inter-rack fabrics from a
declarative :class:`FabricSpec` under explicit port and cost budgets,
following the two families retrieved in PAPERS.md:

* ``fattree`` — Solnushkin-style automated two-layer fat-tree design: given
  a switch radix and per-rack uplink budget, enumerate the feasible
  (downlinks, uplinks) port splits of the edge layer, reject candidates
  that miss the oversubscription target, and pick the cheapest under the
  cost model.  Emits a :class:`FatTreeFabric` (racks + edge + core nodes).
* ``flat`` — RNG / Space-Shuffle-style flat direct-connect fabric: a seeded
  random regular graph over racks (pairing model, redrawn until simple and
  connected), emitted as an :class:`~repro.interrack.topology.
  MultiRackFabric` bridge list.  Deterministic per seed.
* ``ring`` / ``switched`` — the seed's hand-wired designs re-expressed as
  synth specs, so every design shares one budget/cost/fingerprint surface.

Every synthesis is deterministic: the same spec (same seed) produces the
same bridge list and the same content :attr:`SynthesizedFabric.fingerprint`
in any process, which is what lets campaign caching treat generated fabrics
as content-addressed artifacts.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import TopologyError
from ..types import Link, LinkId, NodeId
from .base import Topology

__all__ = [
    "FabricSpec",
    "FatTreeFabric",
    "SynthesizedFabric",
    "SYNTH_DESIGNS",
    "synthesize",
]

#: Designs :func:`synthesize` knows how to generate.
SYNTH_DESIGNS = ("fattree", "flat", "ring", "switched")

#: How many pairing-model redraws the flat design attempts before declaring
#: the (n_racks, degree) combination infeasible for this seed.
_FLAT_MAX_ATTEMPTS = 200


def _build_rack(kind: str, dims: Tuple[int, ...], capacity_bps: Optional[float]):
    from .hypercube import HypercubeTopology
    from .torus import MeshTopology, TorusTopology

    kwargs = {}
    if capacity_bps is not None:
        kwargs["capacity_bps"] = capacity_bps
    if kind == "torus":
        return TorusTopology(dims, **kwargs)
    if kind == "mesh":
        return MeshTopology(dims, **kwargs)
    if kind == "hypercube":
        return HypercubeTopology(dims[0], **kwargs)
    raise TopologyError(f"unknown rack topology kind {kind!r}")


@dataclass(frozen=True)
class FabricSpec:
    """A declarative inter-rack fabric synthesis problem.

    Budgets are hard constraints: :func:`synthesize` raises
    :class:`~repro.errors.TopologyError` rather than emit a fabric that
    uses more than ``gateway_ports`` ports per rack, exceeds a switch's
    ``switch_radix``, overshoots the ``oversubscription`` target or (when
    ``max_cost`` is set) the cost budget.
    """

    design: str = "flat"
    rack: str = "torus"
    rack_dims: Tuple[int, ...] = (3, 3, 3)
    n_racks: int = 8
    #: Per-rack gateway-port budget (uplinks or direct cables).
    gateway_ports: int = 4
    #: Target: rack injection capacity over gateway capacity, per rack.
    oversubscription: float = 64.0
    capacity_bps: Optional[float] = None
    bridge_capacity_bps: Optional[float] = None
    bridge_latency_ns: int = 500
    seed: int = 0
    #: Switch port count for the fattree/switched designs.
    switch_radix: int = 64
    switch_cost: float = 300.0
    cable_cost: float = 10.0
    #: Optional hard cost ceiling (same units as switch/cable cost).
    max_cost: Optional[float] = None

    def __post_init__(self) -> None:
        if self.design not in SYNTH_DESIGNS:
            raise TopologyError(
                f"unknown fabric design {self.design!r}; choose from {SYNTH_DESIGNS}"
            )
        if self.n_racks < 2:
            raise TopologyError("fabric synthesis needs at least two racks")
        if self.gateway_ports < 1:
            raise TopologyError("gateway-port budget must be >= 1")
        if self.oversubscription <= 0:
            raise TopologyError("oversubscription target must be positive")
        if self.switch_radix < 2:
            raise TopologyError("switch radix must be >= 2")
        object.__setattr__(self, "rack_dims", tuple(int(d) for d in self.rack_dims))

    @property
    def rack_size(self) -> int:
        if self.rack == "hypercube":
            return 1 << self.rack_dims[0]
        n = 1
        for d in self.rack_dims:
            n *= d
        return n

    @property
    def n_nodes(self) -> int:
        """Host nodes (switches of the fattree/switched designs excluded)."""
        return self.n_racks * self.rack_size

    def to_dict(self) -> Dict[str, Any]:
        return {
            "design": self.design,
            "rack": self.rack,
            "rack_dims": list(self.rack_dims),
            "n_racks": self.n_racks,
            "gateway_ports": self.gateway_ports,
            "oversubscription": self.oversubscription,
            "capacity_bps": self.capacity_bps,
            "bridge_capacity_bps": self.bridge_capacity_bps,
            "bridge_latency_ns": self.bridge_latency_ns,
            "seed": self.seed,
            "switch_radix": self.switch_radix,
            "switch_cost": self.switch_cost,
            "cable_cost": self.cable_cost,
            "max_cost": self.max_cost,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FabricSpec":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        kwargs = {k: v for k, v in data.items() if k in known}
        if "rack_dims" in kwargs:
            kwargs["rack_dims"] = tuple(kwargs["rack_dims"])
        return cls(**kwargs)

    def fingerprint(self) -> str:
        """SHA-256 of the canonical spec JSON (the synthesis *problem*)."""
        text = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


class FatTreeFabric(Topology):
    """Racks composed through a two-layer (edge + core) fat tree.

    Node ids: hosts first (``rack * rack_size + local``, exactly the
    :class:`~repro.interrack.topology.MultiRackFabric` arithmetic), then the
    ``n_edge`` edge switches, then the ``n_core`` core switches.  Uplink and
    core links carry the gateway capacity/latency; host links the rack's.
    """

    def __init__(
        self,
        racks: Sequence[Topology],
        n_edge: int,
        n_core: int,
        uplinks: Sequence[Tuple[NodeId, NodeId]],
        corelinks: Sequence[Tuple[NodeId, NodeId]],
        gateway_capacity_bps: float,
        gateway_latency_ns: int,
    ) -> None:
        self._racks = list(racks)
        self._rack_size = racks[0].n_nodes
        self._n_hosts = len(racks) * self._rack_size
        self._n_edge = n_edge
        self._n_core = n_core
        edges: List[Tuple[NodeId, NodeId]] = []
        for rack_idx, rack in enumerate(racks):
            base = rack_idx * self._rack_size
            for link in rack.links:
                edges.append((base + link.src, base + link.dst))
        gateway_pairs = list(uplinks) + list(corelinks)
        for a, b in gateway_pairs:
            edges.append((a, b))
            edges.append((b, a))
        super().__init__(
            self._n_hosts + n_edge + n_core,
            edges,
            capacity_bps=racks[0].capacity_bps,
            latency_ns=racks[0].latency_ns,
            name=f"fattree({len(racks)}x{racks[0].name}+{n_edge}e+{n_core}c)",
        )
        gateway_ids: List[LinkId] = []
        links = list(self._links)
        for a, b in gateway_pairs:
            for src, dst in ((a, b), (b, a)):
                link_id = self.link_id(src, dst)
                old = links[link_id]
                links[link_id] = Link(
                    link_id, old.src, old.dst, gateway_capacity_bps, gateway_latency_ns
                )
                gateway_ids.append(link_id)
        self._links = tuple(links)
        self._gateway_link_set = frozenset(gateway_ids)
        self._gateway_link_ids = tuple(sorted(gateway_ids))
        self._gateway_capacity = float(gateway_capacity_bps)

    # -- rack arithmetic (MultiRackFabric-compatible for hosts) ---------
    @property
    def n_racks(self) -> int:
        """Number of racks hanging off the edge layer."""
        return len(self._racks)

    @property
    def rack_size(self) -> int:
        """Hosts per rack."""
        return self._rack_size

    @property
    def n_hosts(self) -> int:
        """Host nodes (ids below the switch range)."""
        return self._n_hosts

    @property
    def n_edge(self) -> int:
        """Edge-layer switch count."""
        return self._n_edge

    @property
    def n_core(self) -> int:
        """Core-layer switch count."""
        return self._n_core

    def hosts(self) -> range:
        """Host node ids (the traffic endpoints)."""
        return range(self._n_hosts)

    def is_switch(self, node: NodeId) -> bool:
        """True for edge/core switch nodes."""
        self._check_node(node)
        return node >= self._n_hosts

    def rack_of(self, node: NodeId) -> int:
        """The rack a host belongs to; switches are spread round-robin so
        rack-aligned partitions stay balanced and total."""
        self._check_node(node)
        if node < self._n_hosts:
            return node // self._rack_size
        n = self.n_racks
        if node < self._n_hosts + self._n_edge:
            rank = node - self._n_hosts
            return rank * n // max(self._n_edge, 1)
        rank = node - self._n_hosts - self._n_edge
        return rank * n // max(self._n_core, 1)

    def local_id(self, node: NodeId) -> NodeId:
        """A host's id inside its rack."""
        self._check_node(node)
        if node >= self._n_hosts:
            raise TopologyError(f"node {node} is a switch, not a rack host")
        return node % self._rack_size

    def is_gateway_link(self, link_id: LinkId) -> bool:
        """True for rack-edge uplinks and edge-core links."""
        return link_id in self._gateway_link_set

    def gateway_links(self) -> List[Link]:
        """All uplink/core links (both directions), in link-id order."""
        return [self._links[i] for i in self._gateway_link_ids]

    def composed_bisection_bps(self) -> float:
        """Closed-form bisection estimate from the design parameters.

        A balanced host split routes crossing traffic rack->edge->core->
        edge->rack, so the cut is limited by the thinner of the two gateway
        stages available to one half: half the rack uplinks or half the
        edge-core cables (both directions counted, matching
        :func:`repro.topology.bisection.bisection_bandwidth_bps`).
        """
        uplink_cables = sum(
            1 for link in self.gateway_links()
            if link.src < self._n_hosts or link.dst < self._n_hosts
        ) // 2
        core_cables = len(self._gateway_link_ids) // 2 - uplink_cables
        return min(uplink_cables, core_cables) * self._gateway_capacity


@dataclass(frozen=True)
class SynthesizedFabric:
    """One synthesis result: the fabric, its wiring and its cost report."""

    spec: FabricSpec
    topology: Topology
    #: Gateway wiring.  ``flat``/``ring``: MultiRackFabric bridge tuples
    #: ``(rack_a, local_a, rack_b, local_b)``; ``fattree``/``switched``:
    #: global ``(node, switch)`` pairs.
    bridges: Tuple[Tuple[int, ...], ...]
    #: Deterministic figures of merit: switches, cables, ports, cost,
    #: achieved oversubscription, budget verdicts.
    report: Dict[str, Any] = field(default_factory=dict)

    @property
    def fingerprint(self) -> str:
        """Content hash of the generated artifact (not just the problem).

        Covers the design, node/link counts, the exact bridge list and the
        gateway parameters — two independent processes synthesizing the
        same spec must produce identical fingerprints, which is what makes
        campaign caching of synth scenarios sound.
        """
        payload = {
            "design": self.spec.design,
            "n_nodes": self.topology.n_nodes,
            "n_links": self.topology.n_links,
            "bridges": [list(b) for b in self.bridges],
            "rack": self.spec.rack,
            "rack_dims": list(self.spec.rack_dims),
            "bridge_capacity_bps": self.report["gateway_capacity_bps"],
            "bridge_latency_ns": self.spec.bridge_latency_ns,
        }
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def describe(self) -> Dict[str, Any]:
        """JSON-able manifest: spec + report + fingerprints + wiring."""
        return {
            "spec": self.spec.to_dict(),
            "spec_fingerprint": self.spec.fingerprint(),
            "fingerprint": self.fingerprint,
            "report": dict(self.report),
            "bridges": [list(b) for b in self.bridges],
        }


def synthesize(spec: FabricSpec) -> SynthesizedFabric:
    """Generate the fabric described by *spec*, enforcing its budgets.

    Raises :class:`~repro.errors.TopologyError` when no fabric satisfies
    the port, radix, oversubscription or cost budget.
    """
    racks = [_build_rack(spec.rack, spec.rack_dims, spec.capacity_bps)] * spec.n_racks
    rack = racks[0]
    gateway_cap = (
        spec.bridge_capacity_bps
        if spec.bridge_capacity_bps is not None
        else rack.capacity_bps
    )
    if spec.design == "flat":
        fabric = _synthesize_flat(spec, racks, gateway_cap)
    elif spec.design == "ring":
        fabric = _synthesize_ring(spec, racks, gateway_cap)
    elif spec.design == "fattree":
        fabric = _synthesize_fattree(spec, racks, gateway_cap)
    else:
        fabric = _synthesize_switched(spec, racks, gateway_cap)
    report = fabric.report
    report["gateway_capacity_bps"] = float(gateway_cap)
    report["n_nodes"] = fabric.topology.n_nodes
    report["n_links"] = fabric.topology.n_links
    report["n_racks"] = spec.n_racks
    report["rack_size"] = spec.rack_size
    report["cost"] = (
        report["switches"] * spec.switch_cost + report["cables"] * spec.cable_cost
    )
    _enforce_budgets(spec, report)
    return fabric


def _enforce_budgets(spec: FabricSpec, report: Dict[str, Any]) -> None:
    ports = report["gateway_ports_per_rack"]
    if ports > spec.gateway_ports:
        raise TopologyError(
            f"{spec.design}: needs {ports} gateway ports per rack, "
            f"budget is {spec.gateway_ports}"
        )
    achieved = report["oversubscription"]
    if achieved > spec.oversubscription * (1 + 1e-9):
        raise TopologyError(
            f"{spec.design}: achieved oversubscription {achieved:.2f} exceeds "
            f"target {spec.oversubscription:g} — raise the gateway budget or "
            "the target"
        )
    if spec.max_cost is not None and report["cost"] > spec.max_cost:
        raise TopologyError(
            f"{spec.design}: cost {report['cost']:.0f} exceeds budget "
            f"{spec.max_cost:g}"
        )
    report["budget_ok"] = True


def _gateway_locals(rack_size: int, count: int) -> List[int]:
    """Spread *count* gateway attachment points across a rack by stride."""
    stride = max(1, rack_size // count)
    out, used = [], set()
    local = 0
    while len(out) < count:
        while local in used:
            local = (local + 1) % rack_size
        out.append(local)
        used.add(local)
        local = (local + stride) % rack_size
    return out


def _flat_rack_graph(n_racks: int, degree: int, seed: int) -> List[Tuple[int, int]]:
    """A seeded simple connected *degree*-regular graph on *n_racks* vertices.

    Pairing (configuration) model with rejection: stubs are shuffled by a
    derived-seed RNG and paired; draws with self-loops, parallel edges or a
    disconnected result are redrawn.  Deterministic per (n, d, seed).
    """
    if degree >= n_racks:
        raise TopologyError(
            f"flat design needs degree {degree} < racks {n_racks}"
        )
    if (n_racks * degree) % 2 != 0:
        raise TopologyError(
            f"flat design needs an even stub count, got {n_racks} racks x "
            f"degree {degree}"
        )
    # Imported lazily: repro.core pulls in config -> congestion -> topology.
    from ..core.seeds import derive_seed

    rng = random.Random(derive_seed(seed, "synth-flat", n_racks, degree))
    for _ in range(_FLAT_MAX_ATTEMPTS):
        stubs = [r for r in range(n_racks) for _ in range(degree)]
        rng.shuffle(stubs)
        edges = set()
        ok = True
        for i in range(0, len(stubs), 2):
            a, b = stubs[i], stubs[i + 1]
            if a == b or (min(a, b), max(a, b)) in edges:
                ok = False
                break
            edges.add((min(a, b), max(a, b)))
        if not ok:
            continue
        # Connectivity check over the undirected rack graph.
        adj: Dict[int, List[int]] = {r: [] for r in range(n_racks)}
        for a, b in edges:
            adj[a].append(b)
            adj[b].append(a)
        seen = {0}
        frontier = [0]
        while frontier:
            nxt = []
            for r in frontier:
                for s in adj[r]:
                    if s not in seen:
                        seen.add(s)
                        nxt.append(s)
            frontier = nxt
        if len(seen) == n_racks:
            return sorted(edges)
    if degree < 2:
        # A 1-regular rack graph is a perfect matching: disconnected for
        # more than two racks, and the pairing loop handles two.
        raise TopologyError(
            f"flat design: no connected {degree}-regular graph on "
            f"{n_racks} racks exists"
        )
    # Dense pairings (degree close to n_racks) rarely come out simple, so
    # rejection sampling can exhaust its draws even though a graph exists.
    # Fall back to the deterministic circulant graph — ring plus chords at
    # strides 2..degree/2, antipodal matching for odd degree — which is
    # simple and connected for every 2 <= degree < n_racks.
    fallback = set()
    for rack in range(n_racks):
        for stride in range(1, degree // 2 + 1):
            pair = (rack, (rack + stride) % n_racks)
            fallback.add((min(pair), max(pair)))
    if degree % 2:
        for rack in range(n_racks // 2):
            fallback.add((rack, rack + n_racks // 2))
    return sorted(fallback)


def _direct_report(
    spec: FabricSpec, ports_per_rack: int, cables: int, gateway_cap: float
) -> Dict[str, Any]:
    rack = spec.rack_size
    cap = _rack_capacity(spec)
    return {
        "design": spec.design,
        "switches": 0,
        "cables": cables,
        "gateway_ports_per_rack": ports_per_rack,
        "oversubscription": (rack * cap) / (ports_per_rack * gateway_cap),
    }


def _rack_capacity(spec: FabricSpec) -> float:
    if spec.capacity_bps is not None:
        return float(spec.capacity_bps)
    from .base import DEFAULT_CAPACITY_BPS

    return DEFAULT_CAPACITY_BPS


def _synthesize_flat(
    spec: FabricSpec, racks: Sequence[Topology], gateway_cap: float
) -> SynthesizedFabric:
    from ..interrack.topology import MultiRackFabric

    degree = spec.gateway_ports
    rack_edges = _flat_rack_graph(spec.n_racks, degree, spec.seed)
    # Rack r's i-th cable attaches at its i-th strided gateway local.
    locals_of = _gateway_locals(spec.rack_size, degree)
    next_port = [0] * spec.n_racks
    bridges: List[Tuple[int, int, int, int]] = []
    for a, b in rack_edges:
        bridges.append((a, locals_of[next_port[a]], b, locals_of[next_port[b]]))
        next_port[a] += 1
        next_port[b] += 1
    topology = MultiRackFabric(
        racks,
        bridges,
        bridge_capacity_bps=gateway_cap,
        bridge_latency_ns=spec.bridge_latency_ns,
    )
    report = _direct_report(spec, degree, len(bridges), gateway_cap)
    return SynthesizedFabric(spec, topology, tuple(bridges), report)


def _synthesize_ring(
    spec: FabricSpec, racks: Sequence[Topology], gateway_cap: float
) -> SynthesizedFabric:
    from ..interrack.topology import MultiRackFabric

    per_side = spec.gateway_ports // 2 if spec.n_racks > 2 else spec.gateway_ports
    if per_side < 1:
        raise TopologyError(
            "ring design needs a gateway budget of at least 2 ports "
            "(one cable per ring side)"
        )
    locals_of = _gateway_locals(spec.rack_size, per_side)
    bridges: List[Tuple[int, int, int, int]] = []
    for rack_idx in range(spec.n_racks):
        nxt = (rack_idx + 1) % spec.n_racks
        for cable in range(per_side):
            bridges.append((rack_idx, locals_of[cable], nxt, locals_of[cable]))
        if spec.n_racks == 2:
            break
    topology = MultiRackFabric(
        racks,
        bridges,
        bridge_capacity_bps=gateway_cap,
        bridge_latency_ns=spec.bridge_latency_ns,
    )
    ports = per_side if spec.n_racks == 2 else 2 * per_side
    report = _direct_report(spec, ports, len(bridges), gateway_cap)
    return SynthesizedFabric(spec, topology, tuple(bridges), report)


def _synthesize_fattree(
    spec: FabricSpec, racks: Sequence[Topology], gateway_cap: float
) -> SynthesizedFabric:
    """Solnushkin-style two-layer design: enumerate edge-port splits, keep
    the candidates meeting the oversubscription target, take the cheapest."""
    n_uplinks = spec.n_racks * spec.gateway_ports
    rack_oversub = (spec.rack_size * _rack_capacity(spec)) / (
        spec.gateway_ports * gateway_cap
    )
    best = None
    radix = spec.switch_radix
    for down in range(1, radix):
        up = radix - down
        n_edge = math.ceil(n_uplinks / down)
        n_core = math.ceil(n_edge * up / radix)
        # Achieved oversubscription: rack uplink stage times edge stage.
        achieved = rack_oversub * (down / up)
        if achieved > spec.oversubscription * (1 + 1e-9):
            continue
        cables = n_uplinks + n_edge * up
        cost = (n_edge + n_core) * spec.switch_cost + cables * spec.cable_cost
        key = (cost, n_edge + n_core, down)
        if best is None or key < best[0]:
            best = (key, down, up, n_edge, n_core, achieved, cables, cost)
    if best is None:
        raise TopologyError(
            f"fattree: no (down, up) split of a radix-{radix} edge switch "
            f"meets oversubscription {spec.oversubscription:g} for "
            f"{spec.n_racks} racks x {spec.gateway_ports} uplinks"
        )
    _key, down, up, n_edge, n_core, achieved, cables, _cost = best
    n_hosts = spec.n_racks * spec.rack_size
    locals_of = _gateway_locals(spec.rack_size, spec.gateway_ports)
    uplinks: List[Tuple[NodeId, NodeId]] = []
    uplink_no = 0
    for rack_idx in range(spec.n_racks):
        base = rack_idx * spec.rack_size
        for port in range(spec.gateway_ports):
            edge = n_hosts + (uplink_no // down)
            uplinks.append((base + locals_of[port], edge))
            uplink_no += 1
    corelinks: List[Tuple[NodeId, NodeId]] = []
    core_base = n_hosts + n_edge
    for edge_rank in range(n_edge):
        for u in range(up):
            core = core_base + (edge_rank * up + u) % n_core
            pair = (n_hosts + edge_rank, core)
            if pair not in corelinks:  # parallel cables collapse to one link
                corelinks.append(pair)
    topology = FatTreeFabric(
        racks,
        n_edge,
        n_core,
        uplinks,
        corelinks,
        gateway_capacity_bps=gateway_cap,
        gateway_latency_ns=spec.bridge_latency_ns,
    )
    report = {
        "design": "fattree",
        "switches": n_edge + n_core,
        "n_edge": n_edge,
        "n_core": n_core,
        "edge_down_ports": down,
        "edge_up_ports": up,
        "cables": len(uplinks) + len(corelinks),
        "gateway_ports_per_rack": spec.gateway_ports,
        "oversubscription": achieved,
    }
    bridges = tuple(tuple(pair) for pair in uplinks + corelinks)
    return SynthesizedFabric(spec, topology, bridges, report)


def _synthesize_switched(
    spec: FabricSpec, racks: Sequence[Topology], gateway_cap: float
) -> SynthesizedFabric:
    from ..interrack.topology import switched_multirack

    uplinks = spec.gateway_ports
    if spec.n_racks * uplinks > spec.switch_radix:
        raise TopologyError(
            f"switched: {spec.n_racks} racks x {uplinks} uplinks exceed the "
            f"radix-{spec.switch_radix} aggregation switch"
        )
    topology, switch = switched_multirack(
        racks,
        uplinks_per_rack=uplinks,
        switch_capacity_bps=gateway_cap,
        switch_latency_ns=spec.bridge_latency_ns,
    )
    bridges = tuple(
        (link.src, link.dst)
        for link in topology.links
        if link.dst == switch
    )
    report = {
        "design": "switched",
        "switches": 1,
        "cables": len(bridges),
        "gateway_ports_per_rack": uplinks,
        "oversubscription": (spec.rack_size * _rack_capacity(spec))
        / (uplinks * gateway_cap),
    }
    return SynthesizedFabric(spec, topology, bridges, report)
