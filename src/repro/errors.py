"""Exception hierarchy for the R2C2 reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TopologyError(ReproError):
    """Raised for malformed or unsupported topologies.

    Examples include a torus with a dimension smaller than two nodes, a
    request for a link that does not exist, or a node id outside the
    topology's node range.
    """


class RoutingError(ReproError):
    """Raised when a routing protocol cannot produce a path.

    This typically means the source or destination is invalid, the pair is
    disconnected after failures, or a protocol was asked to route on a
    topology it does not support (e.g. dimension-order routing on a graph
    without coordinates).
    """


class CongestionControlError(ReproError):
    """Raised for invalid congestion-control inputs.

    Examples: negative flow weights, a headroom outside ``[0, 1)``, or a flow
    referencing links that are not part of the topology.
    """


class BroadcastError(ReproError):
    """Raised for broadcast-plane failures (unknown tree id, bad FIB)."""


class WireFormatError(ReproError):
    """Raised when encoding or decoding a packet fails.

    Encoding fails for values that do not fit the field widths of the R2C2
    packet formats (e.g. a route longer than 42 hops); decoding fails for
    truncated buffers or checksum mismatches.
    """


class SimulationError(ReproError):
    """Raised for invalid simulator configuration or internal invariant
    violations detected at runtime (e.g. a packet routed to a non-neighbor).
    """


class InvariantViolation(SimulationError):
    """Raised by the runtime invariant auditor (:mod:`repro.validation`).

    Signals that a machine-checked invariant — packet/byte conservation,
    link capacity, FIFO event causality, monotone flow completion — was
    broken during a run.  Subclasses :class:`SimulationError` because every
    violation is, by definition, a simulator-internal inconsistency.
    """


class EmulationError(ReproError):
    """Raised by the Maze emulation platform for configuration errors or
    ring-buffer protocol violations.
    """


class SelectionError(ReproError):
    """Raised by routing-protocol selection heuristics for invalid search
    spaces (e.g. an empty candidate protocol set).
    """


class ExperimentError(ReproError):
    """Raised by the :mod:`repro.experiments` campaign runner.

    Covers malformed scenario/campaign specs, unknown figures or scales,
    and campaigns that exhaust their per-task retry budget in strict mode.
    """


class CampaignInterrupted(ExperimentError):
    """A campaign stopped before finishing every task.

    Raised by the executor when an injected kill fires (crash-simulation
    hooks, ``--max-tasks``) — completed tasks are already persisted in the
    result cache, so a subsequent run resumes where this one stopped.
    """

    def __init__(self, message: str, completed: int = 0, remaining: int = 0):
        super().__init__(message)
        self.completed = completed
        self.remaining = remaining


class ServiceError(ReproError):
    """Raised by the :mod:`repro.service` control-plane daemon.

    Covers snapshot/topology mismatches on restore, malformed service
    configuration, and client RPC failures.
    """
