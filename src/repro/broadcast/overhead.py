"""Analytic broadcast- and control-traffic overhead models.

These closed forms back three of the paper's quantitative claims:

* §3.2: one broadcast in a 512-node rack puts ``511 * 16 ≈ 8 KB`` on the
  wire; announcing a 10 KB flow's start and finish costs 26.66 % relative
  overhead; all-pairs flows generate 681 KB of broadcast traffic per link.
* Figure 9: the fraction of network capacity consumed by broadcasts grows
  linearly with the fraction of bytes carried by small flows and shrinks
  with topology diameter.
* Figure 19: decentralized control traffic is constant in the number of
  concurrent flows, while a centralized (Fastpass-like) controller's grows
  linearly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import BroadcastError
from ..topology.base import Topology

#: Broadcast packets are fixed 16-byte packets (§4.2, Figure 6).
BROADCAST_PACKET_BYTES = 16


def broadcast_bytes_total(n_nodes: int, packet_bytes: int = BROADCAST_PACKET_BYTES) -> int:
    """Total wire bytes of one broadcast: one packet per spanning-tree edge."""
    if n_nodes < 1:
        raise BroadcastError(f"n_nodes must be >= 1, got {n_nodes}")
    return (n_nodes - 1) * packet_bytes


def flow_wire_bytes(flow_bytes: int, avg_hops: float) -> float:
    """Bytes a flow puts on the wire end to end (payload times hop count)."""
    if flow_bytes < 0 or avg_hops <= 0:
        raise BroadcastError("flow_bytes must be >= 0 and avg_hops > 0")
    return flow_bytes * avg_hops


def flow_event_overhead(
    flow_bytes: int,
    n_nodes: int,
    avg_hops: float,
    events_per_flow: int = 2,
    packet_bytes: int = BROADCAST_PACKET_BYTES,
) -> float:
    """Relative overhead of broadcasting a flow's start/finish events.

    For a 10 KB flow in a 512-node 3D torus (average path 6 hops) this is
    the paper's 26.66 % (13.33 % per event).
    """
    data = flow_wire_bytes(flow_bytes, avg_hops)
    if data == 0:
        return float("inf")
    return events_per_flow * broadcast_bytes_total(n_nodes, packet_bytes) / data


def broadcast_capacity_fraction(
    small_byte_fraction: float,
    n_nodes: int,
    avg_hops: float,
    small_flow_bytes: int = 10 * 1000,
    large_flow_bytes: int = 35 * 1000 * 1000,
    events_per_flow: int = 2,
    packet_bytes: int = BROADCAST_PACKET_BYTES,
) -> float:
    """Fraction of network capacity consumed by flow-event broadcasts.

    Models the Figure 9 workload: a share *small_byte_fraction* of all bytes
    travels in small flows, the rest in large ones.  The returned value is
    broadcast wire-bytes divided by total wire-bytes (broadcast + data).
    """
    if not (0.0 <= small_byte_fraction <= 1.0):
        raise BroadcastError(
            f"small_byte_fraction must be in [0, 1], got {small_byte_fraction}"
        )
    if small_flow_bytes <= 0 or large_flow_bytes <= 0:
        raise BroadcastError("flow sizes must be positive")
    # Work per unit byte of application data.
    flows_per_byte = (
        small_byte_fraction / small_flow_bytes
        + (1.0 - small_byte_fraction) / large_flow_bytes
    )
    broadcast = events_per_flow * broadcast_bytes_total(n_nodes, packet_bytes) * flows_per_byte
    data = avg_hops
    return broadcast / (broadcast + data)


def all_pairs_broadcast_bytes_per_link(
    topology: Topology,
    events_per_flow: int = 1,
    packet_bytes: int = BROADCAST_PACKET_BYTES,
) -> float:
    """Average broadcast bytes per link for flows between all node pairs.

    The paper's §3.2 worst case: with 512 nodes, ≈262 K flows produce
    681 KB of broadcast traffic per link (assuming broadcast bytes spread
    evenly across links, which multi-tree load balancing approximates).
    """
    n = topology.n_nodes
    n_flows = n * (n - 1)
    total = n_flows * events_per_flow * broadcast_bytes_total(n, packet_bytes)
    return total / topology.n_links


@dataclass
class ControlTrafficModel:
    """Byte-accounting model for Figure 19 (centralized vs decentralized).

    Attributes:
        n_nodes: Rack size.
        avg_hops: Mean unicast path length (unicast control messages cross
            this many links on average).
        rate_entry_bytes: Bytes per {flow id, rate} pair in a controller's
            rate-update message (4 B id + 4 B rate).
        header_bytes: Fixed header of any control message.
    """

    n_nodes: int
    avg_hops: float
    rate_entry_bytes: int = 8
    header_bytes: int = 8

    def decentralized_bytes_per_event(self) -> float:
        """One flow event, R2C2 style: a single rack-wide broadcast.

        Independent of how many flows are active — the core of the paper's
        argument for decentralization.
        """
        return float(broadcast_bytes_total(self.n_nodes))

    def centralized_bytes_per_event(self, flows_per_server: float) -> float:
        """One flow event under a Fastpass-like centralized controller.

        The source unicasts the event to the controller; the controller then
        unicasts to every flow-sourcing node its new rates (one entry per
        flow that node sources).  Both legs pay the average path length.
        """
        if flows_per_server < 0:
            raise BroadcastError("flows_per_server must be >= 0")
        request = BROADCAST_PACKET_BYTES * self.avg_hops
        per_node_msg = self.header_bytes + self.rate_entry_bytes * flows_per_server
        responses = (self.n_nodes - 1) * per_node_msg * self.avg_hops
        return request + responses

    def ratio(self, flows_per_server: float) -> float:
        """Centralized bytes divided by decentralized bytes per event."""
        return self.centralized_bytes_per_event(flows_per_server) / (
            self.decentralized_bytes_per_event()
        )
