"""The broadcast forwarding information base (paper §3.2).

Every rack node holds a FIB indexed by ``<src-address, tree-id>`` yielding
the set of next-hop nodes a broadcast packet must be forwarded to.  The FIB
is precomputed from the per-source broadcast trees; forwarding is then a
single dictionary lookup per hop, cheap enough for an on-chip
implementation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import BroadcastError
from ..topology.base import Topology
from ..types import NodeId
from .tree import BroadcastTree, build_broadcast_trees


class BroadcastFib:
    """Per-node broadcast forwarding tables for a whole rack.

    Args:
        topology: The rack fabric.
        n_trees: Trees enumerated per source.
        seed: Tie-breaking seed for tree construction (all nodes must agree
            on it, exactly like they agree on the topology).
        telemetry: Optional :class:`~repro.telemetry.Telemetry`; FIB
            installation is accounted as ``broadcast.fib_updates`` (entries
            written, including rebuild overwrites) and the
            ``broadcast.fib_entries`` gauge (entries currently installed).
    """

    def __init__(
        self, topology: Topology, n_trees: int = 4, seed: int = 0, telemetry=None
    ) -> None:
        if n_trees < 1:
            raise BroadcastError(f"need at least one tree per source, got {n_trees}")
        self._topology = topology
        self._n_trees = n_trees
        self._seed = seed
        if telemetry is not None:
            self._ctr_updates = telemetry.metrics.counter("broadcast.fib_updates") or None
            self._gauge_entries = telemetry.metrics.gauge("broadcast.fib_entries") or None
        else:
            self._ctr_updates = None
            self._gauge_entries = None
        self._trees: Dict[Tuple[NodeId, int], BroadcastTree] = {}
        # node -> (src, tree_id) -> next hops
        self._tables: List[Dict[Tuple[NodeId, int], Tuple[NodeId, ...]]] = [
            {} for _ in range(topology.n_nodes)
        ]
        self._build()

    def _build(self) -> None:
        """(Re)compute every tree and install the per-node FIB entries."""
        self._trees.clear()
        for table in self._tables:
            table.clear()
        installed = 0
        for src in self._topology.nodes():
            for tree in build_broadcast_trees(
                self._topology, src, self._n_trees, self._seed
            ):
                self._trees[(src, tree.tree_id)] = tree
                for node in self._topology.nodes():
                    children = tree.children(node)
                    if children:
                        self._tables[node][(src, tree.tree_id)] = children
                        installed += 1
        if self._ctr_updates:
            self._ctr_updates.inc(installed)
            self._gauge_entries.set(
                sum(len(table) for table in self._tables)
            )

    @property
    def n_trees(self) -> int:
        """Trees per source."""
        return self._n_trees

    def tree(self, src: NodeId, tree_id: int) -> BroadcastTree:
        """The tree object for ``(src, tree_id)``."""
        try:
            return self._trees[(src, tree_id)]
        except KeyError:
            raise BroadcastError(f"unknown broadcast tree ({src}, {tree_id})") from None

    def trees_for(self, src: NodeId) -> List[BroadcastTree]:
        """All trees rooted at *src*."""
        return [self.tree(src, i) for i in range(self._n_trees)]

    def next_hops(
        self, node: NodeId, src: NodeId, tree_id: int
    ) -> Tuple[NodeId, ...]:
        """FIB lookup: where *node* forwards a broadcast from *src* on
        *tree_id*.  Empty tuple at leaves."""
        if not (0 <= node < self._topology.n_nodes):
            raise BroadcastError(f"unknown node {node}")
        if (src, tree_id) not in self._trees:
            raise BroadcastError(f"unknown broadcast tree ({src}, {tree_id})")
        return self._tables[node].get((src, tree_id), ())

    def delivery_order(
        self, src: NodeId, tree_id: int
    ) -> List[Tuple[NodeId, NodeId]]:
        """The (forwarder, receiver) hops of one full broadcast, BFS order.

        Useful for simulators and for byte accounting: the number of entries
        is exactly the traffic multiplier of one broadcast packet.
        """
        tree = self.tree(src, tree_id)
        order: List[Tuple[NodeId, NodeId]] = []
        frontier = [src]
        while frontier:
            nxt: List[NodeId] = []
            for node in frontier:
                for child in tree.children(node):
                    order.append((node, child))
                    nxt.append(child)
            frontier = nxt
        return order

    def fib_entry_count(self, node: NodeId) -> int:
        """Number of FIB entries at *node* (memory-footprint checks)."""
        return len(self._tables[node])
