"""Per-source broadcast trees (paper §3.2).

R2C2 broadcasts flow events along shortest-path spanning trees, optimizing
*broadcast time*: every node receives the packet within its shortest-path
distance from the source.  Multiple trees are enumerated per source (BFS
with different tie-breaking) so senders can load-balance broadcast bytes
across links and route around failures.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import BroadcastError
from ..topology.base import Topology
from ..types import LinkId, NodeId


class BroadcastTree:
    """One shortest-path spanning tree rooted at a source node.

    Attributes:
        root: The source node.
        tree_id: Identifier carried in broadcast-packet headers.
        parent: ``parent[node]`` is the node's parent (``None`` at the root
            and for unreachable nodes).
    """

    def __init__(
        self,
        topology: Topology,
        root: NodeId,
        tree_id: int,
        parent: Sequence[Optional[NodeId]],
    ) -> None:
        self._topology = topology
        self.root = root
        self.tree_id = tree_id
        self.parent: Tuple[Optional[NodeId], ...] = tuple(parent)
        children: List[List[NodeId]] = [[] for _ in range(topology.n_nodes)]
        for node, par in enumerate(self.parent):
            if par is not None:
                children[par].append(node)
        self._children: Tuple[Tuple[NodeId, ...], ...] = tuple(
            tuple(c) for c in children
        )

    def children(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Next hops a broadcast packet is forwarded to from *node*."""
        return self._children[node]

    def edges(self) -> List[Tuple[NodeId, NodeId]]:
        """All (parent, child) edges of the tree."""
        return [
            (par, node) for node, par in enumerate(self.parent) if par is not None
        ]

    def edge_links(self) -> List[LinkId]:
        """Link ids the tree uses (for load-balancing accounting)."""
        return [self._topology.link_id(p, c) for p, c in self.edges()]

    def n_edges(self) -> int:
        """Edge count; ``n_nodes - 1`` for a connected topology."""
        return sum(1 for p in self.parent if p is not None)

    def depth(self) -> int:
        """Maximum hops from the root to any covered node (broadcast time)."""
        depth = [0] * len(self.parent)
        best = 0
        # Parents always precede children in BFS construction order is not
        # guaranteed after tie-shuffling, so walk up instead.
        for node, par in enumerate(self.parent):
            if par is None:
                continue
            hops = 0
            cur = node
            while cur != self.root:
                nxt = self.parent[cur]
                if nxt is None:
                    raise BroadcastError(f"orphaned node {cur} in tree {self.tree_id}")
                cur = nxt
                hops += 1
                if hops > len(self.parent):
                    raise BroadcastError("cycle detected in broadcast tree")
            best = max(best, hops)
        return best

    def covers_all(self) -> bool:
        """True if every node other than the root has a parent."""
        return all(
            par is not None for node, par in enumerate(self.parent) if node != self.root
        )

    def is_shortest_path_tree(self) -> bool:
        """Validate the defining property: tree depth equals BFS distance."""
        dist = self._topology.distances_from(self.root)
        for node, par in enumerate(self.parent):
            if par is None:
                continue
            if dist[node] != dist[par] + 1:
                return False
        return True


def build_broadcast_tree(
    topology: Topology, root: NodeId, tree_id: int = 0, seed: int = 0
) -> BroadcastTree:
    """Build one shortest-path tree via BFS with seeded tie-breaking.

    Different ``(tree_id, seed)`` values shuffle which equal-distance parent
    each node attaches to, yielding structurally different trees with the
    same (optimal) depth.
    """
    rng = random.Random((seed << 20) ^ (root << 8) ^ tree_id)
    parent: List[Optional[NodeId]] = [None] * topology.n_nodes
    visited = [False] * topology.n_nodes
    visited[root] = True
    queue = deque([root])
    while queue:
        node = queue.popleft()
        neighbors = list(topology.neighbors(node))
        rng.shuffle(neighbors)
        for nxt in neighbors:
            if not visited[nxt]:
                visited[nxt] = True
                parent[nxt] = node
                queue.append(nxt)
    return BroadcastTree(topology, root, tree_id, parent)


def build_broadcast_trees(
    topology: Topology, root: NodeId, n_trees: int = 4, seed: int = 0
) -> List[BroadcastTree]:
    """Enumerate *n_trees* distinct-ish trees for one source."""
    if n_trees < 1:
        raise BroadcastError(f"need at least one tree, got {n_trees}")
    return [
        build_broadcast_tree(topology, root, tree_id=i, seed=seed)
        for i in range(n_trees)
    ]


class TreeSelector:
    """Sender-side tree choice, balancing broadcast load across links.

    The paper load-balances by rotating among a source's trees and skips
    trees that traverse failed links.  Selection is deterministic given the
    construction seed so tests can reproduce it.
    """

    def __init__(self, trees: Sequence[BroadcastTree]) -> None:
        if not trees:
            raise BroadcastError("TreeSelector needs at least one tree")
        self._trees = list(trees)
        self._next = 0
        self._excluded: set = set()

    @property
    def trees(self) -> List[BroadcastTree]:
        """All candidate trees."""
        return list(self._trees)

    def exclude(self, tree_id: int) -> None:
        """Stop using a tree (e.g. it crosses a failed link)."""
        self._excluded.add(tree_id)
        if all(t.tree_id in self._excluded for t in self._trees):
            raise BroadcastError("all broadcast trees excluded")

    def restore(self, tree_id: int) -> None:
        """Allow a previously excluded tree again."""
        self._excluded.discard(tree_id)

    def choose(self) -> BroadcastTree:
        """Round-robin over non-excluded trees."""
        for _ in range(len(self._trees)):
            tree = self._trees[self._next % len(self._trees)]
            self._next += 1
            if tree.tree_id not in self._excluded:
                return tree
        raise BroadcastError("all broadcast trees excluded")
