"""The flow-event broadcast substrate (paper §3.2).

Broadcast trees are per-source shortest-path spanning trees; every node
holds a :class:`BroadcastFib` indexed by ``<src, tree-id>``.  The analytic
models in :mod:`~repro.broadcast.overhead` back Figures 9 and 19, and
:mod:`~repro.broadcast.reliability` implements the drop/failure handling.
"""

from .fib import BroadcastFib
from .overhead import (
    BROADCAST_PACKET_BYTES,
    ControlTrafficModel,
    all_pairs_broadcast_bytes_per_link,
    broadcast_bytes_total,
    broadcast_capacity_fraction,
    flow_event_overhead,
    flow_wire_bytes,
)
from .reliability import (
    BroadcastForwarderReliability,
    BroadcastSenderReliability,
    DropNotification,
    FailureRecovery,
    PendingBroadcast,
)
from .tree import BroadcastTree, TreeSelector, build_broadcast_tree, build_broadcast_trees

__all__ = [
    "BROADCAST_PACKET_BYTES",
    "BroadcastFib",
    "BroadcastForwarderReliability",
    "BroadcastSenderReliability",
    "BroadcastTree",
    "ControlTrafficModel",
    "DropNotification",
    "FailureRecovery",
    "PendingBroadcast",
    "TreeSelector",
    "all_pairs_broadcast_bytes_per_link",
    "broadcast_bytes_total",
    "broadcast_capacity_fraction",
    "flow_event_overhead",
    "flow_wire_bytes",
    "build_broadcast_tree",
    "build_broadcast_trees",
]
