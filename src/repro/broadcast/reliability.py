"""Broadcast reliability bookkeeping (paper §3.2, "Failures").

Broadcast packets can be corrupted (caught by the checksum), dropped at a
congested intermediate node (the dropper notifies the sender, who
retransmits), or lost to link/node failures (detected by topology discovery,
after which every node re-announces all of its ongoing flows).

This module provides the sender- and forwarder-side state machines; the
simulator and the core node drive them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import BroadcastError
from ..types import NodeId


@dataclass
class PendingBroadcast:
    """A broadcast awaiting confidence of delivery.

    R2C2 broadcasts are not acknowledged; the only failure signal is an
    explicit drop notification.  We therefore keep a small replay buffer of
    recently sent broadcasts keyed by sequence number so a drop notification
    can be matched to its payload.
    """

    seq: int
    payload: bytes
    tree_id: int
    retransmits: int = 0


class BroadcastSenderReliability:
    """Sender-side replay buffer and retransmit policy."""

    def __init__(self, replay_window: int = 1024, max_retransmits: int = 8) -> None:
        if replay_window < 1:
            raise BroadcastError("replay_window must be >= 1")
        self._window = replay_window
        self._max_retransmits = max_retransmits
        self._pending: Dict[int, PendingBroadcast] = {}
        self._next_seq = 0

    def register(self, payload: bytes, tree_id: int) -> int:
        """Record an outgoing broadcast; returns its sequence number."""
        seq = self._next_seq
        self._next_seq += 1
        self._pending[seq] = PendingBroadcast(seq, payload, tree_id)
        # Evict the oldest entries beyond the replay window.
        while len(self._pending) > self._window:
            oldest = min(self._pending)
            del self._pending[oldest]
        return seq

    def on_drop_notification(self, seq: int) -> Optional[PendingBroadcast]:
        """Handle a drop notification from a forwarding node.

        Returns the broadcast to retransmit, or ``None`` if it aged out of
        the replay buffer or exceeded the retransmit budget (at which point
        the periodic re-announce of ongoing flows is the safety net).
        """
        entry = self._pending.get(seq)
        if entry is None:
            return None
        entry.retransmits += 1
        if entry.retransmits > self._max_retransmits:
            del self._pending[seq]
            return None
        return entry

    def acknowledge_window(self, up_to_seq: int) -> None:
        """Drop replay state for broadcasts up to *up_to_seq* (inclusive)."""
        for seq in [s for s in self._pending if s <= up_to_seq]:
            del self._pending[seq]

    def pending_count(self) -> int:
        """Broadcasts currently held in the replay buffer."""
        return len(self._pending)


@dataclass
class DropNotification:
    """A forwarder telling a broadcast's source about a queue-overflow drop."""

    dropped_at: NodeId
    source: NodeId
    seq: int


class BroadcastForwarderReliability:
    """Forwarder-side duties: verify checksums, report drops."""

    def __init__(self, node: NodeId) -> None:
        self._node = node
        self.drops_reported = 0
        self.corruptions_detected = 0

    def on_queue_overflow(self, source: NodeId, seq: int) -> DropNotification:
        """Called when this node had to drop a broadcast packet."""
        self.drops_reported += 1
        return DropNotification(dropped_at=self._node, source=source, seq=seq)

    def on_corrupt_packet(self) -> None:
        """Called when a checksum failed; the packet is discarded.

        Corrupted broadcasts are *not* reported (the header may be garbage);
        recovery relies on the failure-path re-announce.
        """
        self.corruptions_detected += 1


class FailureRecovery:
    """Rack-wide failure handling: re-announce all ongoing flows.

    Topology discovery (assumed, as in the paper, to exist for routing
    anyway) reports failed links/nodes; each node then re-broadcasts its
    ongoing flows so tables rebuilt after the event converge.  The paper
    notes this is cheap because failures are rare (≈0.3 faults/year/CPU
    [43] — under two per day for a 512-node rack with four CPUs each).
    """

    def __init__(self) -> None:
        self._failed_links: Set[Tuple[NodeId, NodeId]] = set()
        self._failed_nodes: Set[NodeId] = set()
        self.reannounce_count = 0

    @property
    def failed_links(self) -> Set[Tuple[NodeId, NodeId]]:
        """Currently known failed directed links."""
        return set(self._failed_links)

    @property
    def failed_nodes(self) -> Set[NodeId]:
        """Currently known failed nodes."""
        return set(self._failed_nodes)

    def on_link_failure(self, src: NodeId, dst: NodeId) -> bool:
        """Record a failed link; returns True if it is news."""
        if (src, dst) in self._failed_links:
            return False
        self._failed_links.add((src, dst))
        return True

    def on_node_failure(self, node: NodeId) -> bool:
        """Record a failed node; returns True if it is news."""
        if node in self._failed_nodes:
            return False
        self._failed_nodes.add(node)
        return True

    def on_recovery(self, src: NodeId = None, dst: NodeId = None, node: NodeId = None) -> None:
        """Clear failure state for a repaired link or node."""
        if node is not None:
            self._failed_nodes.discard(node)
        if src is not None and dst is not None:
            self._failed_links.discard((src, dst))

    def flows_to_reannounce(self, local_flows) -> List:
        """All local ongoing flows, to be re-broadcast after a failure."""
        self.reannounce_count += 1
        return list(local_flows)

    def expected_failures_per_day(
        self, n_nodes: int, cpus_per_node: int = 4, faults_per_cpu_year: float = 0.3
    ) -> float:
        """The paper's back-of-envelope failure-rate estimate."""
        return n_nodes * cpus_per_node * faults_per_cpu_year / 365.0
