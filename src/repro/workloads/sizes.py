"""Flow-size distributions (paper §5.2).

The paper's simulations draw flow sizes "from a Pareto distribution with
shape parameter 1.05 and mean 100 KB", producing the heavy-tailed mix where
95 % of flows are under 100 KB but most bytes travel in large flows.  The
broadcast-overhead analysis additionally references the VL2 data-mining
workload [25] (80 % of flows under 10 KB, 95 % of bytes in flows over
35 MB), which :class:`EmpiricalSizes` can approximate from CDF points.
"""

from __future__ import annotations

import bisect
import random
from abc import ABC, abstractmethod
from typing import List, Sequence, Tuple

from ..errors import ReproError


class FlowSizeDistribution(ABC):
    """Samples flow sizes in bytes."""

    @abstractmethod
    def sample(self, rng: random.Random) -> int:
        """Draw one flow size (bytes, >= 1)."""

    def sample_many(self, rng: random.Random, count: int) -> List[int]:
        """Draw *count* sizes."""
        return [self.sample(rng) for _ in range(count)]


class FixedSize(FlowSizeDistribution):
    """Every flow has the same size (cross-validation workloads, Fig. 7)."""

    def __init__(self, size_bytes: int) -> None:
        if size_bytes < 1:
            raise ReproError(f"flow size must be >= 1 byte, got {size_bytes}")
        self.size_bytes = size_bytes

    def sample(self, rng: random.Random) -> int:
        return self.size_bytes


class ParetoSizes(FlowSizeDistribution):
    """Pareto(shape, mean) flow sizes, the paper's default workload.

    The scale parameter is derived from the requested mean:
    ``x_min = mean * (shape - 1) / shape`` (finite for shape > 1).  An
    optional cap truncates the extreme tail so a single flow cannot dominate
    a finite simulation; the paper's runs are finite too, so truncation at a
    large multiple of the mean preserves the reported statistics.
    """

    def __init__(
        self,
        mean_bytes: float = 100 * 1024,
        shape: float = 1.05,
        cap_bytes: int = None,
    ) -> None:
        if shape <= 1.0:
            raise ReproError(f"Pareto shape must be > 1 for a finite mean, got {shape}")
        if mean_bytes <= 0:
            raise ReproError(f"mean must be positive, got {mean_bytes}")
        self.shape = shape
        self.mean_bytes = mean_bytes
        self.x_min = mean_bytes * (shape - 1.0) / shape
        if self.x_min < 1.0:
            raise ReproError(
                f"mean {mean_bytes} with shape {shape} gives sub-byte minimum size"
            )
        self.cap_bytes = cap_bytes

    def sample(self, rng: random.Random) -> int:
        u = rng.random()
        while u <= 0.0:
            u = rng.random()
        size = self.x_min / (u ** (1.0 / self.shape))
        if self.cap_bytes is not None:
            size = min(size, self.cap_bytes)
        return max(1, int(size))

    def fraction_below(self, size_bytes: float) -> float:
        """Analytic CDF — used to check the "95 % under 100 KB" claim."""
        if size_bytes <= self.x_min:
            return 0.0
        return 1.0 - (self.x_min / size_bytes) ** self.shape


class EmpiricalSizes(FlowSizeDistribution):
    """Piecewise-linear inverse-CDF sampling from (size, cdf) points.

    Suitable for approximating published workload CDFs such as the VL2
    data-mining distribution the paper cites.
    """

    #: A coarse approximation of the VL2 data-mining flow-size CDF [25]:
    #: 80 % of flows under 10 KB, ~96 % under 35 MB, tail to 1 GB.
    DATA_MINING_POINTS: Sequence[Tuple[int, float]] = (
        (100, 0.0),
        (1_000, 0.50),
        (10_000, 0.80),
        (1_000_000, 0.95),
        (35_000_000, 0.964),
        (100_000_000, 0.99),
        (1_000_000_000, 1.0),
    )

    def __init__(self, points: Sequence[Tuple[int, float]]) -> None:
        if len(points) < 2:
            raise ReproError("need at least two CDF points")
        sizes = [p[0] for p in points]
        cdf = [p[1] for p in points]
        if sorted(sizes) != list(sizes) or sorted(cdf) != list(cdf):
            raise ReproError("CDF points must be sorted in size and probability")
        if cdf[-1] != 1.0:
            raise ReproError("last CDF point must have probability 1.0")
        if any(s < 1 for s in sizes):
            raise ReproError("flow sizes must be >= 1 byte")
        self._sizes = list(sizes)
        self._cdf = list(cdf)

    @classmethod
    def data_mining(cls) -> "EmpiricalSizes":
        """The VL2-style data-mining workload approximation."""
        return cls(cls.DATA_MINING_POINTS)

    def sample(self, rng: random.Random) -> int:
        u = rng.random()
        i = bisect.bisect_left(self._cdf, u)
        if i == 0:
            return self._sizes[0]
        lo_p, hi_p = self._cdf[i - 1], self._cdf[i]
        lo_s, hi_s = self._sizes[i - 1], self._sizes[i]
        if hi_p == lo_p:
            return hi_s
        frac = (u - lo_p) / (hi_p - lo_p)
        # Interpolate in log-size space: flow sizes span seven decades.
        import math

        log_size = math.log(lo_s) + frac * (math.log(hi_s) - math.log(lo_s))
        return max(1, int(math.exp(log_size)))
