"""Exact worst-case permutation traffic for oblivious routing.

The Figure 2 table's last row reports each algorithm's throughput on *its
own* worst-case pattern.  For oblivious routing functions (all four studied
protocols qualify — their path distributions do not depend on load) the
worst-case permutation can be found exactly with the method of Towles &
Dally: for each channel, the permutation maximizing that channel's load is a
maximum-weight bipartite matching with weights γ_c(s, d), the expected load
pair (s, d) places on channel c per unit rate.  Taking the maximum over
channels yields the worst-case channel load, whose reciprocal is the
worst-case throughput.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from ..routing.base import RoutingProtocol
from ..topology.base import Topology
from ..types import NodeId
from .patterns import PermutationPattern


def channel_pair_loads(protocol: RoutingProtocol) -> np.ndarray:
    """γ[s, d, c]: expected load on channel c per unit of (s, d) traffic.

    Shape ``(n, n, n_links)``; the diagonal (s == d) is zero.  This is dense
    and intended for the modest topologies the worst-case search runs on
    (64-node Figure 2 scale).
    """
    topo = protocol.topology
    n = topo.n_nodes
    gamma = np.zeros((n, n, topo.n_links), dtype=np.float64)
    for src in topo.nodes():
        for dst in topo.nodes():
            if src == dst:
                continue
            for link, weight in protocol.link_weights(src, dst).items():
                gamma[src, dst, link] = weight
    return gamma


def worst_case_permutation(
    protocol: RoutingProtocol,
) -> Tuple[Dict[NodeId, NodeId], float]:
    """The adversarial permutation and its max channel load for *protocol*.

    Returns ``(permutation, worst_load)`` where *worst_load* is the largest
    per-unit-injection channel load any permutation can induce.  The
    saturation throughput on that pattern is ``capacity / worst_load``.
    """
    topo = protocol.topology
    gamma = channel_pair_loads(protocol)
    worst_load = 0.0
    worst_perm: Dict[NodeId, NodeId] = {}
    for link in range(topo.n_links):
        weights = gamma[:, :, link]
        if weights.max() <= 0:
            continue
        # Maximum-weight assignment; linear_sum_assignment minimizes, so
        # negate.  Self-pairs have weight zero and act as "node stays idle".
        rows, cols = linear_sum_assignment(-weights)
        load = float(weights[rows, cols].sum())
        if load > worst_load:
            worst_load = load
            worst_perm = {int(s): int(d) for s, d in zip(rows, cols) if s != d}
    return worst_perm, worst_load


def worst_case_pattern(protocol: RoutingProtocol) -> PermutationPattern:
    """The worst-case permutation wrapped as a traffic pattern."""
    perm, _ = worst_case_permutation(protocol)
    return PermutationPattern(perm, name=f"worst-case({protocol.name})")


def worst_case_throughput(protocol: RoutingProtocol) -> float:
    """Worst-case saturation throughput as a fraction of link capacity.

    This is the figure the table's last row reports (e.g. 0.5 for VLB on
    any pattern, ≈0.21 for minimal spraying on an 8-ary 2-cube).
    """
    _, worst_load = worst_case_permutation(protocol)
    if worst_load <= 0:
        return float("inf")
    return 1.0 / worst_load
