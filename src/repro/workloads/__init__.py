"""Workload generation: traffic patterns, sizes, arrivals, flow traces."""

from .arrivals import ArrivalProcess, BurstArrivals, DeterministicArrivals, PoissonArrivals
from .generator import (
    FlowArrival,
    permutation_load_trace,
    poisson_trace,
    trace_from_matrix,
    uniform_random_pair,
)
from .patterns import (
    COMPOSED_PATTERNS,
    STANDARD_PATTERNS,
    BitComplementPattern,
    BitReversePattern,
    NearestNeighborPattern,
    PermutationPattern,
    RackShiftPattern,
    TornadoPattern,
    TrafficMatrix,
    TrafficPattern,
    TransposePattern,
    UniformPattern,
)
from .sizes import EmpiricalSizes, FixedSize, FlowSizeDistribution, ParetoSizes
from .worstcase import (
    channel_pair_loads,
    worst_case_pattern,
    worst_case_permutation,
    worst_case_throughput,
)

__all__ = [
    "ArrivalProcess",
    "BitComplementPattern",
    "BitReversePattern",
    "BurstArrivals",
    "COMPOSED_PATTERNS",
    "DeterministicArrivals",
    "EmpiricalSizes",
    "FixedSize",
    "FlowArrival",
    "FlowSizeDistribution",
    "NearestNeighborPattern",
    "ParetoSizes",
    "PermutationPattern",
    "PoissonArrivals",
    "RackShiftPattern",
    "STANDARD_PATTERNS",
    "TornadoPattern",
    "TrafficMatrix",
    "TrafficPattern",
    "TransposePattern",
    "UniformPattern",
    "channel_pair_loads",
    "permutation_load_trace",
    "poisson_trace",
    "trace_from_matrix",
    "uniform_random_pair",
    "worst_case_pattern",
    "worst_case_permutation",
    "worst_case_throughput",
]
