"""Classic interconnection-network traffic patterns (paper Figure 2).

A :class:`TrafficPattern` maps a topology to a *traffic matrix*: for every
source, how its unit injection rate is split across destinations.  The
patterns here are the standard benchmark set from Dally & Towles [20] that
the Figure 2 table evaluates: uniform, nearest neighbour, bit complement,
transpose and tornado (worst-case patterns are computed, not fixed — see
:mod:`~repro.workloads.worstcase`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Tuple

from ..errors import ReproError
from ..topology.base import Topology
from ..types import NodeId

#: A traffic matrix: ``{(src, dst): fraction}`` with per-source fractions
#: summing to at most one (a source's total injection rate is normalized).
TrafficMatrix = Dict[Tuple[NodeId, NodeId], float]


class TrafficPattern(ABC):
    """A named mapping from topology to normalized traffic matrix."""

    name: str = "abstract"

    @abstractmethod
    def matrix(self, topology: Topology) -> TrafficMatrix:
        """The traffic matrix of this pattern on *topology*."""

    def pairs(self, topology: Topology) -> List[Tuple[NodeId, NodeId]]:
        """The communicating pairs (matrix support)."""
        return [pair for pair, frac in self.matrix(topology).items() if frac > 0]

    def validate(self, topology: Topology) -> None:
        """Raise if per-source fractions exceed one or are negative."""
        per_source: Dict[NodeId, float] = {}
        for (src, dst), frac in self.matrix(topology).items():
            if frac < 0:
                raise ReproError(f"negative traffic fraction for ({src}, {dst})")
            if src == dst and frac > 0:
                raise ReproError(f"self-traffic for node {src}")
            per_source[src] = per_source.get(src, 0.0) + frac
        for src, total in per_source.items():
            if total > 1.0 + 1e-9:
                raise ReproError(f"node {src} injects {total} > 1.0")


def _require_dims(topology: Topology, pattern: str) -> Tuple[int, ...]:
    dims = topology.dims
    if dims is None:
        raise ReproError(f"{pattern} traffic needs a coordinate topology")
    return dims


class UniformPattern(TrafficPattern):
    """Every source spreads its injection evenly over all other nodes."""

    name = "uniform"

    def matrix(self, topology: Topology) -> TrafficMatrix:
        n = topology.n_nodes
        if n < 2:
            return {}
        frac = 1.0 / (n - 1)
        return {
            (src, dst): frac
            for src in topology.nodes()
            for dst in topology.nodes()
            if src != dst
        }


class NearestNeighborPattern(TrafficPattern):
    """Each node splits its injection evenly over its topological neighbors.

    On an 8-ary 2-cube every node sends a quarter of its traffic one hop in
    each of the four directions, which is how minimal routing reaches the
    table's throughput of 4x capacity.
    """

    name = "nearest-neighbor"

    def matrix(self, topology: Topology) -> TrafficMatrix:
        out: TrafficMatrix = {}
        for src in topology.nodes():
            neighbors = topology.neighbors(src)
            if not neighbors:
                continue
            frac = 1.0 / len(neighbors)
            for dst in neighbors:
                out[(src, dst)] = out.get((src, dst), 0.0) + frac
        return out


class BitComplementPattern(TrafficPattern):
    """``dst_i = (k_i - 1) - src_i`` in every dimension.

    For power-of-two radices this complements every address bit — the
    classic adversary for dimension-order routing on meshes.
    """

    name = "bit-complement"

    def matrix(self, topology: Topology) -> TrafficMatrix:
        dims = _require_dims(topology, self.name)
        out: TrafficMatrix = {}
        for src in topology.nodes():
            coords = topology.coordinates(src)
            dst = topology.node_at([k - 1 - c for c, k in zip(coords, dims)])
            if dst != src:
                out[(src, dst)] = 1.0
        return out


class TransposePattern(TrafficPattern):
    """Coordinates reversed: ``(x, y) -> (y, x)`` (matrix-transpose traffic).

    Requires all dimensions to have equal radix.
    """

    name = "transpose"

    def matrix(self, topology: Topology) -> TrafficMatrix:
        dims = _require_dims(topology, self.name)
        if len(set(dims)) != 1:
            raise ReproError("transpose traffic needs equal radix in all dimensions")
        out: TrafficMatrix = {}
        for src in topology.nodes():
            coords = topology.coordinates(src)
            dst = topology.node_at(tuple(reversed(coords)))
            if dst != src:
                out[(src, dst)] = 1.0
        return out


class TornadoPattern(TrafficPattern):
    """``dst = src + (ceil(k/2) - 1)`` around the first dimension's ring.

    All traffic circulates the same way around the ring, defeating any
    routing that balances only between the two ring directions.
    """

    name = "tornado"

    def matrix(self, topology: Topology) -> TrafficMatrix:
        dims = _require_dims(topology, self.name)
        k = dims[0]
        shift = (k + 1) // 2 - 1
        out: TrafficMatrix = {}
        for src in topology.nodes():
            coords = list(topology.coordinates(src))
            coords[0] = (coords[0] + shift) % k
            dst = topology.node_at(coords)
            if dst != src:
                out[(src, dst)] = 1.0
        return out


class BitReversePattern(TrafficPattern):
    """Destination address is the bit-reversal of the source address.

    Defined for topologies whose node count is a power of two; a classic
    FFT-communication pattern.
    """

    name = "bit-reverse"

    def matrix(self, topology: Topology) -> TrafficMatrix:
        n = topology.n_nodes
        bits = n.bit_length() - 1
        if (1 << bits) != n:
            raise ReproError("bit-reverse traffic needs a power-of-two node count")
        out: TrafficMatrix = {}
        for src in topology.nodes():
            dst = int(format(src, f"0{bits}b")[::-1], 2)
            if dst != src:
                out[(src, dst)] = 1.0
        return out


class RackShiftPattern(TrafficPattern):
    """Every host sends to its same-local-id peer in the next rack.

    The multi-rack analogue of tornado traffic: all load crosses rack
    boundaries in the same rotational direction, stressing the gateway tier
    of composed fabrics (see :mod:`repro.topology.synth`).  Requires a
    topology exposing ``rack_of``/``n_racks``/``rack_size``; switches of a
    fat-tree composition (ids at or above ``n_hosts``) neither send nor
    receive.  The matrix support is O(N) — one pair per host — which keeps
    Fig. 2-style analysis feasible at 10k nodes where uniform's O(N²)
    support is not.
    """

    name = "rack-shift"

    def matrix(self, topology: Topology) -> TrafficMatrix:
        n_racks = getattr(topology, "n_racks", None)
        rack_size = getattr(topology, "rack_size", None)
        if n_racks is None or rack_size is None:
            raise ReproError("rack-shift traffic needs a multi-rack fabric")
        n_hosts = getattr(topology, "n_hosts", topology.n_nodes)
        out: TrafficMatrix = {}
        for src in range(n_hosts):
            rack, local = divmod(src, rack_size)
            dst = ((rack + 1) % n_racks) * rack_size + local
            if dst != src:
                out[(src, dst)] = 1.0
        return out


class PermutationPattern(TrafficPattern):
    """An explicit permutation traffic matrix (e.g. from worst-case search)."""

    name = "permutation"

    def __init__(self, mapping: Dict[NodeId, NodeId], name: str = "permutation") -> None:
        self.name = name
        self._mapping = dict(mapping)

    def matrix(self, topology: Topology) -> TrafficMatrix:
        out: TrafficMatrix = {}
        for src, dst in self._mapping.items():
            if not (0 <= src < topology.n_nodes and 0 <= dst < topology.n_nodes):
                raise ReproError(f"pair ({src}, {dst}) outside topology")
            if src != dst:
                out[(src, dst)] = 1.0
        return out


#: The Figure 2 benchmark patterns, by name.
STANDARD_PATTERNS = {
    pattern.name: pattern
    for pattern in (
        UniformPattern(),
        NearestNeighborPattern(),
        BitComplementPattern(),
        TransposePattern(),
        TornadoPattern(),
        BitReversePattern(),
    )
}

#: Patterns defined only on composed multi-rack fabrics (kept out of
#: STANDARD_PATTERNS, whose patterns all apply to single-rack topologies).
COMPOSED_PATTERNS = {pattern.name: pattern for pattern in (RackShiftPattern(),)}
