"""Flow-trace generation: the workloads the evaluation section runs.

A *flow trace* is a time-ordered list of :class:`FlowArrival` records.  The
two workload families of §5:

* :func:`poisson_trace` — Poisson arrivals, random endpoint pairs, sizes
  from a distribution (Figures 7, 10-17);
* :func:`permutation_load_trace` — a fraction ``L`` of nodes each start one
  long-running flow to a distinct destination (Figure 18).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.seeds import derive_seed
from ..errors import ReproError
from ..topology.base import Topology
from ..types import FlowId, NodeId
from .arrivals import ArrivalProcess, PoissonArrivals
from .sizes import FlowSizeDistribution, ParetoSizes


@dataclass(frozen=True)
class FlowArrival:
    """One flow in a trace.

    ``app_rate_bps`` marks a host-limited flow (§3.3.2): the application
    produces bytes at that rate, so the flow can never use more — the
    demand-estimation machinery detects this and frees the difference.
    ``None`` means network-limited (all bytes available at start).
    """

    flow_id: FlowId
    src: NodeId
    dst: NodeId
    size_bytes: int
    start_ns: int
    protocol: str = "rps"
    weight: float = 1.0
    priority: int = 0
    tenant: Optional[str] = None
    app_rate_bps: Optional[float] = None


def uniform_random_pair(topology: Topology, rng: random.Random) -> Tuple[NodeId, NodeId]:
    """A uniformly random ordered pair of distinct nodes."""
    n = topology.n_nodes
    if n < 2:
        raise ReproError("need at least two nodes for traffic")
    src = rng.randrange(n)
    dst = rng.randrange(n - 1)
    if dst >= src:
        dst += 1
    return src, dst


def poisson_trace(
    topology: Topology,
    n_flows: int,
    mean_interarrival_ns: float,
    sizes: Optional[FlowSizeDistribution] = None,
    arrivals: Optional[ArrivalProcess] = None,
    protocol: str = "rps",
    seed: int = 0,
    first_flow_id: int = 0,
    seed_parts: Sequence = (),
) -> List[FlowArrival]:
    """The paper's default synthetic workload (§5.2).

    Poisson arrivals with the given mean inter-arrival time, uniformly
    random endpoints, Pareto(1.05, 100 KB) sizes unless overridden.

    ``seed_parts`` names a derived substream of *seed* via
    :func:`repro.core.derive_seed` — campaign tasks pass their task key so
    every sweep cell draws an independent, cross-process-stable trace.
    Empty parts (the default) keep the exact historical stream of *seed*.
    """
    if n_flows < 0:
        raise ReproError(f"n_flows must be >= 0, got {n_flows}")
    rng = random.Random(derive_seed(seed, *seed_parts))
    sizes = sizes if sizes is not None else ParetoSizes()
    arrivals = arrivals if arrivals is not None else PoissonArrivals(mean_interarrival_ns)
    trace: List[FlowArrival] = []
    times = arrivals.first_n(rng, n_flows)
    for i, start_ns in enumerate(times):
        src, dst = uniform_random_pair(topology, rng)
        trace.append(
            FlowArrival(
                flow_id=first_flow_id + i,
                src=src,
                dst=dst,
                size_bytes=sizes.sample(rng),
                start_ns=start_ns,
                protocol=protocol,
            )
        )
    return trace


def permutation_load_trace(
    topology: Topology,
    load: float,
    size_bytes: int = 1 << 30,
    protocol: str = "rps",
    seed: int = 0,
    start_ns: int = 0,
    seed_parts: Sequence = (),
) -> List[FlowArrival]:
    """Figure 18's workload: a fraction *load* of nodes each source one
    long-running flow to a random distinct node, such that every node is
    the source and destination of at most one flow.

    ``seed_parts`` selects a derived substream of *seed* (see
    :func:`poisson_trace`).
    """
    if not (0.0 <= load <= 1.0):
        raise ReproError(f"load must be in [0, 1], got {load}")
    rng = random.Random(derive_seed(seed, *seed_parts))
    n = topology.n_nodes
    n_flows = int(round(load * n))
    sources = rng.sample(range(n), n_flows)
    # Destinations: a permutation of a random node subset avoiding
    # self-pairs, so every node receives at most one flow.
    destinations = rng.sample(range(n), n_flows)
    for i in range(n_flows):
        if destinations[i] == sources[i]:
            j = (i + 1) % n_flows
            destinations[i], destinations[j] = destinations[j], destinations[i]
    trace = []
    for i, (src, dst) in enumerate(zip(sources, destinations)):
        if src == dst:
            # Possible only when n_flows == 1; redraw the destination.
            dst = (src + 1) % n
        trace.append(
            FlowArrival(
                flow_id=i,
                src=src,
                dst=dst,
                size_bytes=size_bytes,
                start_ns=start_ns,
                protocol=protocol,
            )
        )
    return trace


def trace_from_matrix(
    topology: Topology,
    matrix,
    size_bytes: int = 1 << 30,
    protocol: str = "rps",
    start_ns: int = 0,
) -> List[FlowArrival]:
    """One long-running flow per traffic-matrix pair, weighted by the
    matrix fraction — bridges the Figure 2 patterns into flow traces."""
    trace = []
    for i, ((src, dst), frac) in enumerate(sorted(matrix.items())):
        if frac <= 0:
            continue
        trace.append(
            FlowArrival(
                flow_id=i,
                src=src,
                dst=dst,
                size_bytes=size_bytes,
                start_ns=start_ns,
                protocol=protocol,
                weight=frac,
            )
        )
    return trace
