"""Flow arrival processes (paper §5.2: Poisson arrivals).

The simulations assume Poisson flow arrivals with mean inter-arrival times
swept from 100 ns (the stress case, ~10^10 flows/s rack-wide) to 100 µs.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import Iterator

from ..errors import ReproError


class ArrivalProcess(ABC):
    """Generates a monotonically increasing sequence of arrival times."""

    @abstractmethod
    def arrival_times_ns(self, rng: random.Random, start_ns: int = 0) -> Iterator[int]:
        """Yield absolute arrival times in nanoseconds, forever."""

    def first_n(self, rng: random.Random, count: int, start_ns: int = 0) -> list:
        """The first *count* arrival times."""
        out = []
        for t in self.arrival_times_ns(rng, start_ns):
            out.append(t)
            if len(out) == count:
                break
        return out


class PoissonArrivals(ArrivalProcess):
    """Exponential inter-arrival gaps with the given mean."""

    def __init__(self, mean_interarrival_ns: float) -> None:
        if mean_interarrival_ns <= 0:
            raise ReproError(
                f"mean inter-arrival must be positive, got {mean_interarrival_ns}"
            )
        self.mean_interarrival_ns = mean_interarrival_ns

    def arrival_times_ns(self, rng: random.Random, start_ns: int = 0) -> Iterator[int]:
        now = float(start_ns)
        while True:
            u = rng.random()
            while u <= 0.0:
                u = rng.random()
            now += -self.mean_interarrival_ns * math.log(u)
            yield int(now)


class DeterministicArrivals(ArrivalProcess):
    """Fixed inter-arrival gaps (useful for reproducible unit tests)."""

    def __init__(self, interarrival_ns: int) -> None:
        if interarrival_ns <= 0:
            raise ReproError(f"inter-arrival must be positive, got {interarrival_ns}")
        self.interarrival_ns = interarrival_ns

    def arrival_times_ns(self, rng: random.Random, start_ns: int = 0) -> Iterator[int]:
        now = start_ns
        while True:
            now += self.interarrival_ns
            yield now


class BurstArrivals(ArrivalProcess):
    """Bursts of *burst_size* back-to-back arrivals, Poisson between bursts.

    Used by failure-injection and queue-stress tests; the paper repeatedly
    emphasizes "very bursty workloads".
    """

    def __init__(self, mean_burst_gap_ns: float, burst_size: int) -> None:
        if mean_burst_gap_ns <= 0 or burst_size < 1:
            raise ReproError("burst gap must be positive and burst size >= 1")
        self.mean_burst_gap_ns = mean_burst_gap_ns
        self.burst_size = burst_size

    def arrival_times_ns(self, rng: random.Random, start_ns: int = 0) -> Iterator[int]:
        now = float(start_ns)
        while True:
            u = rng.random()
            while u <= 0.0:
                u = rng.random()
            now += -self.mean_burst_gap_ns * math.log(u)
            for _ in range(self.burst_size):
                yield int(now)
