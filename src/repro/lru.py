"""A small bounded LRU mapping used by the performance-critical caches.

The allocation memo shared by per-node controllers and the
:class:`~repro.congestion.linkweights.WeightProvider` level-matrix cache
both need the same thing: a dict with an upper bound on entries, where a
*hit* refreshes an entry's position and eviction removes the least recently
used one.  ``functools.lru_cache`` does not fit (the key is computed by the
caller and entries are inserted explicitly), so this module provides a tiny
mapping built on ``OrderedDict``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Iterator, Optional


class BoundedLru:
    """A mapping bounded to *capacity* entries with LRU eviction.

    ``get`` and ``__getitem__`` count as uses (move-to-end); inserting past
    capacity evicts the least recently used entry.  The interface is the
    subset of ``dict`` the caches actually exercise.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._data: "OrderedDict[Any, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def capacity(self) -> int:
        """Maximum number of entries retained."""
        return self._capacity

    def get(self, key, default=None):
        """Return the value for *key* (refreshing it) or *default*."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def __getitem__(self, key):
        value = self.get(key, _SENTINEL)
        if value is _SENTINEL:
            raise KeyError(key)
        return value

    def __setitem__(self, key, value) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self._capacity:
            self._data.popitem(last=False)

    def __contains__(self, key) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator:
        return iter(self._data)

    def pop(self, key, default=None):
        """Remove *key* and return its value (or *default*)."""
        return self._data.pop(key, default)

    def clear(self) -> None:
        """Drop every entry (the hit/miss counters are kept)."""
        self._data.clear()

    def keys(self):
        """Current keys, least recently used first."""
        return self._data.keys()

    def values(self):
        """Current values, least recently used first (order untouched)."""
        return self._data.values()


_SENTINEL = object()
