"""Inter-rack networking — the paper's §6 future-work direction, built out.

Two designs from the paper's discussion:

* direct rack-to-rack gateway cables (:class:`MultiRackFabric`,
  :func:`ring_of_racks`) with :class:`HierarchicalRouting` over them;
* an aggregation switch with R2C2-in-Ethernet tunneling
  (:func:`switched_multirack`, :mod:`repro.interrack.tunnel`).

Because a :class:`MultiRackFabric` *is* a
:class:`~repro.topology.base.Topology`, the whole stack — water-filling,
broadcast trees, the packet simulator — runs across racks unchanged.
"""

from .routing import HierarchicalRouting, HierarchicalVLB, HierarchicalWLB
from .topology import MultiRackFabric, ring_of_racks, switched_multirack
from .tunnel import (
    ETHERNET_MTU,
    ETHERNET_OVERHEAD_BYTES,
    ETHERTYPE_R2C2,
    EthernetFrame,
    mac_for,
    tunnel_overhead_fraction,
    tunnel_packet,
    untunnel_packet,
)

__all__ = [
    "ETHERNET_MTU",
    "ETHERNET_OVERHEAD_BYTES",
    "ETHERTYPE_R2C2",
    "EthernetFrame",
    "HierarchicalRouting",
    "HierarchicalVLB",
    "HierarchicalWLB",
    "MultiRackFabric",
    "mac_for",
    "ring_of_racks",
    "switched_multirack",
    "tunnel_overhead_fraction",
    "tunnel_packet",
    "untunnel_packet",
]
