"""Multi-rack fabrics (paper §6, "Inter-rack networking").

The paper leaves interconnecting rack-scale computers as future work and
sketches two designs; both are built here so the stack can be exercised
across racks:

* **Direct connect** (:class:`MultiRackFabric`) — racks wired to each other
  by parallel gateway cables without any switch, the Theia-style option the
  paper calls "more promising".  The result is one big
  :class:`~repro.topology.base.Topology` whose node ids are
  ``rack_index * rack_size + local_id``, so every existing layer (routing,
  water-filling, the packet simulator) works on it unchanged.  Gateway
  cables may have a different capacity than fabric links, which is how
  oversubscription is modelled.
* **Switched** (:class:`switched_multirack`) — racks bridged through an
  aggregation-switch node, for the "tunnel R2C2 packets inside Ethernet
  frames" option (see :mod:`repro.interrack.tunnel` for the framing).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import TopologyError
from ..topology.base import Topology
from ..types import Link, LinkId, NodeId


class MultiRackFabric(Topology):
    """Several identical racks joined by direct gateway cables.

    Args:
        racks: The per-rack topologies.  All racks must have the same node
            count (heterogeneous rack sizes would break the dense id
            arithmetic and are not a configuration the paper considers).
        bridges: Gateway cables as
            ``(rack_a, local_a, rack_b, local_b)`` tuples; each becomes a
            bidirectional link between the corresponding global nodes.
        bridge_capacity_bps: Capacity of gateway cables (defaults to the
            rack link capacity; set lower to model oversubscription).
        bridge_latency_ns: Propagation latency of gateway cables (typically
            larger than the 100 ns intra-rack hop).
    """

    def __init__(
        self,
        racks: Sequence[Topology],
        bridges: Sequence[Tuple[int, NodeId, int, NodeId]],
        bridge_capacity_bps: Optional[float] = None,
        bridge_latency_ns: int = 500,
    ) -> None:
        if len(racks) < 2:
            raise TopologyError("a multi-rack fabric needs at least two racks")
        sizes = {rack.n_nodes for rack in racks}
        if len(sizes) != 1:
            raise TopologyError(f"racks must be equally sized, got sizes {sorted(sizes)}")
        capacities = {rack.capacity_bps for rack in racks}
        if len(capacities) != 1:
            raise TopologyError("racks must share one link capacity")
        if not bridges:
            raise TopologyError("a multi-rack fabric needs at least one bridge")

        self._racks = list(racks)
        self._rack_size = racks[0].n_nodes
        rack_capacity = racks[0].capacity_bps
        self._bridge_capacity = (
            bridge_capacity_bps if bridge_capacity_bps is not None else rack_capacity
        )
        if self._bridge_capacity <= 0:
            raise TopologyError("bridge capacity must be positive")

        edges: List[Tuple[NodeId, NodeId]] = []
        for rack_idx, rack in enumerate(racks):
            base = rack_idx * self._rack_size
            for link in rack.links:
                edges.append((base + link.src, base + link.dst))

        bridge_pairs: List[Tuple[NodeId, NodeId]] = []
        for rack_a, local_a, rack_b, local_b in bridges:
            for rack_idx, local in ((rack_a, local_a), (rack_b, local_b)):
                if not (0 <= rack_idx < len(racks)):
                    raise TopologyError(f"bridge references unknown rack {rack_idx}")
                if not (0 <= local < self._rack_size):
                    raise TopologyError(f"bridge references unknown node {local}")
            if rack_a == rack_b:
                raise TopologyError("bridges must join two different racks")
            a = rack_a * self._rack_size + local_a
            b = rack_b * self._rack_size + local_b
            bridge_pairs.append((a, b))
            edges.append((a, b))
            edges.append((b, a))

        super().__init__(
            len(racks) * self._rack_size,
            edges,
            capacity_bps=rack_capacity,
            latency_ns=racks[0].latency_ns,
            name=f"multirack({len(racks)}x{racks[0].name})",
        )

        # Re-stamp the gateway links with their own capacity and latency
        # (Topology builds homogeneous links; the fabric is not).
        self._bridge_link_ids: List[LinkId] = []
        links = list(self._links)
        for a, b in bridge_pairs:
            for src, dst in ((a, b), (b, a)):
                link_id = self.link_id(src, dst)
                old = links[link_id]
                links[link_id] = Link(
                    link_id, old.src, old.dst, self._bridge_capacity, bridge_latency_ns
                )
                self._bridge_link_ids.append(link_id)
        self._links = tuple(links)
        self._bridge_link_set = frozenset(self._bridge_link_ids)

    # ------------------------------------------------------------------
    # Rack-awareness helpers
    # ------------------------------------------------------------------
    @property
    def n_racks(self) -> int:
        """Number of racks in the fabric."""
        return len(self._racks)

    @property
    def rack_size(self) -> int:
        """Nodes per rack."""
        return self._rack_size

    @property
    def bridge_capacity_bps(self) -> float:
        """Gateway-cable capacity."""
        return self._bridge_capacity

    def rack_of(self, node: NodeId) -> int:
        """The rack a global node id belongs to."""
        self._check_node(node)
        return node // self._rack_size

    def local_id(self, node: NodeId) -> NodeId:
        """A global node's id inside its rack."""
        self._check_node(node)
        return node % self._rack_size

    def global_id(self, rack: int, local: NodeId) -> NodeId:
        """Compose a global node id."""
        if not (0 <= rack < self.n_racks):
            raise TopologyError(f"unknown rack {rack}")
        if not (0 <= local < self._rack_size):
            raise TopologyError(f"unknown local node {local}")
        return rack * self._rack_size + local

    def rack_topology(self, rack: int) -> Topology:
        """The original topology object of one rack."""
        if not (0 <= rack < self.n_racks):
            raise TopologyError(f"unknown rack {rack}")
        return self._racks[rack]

    def bridge_links(self) -> List[Link]:
        """All gateway links (both directions)."""
        return [self._links[i] for i in self._bridge_link_ids]

    def gateways_of(self, rack: int) -> List[NodeId]:
        """Global ids of this rack's gateway nodes (bridge endpoints)."""
        nodes = set()
        for link in self.bridge_links():
            if self.rack_of(link.src) == rack:
                nodes.add(link.src)
        return sorted(nodes)

    def is_bridge_link(self, link_id: LinkId) -> bool:
        """True if the link is a gateway cable."""
        return link_id in self._bridge_link_set

    def oversubscription_ratio(self) -> float:
        """Rack bisection capacity divided by gateway capacity per rack pair.

        A rough figure of merit: the paper warns that avoiding
        oversubscription with switches "would dramatically increase costs";
        direct bridges make the trade-off explicit.
        """
        bridge_total = sum(link.capacity_bps for link in self.bridge_links()) / 2
        return (self._rack_size * self.capacity_bps) / max(bridge_total, 1e-12)

    def composed_bisection_bps(self) -> float:
        """Estimated bisection bandwidth of the composed fabric (bits/s).

        The brute-force bisection search is infeasible beyond 16 nodes, so
        composed graphs use a rack-granular estimate: racks are split into
        two contiguous circular arcs of ``n_racks // 2`` racks and the cut
        capacity is the gateway capacity crossing the arc boundary, minimized
        over all arc rotations.  Intra-rack links never cross (rack ids are
        contiguous), so this is exact whenever the optimal balanced cut is
        rack-aligned and contiguous — true for the ring and a tight upper
        bound for random regular bridge graphs.
        """
        n = self.n_racks
        half = n // 2
        best = None
        for start in range(n):
            arc = {(start + i) % n for i in range(half)}
            crossing = sum(
                link.capacity_bps
                for link in self.bridge_links()
                if (self.rack_of(link.src) in arc) != (self.rack_of(link.dst) in arc)
            )
            if best is None or crossing < best:
                best = crossing
        return float(best or 0.0)


def ring_of_racks(
    racks: Sequence[Topology],
    cables_per_side: int = 2,
    bridge_capacity_bps: Optional[float] = None,
    bridge_latency_ns: int = 500,
    gateway_stride: Optional[int] = None,
) -> MultiRackFabric:
    """Convenience builder: racks in a ring, *cables_per_side* parallel
    cables between neighbours, gateways spread across each rack."""
    if len(racks) < 2:
        raise TopologyError("need at least two racks")
    size = racks[0].n_nodes
    stride = gateway_stride if gateway_stride is not None else max(1, size // cables_per_side)
    bridges = []
    for rack_idx in range(len(racks)):
        nxt = (rack_idx + 1) % len(racks)
        if nxt == rack_idx:
            continue
        for cable in range(cables_per_side):
            local = (cable * stride) % size
            bridges.append((rack_idx, local, nxt, local))
        if len(racks) == 2:
            break  # avoid duplicating the single pair's cables
    return MultiRackFabric(
        racks,
        bridges,
        bridge_capacity_bps=bridge_capacity_bps,
        bridge_latency_ns=bridge_latency_ns,
    )


def switched_multirack(
    racks: Sequence[Topology],
    uplinks_per_rack: int = 2,
    switch_capacity_bps: Optional[float] = None,
    switch_latency_ns: int = 1000,
) -> Tuple[Topology, NodeId]:
    """Racks bridged by one aggregation switch (the Ethernet-tunnel option).

    Returns ``(topology, switch_node_id)``.  Each rack connects
    *uplinks_per_rack* gateway nodes to the switch; inter-rack traffic is
    tunneled through it (see :mod:`repro.interrack.tunnel`).  The paper
    notes this "would dramatically increase costs" for high-radix,
    terabit-backplane switches — which the oversubscription here makes
    visible.
    """
    if len(racks) < 2:
        raise TopologyError("need at least two racks")
    sizes = {rack.n_nodes for rack in racks}
    if len(sizes) != 1:
        raise TopologyError("racks must be equally sized")
    size = racks[0].n_nodes
    switch = len(racks) * size
    capacity = (
        switch_capacity_bps if switch_capacity_bps is not None else racks[0].capacity_bps
    )

    edges: List[Tuple[NodeId, NodeId]] = []
    uplink_pairs: List[Tuple[NodeId, NodeId]] = []
    for rack_idx, rack in enumerate(racks):
        base = rack_idx * size
        for link in rack.links:
            edges.append((base + link.src, base + link.dst))
        stride = max(1, size // uplinks_per_rack)
        for uplink in range(uplinks_per_rack):
            gateway = base + (uplink * stride) % size
            if (gateway, switch) not in uplink_pairs:
                uplink_pairs.append((gateway, switch))
                edges.append((gateway, switch))
                edges.append((switch, gateway))

    topo = Topology(
        switch + 1,
        edges,
        capacity_bps=racks[0].capacity_bps,
        latency_ns=racks[0].latency_ns,
        name=f"switched-multirack({len(racks)}x{racks[0].name})",
    )
    # Uplinks get the switch's capacity and latency.
    links = list(topo.links)
    for gateway, sw in uplink_pairs:
        for src, dst in ((gateway, sw), (sw, gateway)):
            link_id = topo.link_id(src, dst)
            old = links[link_id]
            links[link_id] = Link(link_id, old.src, old.dst, capacity, switch_latency_ns)
    topo._links = tuple(links)  # noqa: SLF001 - same package, documented
    return topo, switch
