"""Ethernet tunneling of R2C2 packets (paper §6).

"One simple option for inter-rack networking is to just use traditional
switches and tunnel R2C2 packets by encapsulating them inside Ethernet
frames."  This module provides that encapsulation: a standard Ethernet II
header (destination/source MAC, EtherType) plus frame check sequence around
an encoded R2C2 packet, MAC addressing derived from (rack, node), and the
byte-overhead accounting that makes the paper's cost argument measurable.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

from ..errors import WireFormatError
from ..wire.checksum import internet_checksum

#: Ethernet II framing constants.
ETHERNET_HEADER_BYTES = 14  # dst MAC + src MAC + EtherType
ETHERNET_FCS_BYTES = 4
ETHERNET_OVERHEAD_BYTES = ETHERNET_HEADER_BYTES + ETHERNET_FCS_BYTES
#: Locally administered EtherType chosen for tunneled R2C2 traffic.
ETHERTYPE_R2C2 = 0x88B5  # IEEE 802a local experimental
#: Standard Ethernet payload ceiling.
ETHERNET_MTU = 1500


def mac_for(rack: int, node: int) -> bytes:
    """A locally administered MAC address encoding (rack, node).

    Layout: ``02:C2:<rack16>:<node16>`` — the 0x02 first octet marks a
    locally administered unicast address; 16 bits each for rack and node
    match the R2C2 endpoint address space.
    """
    if not (0 <= rack <= 0xFFFF):
        raise WireFormatError(f"rack {rack} does not fit 16 bits")
    if not (0 <= node <= 0xFFFF):
        raise WireFormatError(f"node {node} does not fit 16 bits")
    return bytes([0x02, 0xC2]) + struct.pack(">HH", rack, node)


@dataclass(frozen=True)
class EthernetFrame:
    """One tunneled R2C2 packet."""

    dst_mac: bytes
    src_mac: bytes
    payload: bytes
    ethertype: int = ETHERTYPE_R2C2

    def encode(self) -> bytes:
        """Serialize header + payload + FCS."""
        if len(self.dst_mac) != 6 or len(self.src_mac) != 6:
            raise WireFormatError("MAC addresses are six bytes")
        if len(self.payload) > ETHERNET_MTU:
            raise WireFormatError(
                f"tunneled payload of {len(self.payload)} bytes exceeds the "
                f"{ETHERNET_MTU}-byte Ethernet MTU"
            )
        if not self.payload:
            raise WireFormatError("empty tunneled payload")
        header = self.dst_mac + self.src_mac + struct.pack(">H", self.ethertype)
        body = header + self.payload
        fcs = internet_checksum(body)  # stand-in for CRC32 at equal width*2
        return body + struct.pack(">I", fcs)

    @staticmethod
    def decode(buffer: bytes, verify_fcs: bool = True) -> "EthernetFrame":
        """Parse and (optionally) verify a tunneled frame."""
        if len(buffer) < ETHERNET_OVERHEAD_BYTES + 1:
            raise WireFormatError("frame shorter than Ethernet overhead")
        dst_mac = buffer[0:6]
        src_mac = buffer[6:12]
        (ethertype,) = struct.unpack(">H", buffer[12:14])
        payload = buffer[14:-4]
        (fcs,) = struct.unpack(">I", buffer[-4:])
        if verify_fcs and internet_checksum(buffer[:-4]) != fcs:
            raise WireFormatError("Ethernet FCS mismatch")
        return EthernetFrame(
            dst_mac=dst_mac, src_mac=src_mac, payload=payload, ethertype=ethertype
        )

    @property
    def wire_size(self) -> int:
        """Total frame bytes on the wire."""
        return ETHERNET_OVERHEAD_BYTES + len(self.payload)


def tunnel_packet(
    packet_bytes: bytes, src: Tuple[int, int], dst: Tuple[int, int]
) -> bytes:
    """Encapsulate an encoded R2C2 packet for the inter-rack switch.

    Args:
        packet_bytes: The encoded R2C2 data packet.
        src: ``(rack, gateway_node)`` of the egress gateway.
        dst: ``(rack, gateway_node)`` of the ingress gateway.
    """
    frame = EthernetFrame(
        dst_mac=mac_for(*dst), src_mac=mac_for(*src), payload=packet_bytes
    )
    return frame.encode()


def untunnel_packet(frame_bytes: bytes) -> bytes:
    """Strip the Ethernet encapsulation; returns the R2C2 packet bytes."""
    frame = EthernetFrame.decode(frame_bytes)
    if frame.ethertype != ETHERTYPE_R2C2:
        raise WireFormatError(
            f"not a tunneled R2C2 frame (ethertype {frame.ethertype:#06x})"
        )
    return frame.payload


def tunnel_overhead_fraction(payload_bytes: int) -> float:
    """Relative byte overhead of tunneling a packet of *payload_bytes*.

    Part of the paper's argument against the switched option: "the need to
    bridge between R2C2 and Ethernet would increase the overhead and the
    end-to-end latency".
    """
    if payload_bytes < 1:
        raise WireFormatError("payload must be at least one byte")
    return ETHERNET_OVERHEAD_BYTES / payload_bytes
