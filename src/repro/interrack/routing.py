"""Hierarchical routing across racks (paper §6).

A :class:`HierarchicalRouting` protocol routes inter-rack flows in three
segments — source rack to an egress gateway, across the gateway cable(s),
ingress gateway to the destination — and delegates intra-rack flows to a
plain intra-rack protocol (spraying by default).  Multiple parallel cables
between a rack pair are load-balanced per packet, which is exactly the
"finer-grain control over the inter-rack routing" the paper says the
switchless design enables.

:class:`HierarchicalWLB` and :class:`HierarchicalVLB` swap the intra-rack
legs for the paper's WLB / VLB protocols, computed once on the **rack
template** (local node ids) and *lifted* onto each rack through a
link-id translation table.  At fabric scale this is the difference between
memoizing DAGs on an 80-node rack and rebuilding them on a 10 000-node
composed graph — it is what makes Fig. 2-style channel-load analysis
feasible on synthesized fabrics (see :mod:`repro.topology.synth`).
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import RoutingError
from ..routing.base import RoutingProtocol, make_protocol, register_protocol
from ..routing.weights import merge_weights, sample_spray_path, spray_link_weights
from ..types import LinkId, NodeId
from .topology import MultiRackFabric


@register_protocol
class HierarchicalRouting(RoutingProtocol):
    """Gateway-segmented routing on a :class:`MultiRackFabric`."""

    name = "hier"
    protocol_id = 6
    minimal = False
    #: Name of the intra-rack protocol run on the rack template, or ``None``
    #: for the legacy fabric-wide spray.  Template lifting assumes all racks
    #: are wired identically (always true for synthesized fabrics).
    intra: Optional[str] = None

    def __init__(self, topology) -> None:
        super().__init__(topology)
        if not isinstance(topology, MultiRackFabric):
            raise RoutingError(
                "hierarchical routing requires a MultiRackFabric, "
                f"got {topology.name}"
            )
        self._fabric: MultiRackFabric = topology
        # (rack_a, rack_b) -> list of (egress gateway in a, ingress in b).
        self._cables: Dict[Tuple[int, int], List[Tuple[NodeId, NodeId]]] = {}
        for link in topology.bridge_links():
            pair = (topology.rack_of(link.src), topology.rack_of(link.dst))
            self._cables.setdefault(pair, []).append((link.src, link.dst))
        self._weights_cache: Dict[tuple, Mapping[LinkId, float]] = {}
        self._route_cache: Dict[Tuple[int, int], List[int]] = {}
        # Rack-graph adjacency in bridge insertion order (BFS parent choice,
        # and hence legacy "hier" weights, must not change).
        self._rack_adjacency: Dict[int, List[int]] = {}
        for a, b in self._cables:
            self._rack_adjacency.setdefault(a, []).append(b)
        if self.intra is not None:
            self._template = topology.rack_topology(0)
            self._intra_protocol: Optional[RoutingProtocol] = make_protocol(
                self.intra, self._template
            )
            self._lift_tables: Dict[int, List[LinkId]] = {}
        else:
            self._intra_protocol = None

    def cables_between(self, rack_a: int, rack_b: int) -> List[Tuple[NodeId, NodeId]]:
        """The gateway cables leading from *rack_a* to *rack_b* (directed)."""
        cables = self._cables.get((rack_a, rack_b), [])
        if not cables:
            raise RoutingError(
                f"no direct cables from rack {rack_a} to rack {rack_b}; "
                "multi-hop rack routes are chosen via the rack graph"
            )
        return cables

    def _rack_route(self, src_rack: int, dst_rack: int) -> List[int]:
        """BFS over the rack-level graph (racks as vertices, cables as
        edges) — the inter-rack analogue of minimal routing."""
        if src_rack == dst_rack:
            return [src_rack]
        cached = self._route_cache.get((src_rack, dst_rack))
        if cached is not None:
            return cached
        adjacency = self._rack_adjacency
        frontier = [src_rack]
        parent = {src_rack: None}
        while frontier:
            nxt = []
            for rack in frontier:
                for neighbor in adjacency.get(rack, []):
                    if neighbor not in parent:
                        parent[neighbor] = rack
                        nxt.append(neighbor)
            if dst_rack in parent:
                break
            frontier = nxt
        if dst_rack not in parent:
            raise RoutingError(f"rack {dst_rack} unreachable from rack {src_rack}")
        route = [dst_rack]
        while parent[route[-1]] is not None:
            route.append(parent[route[-1]])
        result = list(reversed(route))
        self._route_cache[(src_rack, dst_rack)] = result
        return result

    # ------------------------------------------------------------------
    # Intra-rack legs (template-lifted when ``intra`` is set)
    # ------------------------------------------------------------------
    def _lift_table(self, rack: int) -> List[LinkId]:
        """Template link id -> fabric link id for one rack's copy."""
        table = self._lift_tables.get(rack)
        if table is None:
            fabric = self._fabric
            base = rack * fabric.rack_size
            table = [
                fabric.link_id(base + link.src, base + link.dst)
                for link in self._template.links
            ]
            self._lift_tables[rack] = table
        return table

    def _leg_weights(self, src: NodeId, dst: NodeId) -> Mapping[LinkId, float]:
        """Weights of an intra-rack leg between two global same-rack nodes."""
        fabric = self._fabric
        if self._intra_protocol is None:
            return spray_link_weights(fabric, src, dst)
        local = self._intra_protocol.link_weights(
            fabric.local_id(src), fabric.local_id(dst)
        )
        table = self._lift_table(fabric.rack_of(src))
        return {table[link_id]: weight for link_id, weight in local.items()}

    def _leg_path(
        self, src: NodeId, dst: NodeId, rng: random.Random
    ) -> List[NodeId]:
        """Sample an intra-rack leg between two global same-rack nodes."""
        fabric = self._fabric
        if self._intra_protocol is None:
            return sample_spray_path(fabric, src, dst, rng)
        base = fabric.rack_of(src) * fabric.rack_size
        local = self._intra_protocol.sample_path(
            fabric.local_id(src), fabric.local_id(dst), rng
        )
        return [base + node for node in local]

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def sample_path(
        self, src: NodeId, dst: NodeId, rng: random.Random, flow_id: int = 0
    ) -> List[NodeId]:
        self._check_endpoints(src, dst)
        if src == dst:
            return [src]
        fabric = self._fabric
        src_rack = fabric.rack_of(src)
        dst_rack = fabric.rack_of(dst)
        if src_rack == dst_rack:
            return self._leg_path(src, dst, rng)

        path = [src]
        here = src
        rack_route = self._rack_route(src_rack, dst_rack)
        for next_rack in rack_route[1:]:
            cables = self.cables_between(fabric.rack_of(here), next_rack)
            egress, ingress = cables[rng.randrange(len(cables))]
            if here != egress:
                leg = self._leg_path(here, egress, rng)
                path.extend(leg[1:])
            path.append(ingress)
            here = ingress
        if here != dst:
            leg = self._leg_path(here, dst, rng)
            path.extend(leg[1:])
        return path

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def link_weights(
        self, src: NodeId, dst: NodeId, flow_id: int = 0
    ) -> Mapping[LinkId, float]:
        self._check_endpoints(src, dst)
        key = (src, dst)
        cached = self._weights_cache.get(key)
        if cached is not None:
            return cached
        fabric = self._fabric
        if src == dst:
            weights: Mapping[LinkId, float] = {}
        elif fabric.rack_of(src) == fabric.rack_of(dst):
            weights = self._leg_weights(src, dst)
        else:
            weights = self._inter_rack_weights(src, dst)
        self._weights_cache[key] = weights
        return weights

    def _inter_rack_weights(self, src: NodeId, dst: NodeId) -> Mapping[LinkId, float]:
        """Expected weights: average over per-hop uniform cable choices.

        Mass enters a rack at each possible ingress with some probability;
        each segment's spray weights are composed by linearity, like the
        Valiant phase decomposition.
        """
        fabric = self._fabric
        rack_route = self._rack_route(fabric.rack_of(src), fabric.rack_of(dst))
        maps = []
        scales = []
        # Distribution over the node where the flow currently "is".
        location: Dict[NodeId, float] = {src: 1.0}
        for next_rack in rack_route[1:]:
            next_location: Dict[NodeId, float] = {}
            for here, mass in location.items():
                cables = self.cables_between(fabric.rack_of(here), next_rack)
                share = mass / len(cables)
                for egress, ingress in cables:
                    if here != egress:
                        maps.append(self._leg_weights(here, egress))
                        scales.append(share)
                    maps.append({fabric.link_id(egress, ingress): 1.0})
                    scales.append(share)
                    next_location[ingress] = next_location.get(ingress, 0.0) + share
            location = next_location
        for here, mass in location.items():
            if here != dst:
                maps.append(self._leg_weights(here, dst))
                scales.append(mass)
        return merge_weights(*maps, scales=scales)


@register_protocol
class HierarchicalWLB(HierarchicalRouting):
    """Hierarchical routing whose intra-rack legs use WLB (Singh et al.),
    computed on the rack template and lifted onto every rack."""

    name = "hier_wlb"
    protocol_id = 7
    intra = "wlb"


@register_protocol
class HierarchicalVLB(HierarchicalRouting):
    """Hierarchical routing whose intra-rack legs use VLB (Valiant),
    computed on the rack template and lifted onto every rack."""

    name = "hier_vlb"
    protocol_id = 8
    intra = "vlb"
