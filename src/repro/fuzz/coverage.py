"""The coverage map: which behavioral signatures has the fuzzer seen?

"Coverage" here is behavioral, not line-based: each executed scenario is
compressed by :func:`repro.telemetry.sim_signature` into a small tuple of
quantized features (queue-depth bucket, reorder bucket, drop/loss buckets,
recompute-epoch bucket, ...), and the map records every distinct tuple.  A
scenario whose signature is *new* drove the stack somewhere no earlier
scenario did — those are the seeds worth mutating.

The map serializes to deterministic JSON (sorted signatures, sorted
feature pairs, no timestamps), so two fuzzing runs from the same root seed
produce byte-identical coverage files — the determinism contract the CLI
and CI lean on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Tuple, Union

Signature = Tuple[Tuple[str, int], ...]

__all__ = ["CoverageMap", "Signature"]


class CoverageMap:
    """Set of observed behavioral signatures with hit counts."""

    def __init__(self) -> None:
        self._hits: Dict[Signature, int] = {}

    def __len__(self) -> int:
        return len(self._hits)

    def __contains__(self, signature: Signature) -> bool:
        return tuple(signature) in self._hits

    def observe(self, signature: Signature) -> bool:
        """Record *signature*; True when it is new coverage."""
        key = tuple((str(n), int(b)) for n, b in signature)
        new = key not in self._hits
        self._hits[key] = self._hits.get(key, 0) + 1
        return new

    def hits(self, signature: Signature) -> int:
        return self._hits.get(tuple(signature), 0)

    def signatures(self) -> List[Signature]:
        """All observed signatures, sorted (deterministic order)."""
        return sorted(self._hits)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "signatures": [
                {"features": [[n, b] for n, b in sig], "hits": self._hits[sig]}
                for sig in self.signatures()
            ]
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CoverageMap":
        cov = cls()
        for entry in data.get("signatures", ()):
            sig = tuple((str(n), int(b)) for n, b in entry["features"])
            cov._hits[sig] = int(entry.get("hits", 1))
        return cov

    def to_json(self) -> str:
        """Canonical JSON: byte-identical for equal maps."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CoverageMap":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    def merge(self, other: "CoverageMap") -> None:
        """Fold *other*'s observations into this map."""
        for sig, hits in other._hits.items():
            self._hits[sig] = self._hits.get(sig, 0) + hits
