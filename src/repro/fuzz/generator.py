"""Scenario generation: one derived seed -> one valid experiment Scenario.

The fuzzer explores the cross product of topology (torus / mesh / folded
Clos, sizes, link latency and capacity), workload (poisson or host-pair
traffic, flow counts, size distributions), failure storms, stack (R2C2
shared / per-node control plane, reliable transport, TCP) and engine
parameters (wire loss, drop-tail queue limits, horizon, MTU).  A
*genome* — a plain dict with one entry per axis, every axis always
present — names one point of that space; :func:`assemble` turns a genome
into a :class:`repro.experiments.Scenario` and is the single place where
cross-axis validity rules live (Clos fabrics only carry host-pair
workloads, lossy R2C2 runs the reliable transport, storms only hit
fabrics that can absorb them).  Generation and mutation both go through
it, so **every scenario the fuzzer ever builds is valid by
construction** — a property test in ``tests/fuzz`` holds us to that.

Determinism: all randomness flows through one ``random.Random`` seeded by
the caller (the fuzzer derives per-scenario seeds with
:func:`repro.core.derive_seed`), and the genome pins explicit ``sim_seed``
/ ``trace_seed`` / ``fail_seed`` params, so a scenario's *behavior* is a
function of its spec alone — renaming it or re-running it under a
different campaign seed reproduces the same simulation.  Every generated
scenario runs under the invariant auditor (``audit=True``, collecting
mode) and with a safety horizon, so no input can hang a fuzzing run.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Tuple

from ..experiments import Scenario

__all__ = [
    "SAFETY_HORIZON_NS",
    "assemble",
    "generate_scenario",
    "genome_of",
    "sharding_eligible",
]

#: Every fuzz scenario gets a horizon so pathological interactions (e.g.
#: reliable retransmission against a starved drop-tail queue) terminate;
#: generated workloads finish far inside it.
SAFETY_HORIZON_NS = 20_000_000

#: (dims) choices for torus and mesh fabrics — small enough that a 200
#: scenario CI budget stays fast, varied enough to move routing diversity,
#: path length and broadcast-tree shape.
_GRID_DIMS: Tuple[Tuple[int, ...], ...] = (
    (2, 2),
    (2, 3),
    (3, 3),
    (2, 2, 2),
    (3, 4),
    (4, 4),
    (2, 2, 3),
)

#: (n_hosts, radix) choices for folded-Clos fabrics (n_hosts must be a
#: positive multiple of radix/2, leaves must not exceed the radix).
_CLOS_SHAPES: Tuple[Tuple[int, int], ...] = ((4, 4), (6, 4), (8, 4), (8, 8), (12, 8))

#: Per-flow routing-protocol axis: mostly the paper's default spraying,
#: sometimes deterministic (dor/ecmp) or adaptive/non-minimal (wlb/vlb)
#: routing — moving queueing skew, reorder-buffer depth and the causal
#: decomposition's per-hop attribution (repro.obs).
_PROTOCOL_CHOICES = ("rps", "rps", "rps", "dor", "ecmp", "wlb", "vlb")
#: Selection-objective axis: what a selection-kind scenario maximizes
#: (repro.selection.objective; §3.4's operator-chosen utility).
_OBJECTIVE_CHOICES = ("aggregate", "tail", "blended")
#: Candidate protocol sets for selection searches.
_SELECTION_PROTOCOL_CHOICES = (("rps", "vlb"), ("rps", "dor"), ("rps", "vlb", "wlb"))
#: Scenario kind: mostly packet sims, occasionally a protocol-selection
#: search or a control-plane churn replay so those axes get fuzzed too.
_KIND_CHOICES = ("sim", "sim", "sim", "sim", "sim", "selection", "churn")
_LATENCY_CHOICES = (None, None, None, 50, 200, 1000)
_CAPACITY_CHOICES = (None, None, None, 1e9, 40e9)
_MTU_CHOICES = (1500, 1500, 1500, 512, 3000)
_LOSS_CHOICES = (0.0, 0.0, 0.0, 0.005, 0.01, 0.02)
_QUEUE_LIMIT_CHOICES = (None, None, None, 30_000, 150_000)
_HORIZON_CHOICES = (None, None, None, 500_000, 2_000_000)
_FAIL_CHOICES = (0, 0, 0, 1, 2)
_STACK_CHOICES = ("r2c2", "r2c2", "tcp")
_CONTROL_CHOICES = ("shared", "per_node")
_SIZE_KIND_CHOICES = ("fixed", "pareto")


# ----------------------------------------------------------------------
# Per-axis draws (shared by generation and mutation)
# ----------------------------------------------------------------------
def _draw_fabric(rng: random.Random, genome: Dict[str, Any]) -> None:
    kind = rng.choice(("torus", "mesh", "clos"))
    genome["topology"] = kind
    if kind == "clos":
        n_hosts, radix = rng.choice(_CLOS_SHAPES)
        genome["dims"] = (n_hosts,)
        genome["radix"] = radix
    else:
        genome["dims"] = rng.choice(_GRID_DIMS)
        genome["radix"] = 8  # carried but unused off-Clos


def _draw_link(rng: random.Random, genome: Dict[str, Any]) -> None:
    genome["latency_ns"] = rng.choice(_LATENCY_CHOICES)
    genome["capacity_bps"] = rng.choice(_CAPACITY_CHOICES)
    genome["mtu_payload"] = rng.choice(_MTU_CHOICES)


def _draw_workload(rng: random.Random, genome: Dict[str, Any]) -> None:
    genome["workload"] = rng.choice(("poisson", "hostpairs"))
    genome["n_flows"] = rng.randint(2, 12)
    genome["tau_ns"] = rng.randint(2_000, 20_000)
    genome["sizes"] = rng.choice(_SIZE_KIND_CHOICES)
    # Log-uniform-ish flow sizes, capped small: fuzzing wants many varied
    # scenarios per CPU-second, not paper-scale transfers.
    genome["flow_bytes"] = 2_000 * 2 ** rng.randint(0, 6)
    genome["mean_bytes"] = 4_000 * 2 ** rng.randint(0, 3)


def _draw_stack(rng: random.Random, genome: Dict[str, Any]) -> None:
    genome["stack"] = rng.choice(_STACK_CHOICES)
    genome["control_plane"] = rng.choice(_CONTROL_CHOICES)


def _draw_routing(rng: random.Random, genome: Dict[str, Any]) -> None:
    genome["protocol"] = rng.choice(_PROTOCOL_CHOICES)


def _draw_selection(rng: random.Random, genome: Dict[str, Any]) -> None:
    genome["kind"] = rng.choice(_KIND_CHOICES)
    genome["objective"] = rng.choice(_OBJECTIVE_CHOICES)
    genome["load"] = rng.choice((0.1, 0.25, 0.5))
    genome["selection_protocols"] = rng.choice(_SELECTION_PROTOCOL_CHOICES)


def _draw_churn(rng: random.Random, genome: Dict[str, Any]) -> None:
    genome["churn_ops"] = rng.choice((40, 80, 150))
    genome["churn_flows"] = rng.choice((8, 16, 24))
    genome["churn_fallback"] = rng.random() < 0.5


def _draw_loss(rng: random.Random, genome: Dict[str, Any]) -> None:
    genome["loss_rate"] = rng.choice(_LOSS_CHOICES)


def _draw_queue(rng: random.Random, genome: Dict[str, Any]) -> None:
    genome["queue_limit_bytes"] = rng.choice(_QUEUE_LIMIT_CHOICES)


def _draw_horizon(rng: random.Random, genome: Dict[str, Any]) -> None:
    genome["horizon_ns"] = rng.choice(_HORIZON_CHOICES)


def _draw_storm(rng: random.Random, genome: Dict[str, Any]) -> None:
    genome["fail_links"] = rng.choice(_FAIL_CHOICES)


def _draw_seeds(rng: random.Random, genome: Dict[str, Any]) -> None:
    genome["sim_seed"] = rng.getrandbits(32)
    genome["trace_seed"] = rng.getrandbits(32)
    genome["fail_seed"] = rng.getrandbits(32)


#: Mutable axes, in a fixed order (mutation picks from this list).
AXES = (
    _draw_fabric,
    _draw_link,
    _draw_workload,
    _draw_stack,
    _draw_routing,
    _draw_selection,
    _draw_churn,
    _draw_loss,
    _draw_queue,
    _draw_horizon,
    _draw_storm,
    _draw_seeds,
)


# ----------------------------------------------------------------------
# Genome -> Scenario (the validity chokepoint)
# ----------------------------------------------------------------------
def assemble(genome: Dict[str, Any], name: str) -> Scenario:
    """Build a valid :class:`Scenario` from *genome*.

    All coupling rules live here; callers may hand in any genome whose
    individual axes came from the draw tables and the result is runnable.
    """
    topology = genome["topology"]
    dims = tuple(int(d) for d in genome["dims"])
    n_nodes = 1
    for d in dims:
        n_nodes *= d

    # Selection searches assign routing protocols per flow over
    # permutation traffic on the full node set, and their candidate pools
    # may include WLB — both need a coordinate (grid) fabric.
    kind = genome.get("kind", "sim")
    if topology == "clos":
        kind = "sim"
    # Churn replays exercise the incremental allocator's arrival/departure
    # path; the failure-view fallback injection mirrors the storm rule
    # (grids big enough to survive a symmetric link loss connected).
    if kind == "churn":
        churn_params: Dict[str, Any] = {
            "n_ops": int(genome["churn_ops"]),
            "max_flows": int(genome["churn_flows"]),
            "op_seed": int(genome["sim_seed"]),
        }
        if genome["churn_fallback"] and n_nodes >= 8:
            churn_params["fallback_at"] = int(genome["churn_ops"]) // 2
            churn_params["fail_links"] = 1
            churn_params["fail_seed"] = int(genome["fail_seed"])
        return Scenario(
            name=name,
            kind="churn",
            topology=topology,
            dims=dims,
            capacity_bps=genome["capacity_bps"],
            params=churn_params,
            replicates=1,
            shards=1,
        )

    if kind == "selection":
        return Scenario(
            name=name,
            kind="selection",
            topology=topology,
            dims=dims,
            capacity_bps=genome["capacity_bps"],
            params={
                "load": float(genome["load"]),
                "selector": "genetic",
                "objective": genome["objective"],
                "protocols": list(genome["selection_protocols"]),
                # Small search budget: fuzzing wants many varied searches
                # per CPU-second, not converged optimizations.
                "max_generations": 6,
                "patience": 3,
                "search_seed": int(genome["sim_seed"]),
                "trace_seed": int(genome["trace_seed"]),
            },
            replicates=1,
            shards=1,
        )

    # Clos fabrics number switches as nodes too; only the host-pair
    # workload keeps traffic off the switch "hosts".
    workload = genome["workload"]
    if topology == "clos":
        workload = "hostpairs"

    # WLB's direction choice needs coordinates; on a Clos fall back to
    # the default spraying.
    protocol = genome["protocol"]
    if topology == "clos" and protocol == "wlb":
        protocol = "rps"

    # Storms ride only on grids big enough to stay connected without
    # retry pathologies (Clos host links are single points of attachment).
    fail_links = int(genome["fail_links"])
    if topology == "clos" or n_nodes < 8:
        fail_links = 0

    params: Dict[str, Any] = {
        "workload": workload,
        "n_flows": int(genome["n_flows"]),
        "tau_ns": int(genome["tau_ns"]),
        "sizes": genome["sizes"],
        "stack": genome["stack"],
        "mtu_payload": int(genome["mtu_payload"]),
        "audit": True,
        "audit_strict": False,
        "sim_seed": int(genome["sim_seed"]),
        "trace_seed": int(genome["trace_seed"]),
        # Always bounded: a drawn horizon tightens the safety net.
        "horizon_ns": int(genome["horizon_ns"] or SAFETY_HORIZON_NS),
    }
    if protocol != "rps":
        # Default omitted so pre-axis scenarios keep their fingerprints.
        params["protocol"] = protocol
    if genome["sizes"] == "fixed":
        params["flow_bytes"] = int(genome["flow_bytes"])
    else:
        params["mean_bytes"] = int(genome["mean_bytes"])
        params["cap_bytes"] = 200_000  # keep Pareto tails CI-sized
    if genome["stack"] == "r2c2":
        params["control_plane"] = genome["control_plane"]
        if genome["loss_rate"] > 0:
            params["loss_rate"] = float(genome["loss_rate"])
            params["reliable"] = True  # lossy R2C2 runs the reliable transport
    else:
        if genome["loss_rate"] > 0:
            params["loss_rate"] = float(genome["loss_rate"])
    if genome["queue_limit_bytes"] is not None:
        params["queue_limit_bytes"] = int(genome["queue_limit_bytes"])
    if genome["latency_ns"] is not None:
        params["latency_ns"] = int(genome["latency_ns"])
    if topology == "clos":
        params["radix"] = int(genome["radix"])
    if fail_links > 0:
        params["fail_links"] = fail_links
        params["fail_seed"] = int(genome["fail_seed"])

    return Scenario(
        name=name,
        kind="sim",
        topology=topology,
        dims=dims,
        capacity_bps=genome["capacity_bps"],
        params=params,
        replicates=1,
        shards=1,
    )


def genome_of(scenario: Scenario) -> Dict[str, Any]:
    """Recover a genome from *scenario* (inverse of :func:`assemble`).

    Absent params fall back to the axis defaults, so genomes extracted
    from shrunk or hand-written scenarios still carry every axis and can
    be mutated like generated ones.
    """
    params = scenario.params_dict
    horizon = params.get("horizon_ns")
    return {
        "kind": scenario.kind if scenario.kind in ("selection", "churn") else "sim",
        "objective": params.get("objective", "aggregate"),
        "churn_ops": int(params.get("n_ops", 80)),
        "churn_flows": int(params.get("max_flows", 16)),
        "churn_fallback": "fallback_at" in params,
        "load": float(params.get("load", 0.25)),
        "selection_protocols": tuple(params.get("protocols", ("rps", "vlb"))),
        "topology": scenario.topology,
        "dims": tuple(scenario.dims),
        "radix": int(params.get("radix", 8)),
        "capacity_bps": scenario.capacity_bps,
        "latency_ns": params.get("latency_ns"),
        "mtu_payload": int(params.get("mtu_payload", 1500)),
        "workload": params.get("workload", "poisson"),
        "n_flows": int(params.get("n_flows", 4)),
        "tau_ns": int(params.get("tau_ns", 5_000)),
        "sizes": params.get("sizes", "pareto"),
        "flow_bytes": int(params.get("flow_bytes", 16_000)),
        "mean_bytes": int(params.get("mean_bytes", 8_000)),
        "stack": params.get("stack", "r2c2"),
        "control_plane": params.get("control_plane", "shared"),
        "protocol": params.get("protocol", "rps"),
        "loss_rate": float(params.get("loss_rate", 0.0)),
        "queue_limit_bytes": params.get("queue_limit_bytes"),
        "horizon_ns": None if horizon in (None, SAFETY_HORIZON_NS) else int(horizon),
        "fail_links": int(params.get("fail_links", 0)),
        # Selection scenarios carry the sim seed as the search seed,
        # churn scenarios as the op seed.
        "sim_seed": int(
            params.get("sim_seed", params.get("search_seed", params.get("op_seed", 0)))
        ),
        "trace_seed": int(params.get("trace_seed", 0)),
        "fail_seed": int(params.get("fail_seed", 0)),
    }


def generate_scenario(seed: int, name: str) -> Scenario:
    """One derived seed -> one valid scenario (byte-stable: same seed and
    name always produce the identical spec and fingerprint)."""
    rng = random.Random(seed)
    genome: Dict[str, Any] = {}
    for draw in AXES:
        draw(rng, genome)
    return assemble(genome, name)


def sharding_eligible(scenario: Scenario) -> bool:
    """True when the sharded-vs-serial differential can run this scenario
    (mirrors :func:`repro.distsim.validate_sharded_config`: R2C2 needs the
    per-node control plane; TCP always shards).  Only packet sims shard —
    selection searches are water-fill loops, not event simulations."""
    if scenario.kind != "sim":
        return False
    params = scenario.params_dict
    if params.get("stack", "r2c2") == "tcp":
        return True
    return params.get("control_plane", "shared") == "per_node"
