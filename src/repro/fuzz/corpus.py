"""The persistent regression corpus: shrunk reproducers, content-addressed.

Every fuzzer-found failure ends up here as one JSON file named by (a
prefix of) the shrunk scenario's content fingerprint, so re-finding the
same minimal reproducer is idempotent and two runs that found the same
bugs produce byte-identical corpus directories.  Entries carry everything
needed to re-run and triage without the fuzzer: the scenario spec, the
failing oracle verdicts as observed, the behavioral signature, the
original (pre-shrink) scenario fingerprint and the shrink trail.

The repo keeps its corpus in ``tests/corpus/``; ``pytest -m fuzz_corpus``
replays every entry there, asserting all oracles pass — i.e. once a bug
is fixed, the corpus pins it fixed.  Entries deliberately contain no
timestamps or host details (determinism, and diff-friendly reviews).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from ..core.ioutil import atomic_write_json
from ..errors import ExperimentError
from ..experiments import Scenario
from ..validation.verdicts import OracleVerdict

__all__ = ["CorpusEntry", "Corpus", "DEFAULT_CORPUS_DIR"]

#: The checked-in corpus location (relative to the repo root).
DEFAULT_CORPUS_DIR = Path("tests") / "corpus"

#: Filename prefix length taken from the scenario fingerprint (64 hex
#: chars total; 16 is plenty against accidental collision and keeps
#: directory listings readable).
_ID_LEN = 16


@dataclass
class CorpusEntry:
    """One minimized failing scenario plus its triage context."""

    scenario: Scenario
    #: Verdicts observed when the (shrunk) scenario last failed.
    verdicts: List[OracleVerdict] = field(default_factory=list)
    #: Behavioral signature at failure time ([[name, bucket], ...]).
    signature: Sequence[Sequence[Any]] = ()
    #: Fingerprint of the scenario as originally found (pre-shrink).
    found_from: str = ""
    #: Accepted shrink-move labels, in order.
    shrink_steps: Sequence[str] = ()
    #: Root fuzzer seed that found it (0 for hand-added entries).
    root_seed: int = 0

    @property
    def entry_id(self) -> str:
        return self.scenario.fingerprint()[:_ID_LEN]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": 1,
            "scenario": self.scenario.to_dict(),
            "verdicts": [v.to_dict() for v in self.verdicts],
            "signature": [[str(n), int(b)] for n, b in self.signature],
            "found_from": self.found_from,
            "shrink_steps": list(self.shrink_steps),
            "root_seed": self.root_seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CorpusEntry":
        return cls(
            scenario=Scenario.from_dict(data["scenario"]),
            verdicts=[OracleVerdict.from_dict(v) for v in data.get("verdicts", ())],
            signature=tuple(
                (str(n), int(b)) for n, b in data.get("signature", ())
            ),
            found_from=data.get("found_from", ""),
            shrink_steps=tuple(data.get("shrink_steps", ())),
            root_seed=int(data.get("root_seed", 0)),
        )


class Corpus:
    """A directory of :class:`CorpusEntry` files, addressed by content."""

    def __init__(self, root: Union[str, Path] = DEFAULT_CORPUS_DIR) -> None:
        self.root = Path(root)

    def path_for(self, entry: CorpusEntry) -> Path:
        return self.root / f"{entry.entry_id}.json"

    def add(self, entry: CorpusEntry) -> Path:
        """Persist *entry* (atomic, idempotent); returns its path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(entry)
        atomic_write_json(path, entry.to_dict())
        return path

    def load(self, path: Union[str, Path]) -> CorpusEntry:
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise ExperimentError(f"corpus entry {path} unreadable: {exc}") from exc
        return CorpusEntry.from_dict(data)

    def paths(self) -> List[Path]:
        """Entry files, sorted by name (deterministic iteration order)."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.json"))

    def entries(self) -> List[CorpusEntry]:
        return [self.load(p) for p in self.paths()]

    def find(self, entry_id: str) -> Optional[CorpusEntry]:
        """Look up an entry by id (or any unique prefix of one)."""
        matches = [p for p in self.paths() if p.stem.startswith(entry_id)]
        if len(matches) != 1:
            return None
        return self.load(matches[0])

    def __len__(self) -> int:
        return len(self.paths())
