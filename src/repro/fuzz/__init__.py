"""Coverage-guided scenario fuzzing for the whole stack.

The differential oracles and the invariant auditor can already judge any
single run; this package supplies the *search* that feeds them inputs
worth judging.  From one root seed it randomizes everything an
experiment :class:`~repro.experiments.Scenario` can express — topology
family and size, link latency and capacity, workload shape, failure
storms, wire loss, queue limits, stack and control-plane choice — and
executes batches through the campaign runner with the auditor attached.
Telemetry signatures (:func:`repro.telemetry.sim_signature`) quantize
each run's behavior into a coverage key; scenarios that reach new
behavior are kept and mutated, failures are greedily shrunk to minimal
reproducers and persisted content-addressed in ``tests/corpus/``, which
``pytest -m fuzz_corpus`` replays forever after.

Pieces (each its own module, usable standalone):

* :mod:`.generator` — seed -> valid scenario, and the genome/assembly
  chokepoint that keeps every fuzzer-built spec runnable;
* :mod:`.mutate` — axis-wise mutation through the same chokepoint;
* :mod:`.coverage` — the deterministic signature coverage map;
* :mod:`.shrink` — greedy dimension-wise minimization of failures;
* :mod:`.corpus` — the content-addressed regression corpus;
* :mod:`.fuzzer` — the loop tying it together (``repro fuzz run``).

Everything is deterministic by construction: same root seed and budget
means byte-identical coverage maps and corpus contents, so CI fuzzing is
reproducible and corpus diffs are reviewable.
"""

from .corpus import DEFAULT_CORPUS_DIR, Corpus, CorpusEntry
from .coverage import CoverageMap, Signature
from .fuzzer import FuzzConfig, FuzzReport, replay_entry, run_fuzz
from .generator import (
    SAFETY_HORIZON_NS,
    assemble,
    generate_scenario,
    genome_of,
    sharding_eligible,
)
from .mutate import mutate_scenario
from .shrink import ShrinkResult, shrink_scenario

__all__ = [
    "assemble",
    "Corpus",
    "CorpusEntry",
    "CoverageMap",
    "DEFAULT_CORPUS_DIR",
    "FuzzConfig",
    "FuzzReport",
    "generate_scenario",
    "genome_of",
    "mutate_scenario",
    "replay_entry",
    "run_fuzz",
    "SAFETY_HORIZON_NS",
    "sharding_eligible",
    "ShrinkResult",
    "shrink_scenario",
    "Signature",
]
