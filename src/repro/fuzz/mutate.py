"""Scenario mutation: perturb one or two axes of an interesting scenario.

Mutation re-draws whole axes from the generator's own choice tables and
re-assembles through :func:`repro.fuzz.generator.assemble`, so a mutant is
valid for exactly the same reason a freshly generated scenario is — there
is no separate "fix up the mutant" path to drift out of sync.  The axis
selection and the re-draws all come from one ``random.Random`` seeded by
the caller, so the mutant is a pure function of (parent spec, seed, name).
"""

from __future__ import annotations

import random

from ..experiments import Scenario
from .generator import AXES, assemble, genome_of

__all__ = ["mutate_scenario"]


def mutate_scenario(scenario: Scenario, seed: int, name: str) -> Scenario:
    """Return a valid mutant of *scenario* named *name*.

    Re-draws one axis (sometimes two — coupled moves like "new fabric
    *and* new workload" escape local minima) of the parent's genome.
    Draws that leave the assembled spec unchanged (same choice re-drawn,
    or an axis this scenario kind ignores — e.g. the selection objective
    on a packet sim) are retried a few times so mutants almost never
    waste a fuzz slot re-running the parent.
    """
    def behavior(spec: Scenario) -> dict:
        data = spec.content_dict()
        data.pop("name", None)  # the label is not behavior
        return data

    rng = random.Random(seed)
    parent_genome = genome_of(scenario)
    parent_behavior = behavior(scenario)
    mutant = scenario
    for _attempt in range(8):
        genome = dict(parent_genome)
        n_axes = 2 if rng.random() < 0.3 else 1
        for draw in rng.sample(AXES, n_axes):
            draw(rng, genome)
        mutant = assemble(genome, name)
        if behavior(mutant) != parent_behavior:
            return mutant
    return mutant
