"""The coverage-guided fuzzing loop.

One root seed drives everything: batch composition, scenario generation,
mutation-parent picks and every scenario's own behavior (via pinned seed
params), so ``run_fuzz(FuzzConfig(seed=42, budget=200))`` is fully
deterministic — two runs produce identical coverage maps, identical
failures and byte-identical corpora.

The loop:

1. build a batch — fresh scenarios from :func:`.generator.generate_scenario`
   plus mutants of the interesting-seed pool from
   :func:`.mutate.mutate_scenario`;
2. execute it as a :class:`repro.experiments.Campaign` through
   :func:`repro.experiments.run_campaign` (each scenario audited, bounded
   by a horizon);
3. judge every result with the structured oracles
   (:mod:`repro.validation.verdicts`) — crash, invariant audit, sanity,
   and (for scenarios that just added coverage and can shard) the
   sharded-vs-serial byte-identity differential;
4. extract each result's behavioral signature
   (:func:`repro.telemetry.sim_signature`); scenarios with *new*
   signatures join the mutation pool;
5. shrink failures to minimal reproducers (:mod:`.shrink`) and persist
   them content-addressed in the corpus (:mod:`.corpus`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Set, Tuple, Union

from ..core.seeds import derive_seed
from ..experiments import Campaign, ExecutorConfig, Scenario, Task, run_campaign
from ..experiments.tasks import execute_task
from ..telemetry import sim_signature
from ..validation.verdicts import (
    OracleVerdict,
    consistency_verdict,
    crash_verdict,
    sim_result_verdicts,
)
from .corpus import Corpus, CorpusEntry
from .coverage import CoverageMap
from .generator import generate_scenario, sharding_eligible
from .mutate import mutate_scenario
from .shrink import shrink_scenario

__all__ = ["FuzzConfig", "FuzzReport", "replay_entry", "run_fuzz"]

#: Signature used for scenarios that crashed (no result to fingerprint).
_CRASH_SIGNATURE = (("crash", 1),)


@dataclass
class FuzzConfig:
    """Policy for one fuzzing run."""

    seed: int = 0
    #: Scenarios executed by the search loop (shrinking and differential
    #: re-executions ride on top).
    budget: int = 100
    batch_size: int = 10
    #: Interesting-seed pool cap (oldest seeds retire first).
    pool_limit: int = 64
    #: Chance a batch slot is freshly generated once the pool is warm.
    fresh_fraction: float = 0.25
    #: Run the sharded-vs-serial differential on new-coverage scenarios.
    differential: bool = True
    shards: int = 2
    #: Predicate-evaluation budget per shrink.
    shrink_evals: int = 80
    #: Where to persist shrunk failures (None: in-memory only).
    corpus_dir: Optional[Union[str, Path]] = None
    #: Campaign executor workers (results are executor-independent).
    workers: int = 1


@dataclass
class FuzzReport:
    """Everything one fuzzing run observed."""

    config: FuzzConfig
    executed: int = 0
    coverage: CoverageMap = field(default_factory=CoverageMap)
    #: Scenarios that contributed a new signature.
    interesting: int = 0
    #: Shrunk failing entries, in discovery order (deduplicated).
    failures: List[CorpusEntry] = field(default_factory=list)
    #: Corpus files written (empty when corpus_dir is None).
    corpus_paths: List[str] = field(default_factory=list)

    @property
    def found_failures(self) -> bool:
        return bool(self.failures)

    def summary(self) -> Dict[str, Any]:
        """Deterministic JSON-able rollup (no timestamps)."""
        return {
            "seed": self.config.seed,
            "budget": self.config.budget,
            "executed": self.executed,
            "coverage_signatures": len(self.coverage),
            "interesting": self.interesting,
            "failures": [
                {
                    "id": entry.entry_id,
                    "oracles": sorted(
                        {v.oracle for v in entry.verdicts if not v.ok}
                    ),
                    "shrink_steps": list(entry.shrink_steps),
                }
                for entry in self.failures
            ],
            "corpus_paths": list(self.corpus_paths),
        }


def _task_for(scenario: Scenario, root_seed: int) -> Task:
    """The task a campaign with seed *root_seed* would expand this
    scenario's single replicate into (scenario behavior itself rides on
    the pinned ``sim_seed``/``trace_seed`` params)."""
    return Task(
        scenario=scenario,
        replicate=0,
        seed=derive_seed(root_seed, scenario.fingerprint(), 0),
        key=f"{scenario.name}/r0",
    )


def _evaluate(
    scenario: Scenario,
    root_seed: int,
    differential: bool,
    shards: int,
    flight: bool = False,
) -> Tuple[List[OracleVerdict], Tuple, Optional[Dict[str, Any]]]:
    """Execute *scenario* serially and judge it with every oracle.

    Returns (verdicts, signature, result).  Used for shrink-candidate
    checks and for re-judging shrunk reproducers; the main loop's batch
    path goes through :func:`repro.experiments.run_campaign` instead.

    With ``flight=True`` the run records a crash flight recorder
    (:mod:`repro.obs.flight`) and its dump rides on the first failing
    verdict — the corpus ships the reproducer's last moments alongside
    the spec.
    """
    task = _task_for(scenario, root_seed)
    flight_sink: Optional[Dict[str, Any]] = {} if flight else None
    try:
        result = execute_task(task, flight_sink=flight_sink)
    except Exception as exc:  # any scenario-induced crash is a finding
        return (
            [
                crash_verdict(
                    f"{type(exc).__name__}: {exc}",
                    flight=getattr(exc, "repro_flight", None),
                )
            ],
            _CRASH_SIGNATURE,
            None,
        )
    verdicts = sim_result_verdicts(result)
    if differential and sharding_eligible(scenario):
        verdicts.append(_differential(scenario, task, result, shards))
    if flight_sink is not None and "dump" in flight_sink:
        for i, verdict in enumerate(verdicts):
            if not verdict.ok:
                verdicts[i] = replace(verdict, flight=flight_sink["dump"])
                break
    return verdicts, sim_signature(result), result


def _differential(
    scenario: Scenario, task: Task, serial_result: Dict[str, Any], shards: int
) -> OracleVerdict:
    """Re-execute sharded (``shards`` is executor policy, same
    fingerprint and seed) and demand byte-identical results."""
    sharded_task = replace(task, scenario=replace(scenario, shards=max(2, shards)))
    try:
        sharded_result = execute_task(sharded_task)
    except Exception as exc:
        return OracleVerdict(
            oracle="sharded_vs_serial",
            ok=False,
            details=(f"sharded execution crashed: {type(exc).__name__}: {exc}",),
        )
    return consistency_verdict(serial_result, sharded_result)


def _failing_set(verdicts: List[OracleVerdict]) -> Set[str]:
    return {v.oracle for v in verdicts if not v.ok}


def run_fuzz(
    config: FuzzConfig,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run the coverage-guided search until the budget is spent."""
    say = progress or (lambda _msg: None)
    report = FuzzReport(config=config)
    corpus = Corpus(config.corpus_dir) if config.corpus_dir is not None else None
    pool: List[Scenario] = []
    seen_entries: Set[str] = set()
    index = 0
    batch_no = 0

    while report.executed < config.budget:
        # ------------------------------------------------------------------
        # Compose the batch: mutants of the pool, plus fresh blood.
        # ------------------------------------------------------------------
        batch: List[Scenario] = []
        for _slot in range(min(config.batch_size, config.budget - report.executed)):
            slot_seed = derive_seed(config.seed, "fuzz", index)
            name = f"fuzz-{index:05d}"
            picker = random.Random(derive_seed(config.seed, "pick", index))
            if not pool or picker.random() < config.fresh_fraction:
                batch.append(generate_scenario(slot_seed, name))
            else:
                parent = pool[picker.randrange(len(pool))]
                batch.append(mutate_scenario(parent, slot_seed, name))
            index += 1

        # ------------------------------------------------------------------
        # Execute through the campaign runner (no cache: every spec is new).
        # ------------------------------------------------------------------
        campaign = Campaign(
            name=f"fuzz-batch-{batch_no}", scenarios=tuple(batch), seed=config.seed
        )
        batch_no += 1
        campaign_result = run_campaign(
            campaign,
            ExecutorConfig(workers=config.workers, max_retries=0),
            cache_dir=None,
        )

        # ------------------------------------------------------------------
        # Judge, cover, shrink.
        # ------------------------------------------------------------------
        for scenario in batch:
            key = f"{scenario.name}/r0"
            result = campaign_result.results.get(key)
            if result is None:
                error = campaign_result.manifest["tasks"].get(key, {}).get(
                    "error", "task failed with no recorded error"
                )
                verdicts: List[OracleVerdict] = [crash_verdict(str(error))]
                signature: Tuple = _CRASH_SIGNATURE
            else:
                verdicts = sim_result_verdicts(result)
                signature = sim_signature(result)
            report.executed += 1
            is_new = report.coverage.observe(signature)
            if is_new:
                report.interesting += 1
                # New coverage earns a pool slot and, when eligible, the
                # (expensive) executor differential.
                if (
                    result is not None
                    and config.differential
                    and sharding_eligible(scenario)
                ):
                    verdicts.append(
                        _differential(
                            scenario,
                            _task_for(scenario, config.seed),
                            result,
                            config.shards,
                        )
                    )
                pool.append(scenario)
                if len(pool) > config.pool_limit:
                    pool.pop(0)

            failing = _failing_set(verdicts)
            if failing:
                say(
                    f"{scenario.name}: FAILING oracles {sorted(failing)}; shrinking"
                )
                entry = _shrink_and_record(
                    scenario, failing, config, report, corpus, seen_entries
                )
                if entry is not None:
                    say(
                        f"{scenario.name}: shrunk to {entry.entry_id} in "
                        f"{len(entry.shrink_steps)} step(s)"
                    )
        say(
            f"batch {batch_no}: executed {report.executed}/{config.budget}, "
            f"coverage {len(report.coverage)}, corpus {len(report.failures)}"
        )
    return report


def _shrink_and_record(
    scenario: Scenario,
    failing: Set[str],
    config: FuzzConfig,
    report: FuzzReport,
    corpus: Optional[Corpus],
    seen_entries: Set[str],
) -> Optional[CorpusEntry]:
    """Minimize one failing scenario and file it (deduplicated)."""
    ran_differential = "sharded_vs_serial" in failing

    def still_fails(candidate: Scenario) -> bool:
        verdicts, _sig, _res = _evaluate(
            candidate, config.seed, ran_differential, config.shards
        )
        return _failing_set(verdicts) == failing

    shrunk = shrink_scenario(scenario, still_fails, max_evals=config.shrink_evals)
    # Re-judge the reproducer so the corpus records its final verdicts and
    # signature (not the pre-shrink ones), with the flight recorder armed —
    # the filed entry carries the failing run's last-moments dump.
    verdicts, signature, _result = _evaluate(
        shrunk.scenario, config.seed, ran_differential, config.shards, flight=True
    )
    entry = CorpusEntry(
        scenario=shrunk.scenario,
        verdicts=verdicts,
        signature=signature,
        found_from=scenario.fingerprint(),
        shrink_steps=tuple(shrunk.steps),
        root_seed=config.seed,
    )
    if entry.entry_id in seen_entries:
        return None
    seen_entries.add(entry.entry_id)
    report.failures.append(entry)
    if corpus is not None:
        path = corpus.add(entry)
        report.corpus_paths.append(str(path))
    return entry


def replay_entry(entry: CorpusEntry, root_seed: Optional[int] = None) -> List[OracleVerdict]:
    """Re-run a corpus entry and return today's verdicts.

    The differential oracle is re-run iff it was failing when the entry
    was filed.  A healthy tree returns all-ok verdicts for every
    committed entry — that is the ``pytest -m fuzz_corpus`` contract.
    """
    seed = entry.root_seed if root_seed is None else root_seed
    ran_differential = any(
        v.oracle == "sharded_vs_serial" and not v.ok for v in entry.verdicts
    )
    verdicts, _signature, _result = _evaluate(
        entry.scenario, seed, ran_differential, shards=2
    )
    return verdicts
