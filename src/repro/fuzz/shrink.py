"""Greedy dimension-wise shrinking of failing scenarios.

A fuzzer-found failure is only useful if a human can stare at it, so
every failure is minimized before it reaches the corpus: fewer nodes,
fewer flows, smaller flows, no failure storm, no wire loss, no queue
limit, a shorter horizon, default link parameters.  Each *move* proposes
strictly simpler variants of the current reproducer (via the generator's
genome representation, so candidates are valid by construction) and is
accepted only when the caller's predicate confirms the candidate still
fails **the same way**; the loop repeats to a fixpoint.

Moves try their simplest candidate first (classic delta debugging: big
jumps before small ones), and the whole procedure is deterministic — no
randomness, fixed move order — so shrinking the same failure twice yields
the same minimal reproducer.  Behavior stability across candidates comes
from the generator pinning explicit ``sim_seed`` / ``trace_seed`` params:
removing the storm does not reshuffle the traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Tuple

from ..experiments import Scenario
from .generator import SAFETY_HORIZON_NS, assemble, genome_of

__all__ = ["ShrinkResult", "shrink_scenario"]

Genome = Dict[str, object]
Candidate = Tuple[str, Genome]

#: Grid shapes ordered by node count — the "fewer nodes" ladder.
_GRID_LADDER: Tuple[Tuple[int, ...], ...] = (
    (2, 2),
    (2, 3),
    (2, 2, 2),
    (3, 3),
    (2, 2, 3),
    (3, 4),
    (4, 4),
)
_CLOS_LADDER: Tuple[Tuple[int, int], ...] = ((4, 4), (6, 4), (8, 4), (8, 8), (12, 8))


def _nodes(genome: Genome) -> int:
    n = 1
    for d in genome["dims"]:  # type: ignore[union-attr]
        n *= int(d)
    return n


# ----------------------------------------------------------------------
# Moves: each yields (label, candidate genome), simplest first
# ----------------------------------------------------------------------
def _move_fabric(genome: Genome) -> Iterator[Candidate]:
    if genome["topology"] == "clos":
        current = (int(genome["dims"][0]), int(genome["radix"]))  # type: ignore[index]
        for n_hosts, radix in _CLOS_LADDER:
            if (n_hosts, radix) >= current:
                break
            g = dict(genome)
            g["dims"], g["radix"] = (n_hosts,), radix
            yield f"clos {n_hosts}h/r{radix}", g
        return
    current_nodes = _nodes(genome)
    for dims in _GRID_LADDER:
        size = 1
        for d in dims:
            size *= d
        if size >= current_nodes:
            break
        g = dict(genome)
        g["dims"] = dims
        yield f"{genome['topology']} {'x'.join(map(str, dims))}", g


def _move_flows(genome: Genome) -> Iterator[Candidate]:
    n = int(genome["n_flows"])
    for candidate in (1, n // 2, n - 1):
        if 1 <= candidate < n:
            g = dict(genome)
            g["n_flows"] = candidate
            yield f"{candidate} flow(s)", g


def _move_sizes(genome: Genome) -> Iterator[Candidate]:
    if genome["sizes"] == "pareto":
        g = dict(genome)
        g["sizes"] = "fixed"
        g["flow_bytes"] = int(genome["mean_bytes"])
        yield "fixed sizes", g
        return
    fb = int(genome["flow_bytes"])
    for candidate in (max(1, fb // 8), fb // 2):
        if 0 < candidate < fb:
            g = dict(genome)
            g["flow_bytes"] = candidate
            yield f"{candidate} B flows", g


def _move_storm(genome: Genome) -> Iterator[Candidate]:
    if int(genome["fail_links"]) > 0:
        g = dict(genome)
        g["fail_links"] = 0
        yield "no storm", g


def _move_churn(genome: Genome) -> Iterator[Candidate]:
    if genome.get("kind") != "churn":
        return
    if genome["churn_fallback"]:
        g = dict(genome)
        g["churn_fallback"] = False
        yield "no churn fallback", g
    ops = int(genome["churn_ops"])
    for candidate in (10, ops // 4, ops // 2):
        if 0 < candidate < ops:
            g = dict(genome)
            g["churn_ops"] = candidate
            yield f"{candidate} churn op(s)", g
    flows = int(genome["churn_flows"])
    for candidate in (2, flows // 2):
        if 1 < candidate < flows:
            g = dict(genome)
            g["churn_flows"] = candidate
            yield f"{candidate} churn flow cap", g


def _move_loss(genome: Genome) -> Iterator[Candidate]:
    if float(genome["loss_rate"]) > 0:
        g = dict(genome)
        g["loss_rate"] = 0.0
        yield "no wire loss", g


def _move_queue(genome: Genome) -> Iterator[Candidate]:
    if genome["queue_limit_bytes"] is not None:
        g = dict(genome)
        g["queue_limit_bytes"] = None
        yield "no queue limit", g


def _move_horizon(genome: Genome) -> Iterator[Candidate]:
    horizon = int(genome["horizon_ns"] or SAFETY_HORIZON_NS)
    for candidate in (100_000, horizon // 4, horizon // 2):
        if 0 < candidate < horizon:
            g = dict(genome)
            g["horizon_ns"] = candidate
            yield f"horizon {candidate} ns", g


def _move_link(genome: Genome) -> Iterator[Candidate]:
    if genome["latency_ns"] is not None:
        g = dict(genome)
        g["latency_ns"] = None
        yield "default latency", g
    if genome["capacity_bps"] is not None:
        g = dict(genome)
        g["capacity_bps"] = None
        yield "default capacity", g
    if int(genome["mtu_payload"]) != 1500:
        g = dict(genome)
        g["mtu_payload"] = 1500
        yield "default MTU", g


def _move_control(genome: Genome) -> Iterator[Candidate]:
    if genome["stack"] == "r2c2" and genome["control_plane"] == "per_node":
        g = dict(genome)
        g["control_plane"] = "shared"
        yield "shared control plane", g


#: Fixed move order: structural reductions first, parameter cleanup last.
_MOVES = (
    _move_fabric,
    _move_flows,
    _move_sizes,
    _move_storm,
    _move_churn,
    _move_loss,
    _move_queue,
    _move_horizon,
    _move_link,
    _move_control,
)


@dataclass
class ShrinkResult:
    """Outcome of one shrinking run."""

    scenario: Scenario
    #: Accepted move labels, in order.
    steps: List[str] = field(default_factory=list)
    #: Predicate evaluations spent (accepted + rejected candidates).
    evals: int = 0


def shrink_scenario(
    scenario: Scenario,
    still_fails: Callable[[Scenario], bool],
    max_evals: int = 80,
) -> ShrinkResult:
    """Minimize *scenario* while ``still_fails(candidate)`` holds.

    Greedy to a fixpoint: each pass tries every move against the current
    reproducer and keeps the first accepted candidate per move; the loop
    ends when a whole pass accepts nothing or *max_evals* predicate calls
    are spent.  The scenario keeps its name — behavior rides on the
    pinned seed params, not the label.
    """
    result = ShrinkResult(scenario=scenario)
    genome = genome_of(scenario)
    improved = True
    while improved and result.evals < max_evals:
        improved = False
        for move in _MOVES:
            for label, candidate_genome in move(genome):
                if result.evals >= max_evals:
                    return result
                candidate = assemble(candidate_genome, scenario.name)
                if candidate.fingerprint() == result.scenario.fingerprint():
                    # The move changed an axis this scenario kind ignores
                    # (e.g. n_flows on a selection search) — assemble
                    # collapsed it back to the same spec; spend no eval.
                    continue
                result.evals += 1
                if still_fails(candidate):
                    genome = genome_of(candidate)
                    result.scenario = candidate
                    result.steps.append(label)
                    improved = True
                    break  # next move against the smaller reproducer
    return result
