"""Causal critical-path tracing: *why* was this flow's FCT what it was?

The simulator can already say what a flow's FCT was; this module threads
cause links through the engine's events so it can say where the time went.
Every data packet carries an optional :class:`PacketObs` record stamped at
each causal transition — enqueue → dequeue (queueing), dequeue → transmit
finish (serialization), transmit finish → arrival (propagation) — and the
sender-side :class:`ObsSession` accounts the waits that are not packet
residence at all: control-plane stalls (allocated rate 0 until the next
epoch), host-limited waits (the application has not produced the bytes)
and retransmission-timer waits (reliable transport).

The decomposition is **exact by construction**.  Forwarding in
:mod:`repro.sim.network` is instantaneous (an arrival increments the hop
and enqueues on the next port at the same instant), so for the packet that
completes a flow::

    completed_ns - inject_ns == queue_ns + ser_ns + prop_ns      (exactly)

and the sender side tiles into disjoint intervals — every gap between
``start_ns`` and ``inject_ns`` is exactly one of {token-bucket pacing,
control-wait, host-wait, RTO-wait}; pacing is recovered as the remainder::

    pacing_ns = inject_ns - start_ns - ctl_ns - host_ns - rto_ns

so the six components always sum to the measured FCT with **zero** error.
(The CLI and tests still phrase the gate as ±1 ns per the acceptance
criterion; the construction owes 0.)

All quantities are integer simulated nanoseconds — no wall clock — so the
decomposition of a sharded run is byte-identical to the serial run's:
``PacketObs`` pickles across shard boundaries with its packet, sender-side
cumulative waits travel *on* the packet as injection-time snapshots, and
completion-side assembly happens wherever the destination node lives.

Overhead discipline: nothing here touches a default-path simulation.  The
session is only constructed when ``SimConfig(obs=True)``; every hot-path
hook in the network and stacks is an ``is not None`` attribute test
(``packet.obs``, ``stack._obs``), the same pattern the invariant auditor
and null-sink telemetry use to meet the ≤2% disabled-overhead gate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["PacketObs", "ObsSession", "COMPONENT_NAMES"]

#: The causal components every decomposition reports, in display order.
#: ``pacing_ns`` is sender-side residence (token-bucket serialization at
#: the allocated rate for R2C2; ACK-clocked sending for TCP);
#: ``serialization_ns`` is per-hop wire transmission time.
COMPONENT_NAMES = (
    "pacing_ns",
    "serialization_ns",
    "queueing_ns",
    "propagation_ns",
    "control_wait_ns",
    "host_wait_ns",
    "retransmit_wait_ns",
)


class PacketObs:
    """Per-packet causal record, carried on ``SimPacket.obs``.

    ``ctl_ns`` / ``host_ns`` / ``rto_ns`` are snapshots of the flow's
    cumulative sender-side waits at injection time (the completing packet
    may not be the last-injected one, so per-flow cumulative counters
    alone would over-count); the remaining fields accumulate along the
    packet's network path.
    """

    __slots__ = (
        "inject_ns",
        "ctl_ns",
        "host_ns",
        "rto_ns",
        "enq_ns",
        "queue_ns",
        "ser_ns",
        "prop_ns",
        "last_finish_ns",
        "hops",
    )

    def __init__(self, inject_ns: int, ctl_ns: int, host_ns: int, rto_ns: int) -> None:
        self.inject_ns = inject_ns
        self.ctl_ns = ctl_ns
        self.host_ns = host_ns
        self.rto_ns = rto_ns
        #: enqueue timestamp at the port the packet currently waits in.
        self.enq_ns = inject_ns
        self.queue_ns = 0
        self.ser_ns = 0
        self.prop_ns = 0
        #: transmission-finish time at the last hop (propagation is
        #: accounted receiver-side: arrival - last finish, which is what
        #: makes zero-latency cut ports correct across shards).
        self.last_finish_ns: Optional[int] = None
        #: per-hop queueing record: (src, dst, queue_wait_ns).
        self.hops: List[Tuple[int, int, int]] = []


class _SenderObs:
    """Cumulative sender-side wait accounting for one flow."""

    __slots__ = ("ctl_ns", "host_ns", "rto_ns", "stall_since")

    def __init__(self) -> None:
        self.ctl_ns = 0
        self.host_ns = 0
        self.rto_ns = 0
        #: set while the flow sits in a rate<=0 stall (cleared on resume).
        self.stall_since: Optional[int] = None


class ObsSession:
    """One simulation's causal-tracing state (sender + completion sides).

    In a sharded run each shard owns a session; sender-side state lives in
    the source node's shard, completion records in the destination node's
    shard, and the coordinator merges the (disjoint) completion maps.
    """

    def __init__(self, top_k: int = 5) -> None:
        self.top_k = top_k
        self._senders: Dict[int, _SenderObs] = {}
        #: flow_id -> finished decomposition dict (see :meth:`results`).
        self.completed: Dict[int, dict] = {}
        #: flow_id -> {(src, dst): [queue_ns, packets]} over *all*
        #: delivered data packets (not just the completing one).
        self._hop_queue: Dict[int, Dict[Tuple[int, int], List[int]]] = {}

    # ------------------------------------------------------------------
    # Sender side (called from the host stacks)
    # ------------------------------------------------------------------
    def _sender(self, flow_id: int) -> _SenderObs:
        sender = self._senders.get(flow_id)
        if sender is None:
            sender = self._senders[flow_id] = _SenderObs()
        return sender

    def on_stall(self, flow_id: int, now_ns: int) -> None:
        """Rate dropped to zero: a control-wait interval (maybe) begins."""
        sender = self._sender(flow_id)
        if sender.stall_since is None:
            sender.stall_since = now_ns

    def on_resume(self, flow_id: int, now_ns: int) -> None:
        """Rate is positive again: close any open control-wait interval."""
        sender = self._sender(flow_id)
        if sender.stall_since is not None:
            sender.ctl_ns += now_ns - sender.stall_since
            sender.stall_since = None

    def on_host_wait(self, flow_id: int, delay_ns: int) -> None:
        """The application is the bottleneck for exactly *delay_ns*."""
        self._sender(flow_id).host_ns += delay_ns

    def on_rto_wait(self, flow_id: int, delay_ns: int) -> None:
        """All outstanding segments are within RTO for exactly *delay_ns*."""
        self._sender(flow_id).rto_ns += delay_ns

    def on_inject(self, flow, packet, now_ns: int) -> None:
        """Stamp a fresh :class:`PacketObs` with injection-time snapshots."""
        sender = self._sender(flow.flow_id)
        packet.obs = PacketObs(now_ns, sender.ctl_ns, sender.host_ns, sender.rto_ns)

    # ------------------------------------------------------------------
    # Completion side (called from the destination stack)
    # ------------------------------------------------------------------
    def on_delivered(self, flow, packet, now_ns: int) -> None:
        """A data packet with an obs record reached its destination stack.

        Aggregates per-hop queueing for the flow and, when this delivery
        is the one that set ``flow.completed_ns``, freezes the flow's
        decomposition from the completing packet's record.
        """
        obs = packet.obs
        hop_map = self._hop_queue.get(flow.flow_id)
        if hop_map is None:
            hop_map = self._hop_queue[flow.flow_id] = {}
        for src, dst, queue_ns in obs.hops:
            cell = hop_map.get((src, dst))
            if cell is None:
                hop_map[(src, dst)] = [queue_ns, 1]
            else:
                cell[0] += queue_ns
                cell[1] += 1
        if flow.completed_ns != now_ns or flow.flow_id in self.completed:
            return
        fct_ns = flow.completed_ns - flow.start_ns
        pacing_ns = (
            obs.inject_ns - flow.start_ns - obs.ctl_ns - obs.host_ns - obs.rto_ns
        )
        self.completed[flow.flow_id] = {
            "flow_id": flow.flow_id,
            "src": flow.src,
            "dst": flow.dst,
            "size_bytes": flow.size_bytes,
            "start_ns": flow.start_ns,
            "inject_ns": obs.inject_ns,
            "completed_ns": flow.completed_ns,
            "fct_ns": fct_ns,
            "components": {
                "pacing_ns": pacing_ns,
                "serialization_ns": obs.ser_ns,
                "queueing_ns": obs.queue_ns,
                "propagation_ns": obs.prop_ns,
                "control_wait_ns": obs.ctl_ns,
                "host_wait_ns": obs.host_ns,
                "retransmit_wait_ns": obs.rto_ns,
            },
            "critical_path": [
                {"src": src, "dst": dst, "queue_ns": queue_ns}
                for src, dst, queue_ns in obs.hops
            ],
        }

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def results(self) -> Dict[int, dict]:
        """Finished decompositions plus per-flow top-K queueing culprits.

        Pure integers and strings throughout, so the dict is JSON-stable
        and byte-identical between serial and sharded executions.
        """
        out: Dict[int, dict] = {}
        for flow_id, record in self.completed.items():
            entry = dict(record)
            hop_map = self._hop_queue.get(flow_id, {})
            ranked = sorted(
                hop_map.items(), key=lambda kv: (-kv[1][0], kv[0])
            )[: self.top_k]
            entry["top_queue_hops"] = [
                {
                    "src": src,
                    "dst": dst,
                    "queue_ns": total,
                    "packets": packets,
                }
                for (src, dst), (total, packets) in ranked
            ]
            out[flow_id] = entry
        return out

    @staticmethod
    def merge(results: List[Dict[int, dict]]) -> Dict[int, dict]:
        """Union per-shard completion maps (disjoint by destination)."""
        merged: Dict[int, dict] = {}
        for part in results:
            if part:
                merged.update(part)
        return {flow_id: merged[flow_id] for flow_id in sorted(merged)}


def check_decomposition(record: dict, tolerance_ns: int = 1) -> Optional[str]:
    """Return an error string if *record*'s components do not sum to FCT."""
    total = sum(record["components"].values())
    if abs(total - record["fct_ns"]) > tolerance_ns:
        return (
            f"flow {record['flow_id']}: components sum to {total} ns, "
            f"fct is {record['fct_ns']} ns"
        )
    for name, value in record["components"].items():
        if value < 0:
            return f"flow {record['flow_id']}: component {name} is negative ({value})"
    return None
