"""The crash flight recorder: last-moments context for every subsystem.

A :class:`FlightRecorder` keeps one bounded ring buffer per subsystem
("engine", "network", "stack", "controller", "auditor", ...) of recent
structured events.  When a simulation crashes, trips an oracle, or fails
an audit, :meth:`dump` serializes the rings as one JSON document — so a
fuzzer-found reproducer ships with the events that led up to the failure,
not just the failure itself.

Determinism: every recorded event carries **simulated** time only.  Two
runs of the same seeds produce byte-identical dumps, which keeps corpus
entries content-stable and diffs reviewable.

Overhead discipline: recording is opt-in (``SimConfig(flight=True)``) and
every producer guards with an ``is not None`` attribute test, so the
disabled path adds nothing beyond the guards already covered by the
telemetry overhead gate.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional

__all__ = ["FlightRecorder", "FlightBatchObserver", "FLIGHT_SCHEMA"]

#: Dump document schema version (bump on layout changes).
FLIGHT_SCHEMA = 1

#: Default per-subsystem ring capacity.
DEFAULT_LIMIT = 256


class FlightRecorder:
    """Bounded per-subsystem rings of recent structured events."""

    def __init__(self, limit: int = DEFAULT_LIMIT) -> None:
        if limit < 1:
            raise ValueError("flight ring limit must be >= 1")
        self.limit = limit
        self._rings: Dict[str, deque] = {}
        self._dropped: Dict[str, int] = {}

    def record(self, subsystem: str, kind: str, t_ns: int, **fields) -> None:
        """Append one event to *subsystem*'s ring (evicting the oldest)."""
        ring = self._rings.get(subsystem)
        if ring is None:
            ring = self._rings[subsystem] = deque(maxlen=self.limit)
            self._dropped[subsystem] = 0
        if len(ring) == self.limit:
            self._dropped[subsystem] += 1
        event = {"t_ns": t_ns, "kind": kind}
        if fields:
            event.update(fields)
        ring.append(event)

    def dump(self, reason: Optional[str] = None) -> dict:
        """Serialize every ring as one JSON-able document."""
        doc: dict = {
            "schema": FLIGHT_SCHEMA,
            "limit": self.limit,
            "subsystems": {
                name: {
                    "dropped": self._dropped[name],
                    "events": list(self._rings[name]),
                }
                for name in sorted(self._rings)
            },
        }
        if reason is not None:
            doc["reason"] = reason
        return doc

    def __len__(self) -> int:
        return sum(len(ring) for ring in self._rings.values())


class FlightBatchObserver:
    """Event-loop batch observer feeding the ``engine`` ring.

    Attached via :meth:`repro.sim.engine.EventLoop.attach_batch_observer`
    (which tees with any telemetry span hook already installed).
    """

    __slots__ = ("_flight",)

    def __init__(self, flight: FlightRecorder) -> None:
        self._flight = flight

    def on_batch(self, start_ns: int, end_ns: int, processed: int) -> None:
        self._flight.record(
            "engine", "batch", end_ns, start_ns=start_ns, events=processed
        )
