"""Rendering causal decompositions as human-readable reports.

The data comes from :meth:`repro.obs.causal.ObsSession.results` (or the
merged sharded equivalent); this module only formats.  Reports are pure
functions of simulated-time integers, so the serial and sharded renderings
of one scenario are byte-identical.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .causal import COMPONENT_NAMES, check_decomposition

__all__ = ["explain_flow_lines", "explain_report"]

_LABELS = {
    "pacing_ns": "pacing (sender)",
    "serialization_ns": "serialization",
    "queueing_ns": "queueing",
    "propagation_ns": "propagation",
    "control_wait_ns": "control wait",
    "host_wait_ns": "host wait",
    "retransmit_wait_ns": "retransmit wait",
}


def _us(value_ns: int) -> str:
    return f"{value_ns / 1000.0:.3f}"


def explain_flow_lines(record: Dict) -> List[str]:
    """Render one flow's decomposition as report lines."""
    fct = record["fct_ns"]
    lines = [
        (
            f"flow {record['flow_id']}  {record['src']} -> {record['dst']}  "
            f"{record['size_bytes']} B  fct {_us(fct)} us"
        ),
        (
            f"  start {record['start_ns']} ns  "
            f"completing-packet inject {record['inject_ns']} ns  "
            f"completed {record['completed_ns']} ns"
        ),
    ]
    components = record["components"]
    for name in COMPONENT_NAMES:
        value = components[name]
        share = (100.0 * value / fct) if fct else 0.0
        lines.append(
            f"    {_LABELS[name]:<16} {_us(value):>12} us  {share:5.1f}%"
        )
    total = sum(components.values())
    lines.append(f"    {'total':<16} {_us(total):>12} us  (fct {_us(fct)} us)")
    hops = record.get("critical_path", ())
    if hops:
        lines.append("  critical path (completing packet):")
        for hop in hops:
            lines.append(
                f"    {hop['src']:>4} -> {hop['dst']:<4} queued {_us(hop['queue_ns'])} us"
            )
    culprits = record.get("top_queue_hops", ())
    if culprits:
        lines.append("  top queueing culprits (all packets of this flow):")
        for hop in culprits:
            lines.append(
                f"    {hop['src']:>4} -> {hop['dst']:<4} "
                f"queued {_us(hop['queue_ns'])} us over {hop['packets']} pkt(s)"
            )
    return lines


def explain_report(
    flow_obs: Dict[int, Dict],
    flow_ids: Optional[Iterable[int]] = None,
    check: bool = False,
) -> (List[str], List[str]):
    """Render decompositions for *flow_ids* (default: every completed flow).

    Returns ``(lines, errors)``; with ``check=True`` each record is also
    verified to sum to its FCT within 1 ns, and violations land in
    ``errors``.
    """
    lines: List[str] = []
    errors: List[str] = []
    if flow_ids is None:
        selected = sorted(flow_obs)
    else:
        selected = list(flow_ids)
    for flow_id in selected:
        record = flow_obs.get(flow_id)
        if record is None:
            errors.append(f"flow {flow_id}: no decomposition (not completed?)")
            continue
        if check:
            problem = check_decomposition(record)
            if problem is not None:
                errors.append(problem)
        lines.extend(explain_flow_lines(record))
        lines.append("")
    if not selected:
        lines.append("no completed flows to explain")
    return lines, errors
