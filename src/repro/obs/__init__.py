"""repro.obs — the observability layer on top of :mod:`repro.telemetry`.

Three pillars (see DESIGN.md §6f):

* **Causal critical-path tracing** (:mod:`.causal`): thread cause links
  through engine events so each completed flow's FCT decomposes exactly
  into pacing / serialization / queueing / propagation / control-wait /
  host-wait / retransmit-wait components, with per-hop queueing culprits.
  Surfaced by ``repro explain-flow``.
* **Distsim sync profiling** (assembled in
  :mod:`repro.distsim.coordinator`): per-shard, per-round accounting of
  the conservative windowed protocol — the measurement substrate for the
  distsim speedup work.
* **Crash flight recorder** (:mod:`.flight`): bounded per-subsystem rings
  of recent structured events, dumped as JSON on crash / oracle violation
  / audit failure and attached to fuzz corpus entries.

All three honor the telemetry layer's disabled-overhead discipline: off by
default, ``is not None`` guards on every hot path.
"""

from .causal import COMPONENT_NAMES, ObsSession, PacketObs, check_decomposition
from .flight import FLIGHT_SCHEMA, FlightBatchObserver, FlightRecorder
from .report import explain_flow_lines, explain_report

__all__ = [
    "COMPONENT_NAMES",
    "FLIGHT_SCHEMA",
    "FlightBatchObserver",
    "FlightRecorder",
    "ObsSession",
    "PacketObs",
    "check_decomposition",
    "explain_flow_lines",
    "explain_report",
]
