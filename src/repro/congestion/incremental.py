"""Incremental weighted max-min across single-flow churn (ROADMAP item).

R2C2's rack controller recomputes rates whenever a flow arrives or finishes
(paper §3.3 / §4).  :func:`~repro.congestion.waterfill.waterfill` does this
from scratch in O(rack); under sustained churn that cost is paid per flow
event even though one arrival or departure usually perturbs only a small
neighbourhood of the rack.  :class:`IncrementalWaterfill` keeps the previous
allocation as ground state and patches it:

1. **Affected set.**  The changed flow's links seed a search: every flow
   sharing a link with the changed flow is affected, and the effect
   propagates further through *saturated* links only (an unsaturated link
   imposes no binding constraint, so flows beyond it keep their rates).
   The closure guarantees the key invariant: *every saturated link touched
   by an affected flow has all of its flows in the affected set*, so each
   unaffected flow's bottleneck link carries no affected flow and its
   max-min conditions survive the change untouched.
2. **Refill.**  The affected flows are re-filled from zero over the
   *residual* capacity (link capacity minus the load of unaffected flows)
   using the same :func:`~repro.congestion.waterfill.fill_matrix` freeze
   rounds as the batch path — O(affected links), not O(rack).
3. **Certification.**  The patched allocation is accepted only when it is
   provably the global max-min optimum: feasibility on every touched link,
   and no refilled flow bottlenecks on a link where an *unaffected* flow
   holds a higher fill level (weighted max-min is unique, so a certified
   candidate *is* the scratch allocation).  Any violation — or any change
   the patch logic does not model (priorities, routing-weight changes,
   failure-view flips) — falls back to a full recompute, counted in
   :attr:`IncrementalWaterfill.fallback_recomputes` so telemetry can track
   the incremental-vs-fallback ratio.

The correctness gate is the churn oracle in :mod:`repro.validation.churn`:
scratch ≡ incremental (≤1e-6) after every operation of seeded 10k-op
churn sequences.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Set

import numpy as np

from ..errors import CongestionControlError
from ..topology.base import Topology
from ..types import FlowId, LinkId
from .flowstate import FlowSpec
from .linkweights import LevelMatrix, WeightProvider
from .waterfill import (
    RateAllocation,
    _REL_TOL,
    effective_capacities,
    fill_matrix,
    waterfill,
)

#: Links whose free capacity is below this fraction of capacity are treated
#: as saturated when growing the affected set.  Slightly looser than the
#: fill's own ``_REL_TOL`` so floating-point dust over-includes (safe)
#: rather than under-includes (would skip flows whose rates must change).
_SAT_TOL = 4.0 * _REL_TOL

#: Tolerance for the optimality certificate (relative to the fill level /
#: link capacity under comparison).  Violations trigger a full recompute.
_CERT_TOL = 16.0 * _REL_TOL


def spec_to_dict(spec: FlowSpec) -> dict:
    """JSON-able dict for one :class:`FlowSpec` (snapshot format)."""
    return {
        "flow_id": spec.flow_id,
        "src": spec.src,
        "dst": spec.dst,
        "protocol": spec.protocol,
        "weight": spec.weight,
        "priority": spec.priority,
        "demand_bps": spec.demand_bps,
        "start_time_ns": spec.start_time_ns,
        "tenant": spec.tenant,
    }


def spec_from_dict(data: dict) -> FlowSpec:
    """Inverse of :func:`spec_to_dict`."""
    return FlowSpec(
        flow_id=int(data["flow_id"]),
        src=int(data["src"]),
        dst=int(data["dst"]),
        protocol=str(data["protocol"]),
        weight=float(data["weight"]),
        priority=int(data["priority"]),
        demand_bps=float(data["demand_bps"]),
        start_time_ns=int(data.get("start_time_ns", 0)),
        tenant=data.get("tenant"),
    )


class IncrementalWaterfill:
    """Maintain a weighted max-min allocation across single-flow churn.

    The mutating operations (:meth:`add_flow`, :meth:`remove_flow`,
    :meth:`update_demand`) try the O(affected) incremental patch first and
    fall back to a full scratch recompute whenever the patch cannot be
    certified optimal; :meth:`update_protocol` and :meth:`rebuild` always
    recompute (they change link memberships in ways the patch does not
    model).  After every operation :meth:`allocation` returns exactly what
    :func:`~repro.congestion.waterfill.waterfill` would compute from
    scratch over the live flow set (max-min allocations are unique).

    Attributes:
        incremental_ops: Operations served by the incremental patch.
        fallback_recomputes: Operations that fell back to a scratch fill.
        fallback_reasons: Fallback count per reason string.
    """

    def __init__(
        self,
        topology: Topology,
        provider: Optional[WeightProvider] = None,
        headroom: float = 0.0,
        capacities: Optional[np.ndarray] = None,
    ) -> None:
        self._topology = topology
        self._provider = provider if provider is not None else WeightProvider(topology)
        self._headroom = float(headroom)
        self._cap = effective_capacities(topology, headroom, capacities)
        self._specs: Dict[FlowId, FlowSpec] = {}
        self._rates: Dict[FlowId, float] = {}
        self._bottleneck: Dict[FlowId, Optional[LinkId]] = {}
        self._rows: Dict[FlowId, tuple] = {}  # flow -> (link_idx, fraction) arrays
        self._link_flows: Dict[LinkId, Set[FlowId]] = {}
        self._load = np.zeros(topology.n_links, dtype=np.float64)
        self._rounds = 0
        self.incremental_ops = 0
        self.fallback_recomputes = 0
        self.fallback_reasons: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def topology(self) -> Topology:
        """The fabric the allocation is computed over."""
        return self._topology

    @property
    def n_flows(self) -> int:
        """Number of live flows."""
        return len(self._specs)

    def flows(self) -> List[FlowSpec]:
        """Live flow specs, sorted by flow id."""
        return [self._specs[fid] for fid in sorted(self._specs)]

    def has_flow(self, flow_id: FlowId) -> bool:
        """Whether *flow_id* is currently announced."""
        return flow_id in self._specs

    def rate(self, flow_id: FlowId) -> float:
        """Current allocated rate of one flow in bits/s."""
        return self._rates[flow_id]

    def bottleneck(self, flow_id: FlowId) -> Optional[LinkId]:
        """The link that froze *flow_id*, or ``None`` (demand/link-less)."""
        return self._bottleneck[flow_id]

    def allocation(self) -> RateAllocation:
        """The live allocation as a :class:`RateAllocation` snapshot."""
        return RateAllocation(
            rates_bps=dict(self._rates),
            bottleneck_link=dict(self._bottleneck),
            link_load_bps=self._load.copy(),
            link_capacity_bps=self._cap.copy(),
            iterations=self._rounds,
        )

    def scratch_allocation(self) -> RateAllocation:
        """Recompute the allocation from scratch without touching state.

        The churn oracle compares this against :meth:`allocation` after
        every operation.
        """
        return waterfill(
            self._topology,
            self.flows(),
            self._provider,
            headroom=0.0,
            capacities=self._cap,
        )

    def stats(self) -> dict:
        """Operation counters: incremental vs fallback and per-reason."""
        total = self.incremental_ops + self.fallback_recomputes
        return {
            "incremental_ops": self.incremental_ops,
            "fallback_recomputes": self.fallback_recomputes,
            "fallback_reasons": dict(sorted(self.fallback_reasons.items())),
            "incremental_ratio": (self.incremental_ops / total) if total else 1.0,
            "n_flows": len(self._specs),
        }

    # ------------------------------------------------------------------ #
    # Mutating operations
    # ------------------------------------------------------------------ #

    def add_flow(self, spec: FlowSpec) -> None:
        """Announce *spec*; re-announcing a live id updates it in place."""
        if spec.flow_id in self._specs:
            self.remove_flow(spec.flow_id)
        if not (0 <= spec.src < self._topology.n_nodes):
            raise CongestionControlError(f"flow {spec.flow_id}: bad src {spec.src}")
        if not (0 <= spec.dst < self._topology.n_nodes):
            raise CongestionControlError(f"flow {spec.flow_id}: bad dst {spec.dst}")
        affected = self._affected_set(seed_links=self._links_of(spec), extra=())
        self._install(spec)
        affected.add(spec.flow_id)
        self._patch_or_recompute(affected, op="add")

    def remove_flow(self, flow_id: FlowId) -> bool:
        """Finish *flow_id*; returns ``False`` when it was not announced."""
        spec = self._specs.get(flow_id)
        if spec is None:
            return False
        # Affected set and saturation are judged on the pre-removal load;
        # then the departed flow's own contribution leaves the load vector
        # before the refill (it is no longer in the flow table).
        affected = self._affected_set(seed_links=self._rows[flow_id][0], extra=())
        affected.discard(flow_id)
        idx, frac = self._rows[flow_id]
        old_rate = self._rates.get(flow_id, 0.0)
        if old_rate:
            self._load[idx] -= frac * old_rate
            np.maximum(self._load, 0.0, out=self._load)
        self._uninstall(flow_id)
        self._patch_or_recompute(affected, op="remove")
        return True

    def update_demand(self, flow_id: FlowId, demand_bps: float) -> bool:
        """Change one flow's demand; returns ``False`` when unknown."""
        spec = self._specs.get(flow_id)
        if spec is None:
            return False
        if spec.demand_bps == demand_bps:
            return True
        self._specs[flow_id] = spec.with_demand(demand_bps)
        affected = self._affected_set(seed_links=self._rows[flow_id][0], extra=())
        affected.add(flow_id)
        self._patch_or_recompute(affected, op="demand")
        return True

    def update_protocol(self, flow_id: FlowId, protocol: str) -> bool:
        """Re-route one flow; always a full recompute (membership change)."""
        spec = self._specs.get(flow_id)
        if spec is None:
            return False
        self._uninstall(flow_id)
        self._install(spec.with_protocol(protocol))
        self._full_recompute("protocol_change")
        return True

    def rebuild(
        self,
        topology: Optional[Topology] = None,
        capacities: Optional[np.ndarray] = None,
    ) -> None:
        """Swap the topology / capacity view (e.g. a failure-view flip).

        Every link's membership and capacity may change, so this is always
        a full recompute.  Flow specs survive; cached link weights are
        rebuilt against the new fabric.
        """
        if topology is not None:
            if topology.n_nodes != self._topology.n_nodes:
                raise CongestionControlError(
                    "rebuild requires a same-node-set topology "
                    f"({topology.n_nodes} != {self._topology.n_nodes})"
                )
            self._topology = topology
            self._provider = WeightProvider(topology)
        self._cap = effective_capacities(self._topology, self._headroom, capacities)
        self._load = np.zeros(self._topology.n_links, dtype=np.float64)
        specs = self.flows()
        self._specs.clear()
        self._rows.clear()
        self._link_flows.clear()
        for spec in specs:
            self._install(spec)
        self._full_recompute("rebuild")

    # ------------------------------------------------------------------ #
    # State round-trip (daemon snapshot/restore)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """JSON-able exact state: specs, rates, bottlenecks, link loads.

        Rates and loads are stored as exact floats (JSON round-trips Python
        floats losslessly), so a restored instance answers allocation
        queries byte-identically to the uninterrupted one.
        """
        return {
            "flows": [spec_to_dict(self._specs[fid]) for fid in sorted(self._specs)],
            "rates": {str(fid): self._rates[fid] for fid in sorted(self._rates)},
            "bottleneck": {
                str(fid): self._bottleneck[fid] for fid in sorted(self._bottleneck)
            },
            "load": self._load.tolist(),
            "rounds": self._rounds,
            "incremental_ops": self.incremental_ops,
            "fallback_recomputes": self.fallback_recomputes,
            "fallback_reasons": dict(sorted(self.fallback_reasons.items())),
        }

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output verbatim (no recompute)."""
        load = np.asarray(state["load"], dtype=np.float64)
        if load.shape != (self._topology.n_links,):
            raise CongestionControlError(
                f"snapshot has {load.size} link loads, topology has "
                f"{self._topology.n_links} links"
            )
        self._specs.clear()
        self._rows.clear()
        self._link_flows.clear()
        for data in state["flows"]:
            self._install(spec_from_dict(data))
        self._rates = {int(k): float(v) for k, v in state["rates"].items()}
        self._bottleneck = {
            int(k): (None if v is None else int(v))
            for k, v in state["bottleneck"].items()
        }
        if set(self._rates) != set(self._specs):
            raise CongestionControlError("snapshot rates do not match its flow set")
        self._load = load
        self._rounds = int(state.get("rounds", 0))
        self.incremental_ops = int(state.get("incremental_ops", 0))
        self.fallback_recomputes = int(state.get("fallback_recomputes", 0))
        self.fallback_reasons = {
            str(k): int(v) for k, v in state.get("fallback_reasons", {}).items()
        }

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _links_of(self, spec: FlowSpec) -> np.ndarray:
        idx, _ = self._provider.weights_for(spec)
        return idx

    def _install(self, spec: FlowSpec) -> None:
        idx, frac = self._provider.weights_for(spec)
        self._specs[spec.flow_id] = spec
        self._rows[spec.flow_id] = (idx, frac)
        for link in idx.tolist():
            self._link_flows.setdefault(link, set()).add(spec.flow_id)

    def _uninstall(self, flow_id: FlowId) -> None:
        idx, _ = self._rows.pop(flow_id)
        del self._specs[flow_id]
        for link in idx.tolist():
            members = self._link_flows.get(link)
            if members is not None:
                members.discard(flow_id)
                if not members:
                    del self._link_flows[link]
        self._rates.pop(flow_id, None)
        self._bottleneck.pop(flow_id, None)

    def _saturated(self, link: int) -> bool:
        cap = self._cap[link]
        return (cap - self._load[link]) <= _SAT_TOL * max(1.0, cap)

    def _affected_set(self, seed_links: Iterable[int], extra: Iterable[FlowId]) -> Set[FlowId]:
        """Closure of flows whose rates may change.

        Seeds: every flow on a link of the changed flow.  Propagation: from
        each affected flow through its *saturated* links to all flows on
        those links, to fixpoint.
        """
        affected: Set[FlowId] = set(extra)
        queue: List[FlowId] = list(affected)
        for link in np.asarray(seed_links).tolist():
            for fid in self._link_flows.get(link, ()):
                if fid not in affected:
                    affected.add(fid)
                    queue.append(fid)
        while queue:
            fid = queue.pop()
            idx, _ = self._rows[fid]
            for link in idx.tolist():
                if not self._saturated(link):
                    continue
                for other in self._link_flows.get(link, ()):
                    if other not in affected:
                        affected.add(other)
                        queue.append(other)
        return affected

    def _patch_or_recompute(self, affected: Set[FlowId], op: str) -> None:
        if any(spec.priority != 0 for spec in self._specs.values()):
            # Priority levels consume capacity hierarchically; the patch
            # models a single level only.
            self._full_recompute("priorities")
            return
        if self._try_patch(affected):
            self.incremental_ops += 1
        else:
            self._full_recompute("certification")

    def _try_patch(self, affected: Set[FlowId]) -> bool:
        """Refill *affected* on residual capacity; certify; commit.

        Returns ``False`` (state untouched except the flow-table change
        already applied) when the certificate fails.
        """
        aff = sorted(fid for fid in affected if fid in self._specs)
        n_links = self._topology.n_links

        # Load contributed by the affected flows under their *old* rates.
        aff_load = np.zeros(n_links, dtype=np.float64)
        for fid in aff:
            idx, frac = self._rows[fid]
            old = self._rates.get(fid, 0.0)
            if old:
                aff_load[idx] += frac * old
        base_load = self._load - aff_load
        np.maximum(base_load, 0.0, out=base_load)
        residual = np.maximum(self._cap - base_load, 0.0)

        if aff:
            rows = [self._rows[fid] for fid in aff]
            matrix = LevelMatrix.build(rows, n_links)
            n_aff = len(aff)
            phi = np.fromiter(
                (self._specs[fid].weight for fid in aff), dtype=np.float64, count=n_aff
            )
            demand = np.fromiter(
                (self._specs[fid].demand_bps for fid in aff),
                dtype=np.float64,
                count=n_aff,
            )
            rate_arr, bn_arr, rounds = fill_matrix(
                matrix, phi, demand, residual,
                linkless_cap=self._topology.capacity_bps,
            )
            new_aff_load = np.zeros(n_links, dtype=np.float64)
            if matrix.indices.size:
                new_aff_load = np.bincount(
                    matrix.indices,
                    weights=matrix.data * np.repeat(rate_arr, matrix.row_nnz),
                    minlength=n_links,
                )
            touched = np.unique(matrix.indices)
        else:
            rate_arr = np.zeros(0, dtype=np.float64)
            bn_arr = np.zeros(0, dtype=np.int64)
            rounds = 0
            new_aff_load = np.zeros(n_links, dtype=np.float64)
            touched = np.empty(0, dtype=np.int64)

        new_load = base_load + new_aff_load

        if not self._certify(aff, rate_arr, bn_arr, new_load, touched, affected):
            return False

        # Commit.
        for pos, fid in enumerate(aff):
            self._rates[fid] = float(rate_arr[pos])
            bn = int(bn_arr[pos])
            self._bottleneck[fid] = None if bn < 0 else bn
        self._load = new_load
        self._rounds += rounds
        return True

    def _certify(
        self,
        aff: List[FlowId],
        rate_arr: np.ndarray,
        bn_arr: np.ndarray,
        new_load: np.ndarray,
        touched: np.ndarray,
        affected: Set[FlowId],
    ) -> bool:
        """Prove the patched allocation is the global max-min optimum.

        Three checks, any failure rejects the patch:

        * feasibility on every touched link;
        * each refilled flow frozen on link *l* holds the maximal fill
          level among all flows on *l* (otherwise true max-min would take
          capacity from the higher-level unaffected flow);
        * no unaffected flow's bottleneck link lost its saturation.
        """
        touched_list = touched.tolist()
        for link in touched_list:
            cap = self._cap[link]
            if new_load[link] > cap + _CERT_TOL * max(1.0, cap):
                return False

        for pos, fid in enumerate(aff):
            link = int(bn_arr[pos])
            if link < 0:
                continue
            phi = self._specs[fid].weight
            level = rate_arr[pos] / phi
            for other in self._link_flows.get(link, ()):
                if other in affected:
                    continue
                other_level = self._rates[other] / self._specs[other].weight
                if other_level > level + _CERT_TOL * max(1.0, level):
                    return False

        for link in touched_list:
            cap = self._cap[link]
            if new_load[link] >= cap - _CERT_TOL * max(1.0, cap):
                continue
            for other in self._link_flows.get(link, ()):
                if other not in affected and self._bottleneck.get(other) == link:
                    # An unaffected flow believed this link was its binding
                    # constraint, but the patch left headroom on it.
                    return False
        return True

    def _full_recompute(self, reason: str) -> None:
        alloc = waterfill(
            self._topology,
            self.flows(),
            self._provider,
            headroom=0.0,
            capacities=self._cap,
        )
        self._rates = dict(alloc.rates_bps)
        self._bottleneck = dict(alloc.bottleneck_link)
        self._load = alloc.link_load_bps
        self._rounds += alloc.iterations
        self.fallback_recomputes += 1
        self.fallback_reasons[reason] = self.fallback_reasons.get(reason, 0) + 1


__all__ = [
    "IncrementalWaterfill",
    "spec_from_dict",
    "spec_to_dict",
]
