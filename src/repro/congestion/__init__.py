"""Rate-based congestion control without probing (paper §3.3).

The pipeline: broadcast-fed :class:`FlowTable` → per-flow link weights
(:class:`WeightProvider`, dictated by each flow's routing protocol) →
weighted max-min :func:`waterfill` with headroom, demands and priorities →
per-flow token-bucket rates enforced at the sender.

:class:`RateController` wires these together per node and implements the
batched-recomputation design; :mod:`~repro.congestion.mp_reference` provides
the exact (path-splitting) max-min optimum for comparison.
"""

from .controller import ControllerConfig, RateController, RecomputeStats
from .demand import DemandEstimator
from .flowstate import FlowSpec, FlowTable
from .incremental import IncrementalWaterfill, spec_from_dict, spec_to_dict
from .linkweights import WeightProvider
from .mp_reference import PathFlow, maxmin_rates, minimal_path_flows
from .policies import (
    AllocationPolicy,
    DeadlinePriority,
    PerFlowFair,
    StaticWeights,
    TenantShares,
    normalize_weights,
)
from .waterfill import RateAllocation, effective_capacities, fill_matrix, waterfill

__all__ = [
    "AllocationPolicy",
    "ControllerConfig",
    "DeadlinePriority",
    "DemandEstimator",
    "FlowSpec",
    "FlowTable",
    "IncrementalWaterfill",
    "PathFlow",
    "PerFlowFair",
    "RateAllocation",
    "RateController",
    "RecomputeStats",
    "StaticWeights",
    "TenantShares",
    "WeightProvider",
    "effective_capacities",
    "maxmin_rates",
    "fill_matrix",
    "minimal_path_flows",
    "normalize_weights",
    "spec_from_dict",
    "spec_to_dict",
    "waterfill",
]
