"""The per-node rate controller: batching, headroom and young-flow policy.

This is the control loop of §3.3.2's "periodic rate computation": flow
events mutate the node's :class:`~repro.congestion.flowstate.FlowTable`
immediately (they arrive by broadcast), but rates are only recomputed every
``recompute_interval_ns`` (ρ, 500 µs in the paper's experiments).

Flows younger than one interval are deliberately *not* rate-limited — the
paper argues batching "naturally filters out very short-lived flows, which
would be pointless to rate-limit" and sizes the 5 % headroom to absorb them.
Until its first epoch a young flow is capped only at the configured initial
rate (one link's line rate by default).

The controller also records the wall-clock cost of every recomputation,
which is the quantity Figure 8 reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import CongestionControlError
from ..lru import BoundedLru
from ..telemetry.trace import TRACK_CONTROLLER
from ..topology.base import Topology
from ..types import FlowId, NodeId, usec
from .flowstate import FlowSpec, FlowTable
from .linkweights import WeightProvider
from .waterfill import RateAllocation, effective_capacities, waterfill


@dataclass
class ControllerConfig:
    """Tunables of the rate controller.

    Attributes:
        headroom: Link-capacity fraction withheld from allocation (§3.3.2);
            the paper uses 5 %.
        recompute_interval_ns: Batch recomputation period ρ; 500 µs default.
        exempt_young_flows: Whether flows that have not yet seen an epoch
            boundary ride the headroom uncapped (paper behaviour).  When
            False every flow start triggers an immediate recomputation
            (the §3.3.1 strawman).
        initial_rate_policy: Rate granted to young flows (flows that have
            not yet been covered by an epoch).  The paper's §3.1 narrative
            is that "the sender computes the flow's fair allocation and
            rate limits it accordingly" at flow start, while §3.3.2 batches
            *re*-computation; the policies trade fidelity for cost:

            * ``"local_waterfill"`` (default, the §3.1 reading): the sender
              runs one water-fill when its own flow starts and pins the new
              flow's rate from it; everyone else's rates update at epochs.
            * ``"mean_allocated"``: cheap estimate — the mean rate of the
              last allocation, capped at one link's line rate.
            * ``"line_rate"``: blast at one link's capacity and let the
              headroom absorb it (the most literal batching-only reading).
        initial_rate_bps: Explicit override for the young-flow rate; when
            set, it wins over the policy.
    """

    headroom: float = 0.05
    recompute_interval_ns: int = usec(500)
    exempt_young_flows: bool = True
    initial_rate_policy: str = "local_waterfill"
    initial_rate_bps: Optional[float] = None

    def __post_init__(self) -> None:
        if self.recompute_interval_ns < 0:
            raise CongestionControlError(
                f"recompute interval must be >= 0, got {self.recompute_interval_ns}"
            )
        if self.initial_rate_policy not in (
            "local_waterfill",
            "mean_allocated",
            "line_rate",
        ):
            raise CongestionControlError(
                f"unknown initial_rate_policy {self.initial_rate_policy!r}"
            )


@dataclass
class RecomputeStats:
    """Wall-clock accounting of one rate recomputation (Figure 8).

    Attributes:
        skipped: True when the epoch was short-circuited because the flow
            table had not changed since the last allocation — the recorded
            duration is then just the cost of the generation check.
    """

    at_ns: int
    n_flows: int
    duration_ns: int
    interval_ns: int
    skipped: bool = False

    @property
    def cpu_overhead(self) -> float:
        """Fraction of the interval spent recomputing; > 1 is infeasible."""
        if self.interval_ns <= 0:
            return float("inf") if self.duration_ns else 0.0
        return self.duration_ns / self.interval_ns


class RateController:
    """One node's congestion-control brain.

    The controller is deliberately independent of the simulator: the
    simulator, the Maze emulator and the plain library API all drive the
    same object, which is what makes the Figure 7 cross-validation a check
    of two data planes rather than two control planes.
    """

    def __init__(
        self,
        topology: Topology,
        node: NodeId,
        provider: Optional[WeightProvider] = None,
        config: Optional[ControllerConfig] = None,
        allocation_cache: Optional[Dict] = None,
        telemetry=None,
    ) -> None:
        self._topology = topology
        self._node = node
        self._provider = provider if provider is not None else WeightProvider(topology)
        self._config = config or ControllerConfig()
        # Telemetry instruments, resolved once; with telemetry disabled the
        # epoch path pays a single falsy test per instrument (see
        # repro.telemetry).  Epoch trace events carry only simulated-time
        # quantities — wall-clock durations stay in RecomputeStats so
        # traces are byte-identical across equally seeded runs.
        if telemetry is not None:
            # ``or None``: disabled (falsy null) sinks collapse to None so
            # the per-epoch guards test None at C speed.
            self._ctr_recomputed = telemetry.metrics.counter(
                "controller.epochs", outcome="recomputed"
            ) or None
            self._ctr_skipped = telemetry.metrics.counter(
                "controller.epochs", outcome="skipped"
            ) or None
            self._gauge_flows = telemetry.metrics.gauge("controller.table_flows") or None
            self._trace = telemetry.trace or None
        else:
            self._ctr_recomputed = None
            self._ctr_skipped = None
            self._gauge_flows = None
            self._trace = None
        # Optional cross-controller memo: rack nodes with identical tables
        # compute identical allocations, so simulations running one
        # controller per node share this dict (keyed by table contents) and
        # pay for each distinct water-fill once.
        self._allocation_cache = allocation_cache
        self._table = FlowTable()
        self._effective_cap = None  # headroom-adjusted capacities, lazy
        self._allocation: Optional[RateAllocation] = None
        self._allocated_generation = -1
        self._known_at_last_epoch: set = set()
        #: rates pinned by sender-local computation at flow start
        #: (the "local_waterfill" policy); cleared at every epoch.
        self._young_rates: Dict[FlowId, float] = {}
        self._next_epoch_ns = self._config.recompute_interval_ns
        self._stats: List[RecomputeStats] = []

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def node(self) -> NodeId:
        """The node this controller runs on."""
        return self._node

    @property
    def config(self) -> ControllerConfig:
        """The controller's configuration."""
        return self._config

    @property
    def table(self) -> FlowTable:
        """The node's view of the rack traffic matrix."""
        return self._table

    @property
    def provider(self) -> WeightProvider:
        """The shared link-weight cache."""
        return self._provider

    @property
    def allocation(self) -> Optional[RateAllocation]:
        """The most recent allocation, or ``None`` before the first epoch."""
        return self._allocation

    @property
    def stats(self) -> List[RecomputeStats]:
        """Per-recomputation wall-clock statistics."""
        return self._stats

    def initial_rate_bps(self) -> float:
        """The rate cap granted to flows before their first epoch."""
        if self._config.initial_rate_bps is not None:
            return self._config.initial_rate_bps
        capacity = self._topology.capacity_bps
        if (
            self._config.initial_rate_policy == "mean_allocated"
            and self._allocation is not None
            and self._allocation.rates_bps
        ):
            rates = self._allocation.rates_bps.values()
            return min(capacity, sum(rates) / len(rates))
        return capacity

    # ------------------------------------------------------------------
    # Control-plane events (driven by broadcast receipt or local flows)
    # ------------------------------------------------------------------
    def on_flow_started(self, spec: FlowSpec, now_ns: int = 0) -> None:
        """Record a flow start (local or learned by broadcast)."""
        self._table.add(spec)
        if not self._config.exempt_young_flows:
            self.recompute(now_ns)
        elif self._config.initial_rate_policy == "local_waterfill":
            # §3.1: the sender computes the new flow's fair allocation right
            # away; the batched epoch will true everything up later.
            allocation = self._cached_waterfill(self._table.snapshot())
            self._young_rates[spec.flow_id] = allocation.rates_bps[spec.flow_id]

    def on_flow_finished(self, flow_id: FlowId, now_ns: int = 0) -> None:
        """Record a flow finish."""
        self._table.remove(flow_id)
        self._young_rates.pop(flow_id, None)
        if not self._config.exempt_young_flows:
            self.recompute(now_ns)

    def on_demand_update(self, flow_id: FlowId, demand_bps: float) -> None:
        """Record a demand-update broadcast."""
        self._table.update_demand(flow_id, demand_bps)

    def on_protocol_update(self, flow_id: FlowId, protocol: str) -> None:
        """Record a routing-reassignment broadcast (§3.4)."""
        self._table.update_protocol(flow_id, protocol)

    # ------------------------------------------------------------------
    # Rate computation
    # ------------------------------------------------------------------
    def next_epoch_ns(self) -> int:
        """Absolute time of the next scheduled recomputation."""
        return self._next_epoch_ns

    def maybe_recompute(self, now_ns: int) -> Optional[RateAllocation]:
        """Run the periodic recomputation if an epoch boundary passed."""
        if now_ns < self._next_epoch_ns:
            return None
        interval = max(self._config.recompute_interval_ns, 1)
        # Skip ahead over idle epochs instead of looping through them.
        missed = (now_ns - self._next_epoch_ns) // interval + 1
        self._next_epoch_ns += missed * interval
        return self.recompute(now_ns)

    def recompute(self, now_ns: int) -> RateAllocation:
        """Water-fill over the node's current view; records wall-clock cost.

        An epoch where the flow table's generation is unchanged since the
        last allocation is short-circuited: nothing a water-fill reads has
        moved, so the previous allocation is returned and a zero-cost
        :class:`RecomputeStats` (``skipped=True``) is recorded.
        """
        started = time.perf_counter_ns()
        if (
            self._allocation is not None
            and self._table.generation == self._allocated_generation
        ):
            # _young_rates is necessarily empty here: pinning one requires a
            # table.add(), which would have bumped the generation.
            self._stats.append(
                RecomputeStats(
                    at_ns=now_ns,
                    n_flows=len(self._table),
                    duration_ns=time.perf_counter_ns() - started,
                    interval_ns=self._config.recompute_interval_ns,
                    skipped=True,
                )
            )
            if self._ctr_skipped:
                self._ctr_skipped.inc()
            if self._trace:
                self._trace.instant(
                    "epoch",
                    "controller",
                    now_ns,
                    tid=TRACK_CONTROLLER,
                    args={
                        "outcome": "skipped",
                        "n_flows": len(self._table),
                        "node": self._node,
                    },
                )
            return self._allocation
        flows = self._table.snapshot()
        allocation = self._cached_waterfill(flows)
        duration = time.perf_counter_ns() - started
        self._allocation = allocation
        self._allocated_generation = self._table.generation
        self._known_at_last_epoch = {spec.flow_id for spec in flows}
        self._young_rates.clear()
        self._stats.append(
            RecomputeStats(
                at_ns=now_ns,
                n_flows=len(flows),
                duration_ns=duration,
                interval_ns=self._config.recompute_interval_ns,
            )
        )
        if self._ctr_recomputed:
            self._ctr_recomputed.inc()
            self._gauge_flows.set(len(flows))
        if self._trace:
            self._trace.instant(
                "epoch",
                "controller",
                now_ns,
                tid=TRACK_CONTROLLER,
                args={
                    "outcome": "recomputed",
                    "n_flows": len(flows),
                    "node": self._node,
                },
            )
        return allocation

    def _effective_capacities(self):
        """The headroom-adjusted capacity vector, computed once per node."""
        if self._effective_cap is None:
            self._effective_cap = effective_capacities(
                self._topology, self._config.headroom
            )
        return self._effective_cap

    def _cached_waterfill(self, flows) -> RateAllocation:
        """Water-fill with optional cross-controller memoization.

        The memo key is O(1): the table's order-independent content
        fingerprint plus the headroom.  Controllers on different nodes whose
        broadcast views agree therefore share one fill per distinct traffic
        matrix, without hashing an O(n) tuple of specs per epoch.  The
        headroom-adjusted capacity vector is likewise computed once and
        passed straight through (``headroom=0.0``), which is mathematically
        identical to recomputing it per fill.
        """
        if self._allocation_cache is None:
            return waterfill(
                self._topology,
                flows,
                self._provider,
                headroom=0.0,
                capacities=self._effective_capacities(),
            )
        key = (self._config.headroom,) + self._table.content_key
        allocation = self._allocation_cache.get(key)
        if allocation is None:
            allocation = waterfill(
                self._topology,
                flows,
                self._provider,
                headroom=0.0,
                capacities=self._effective_capacities(),
            )
            if not isinstance(self._allocation_cache, BoundedLru):
                # Legacy plain-dict caches: bound by FIFO eviction.
                if len(self._allocation_cache) >= 4096:
                    self._allocation_cache.pop(next(iter(self._allocation_cache)))
            self._allocation_cache[key] = allocation
        return allocation

    def rate_for(self, flow_id: FlowId) -> float:
        """The sending rate currently enforced for *flow_id*.

        Young flows (not yet covered by an epoch) get the initial rate; all
        others get their allocated share, additionally clipped at their
        announced demand.
        """
        spec = self._table.get(flow_id)
        if spec is None:
            raise CongestionControlError(f"unknown flow {flow_id}")
        if (
            self._allocation is None
            or flow_id not in self._known_at_last_epoch
            or flow_id not in self._allocation.rates_bps
        ):
            pinned = self._young_rates.get(flow_id)
            if pinned is not None:
                return min(pinned, spec.demand_bps)
            return min(self.initial_rate_bps(), spec.demand_bps)
        return min(self._allocation.rates_bps[flow_id], spec.demand_bps)

    def local_rates(self) -> Dict[FlowId, float]:
        """Rates for the flows this node itself is sending."""
        return {
            spec.flow_id: self.rate_for(spec.flow_id)
            for spec in self._table.flows_from(self._node)
        }
