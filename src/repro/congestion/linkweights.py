"""Assembling per-flow link-weight vectors for the allocator.

The paper pre-computes, on each node, "the list of link weights for each
{routing protocol, destination} pair" (§4.2).  :class:`WeightProvider` plays
that role: it owns one instance of each routing protocol bound to the
topology and memoizes the sparse weight vector of every (protocol, src, dst)
triple it is asked for.  ECMP weights additionally depend on the flow id
(the hash picks the path), which the cache key accounts for.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..routing.base import RoutingProtocol, make_protocol
from ..topology.base import Topology
from .flowstate import FlowSpec

#: A sparse weight vector: (link ids, fractions), parallel arrays.
SparseWeights = Tuple[np.ndarray, np.ndarray]


class WeightProvider:
    """Memoized link-weight vectors per flow.

    Args:
        topology: The rack fabric.
        protocols: Optional pre-built protocol instances to reuse (keyed by
            registered name); missing ones are instantiated on demand.
    """

    def __init__(self, topology: Topology, protocols: Dict[str, RoutingProtocol] = None) -> None:
        self._topology = topology
        self._protocols: Dict[str, RoutingProtocol] = dict(protocols or {})
        self._cache: Dict[tuple, SparseWeights] = {}

    @property
    def topology(self) -> Topology:
        """The topology weights are computed on."""
        return self._topology

    def protocol(self, name: str) -> RoutingProtocol:
        """The shared protocol instance for *name* (created lazily)."""
        instance = self._protocols.get(name)
        if instance is None:
            instance = make_protocol(name, self._topology)
            self._protocols[name] = instance
        return instance

    def weights_for(self, spec: FlowSpec) -> SparseWeights:
        """Sparse link-weight vector for one flow."""
        protocol = self.protocol(spec.protocol)
        flow_key = spec.flow_id if _weights_depend_on_flow_id(protocol) else 0
        key = (spec.protocol, spec.src, spec.dst, flow_key)
        cached = self._cache.get(key)
        if cached is None:
            weights = protocol.link_weights(spec.src, spec.dst, flow_id=spec.flow_id)
            if weights:
                items = sorted(weights.items())
                idx = np.fromiter((i for i, _ in items), dtype=np.int64, count=len(items))
                val = np.fromiter((v for _, v in items), dtype=np.float64, count=len(items))
            else:
                idx = np.empty(0, dtype=np.int64)
                val = np.empty(0, dtype=np.float64)
            cached = (idx, val)
            self._cache[key] = cached
        return cached

    def cache_size(self) -> int:
        """Number of memoized weight vectors (for memory-footprint checks)."""
        return len(self._cache)

    def memory_footprint_bytes(self) -> int:
        """Approximate bytes held by cached vectors.

        Mirrors the paper's §4.2 memory estimate (< 6 MB per protocol for a
        512-node rack).
        """
        total = 0
        for idx, val in self._cache.values():
            total += idx.nbytes + val.nbytes
        return total


def _weights_depend_on_flow_id(protocol: RoutingProtocol) -> bool:
    # Only ECMP-style protocols hash the flow id into the route; detect via
    # a marker attribute so third-party protocols can opt in.
    return getattr(protocol, "per_flow_paths", protocol.name == "ecmp")
