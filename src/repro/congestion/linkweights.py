"""Assembling per-flow link-weight vectors for the allocator.

The paper pre-computes, on each node, "the list of link weights for each
{routing protocol, destination} pair" (§4.2).  :class:`WeightProvider` plays
that role: it owns one instance of each routing protocol bound to the
topology and memoizes the sparse weight vector of every (protocol, src, dst)
triple it is asked for.  ECMP weights additionally depend on the flow id
(the hash picks the path), which the cache key accounts for.

On top of the per-flow vectors the provider assembles — and caches — one
CSR weight matrix per water-fill priority level (:class:`LevelMatrix`):
flows are rows, links are columns.  The cache is keyed by the flow set's
``(protocol, src, dst)`` signature, which demands do *not* enter, so the
steady-state control loop (same flows, new demand estimates every epoch)
reuses the assembled matrix and pays only for the vectorized freeze rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..lru import BoundedLru
from ..routing.base import RoutingProtocol, make_protocol
from ..topology.base import Topology
from .flowstate import FlowSpec

#: A sparse weight vector: (link ids, fractions), parallel arrays.
SparseWeights = Tuple[np.ndarray, np.ndarray]

#: Assembled level matrices retained per provider.  Each entry is O(nnz);
#: steady-state workloads cycle through a handful of flow-set signatures.
_MATRIX_CACHE_BOUND = 128


@dataclass(frozen=True)
class LevelMatrix:
    """One priority level's flows-by-links weight matrix, CSR + CSC.

    The CSR arrays (``indptr``/``indices``/``data``) hold each flow's raw
    protocol weights ``w_{f,l}`` row by row (link ids are unique and sorted
    within a row).  The CSC pattern (``col_indptr``/``col_rows``) answers
    the inverse question — which flows cross a link — replacing the Python
    ``flows_on_link`` list-of-lists in the water-fill's freeze rounds.
    """

    n_flows: int
    n_links: int
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    row_nnz: np.ndarray
    col_indptr: np.ndarray
    col_rows: np.ndarray

    @classmethod
    def build(cls, rows: List[SparseWeights], n_links: int) -> "LevelMatrix":
        """Assemble the matrix from per-flow sparse rows."""
        n_flows = len(rows)
        row_nnz = np.fromiter(
            (idx.size for idx, _ in rows), dtype=np.int64, count=n_flows
        )
        indptr = np.zeros(n_flows + 1, dtype=np.int64)
        np.cumsum(row_nnz, out=indptr[1:])
        nnz = int(indptr[-1]) if n_flows else 0
        if nnz:
            indices = np.concatenate([idx for idx, _ in rows])
            data = np.concatenate([val for _, val in rows])
        else:
            indices = np.empty(0, dtype=np.int64)
            data = np.empty(0, dtype=np.float64)
        order = np.argsort(indices, kind="stable")
        col_rows = np.repeat(np.arange(n_flows, dtype=np.int64), row_nnz)[order]
        col_indptr = np.zeros(n_links + 1, dtype=np.int64)
        if nnz:
            np.cumsum(np.bincount(indices, minlength=n_links), out=col_indptr[1:])
        return cls(
            n_flows=n_flows,
            n_links=n_links,
            indptr=indptr,
            indices=indices,
            data=data,
            row_nnz=row_nnz,
            col_indptr=col_indptr,
            col_rows=col_rows,
        )

    def flows_on_link(self, link: int) -> np.ndarray:
        """Row indices of the flows crossing *link*."""
        return self.col_rows[self.col_indptr[link] : self.col_indptr[link + 1]]

    def nbytes(self) -> int:
        """Approximate memory held by the matrix arrays."""
        return (
            self.indptr.nbytes
            + self.indices.nbytes
            + self.data.nbytes
            + self.row_nnz.nbytes
            + self.col_indptr.nbytes
            + self.col_rows.nbytes
        )


class WeightProvider:
    """Memoized link-weight vectors per flow.

    Args:
        topology: The rack fabric.
        protocols: Optional pre-built protocol instances to reuse (keyed by
            registered name); missing ones are instantiated on demand.
    """

    def __init__(self, topology: Topology, protocols: Dict[str, RoutingProtocol] = None) -> None:
        self._topology = topology
        self._protocols: Dict[str, RoutingProtocol] = dict(protocols or {})
        self._cache: Dict[tuple, SparseWeights] = {}
        self._matrix_cache = BoundedLru(_MATRIX_CACHE_BOUND)
        #: per protocol name: do weights depend on the flow id (ECMP)?
        self._flow_keyed: Dict[str, bool] = {}

    @property
    def topology(self) -> Topology:
        """The topology weights are computed on."""
        return self._topology

    def protocol(self, name: str) -> RoutingProtocol:
        """The shared protocol instance for *name* (created lazily)."""
        instance = self._protocols.get(name)
        if instance is None:
            instance = make_protocol(name, self._topology)
            self._protocols[name] = instance
        return instance

    def _row_key(self, spec: FlowSpec) -> tuple:
        """The identity of one flow's weight row: (protocol, src, dst[, id])."""
        keyed = self._flow_keyed.get(spec.protocol)
        if keyed is None:
            keyed = _weights_depend_on_flow_id(self.protocol(spec.protocol))
            self._flow_keyed[spec.protocol] = keyed
        return (spec.protocol, spec.src, spec.dst, spec.flow_id if keyed else 0)

    def weights_for(self, spec: FlowSpec) -> SparseWeights:
        """Sparse link-weight vector for one flow."""
        key = self._row_key(spec)
        cached = self._cache.get(key)
        if cached is None:
            protocol = self.protocol(spec.protocol)
            weights = protocol.link_weights(spec.src, spec.dst, flow_id=spec.flow_id)
            if weights:
                items = sorted(weights.items())
                idx = np.fromiter((i for i, _ in items), dtype=np.int64, count=len(items))
                val = np.fromiter((v for _, v in items), dtype=np.float64, count=len(items))
            else:
                idx = np.empty(0, dtype=np.int64)
                val = np.empty(0, dtype=np.float64)
            cached = (idx, val)
            self._cache[key] = cached
        return cached

    def level_matrix(self, flows: Sequence[FlowSpec]) -> LevelMatrix:
        """The assembled CSR/CSC weight matrix for *flows*, cached.

        The cache key is the ordered tuple of row identities — protocol,
        endpoints and (for flow-keyed protocols) the flow id.  Weights,
        priorities and demands are applied by the caller per fill, so an
        epoch that only changed demand estimates hits this cache and skips
        assembly entirely (the water-fill's warm-start path).
        """
        key = tuple(self._row_key(spec) for spec in flows)
        matrix = self._matrix_cache.get(key)
        if matrix is None:
            rows = [self.weights_for(spec) for spec in flows]
            matrix = LevelMatrix.build(rows, self._topology.n_links)
            self._matrix_cache[key] = matrix
        return matrix

    def cache_size(self) -> int:
        """Number of memoized weight vectors (for memory-footprint checks)."""
        return len(self._cache)

    def memory_footprint_bytes(self) -> int:
        """Approximate bytes held by cached vectors and level matrices.

        Mirrors the paper's §4.2 memory estimate (< 6 MB per protocol for a
        512-node rack).
        """
        total = 0
        for idx, val in self._cache.values():
            total += idx.nbytes + val.nbytes
        for matrix in self._matrix_cache.values():
            total += matrix.nbytes()
        return total


def _weights_depend_on_flow_id(protocol: RoutingProtocol) -> bool:
    # Only ECMP-style protocols hash the flow id into the route; detect via
    # a marker attribute so third-party protocols can opt in.
    return getattr(protocol, "per_flow_paths", protocol.name == "ecmp")
