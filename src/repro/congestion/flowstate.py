"""Flow descriptions and the per-node flow table.

Every rack node learns about all active flows from broadcast packets (§3.1)
and stores them in a :class:`FlowTable` — its local view of the global
traffic matrix.  A :class:`FlowSpec` carries exactly the fields the 16-byte
broadcast packet announces: endpoints, allocation weight, priority, demand
and the routing protocol in use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional

from ..errors import CongestionControlError
from ..types import FlowId, NodeId


@dataclass(frozen=True)
class FlowSpec:
    """Control-plane description of one flow.

    Attributes:
        flow_id: Rack-unique flow identifier.
        src: Sending node.
        dst: Receiving node.
        protocol: Registered routing-protocol name (``"rps"``, ``"vlb"``...).
        weight: Allocation weight; rates on a shared bottleneck are split in
            proportion to it (§3.3.2, "Beyond per-flow fairness").
        priority: Allocation priority; **lower numbers allocate first** and
            each priority level only receives capacity left over by the
            levels before it.
        demand_bps: Estimated maximum rate the flow can actually use
            (host-limited flows, §3.3.2); ``inf`` means network-limited.
        start_time_ns: When the flow started, used by the batching logic to
            exempt very young flows from rate-limiting.
        tenant: Optional tenant tag consumed by allocation policies.
    """

    flow_id: FlowId
    src: NodeId
    dst: NodeId
    protocol: str = "rps"
    weight: float = 1.0
    priority: int = 0
    demand_bps: float = math.inf
    start_time_ns: int = 0
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise CongestionControlError(
                f"flow {self.flow_id}: weight must be positive, got {self.weight}"
            )
        if self.priority < 0:
            raise CongestionControlError(
                f"flow {self.flow_id}: priority must be >= 0, got {self.priority}"
            )
        if self.demand_bps <= 0:
            raise CongestionControlError(
                f"flow {self.flow_id}: demand must be positive, got {self.demand_bps}"
            )

    def with_demand(self, demand_bps: float) -> "FlowSpec":
        """Copy of this spec with an updated demand estimate."""
        return replace(self, demand_bps=demand_bps)

    def with_protocol(self, protocol: str) -> "FlowSpec":
        """Copy of this spec routed by a different protocol (§3.4)."""
        return replace(self, protocol=protocol)


#: Independent salts folding each spec into the table's content fingerprint.
_FP_SALT_A = 0x9E3779B97F4A7C15
_FP_SALT_B = 0xC2B2AE3D27D4EB4F
_FP_MASK = (1 << 64) - 1


def _spec_fingerprint(spec: FlowSpec, salt: int) -> int:
    """64-bit hash of the allocation-relevant fields of one spec."""
    return (
        hash(
            (
                salt,
                spec.flow_id,
                spec.src,
                spec.dst,
                spec.protocol,
                spec.weight,
                spec.priority,
                spec.demand_bps,
            )
        )
        & _FP_MASK
    )


class FlowTable:
    """A node's view of all active flows in the rack.

    Mutations bump a generation counter so consumers (the rate controller)
    can cheaply detect whether anything changed since their last computation.
    The table also maintains an O(1) *content* fingerprint — an XOR fold of
    two independently salted hashes over every spec's allocation-relevant
    fields — so controllers on different nodes whose views happen to agree
    (same flows, possibly learned in different broadcast order) produce the
    same :attr:`content_key` and can share memoized allocations.
    """

    def __init__(self) -> None:
        self._flows: Dict[FlowId, FlowSpec] = {}
        self._generation = 0
        self._structure_generation = 0
        self._fp_a = 0
        self._fp_b = 0

    @property
    def generation(self) -> int:
        """Monotonic counter, incremented on every mutation."""
        return self._generation

    @property
    def structure_generation(self) -> int:
        """Counter bumped on add/remove/reroute but *not* on demand updates.

        The water-fill's weight matrix depends only on structure, so a
        controller can warm-start (reuse the assembled matrix) whenever this
        counter is unchanged even though demands churned.
        """
        return self._structure_generation

    @property
    def content_key(self) -> tuple:
        """Order-independent O(1) digest of the table contents.

        Two tables holding the same specs — regardless of mutation history —
        have equal keys; the double-salted 64-bit fold makes accidental
        collisions between *different* contents vanishingly unlikely.
        """
        return (len(self._flows), self._fp_a, self._fp_b)

    def _fold_in(self, spec: FlowSpec) -> None:
        self._fp_a ^= _spec_fingerprint(spec, _FP_SALT_A)
        self._fp_b ^= _spec_fingerprint(spec, _FP_SALT_B)

    # XOR is its own inverse, so folding a spec out is folding it in again.
    _fold_out = _fold_in

    def __len__(self) -> int:
        return len(self._flows)

    def __contains__(self, flow_id: FlowId) -> bool:
        return flow_id in self._flows

    def __iter__(self) -> Iterator[FlowSpec]:
        return iter(self._flows.values())

    def get(self, flow_id: FlowId) -> Optional[FlowSpec]:
        """The spec for *flow_id*, or ``None`` if unknown."""
        return self._flows.get(flow_id)

    def add(self, spec: FlowSpec) -> None:
        """Record a flow-start announcement.

        Re-announcements (e.g. after a failure triggers a re-broadcast of all
        ongoing flows, §3.2) simply overwrite the stored spec.
        """
        previous = self._flows.get(spec.flow_id)
        if previous is not None:
            self._fold_out(previous)
        self._flows[spec.flow_id] = spec
        self._fold_in(spec)
        self._generation += 1
        self._structure_generation += 1

    def remove(self, flow_id: FlowId) -> bool:
        """Record a flow-finish announcement; returns False if unknown.

        Unknown ids are tolerated because finish broadcasts can outrace the
        corresponding start broadcast along a different tree.
        """
        spec = self._flows.pop(flow_id, None)
        if spec is None:
            return False
        self._fold_out(spec)
        self._generation += 1
        self._structure_generation += 1
        return True

    def update_demand(self, flow_id: FlowId, demand_bps: float) -> bool:
        """Apply a demand-update broadcast; returns False if unknown."""
        spec = self._flows.get(flow_id)
        if spec is None:
            return False
        updated = spec.with_demand(demand_bps)
        self._fold_out(spec)
        self._flows[flow_id] = updated
        self._fold_in(updated)
        self._generation += 1
        return True

    def update_protocol(self, flow_id: FlowId, protocol: str) -> bool:
        """Apply a routing-reassignment broadcast; returns False if unknown."""
        spec = self._flows.get(flow_id)
        if spec is None:
            return False
        updated = spec.with_protocol(protocol)
        self._fold_out(spec)
        self._flows[flow_id] = updated
        self._fold_in(updated)
        self._generation += 1
        self._structure_generation += 1
        return True

    def flows_from(self, node: NodeId) -> List[FlowSpec]:
        """All flows whose sender is *node* (the ones the node rate-limits)."""
        return [spec for spec in self._flows.values() if spec.src == node]

    def snapshot(self) -> List[FlowSpec]:
        """Stable list of all active flows, ordered by flow id."""
        return [self._flows[fid] for fid in sorted(self._flows)]
