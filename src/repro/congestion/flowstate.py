"""Flow descriptions and the per-node flow table.

Every rack node learns about all active flows from broadcast packets (§3.1)
and stores them in a :class:`FlowTable` — its local view of the global
traffic matrix.  A :class:`FlowSpec` carries exactly the fields the 16-byte
broadcast packet announces: endpoints, allocation weight, priority, demand
and the routing protocol in use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional

from ..errors import CongestionControlError
from ..types import FlowId, NodeId


@dataclass(frozen=True)
class FlowSpec:
    """Control-plane description of one flow.

    Attributes:
        flow_id: Rack-unique flow identifier.
        src: Sending node.
        dst: Receiving node.
        protocol: Registered routing-protocol name (``"rps"``, ``"vlb"``...).
        weight: Allocation weight; rates on a shared bottleneck are split in
            proportion to it (§3.3.2, "Beyond per-flow fairness").
        priority: Allocation priority; **lower numbers allocate first** and
            each priority level only receives capacity left over by the
            levels before it.
        demand_bps: Estimated maximum rate the flow can actually use
            (host-limited flows, §3.3.2); ``inf`` means network-limited.
        start_time_ns: When the flow started, used by the batching logic to
            exempt very young flows from rate-limiting.
        tenant: Optional tenant tag consumed by allocation policies.
    """

    flow_id: FlowId
    src: NodeId
    dst: NodeId
    protocol: str = "rps"
    weight: float = 1.0
    priority: int = 0
    demand_bps: float = math.inf
    start_time_ns: int = 0
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise CongestionControlError(
                f"flow {self.flow_id}: weight must be positive, got {self.weight}"
            )
        if self.priority < 0:
            raise CongestionControlError(
                f"flow {self.flow_id}: priority must be >= 0, got {self.priority}"
            )
        if self.demand_bps <= 0:
            raise CongestionControlError(
                f"flow {self.flow_id}: demand must be positive, got {self.demand_bps}"
            )

    def with_demand(self, demand_bps: float) -> "FlowSpec":
        """Copy of this spec with an updated demand estimate."""
        return replace(self, demand_bps=demand_bps)

    def with_protocol(self, protocol: str) -> "FlowSpec":
        """Copy of this spec routed by a different protocol (§3.4)."""
        return replace(self, protocol=protocol)


class FlowTable:
    """A node's view of all active flows in the rack.

    Mutations bump a generation counter so consumers (the rate controller)
    can cheaply detect whether anything changed since their last computation.
    """

    def __init__(self) -> None:
        self._flows: Dict[FlowId, FlowSpec] = {}
        self._generation = 0

    @property
    def generation(self) -> int:
        """Monotonic counter, incremented on every mutation."""
        return self._generation

    def __len__(self) -> int:
        return len(self._flows)

    def __contains__(self, flow_id: FlowId) -> bool:
        return flow_id in self._flows

    def __iter__(self) -> Iterator[FlowSpec]:
        return iter(self._flows.values())

    def get(self, flow_id: FlowId) -> Optional[FlowSpec]:
        """The spec for *flow_id*, or ``None`` if unknown."""
        return self._flows.get(flow_id)

    def add(self, spec: FlowSpec) -> None:
        """Record a flow-start announcement.

        Re-announcements (e.g. after a failure triggers a re-broadcast of all
        ongoing flows, §3.2) simply overwrite the stored spec.
        """
        self._flows[spec.flow_id] = spec
        self._generation += 1

    def remove(self, flow_id: FlowId) -> bool:
        """Record a flow-finish announcement; returns False if unknown.

        Unknown ids are tolerated because finish broadcasts can outrace the
        corresponding start broadcast along a different tree.
        """
        if self._flows.pop(flow_id, None) is None:
            return False
        self._generation += 1
        return True

    def update_demand(self, flow_id: FlowId, demand_bps: float) -> bool:
        """Apply a demand-update broadcast; returns False if unknown."""
        spec = self._flows.get(flow_id)
        if spec is None:
            return False
        self._flows[flow_id] = spec.with_demand(demand_bps)
        self._generation += 1
        return True

    def update_protocol(self, flow_id: FlowId, protocol: str) -> bool:
        """Apply a routing-reassignment broadcast; returns False if unknown."""
        spec = self._flows.get(flow_id)
        if spec is None:
            return False
        self._flows[flow_id] = spec.with_protocol(protocol)
        self._generation += 1
        return True

    def flows_from(self, node: NodeId) -> List[FlowSpec]:
        """All flows whose sender is *node* (the ones the node rate-limits)."""
        return [spec for spec in self._flows.values() if spec.src == node]

    def snapshot(self) -> List[FlowSpec]:
        """Stable list of all active flows, ordered by flow id."""
        return [self._flows[fid] for fid in sorted(self._flows)]
