"""Rate-allocation policies (§3.3.2, "Beyond per-flow fairness").

R2C2 exposes two allocation primitives per flow — a *weight* and a
*priority* — and the paper notes that richer datacenter policies (deadline
based [46], tenant based [37]) map onto them, similar to pFabric.  A policy
here is an object that stamps those two primitives onto flows before they
are announced.

Policies operate on :class:`~repro.congestion.flowstate.FlowSpec` instances
and return updated copies; flows are immutable value objects.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import replace
from typing import Dict, Mapping, Optional, Sequence

from ..errors import CongestionControlError
from .flowstate import FlowSpec


class AllocationPolicy(ABC):
    """Maps flow metadata to the (weight, priority) allocation primitives."""

    @abstractmethod
    def apply(self, spec: FlowSpec, **context) -> FlowSpec:
        """Return a copy of *spec* with policy weight/priority applied."""

    def apply_all(self, specs: Sequence[FlowSpec], **context) -> list:
        """Apply the policy to a batch of flows."""
        return [self.apply(spec, **context) for spec in specs]


class PerFlowFair(AllocationPolicy):
    """The strawman policy: every flow gets the same weight and priority."""

    def apply(self, spec: FlowSpec, **context) -> FlowSpec:
        return replace(spec, weight=1.0, priority=0)


class StaticWeights(AllocationPolicy):
    """Explicit per-flow weights (e.g. chosen by an operator dashboard)."""

    def __init__(self, weights: Mapping[int, float], default: float = 1.0) -> None:
        if default <= 0 or any(w <= 0 for w in weights.values()):
            raise CongestionControlError("flow weights must be positive")
        self._weights = dict(weights)
        self._default = default

    def apply(self, spec: FlowSpec, **context) -> FlowSpec:
        return replace(spec, weight=self._weights.get(spec.flow_id, self._default))


class TenantShares(AllocationPolicy):
    """Per-tenant network shares ([10, 11, 30] in the paper).

    Each tenant holds a share; a flow's weight is its tenant's share divided
    by the tenant's number of active flows, so that on any shared bottleneck
    tenants — not flows — split bandwidth in proportion to their shares,
    regardless of how many flows each tenant opens ("chatty tenants").

    Call :meth:`apply_all` with the full active set so per-tenant flow
    counts are correct; :meth:`apply` needs the count passed explicitly.
    """

    def __init__(self, shares: Mapping[str, float], default_share: float = 1.0) -> None:
        if default_share <= 0 or any(s <= 0 for s in shares.values()):
            raise CongestionControlError("tenant shares must be positive")
        self._shares = dict(shares)
        self._default = default_share

    def share_of(self, tenant: Optional[str]) -> float:
        """The configured share of *tenant* (default share if unknown)."""
        if tenant is None:
            return self._default
        return self._shares.get(tenant, self._default)

    def apply(self, spec: FlowSpec, tenant_flow_count: int = 1, **context) -> FlowSpec:
        if tenant_flow_count < 1:
            raise CongestionControlError("tenant_flow_count must be >= 1")
        weight = self.share_of(spec.tenant) / tenant_flow_count
        return replace(spec, weight=weight, priority=spec.priority)

    def apply_all(self, specs: Sequence[FlowSpec], **context) -> list:
        counts: Dict[Optional[str], int] = {}
        for spec in specs:
            counts[spec.tenant] = counts.get(spec.tenant, 0) + 1
        return [
            self.apply(spec, tenant_flow_count=counts[spec.tenant]) for spec in specs
        ]


class DeadlinePriority(AllocationPolicy):
    """Deadline-aware allocation ([28, 46, 48] in the paper).

    Flows with deadlines are placed in a strictly higher priority level than
    best-effort traffic, and within the deadline level their weight is the
    rate needed to finish on time (``remaining_bytes / time_to_deadline``),
    so tight deadlines receive proportionally more bandwidth.

    Context keys per flow (passed to :meth:`apply`):
        remaining_bytes: Bytes the flow still has to send.
        deadline_ns: Absolute deadline, or ``None`` for best effort.
        now_ns: Current time.
    """

    #: Priority level for deadline flows (0 allocates first).
    DEADLINE_LEVEL = 0
    #: Priority level for best-effort flows.
    BEST_EFFORT_LEVEL = 1

    def __init__(self, min_weight: float = 1e-3) -> None:
        if min_weight <= 0:
            raise CongestionControlError("min_weight must be positive")
        self._min_weight = min_weight

    def apply(
        self,
        spec: FlowSpec,
        remaining_bytes: int = 0,
        deadline_ns: Optional[int] = None,
        now_ns: int = 0,
        **context,
    ) -> FlowSpec:
        if deadline_ns is None:
            return replace(spec, priority=self.BEST_EFFORT_LEVEL, weight=1.0)
        time_left_ns = max(deadline_ns - now_ns, 1)
        required_bps = remaining_bytes * 8 * 1e9 / time_left_ns
        weight = max(required_bps, self._min_weight)
        return replace(spec, priority=self.DEADLINE_LEVEL, weight=weight)


def normalize_weights(specs: Sequence[FlowSpec]) -> list:
    """Rescale weights so they average to one (numerical hygiene).

    Water-filling is scale-invariant in the weights, but keeping them near
    unity avoids extreme fill levels when policies emit rate-like weights
    (e.g. :class:`DeadlinePriority`).
    """
    if not specs:
        return []
    total = sum(spec.weight for spec in specs)
    if total <= 0 or not math.isfinite(total):
        raise CongestionControlError(f"cannot normalize weights with sum {total}")
    scale = len(specs) / total
    return [replace(spec, weight=spec.weight * scale) for spec in specs]
