"""Weighted max-min water-filling over routing-protocol-dictated splits.

This is R2C2's rate-computation algorithm (§3.3.1): every flow's relative
rate across its paths is fixed by its routing protocol, so allocation reduces
to a *flow-level* weighted water-fill:

1. all unfrozen flows grow their rate in proportion to their allocation
   weight;
2. when a link saturates, every flow crossing it freezes at its current
   rate;
3. repeat until all flows are frozen.

Extensions from §3.3.2 are folded in: bandwidth *headroom* is subtracted
from every link capacity before allocation, host-limited flows freeze early
at their *demand*, and *priorities* are handled by running the fill once per
priority level on the capacity left over by more important levels.

The implementation is matrix-form: each priority level's flows are the rows
of a CSR weight matrix over links (assembled once and cached inside the
:class:`~repro.congestion.linkweights.WeightProvider`, keyed by the flow
set's routing signature), the per-link denominators and live counts are
``bincount`` reductions over the matrix, and every freeze round is a
boolean-mask update — no Python-level per-flow loops survive on the hot
path.  Overall O(N·L + nnz) as before, but with the constant factors of
vectorized numpy rather than interpreted bookkeeping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import CongestionControlError
from ..topology.base import Topology
from ..types import FlowId, LinkId
from .flowstate import FlowSpec
from .linkweights import WeightProvider

#: Relative tolerance for deciding that a link is saturated.
_REL_TOL = 1e-9

#: Shared empty index array for rounds that freeze nothing in a category.
_EMPTY_ROWS = np.empty(0, dtype=np.int64)


@dataclass
class RateAllocation:
    """Result of one water-filling run.

    Attributes:
        rates_bps: Allocated rate per flow id.
        bottleneck_link: The link that froze each flow, or ``None`` when the
            flow froze at its demand (host-limited) or uses no links.
        link_load_bps: Aggregate allocated load per link id.
        link_capacity_bps: The (headroom-adjusted) capacity the fill used.
        iterations: Number of freeze rounds executed (all priority levels).
    """

    rates_bps: Dict[FlowId, float]
    bottleneck_link: Dict[FlowId, Optional[LinkId]]
    link_load_bps: np.ndarray
    link_capacity_bps: np.ndarray
    iterations: int = 0

    def rate(self, flow_id: FlowId) -> float:
        """Rate of one flow in bits/s."""
        return self.rates_bps[flow_id]

    def aggregate_throughput_bps(self) -> float:
        """Sum of all flow rates — the utility metric of §3.4's examples."""
        return float(sum(self.rates_bps.values()))

    def min_rate_bps(self) -> float:
        """Lowest allocated rate (tail throughput utility)."""
        return min(self.rates_bps.values()) if self.rates_bps else 0.0

    def max_link_utilization(self) -> float:
        """Highest link load divided by adjusted capacity."""
        with np.errstate(divide="ignore", invalid="ignore"):
            util = np.where(
                self.link_capacity_bps > 0,
                self.link_load_bps / self.link_capacity_bps,
                0.0,
            )
        return float(util.max()) if util.size else 0.0


def effective_capacities(
    topology: Topology, headroom: float, capacities: Optional[np.ndarray] = None
) -> np.ndarray:
    """Per-link capacities with the congestion-control headroom removed.

    The headroom is applied at the control plane only (§3.3.2): the data
    plane still runs links at full rate; the allocator simply never hands
    out the last ``headroom`` fraction.
    """
    if not (0.0 <= headroom < 1.0):
        raise CongestionControlError(f"headroom must be in [0, 1), got {headroom}")
    if capacities is None:
        capacities = np.fromiter(
            (link.capacity_bps for link in topology.links),
            dtype=np.float64,
            count=topology.n_links,
        )
    else:
        capacities = np.asarray(capacities, dtype=np.float64).copy()
        if capacities.shape != (topology.n_links,):
            raise CongestionControlError(
                f"capacities must have one entry per link ({topology.n_links}), "
                f"got shape {capacities.shape}"
            )
    return capacities * (1.0 - headroom)


def waterfill(
    topology: Topology,
    flows: Sequence[FlowSpec],
    provider: WeightProvider,
    headroom: float = 0.0,
    capacities: Optional[np.ndarray] = None,
) -> RateAllocation:
    """Compute weighted max-min rates for *flows* (§3.3).

    Args:
        topology: The rack fabric.
        flows: Active flows; each is allocated exactly one rate that applies
            across all of its paths.
        provider: Link-weight vectors per flow.
        headroom: Fraction of every link reserved for not-yet-announced
            flows (5 % in the paper's experiments).
        capacities: Optional per-link capacity override (bits/s), e.g. for
            modelling degraded links, or a precomputed effective-capacity
            vector (pass ``headroom=0.0`` to use it as-is).

    Returns:
        A :class:`RateAllocation`.
    """
    n_links = topology.n_links
    cap = effective_capacities(topology, headroom, capacities)

    rates: Dict[FlowId, float] = {}
    bottleneck: Dict[FlowId, Optional[LinkId]] = {}
    load = np.zeros(n_links, dtype=np.float64)
    iterations = 0

    by_priority: Dict[int, List[FlowSpec]] = {}
    for spec in flows:
        if spec.flow_id in rates:
            raise CongestionControlError(f"duplicate flow id {spec.flow_id}")
        rates[spec.flow_id] = 0.0  # reserve the slot; filled per level
        by_priority.setdefault(spec.priority, []).append(spec)

    for priority in sorted(by_priority):
        level_flows = by_priority[priority]
        residual = np.maximum(cap - load, 0.0)
        iterations += _fill_one_level(
            topology, level_flows, provider, residual, load, rates, bottleneck
        )

    return RateAllocation(
        rates_bps=rates,
        bottleneck_link=bottleneck,
        link_load_bps=load,
        link_capacity_bps=cap,
        iterations=iterations,
    )


def _ragged_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``[start, start+count)`` index ranges, vectorized.

    Selects the CSR slices of many rows at once — the boolean-mask analogue
    of iterating ``indptr[i]:indptr[i+1]`` per frozen flow.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    shifts = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(counts)[:-1]))
    return np.repeat(starts - shifts, counts) + np.arange(total, dtype=np.int64)


def fill_matrix(
    matrix,
    phi: np.ndarray,
    demand: np.ndarray,
    residual: np.ndarray,
    linkless_cap: float = 0.0,
):
    """Water-fill the flows of *matrix* (one per row) onto *residual* capacity.

    This is the freeze-round primitive shared by the batch :func:`waterfill`
    (one call per priority level) and the single-flow-churn refill path of
    :class:`repro.congestion.incremental.IncrementalWaterfill` (one call per
    affected component).  It is pure: none of the inputs are mutated.

    Args:
        matrix: A :class:`~repro.congestion.linkweights.LevelMatrix` whose
            rows are the flows to fill (CSR link-fraction weights).
        phi: Allocation weight per row.
        demand: Demand cap per row in bits/s (``inf`` = elastic).
        residual: Capacity available per link in bits/s (``matrix.n_links``
            entries).
        linkless_cap: Rate cap applied to rows that touch no links
            (``src == dst`` flows); batch fills pass the fabric link rate.

    Returns:
        ``(rate_arr, bn_arr, rounds)`` — allocated rate per row, bottleneck
        link id per row (``-1`` when demand-frozen or link-less), and the
        number of freeze rounds executed.
    """
    n_links = residual.size
    n_flows = matrix.n_flows
    rate_arr = np.zeros(n_flows, dtype=np.float64)
    bn_arr = np.full(n_flows, -1, dtype=np.int64)
    if n_flows == 0:
        return rate_arr, bn_arr, 0

    with np.errstate(invalid="ignore"):
        demand_level = np.where(np.isfinite(demand), demand / phi, np.inf)

    # ``contrib`` scales each row by its flow's allocation weight: the load
    # flow f puts on each link per unit of fill level t (its rate being
    # phi_f * t).
    contrib = matrix.data * np.repeat(phi, matrix.row_nnz)
    # Sum of unfrozen contributions per link, plus an exact count of
    # unfrozen flows per link: floating-point dust left by incremental
    # subtraction must not make an all-frozen link look like a (tiny)
    # bottleneck.
    denom = np.bincount(matrix.indices, weights=contrib, minlength=n_links)
    live_count = np.bincount(matrix.indices, minlength=n_links)

    unfrozen = np.ones(n_flows, dtype=bool)
    # Flows that touch no links (src == dst) are only demand- or
    # capacity-bound; freeze them immediately.
    empty_rows = matrix.row_nnz == 0
    if empty_rows.any():
        rate_arr[empty_rows] = np.minimum(demand[empty_rows], linkless_cap)
        unfrozen[empty_rows] = False

    #: fill level at which each *unfrozen* flow's demand binds; frozen
    #: flows are masked to +inf so one vectorized min covers the round.
    demand_gate = np.where(unfrozen, demand_level, np.inf)

    level = 0.0  # current fill level t
    slack = residual.astype(np.float64).copy()
    rounds = 0
    n_live = int(unfrozen.sum())
    t_rel = np.empty(n_links, dtype=np.float64)  # reused across rounds
    indptr = matrix.indptr
    indices = matrix.indices

    while n_live:
        rounds += 1
        # Fill level *increment* at which each link saturates (relative to
        # the current level; slack >= 0 and denom > 0 keep it nonnegative).
        pos = denom > 0.0
        t_rel.fill(np.inf)
        np.divide(slack, denom, out=t_rel, where=pos)

        t_rel_min = float(t_rel.min(initial=math.inf))
        dem_min = float(demand_gate.min(initial=math.inf))
        t_star = min(level + t_rel_min, dem_min)
        if math.isinf(t_star):
            # No capacity constraint and no finite demand: flows are
            # unconstrained, which only happens with zero-weight links —
            # treat as a configuration error rather than allocating infinity.
            raise CongestionControlError(
                "water-fill diverged: unfrozen flows with no binding constraint"
            )

        tol = _REL_TOL * max(1.0, abs(t_star))
        frozen_parts: List[np.ndarray] = []

        # Demand-frozen flows this round (frozen rows are masked to +inf).
        dem_rows = _EMPTY_ROWS
        if dem_min <= t_star + tol:
            dem_rows = np.flatnonzero(demand_gate <= t_star + tol)
            rate_arr[dem_rows] = demand[dem_rows]
            unfrozen[dem_rows] = False
            frozen_parts.append(dem_rows)

        # Capacity-frozen flows: everyone crossing a link saturating at t*,
        # found through the CSC pattern (link -> crossing rows).  Iterating
        # saturated links in ascending order keeps the "first link wins"
        # bottleneck attribution of the scalar implementation.
        if t_rel_min <= (t_star - level) + tol:
            for link in np.flatnonzero(t_rel <= (t_star - level) + tol):
                rows_l = matrix.flows_on_link(link)
                rows_l = rows_l[unfrozen[rows_l]]
                if rows_l.size == 0:
                    continue
                rate_arr[rows_l] = phi[rows_l] * t_star
                bn_arr[rows_l] = link
                unfrozen[rows_l] = False
                frozen_parts.append(rows_l)

        if not frozen_parts:
            raise CongestionControlError("water-fill made no progress")
        frozen_idx = (
            frozen_parts[0]
            if len(frozen_parts) == 1
            else np.concatenate(frozen_parts)
        )

        # Advance the water level.
        delta = t_star - level
        if delta > 0:
            slack -= denom * delta
            np.maximum(slack, 0.0, out=slack)
            level = t_star

        # Refund factor per demand-frozen flow: one that froze below the
        # water level keeps consuming its allocation, but the unused share
        # returns to the pool.
        refund = None
        if dem_rows.size:
            implied = phi[dem_rows] * level
            refunding = demand[dem_rows] < implied - tol
            if refunding.any():
                refund = np.zeros(dem_rows.size, dtype=np.float64)
                refund[refunding] = (implied[refunding] - demand[dem_rows][refunding]) / phi[
                    dem_rows[refunding]
                ]

        # Retire the frozen rows: subtract their contributions from the
        # per-link denominators and live counts.  Most rounds freeze only a
        # handful of flows, where per-row fancy-index updates (link ids are
        # unique within a CSR row) beat full-width bincount passes.
        if frozen_idx.size <= 4:
            touched_parts = []
            for i in frozen_idx.tolist():
                seg = slice(indptr[i], indptr[i + 1])
                cols = indices[seg]
                denom[cols] -= contrib[seg]
                live_count[cols] -= 1
                touched_parts.append(cols)
            if refund is not None:
                for pos_r, i in enumerate(dem_rows.tolist()):
                    if refund[pos_r] > 0.0:
                        seg = slice(indptr[i], indptr[i + 1])
                        slack[indices[seg]] += contrib[seg] * refund[pos_r]
            touched = (
                touched_parts[0]
                if len(touched_parts) == 1
                else np.concatenate(touched_parts)
            ) if touched_parts else _EMPTY_ROWS
        else:
            take = _ragged_ranges(indptr[frozen_idx], matrix.row_nnz[frozen_idx])
            touched = indices[take]
            denom -= np.bincount(touched, weights=contrib[take], minlength=n_links)
            live_count -= np.bincount(touched, minlength=n_links)
            if refund is not None:
                take_r = _ragged_ranges(indptr[dem_rows], matrix.row_nnz[dem_rows])
                vals = contrib[take_r] * np.repeat(refund, matrix.row_nnz[dem_rows])
                slack += np.bincount(
                    indices[take_r], weights=vals, minlength=n_links
                )

        # Clear floating-point dust on the links we touched: a frozen-out
        # link must not reappear as a (tiny) bottleneck.
        if touched.size:
            d = denom[touched]
            np.maximum(d, 0.0, out=d)
            d[live_count[touched] <= 0] = 0.0
            denom[touched] = d

        demand_gate[frozen_idx] = np.inf
        n_live -= int(frozen_idx.size)

    return rate_arr, bn_arr, rounds


def _fill_one_level(
    topology: Topology,
    flows: List[FlowSpec],
    provider: WeightProvider,
    residual: np.ndarray,
    load: np.ndarray,
    rates: Dict[FlowId, float],
    bottleneck: Dict[FlowId, Optional[LinkId]],
) -> int:
    """Water-fill one priority level onto *residual* capacity.

    Assembles the level's (cached) CSR/CSC weight matrix, runs
    :func:`fill_matrix`, and commits the results: mutates ``load``,
    ``rates`` and ``bottleneck`` in place; returns the number of freeze
    rounds.
    """
    n_links = residual.size
    n_flows = len(flows)
    if n_flows == 0:
        return 0

    matrix = provider.level_matrix(flows)
    flow_ids = [spec.flow_id for spec in flows]
    phi = np.fromiter((spec.weight for spec in flows), dtype=np.float64, count=n_flows)
    demand = np.fromiter(
        (spec.demand_bps for spec in flows), dtype=np.float64, count=n_flows
    )
    rate_arr, bn_arr, rounds = fill_matrix(
        matrix, phi, demand, residual, linkless_cap=topology.capacity_bps
    )

    # Commit this level's loads from the rows already gathered in the
    # matrix (no second weights_for pass), then flush the flat arrays into
    # the result dicts.
    if matrix.indices.size:
        load += np.bincount(
            matrix.indices,
            weights=matrix.data * np.repeat(rate_arr, matrix.row_nnz),
            minlength=n_links,
        )
    for fid, rate, bn in zip(flow_ids, rate_arr.tolist(), bn_arr.tolist()):
        rates[fid] = rate
        bottleneck[fid] = None if bn < 0 else bn
    return rounds
