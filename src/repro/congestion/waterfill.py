"""Weighted max-min water-filling over routing-protocol-dictated splits.

This is R2C2's rate-computation algorithm (§3.3.1): every flow's relative
rate across its paths is fixed by its routing protocol, so allocation reduces
to a *flow-level* weighted water-fill:

1. all unfrozen flows grow their rate in proportion to their allocation
   weight;
2. when a link saturates, every flow crossing it freezes at its current
   rate;
3. repeat until all flows are frozen.

Extensions from §3.3.2 are folded in: bandwidth *headroom* is subtracted
from every link capacity before allocation, host-limited flows freeze early
at their *demand*, and *priorities* are handled by running the fill once per
priority level on the capacity left over by more important levels.

The implementation is vectorized: flows are rows of a sparse weight matrix,
links are columns, and each iteration does O(E) numpy work plus O(nnz of
newly frozen rows) bookkeeping, for an overall O(N·L + nnz) bound matching
the paper's O(N·L + N^2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import CongestionControlError
from ..topology.base import Topology
from ..types import FlowId, LinkId
from .flowstate import FlowSpec
from .linkweights import WeightProvider

#: Relative tolerance for deciding that a link is saturated.
_REL_TOL = 1e-9


@dataclass
class RateAllocation:
    """Result of one water-filling run.

    Attributes:
        rates_bps: Allocated rate per flow id.
        bottleneck_link: The link that froze each flow, or ``None`` when the
            flow froze at its demand (host-limited) or uses no links.
        link_load_bps: Aggregate allocated load per link id.
        link_capacity_bps: The (headroom-adjusted) capacity the fill used.
        iterations: Number of freeze rounds executed (all priority levels).
    """

    rates_bps: Dict[FlowId, float]
    bottleneck_link: Dict[FlowId, Optional[LinkId]]
    link_load_bps: np.ndarray
    link_capacity_bps: np.ndarray
    iterations: int = 0

    def rate(self, flow_id: FlowId) -> float:
        """Rate of one flow in bits/s."""
        return self.rates_bps[flow_id]

    def aggregate_throughput_bps(self) -> float:
        """Sum of all flow rates — the utility metric of §3.4's examples."""
        return float(sum(self.rates_bps.values()))

    def min_rate_bps(self) -> float:
        """Lowest allocated rate (tail throughput utility)."""
        return min(self.rates_bps.values()) if self.rates_bps else 0.0

    def max_link_utilization(self) -> float:
        """Highest link load divided by adjusted capacity."""
        with np.errstate(divide="ignore", invalid="ignore"):
            util = np.where(
                self.link_capacity_bps > 0,
                self.link_load_bps / self.link_capacity_bps,
                0.0,
            )
        return float(util.max()) if util.size else 0.0


def effective_capacities(
    topology: Topology, headroom: float, capacities: Optional[np.ndarray] = None
) -> np.ndarray:
    """Per-link capacities with the congestion-control headroom removed.

    The headroom is applied at the control plane only (§3.3.2): the data
    plane still runs links at full rate; the allocator simply never hands
    out the last ``headroom`` fraction.
    """
    if not (0.0 <= headroom < 1.0):
        raise CongestionControlError(f"headroom must be in [0, 1), got {headroom}")
    if capacities is None:
        capacities = np.fromiter(
            (link.capacity_bps for link in topology.links),
            dtype=np.float64,
            count=topology.n_links,
        )
    else:
        capacities = np.asarray(capacities, dtype=np.float64).copy()
        if capacities.shape != (topology.n_links,):
            raise CongestionControlError(
                f"capacities must have one entry per link ({topology.n_links}), "
                f"got shape {capacities.shape}"
            )
    return capacities * (1.0 - headroom)


def waterfill(
    topology: Topology,
    flows: Sequence[FlowSpec],
    provider: WeightProvider,
    headroom: float = 0.0,
    capacities: Optional[np.ndarray] = None,
) -> RateAllocation:
    """Compute weighted max-min rates for *flows* (§3.3).

    Args:
        topology: The rack fabric.
        flows: Active flows; each is allocated exactly one rate that applies
            across all of its paths.
        provider: Link-weight vectors per flow.
        headroom: Fraction of every link reserved for not-yet-announced
            flows (5 % in the paper's experiments).
        capacities: Optional per-link capacity override (bits/s), e.g. for
            modelling degraded links.

    Returns:
        A :class:`RateAllocation`.
    """
    n_links = topology.n_links
    cap = effective_capacities(topology, headroom, capacities)

    rates: Dict[FlowId, float] = {}
    bottleneck: Dict[FlowId, Optional[LinkId]] = {}
    load = np.zeros(n_links, dtype=np.float64)
    iterations = 0

    by_priority: Dict[int, List[FlowSpec]] = {}
    for spec in flows:
        if spec.flow_id in rates:
            raise CongestionControlError(f"duplicate flow id {spec.flow_id}")
        rates[spec.flow_id] = 0.0  # reserve the slot; filled per level
        by_priority.setdefault(spec.priority, []).append(spec)

    for priority in sorted(by_priority):
        level_flows = by_priority[priority]
        residual = np.maximum(cap - load, 0.0)
        iterations += _fill_one_level(
            topology, level_flows, provider, residual, load, rates, bottleneck
        )

    return RateAllocation(
        rates_bps=rates,
        bottleneck_link=bottleneck,
        link_load_bps=load,
        link_capacity_bps=cap,
        iterations=iterations,
    )


def _fill_one_level(
    topology: Topology,
    flows: List[FlowSpec],
    provider: WeightProvider,
    residual: np.ndarray,
    load: np.ndarray,
    rates: Dict[FlowId, float],
    bottleneck: Dict[FlowId, Optional[LinkId]],
) -> int:
    """Water-fill one priority level onto *residual* capacity.

    Mutates ``load``, ``rates`` and ``bottleneck`` in place; returns the
    number of freeze rounds.
    """
    n_links = residual.size
    n_flows = len(flows)
    if n_flows == 0:
        return 0

    # Gather sparse weight rows once.  ``contrib[f]`` are the per-link
    # coefficients phi_f * w_{f,l}: the load flow f puts on each link per
    # unit of fill level t (its rate being phi_f * t).
    idx_rows: List[np.ndarray] = []
    contrib_rows: List[np.ndarray] = []
    phi = np.empty(n_flows, dtype=np.float64)
    demand_level = np.empty(n_flows, dtype=np.float64)  # t at which demand binds
    for i, spec in enumerate(flows):
        idx, val = provider.weights_for(spec)
        idx_rows.append(idx)
        contrib_rows.append(val * spec.weight)
        phi[i] = spec.weight
        demand_level[i] = (
            spec.demand_bps / spec.weight if math.isfinite(spec.demand_bps) else math.inf
        )

    # Sum of unfrozen contributions per link.
    denom = np.zeros(n_links, dtype=np.float64)
    for idx, contrib in zip(idx_rows, contrib_rows):
        np.add.at(denom, idx, contrib)

    unfrozen = np.ones(n_flows, dtype=bool)
    # Flows that touch no links (src == dst) are only demand- or
    # capacity-bound; freeze them immediately.
    for i, spec in enumerate(flows):
        if idx_rows[i].size == 0:
            cap_bound = topology.capacity_bps
            rates[spec.flow_id] = min(spec.demand_bps, cap_bound)
            bottleneck[spec.flow_id] = None
            unfrozen[i] = False

    # Links-to-flows reverse index, for finding who a saturated link freezes,
    # plus an exact count of unfrozen flows per link: floating-point dust
    # left by incremental subtraction must not make an all-frozen link look
    # like a (tiny) bottleneck.
    flows_on_link: List[List[int]] = [[] for _ in range(n_links)]
    live_count = np.zeros(n_links, dtype=np.int64)
    for i, idx in enumerate(idx_rows):
        if unfrozen[i]:
            for link in idx:
                flows_on_link[link].append(i)
            if idx.size:
                np.add.at(live_count, idx, 1)

    level = 0.0  # current fill level t
    slack = residual.astype(np.float64).copy()
    rounds = 0

    while unfrozen.any():
        rounds += 1
        # Fill level at which each link saturates.
        with np.errstate(divide="ignore", invalid="ignore"):
            t_link = np.where(denom > 0, slack / np.where(denom > 0, denom, 1.0), np.inf)
        t_sat = level + np.maximum(t_link, 0.0)

        # Fill level at which each unfrozen flow's demand binds.
        live = np.where(unfrozen)[0]
        t_demand = demand_level[live]
        t_star = min(float(t_sat.min(initial=math.inf)), float(t_demand.min(initial=math.inf)))

        if math.isinf(t_star):
            # No capacity constraint and no finite demand: flows are
            # unconstrained, which only happens with zero-weight links —
            # treat as a configuration error rather than allocating infinity.
            raise CongestionControlError(
                "water-fill diverged: unfrozen flows with no binding constraint"
            )

        tol = _REL_TOL * max(1.0, abs(t_star))
        newly_frozen: List[int] = []
        frozen_now = set()

        # Demand-frozen flows.
        for i in live:
            if demand_level[i] <= t_star + tol:
                spec = flows[i]
                rates[spec.flow_id] = spec.demand_bps
                bottleneck[spec.flow_id] = None
                newly_frozen.append(i)
                frozen_now.add(i)

        # Capacity-frozen flows: everyone crossing a link saturating at t*.
        saturated_links = np.where(t_sat <= t_star + tol)[0]
        for link in saturated_links:
            for i in flows_on_link[link]:
                if unfrozen[i] and i not in frozen_now:
                    spec = flows[i]
                    rates[spec.flow_id] = phi[i] * t_star
                    bottleneck[spec.flow_id] = int(link)
                    newly_frozen.append(i)
                    frozen_now.add(i)

        if not newly_frozen:
            raise CongestionControlError("water-fill made no progress")

        # Advance the water level and retire frozen flows.
        delta = t_star - level
        if delta > 0:
            slack -= denom * delta
            np.maximum(slack, 0.0, out=slack)
            level = t_star
        for i in newly_frozen:
            unfrozen[i] = False
            idx, contrib = idx_rows[i], contrib_rows[i]
            if idx.size:
                np.subtract.at(denom, idx, contrib)
                np.subtract.at(live_count, idx, 1)
                # A frozen flow keeps consuming its allocation, but if it
                # froze below the water level (demand-limited), the unused
                # share returns to the pool.
                spec = flows[i]
                actual = rates[spec.flow_id]
                implied = phi[i] * level
                if actual < implied - tol:
                    refund = (implied - actual) / phi[i]
                    slack += contrib * refund
        np.maximum(denom, 0.0, out=denom)
        denom[live_count <= 0] = 0.0

    # Commit this level's loads.
    for i, spec in enumerate(flows):
        idx, val = provider.weights_for(spec)
        if idx.size:
            np.add.at(load, idx, val * rates[spec.flow_id])
    return rounds
