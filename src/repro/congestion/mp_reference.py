"""Exact max-min reference allocator (Max-min Programming, [40]).

R2C2 deliberately trades utilization for tractability by pinning each flow's
split across paths to what its routing protocol dictates (§3.3.1, Figure 4).
This module implements the *unrestricted* optimum — max-min fairness where
each flow may split arbitrarily across an explicit path set — using the
classic iterative linear-programming algorithm:

1. maximize the common rate ``t`` of all unfrozen flows;
2. freeze every flow whose rate cannot exceed ``t`` (verified with one LP
   per candidate);
3. repeat on the remaining flows.

This is exponential in spirit (one variable per path) and is intended for
small topologies: unit tests use it to reproduce the paper's Figure 4
example, where R2C2 allocates {2/3, 2/3} while the optimum is {1, 1}.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from ..errors import CongestionControlError
from ..topology.base import Topology
from ..topology.paths import enumerate_shortest_paths, path_links
from ..types import FlowId, NodeId

_TOL = 1e-7


class PathFlow:
    """A flow with an explicit, finite set of usable paths."""

    def __init__(self, flow_id: FlowId, paths: Sequence[Sequence[NodeId]]) -> None:
        if not paths:
            raise CongestionControlError(f"flow {flow_id} needs at least one path")
        self.flow_id = flow_id
        self.paths: List[List[NodeId]] = [list(p) for p in paths]


def minimal_path_flows(
    topology: Topology,
    pairs: Sequence[Tuple[FlowId, NodeId, NodeId]],
    max_paths_per_flow: int = 64,
) -> List[PathFlow]:
    """Build :class:`PathFlow` objects from (id, src, dst) triples using all
    (or the first *max_paths_per_flow*) minimal paths."""
    flows = []
    for flow_id, src, dst in pairs:
        paths = list(
            enumerate_shortest_paths(topology, src, dst, limit=max_paths_per_flow)
        )
        flows.append(PathFlow(flow_id, paths))
    return flows


def maxmin_rates(
    topology: Topology,
    flows: Sequence[PathFlow],
    capacities: Optional[np.ndarray] = None,
) -> Dict[FlowId, float]:
    """Exact max-min fair rates with free splitting over the given paths.

    Returns rates normalized to the same units as the capacities (defaults
    to the topology's link capacities in bits/s).
    """
    if not flows:
        return {}
    if capacities is None:
        capacities = np.fromiter(
            (link.capacity_bps for link in topology.links),
            dtype=np.float64,
            count=topology.n_links,
        )
    else:
        capacities = np.asarray(capacities, dtype=np.float64)

    # Variable layout: one rate variable per (flow, path), then t.
    var_of: Dict[Tuple[int, int], int] = {}
    for fi, flow in enumerate(flows):
        for pi in range(len(flow.paths)):
            var_of[(fi, pi)] = len(var_of)
    n_path_vars = len(var_of)

    # Precompute link usage rows.
    link_rows: Dict[int, List[int]] = {}
    for fi, flow in enumerate(flows):
        for pi, path in enumerate(flow.paths):
            for link in path_links(topology, path):
                link_rows.setdefault(link, []).append(var_of[(fi, pi)])

    frozen: Dict[int, float] = {}  # flow index -> rate

    def solve(objective_flow: Optional[int], floor: float) -> Tuple[float, np.ndarray]:
        """One LP.

        With ``objective_flow is None`` maximize the shared rate t of all
        unfrozen flows; otherwise maximize that flow's rate subject to every
        other unfrozen flow keeping at least *floor*.
        """
        n_vars = n_path_vars + (1 if objective_flow is None else 0)
        c = np.zeros(n_vars)
        a_ub: List[np.ndarray] = []
        b_ub: List[float] = []
        a_eq: List[np.ndarray] = []
        b_eq: List[float] = []

        if objective_flow is None:
            c[-1] = -1.0  # maximize t
        else:
            for pi in range(len(flows[objective_flow].paths)):
                c[var_of[(objective_flow, pi)]] = -1.0

        for link, cols in link_rows.items():
            row = np.zeros(n_vars)
            for col in cols:
                row[col] += 1.0
            a_ub.append(row)
            b_ub.append(float(capacities[link]))

        for fi, flow in enumerate(flows):
            row = np.zeros(n_vars)
            for pi in range(len(flow.paths)):
                row[var_of[(fi, pi)]] = 1.0
            if fi in frozen:
                a_eq.append(row)
                b_eq.append(frozen[fi])
            elif objective_flow is None:
                rate_minus_t = row.copy()
                rate_minus_t[-1] = -1.0
                a_ub.append(-rate_minus_t)  # t - rate <= 0
                b_ub.append(0.0)
            elif fi != objective_flow:
                a_ub.append(-row)  # rate >= floor
                b_ub.append(-floor)

        result = linprog(
            c,
            A_ub=np.array(a_ub) if a_ub else None,
            b_ub=np.array(b_ub) if b_ub else None,
            A_eq=np.array(a_eq) if a_eq else None,
            b_eq=np.array(b_eq) if b_eq else None,
            bounds=[(0, None)] * n_vars,
            method="highs",
        )
        if not result.success:
            raise CongestionControlError(f"max-min LP failed: {result.message}")
        return -result.fun, result.x

    while len(frozen) < len(flows):
        t_star, _ = solve(None, 0.0)
        # Shave a relative epsilon off t*: the solver can return a value a
        # few ulps above the exactly-feasible optimum (e.g. capacity/3 at
        # 1e10 scale), and feeding it back verbatim as a floor or equality
        # makes the follow-up LPs infeasible at HiGHS's tolerance.
        t_star = max(0.0, t_star * (1.0 - 1e-9))
        # A flow is frozen at t* iff its rate cannot be pushed above t*
        # while all other unfrozen flows keep at least t*.
        newly = []
        for fi in range(len(flows)):
            if fi in frozen:
                continue
            best, _ = solve(fi, t_star)
            if best <= t_star + _TOL * max(1.0, t_star):
                newly.append(fi)
        if not newly:
            raise CongestionControlError("max-min programming made no progress")
        for fi in newly:
            frozen[fi] = t_star

    return {flows[fi].flow_id: rate for fi, rate in frozen.items()}
