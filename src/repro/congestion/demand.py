"""Demand estimation for host-limited flows (§3.3.2, equation 1).

A flow that cannot fill its allocation is bottlenecked at the host; handing
it a full fair share wastes capacity other flows could use.  The sender
estimates each flow's *demand* from its send-queue backlog::

    d[i+1] = r[i] + q[i] / T

i.e. next period's demand is the rate the flow was allowed plus the rate
needed to drain the backlog it accumulated, smoothed with an EWMA.  When the
estimate drops below the flow's current allocation the sender broadcasts a
demand update so every node can allocate demand-aware.
"""

from __future__ import annotations

import math

from ..errors import CongestionControlError
from ..types import BITS_PER_BYTE, NS_PER_SEC


class DemandEstimator:
    """Per-flow demand estimator.

    Args:
        period_ns: Estimation period T.
        ewma_alpha: Weight of the newest sample in the moving average.
        update_threshold: Relative change versus the last *broadcast* value
            below which :meth:`should_broadcast` stays quiet, to avoid
            chatty demand updates.
    """

    def __init__(
        self,
        period_ns: int,
        ewma_alpha: float = 0.25,
        update_threshold: float = 0.1,
    ) -> None:
        if period_ns <= 0:
            raise CongestionControlError(f"period must be positive, got {period_ns}")
        if not (0.0 < ewma_alpha <= 1.0):
            raise CongestionControlError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        if update_threshold < 0:
            raise CongestionControlError("update_threshold must be non-negative")
        self._period_ns = period_ns
        self._alpha = ewma_alpha
        self._threshold = update_threshold
        self._estimate_bps = math.inf
        self._broadcast_bps = math.inf

    @property
    def period_ns(self) -> int:
        """The estimation period T in nanoseconds."""
        return self._period_ns

    @property
    def estimate_bps(self) -> float:
        """Current smoothed demand estimate (``inf`` until first sample)."""
        return self._estimate_bps

    def observe(self, allocated_bps: float, queued_bytes: int) -> float:
        """Fold one period's observation into the estimate.

        Args:
            allocated_bps: The rate the flow was allowed this period (r[i]).
            queued_bytes: Sender-side backlog observed this period (q[i]).

        Returns:
            The updated smoothed estimate in bits/s.
        """
        if allocated_bps < 0 or queued_bytes < 0:
            raise CongestionControlError("negative observation")
        sample = allocated_bps + (
            queued_bytes * BITS_PER_BYTE * NS_PER_SEC / self._period_ns
        )
        if math.isinf(self._estimate_bps):
            self._estimate_bps = sample
        else:
            self._estimate_bps = (
                self._alpha * sample + (1.0 - self._alpha) * self._estimate_bps
            )
        return self._estimate_bps

    def should_broadcast(self, current_allocation_bps: float) -> bool:
        """Whether the sender should announce a demand update now.

        The paper broadcasts "whenever a flow's demand drops below its
        current rate allocation"; we additionally suppress updates within
        ``update_threshold`` of the last announced value.
        """
        estimate = self._estimate_bps
        if math.isinf(estimate):
            return False
        if estimate >= current_allocation_bps:
            # Flow can use everything it was given: only announce if we had
            # previously advertised a *lower* demand that should be lifted.
            return (
                math.isfinite(self._broadcast_bps)
                and estimate > self._broadcast_bps * (1.0 + self._threshold)
            )
        if math.isinf(self._broadcast_bps):
            return True
        return abs(estimate - self._broadcast_bps) > self._threshold * self._broadcast_bps

    def mark_broadcast(self) -> float:
        """Record that the current estimate was announced; returns it."""
        self._broadcast_bps = self._estimate_bps
        return self._broadcast_bps
