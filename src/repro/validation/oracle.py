"""Differential oracles: cross-check independent implementations.

Four pairings, mirroring how the paper validates its own stack:

* :func:`waterfill_vs_lp_case` — the production water-filling allocator
  against the LP-based max-min reference (§3.3.1).  On single-path flows
  the two solve the *same* problem, so agreement must be numerically tight
  (1e-6 relative), which pins down the allocator's fixed-point arithmetic.
* :func:`sim_vs_fluid_case` — the packet-level simulator against the fluid
  simulator on long-flow workloads, where queueing effects are second-order
  and the two must agree on average per-flow rates (Figures 15/16 style:
  the report carries the maximum relative rate error).
* :func:`sim_vs_maze_case` — the packet simulator against the Maze
  emulation platform (Figure 7's cross-validation, randomized).
* :func:`sharded_vs_serial_case` — the sharded parallel simulator
  (:mod:`repro.distsim`) against the serial engine.  Unlike the other
  oracles this one tolerates **zero** error: sharding is an executor
  choice, never a semantics choice, so the canonical metrics digest and
  the merged telemetry snapshot must be *byte-identical* (a case reports
  error 0.0 or 1.0, nothing in between).

Every case is generated from a single integer seed, so a failure names its
exact reproduction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..congestion.flowstate import FlowSpec
from ..congestion.linkweights import WeightProvider
from ..congestion.mp_reference import PathFlow, maxmin_rates
from ..congestion.waterfill import waterfill
from ..errors import SimulationError
from ..sim.fluid import FluidConfig, FluidSimulator
from ..sim.runner import SimConfig, run_simulation
from ..topology.base import GraphTopology, Topology
from ..types import FlowId, gbps, usec
from ..workloads.generator import FlowArrival

#: Smallest rate treated as nonzero when forming relative errors.
_RATE_FLOOR = 1e-12


@dataclass
class DifferentialCase:
    """One randomized cross-check."""

    seed: int
    description: str
    n_flows: int
    max_rel_error: float
    per_flow_rel_error: Dict[FlowId, float] = field(default_factory=dict)


@dataclass
class DifferentialReport:
    """Aggregate of many :class:`DifferentialCase` runs against a bound."""

    name: str
    tolerance: float
    cases: List[DifferentialCase] = field(default_factory=list)

    @property
    def n_cases(self) -> int:
        """Number of randomized cases executed."""
        return len(self.cases)

    @property
    def max_rel_error(self) -> float:
        """Worst relative rate error over all cases (the Fig. 15/16 metric)."""
        return max((c.max_rel_error for c in self.cases), default=0.0)

    @property
    def ok(self) -> bool:
        """True when every case stayed within the tolerance."""
        return self.max_rel_error <= self.tolerance

    def worst(self) -> Optional[DifferentialCase]:
        """The case with the largest error (for failure messages)."""
        if not self.cases:
            return None
        return max(self.cases, key=lambda c: c.max_rel_error)

    def summary(self) -> str:
        """One-line human summary."""
        worst = self.worst()
        detail = f", worst seed {worst.seed}" if worst is not None else ""
        return (
            f"{self.name}: {self.n_cases} cases, max rel error "
            f"{self.max_rel_error:.3g} (tolerance {self.tolerance:.3g}{detail})"
        )


# ----------------------------------------------------------------------
# Randomized inputs
# ----------------------------------------------------------------------
def random_connected_topology(
    seed: int,
    n_nodes: int = 8,
    extra_edges: int = 6,
    capacity_bps: float = 1.0,
    latency_ns: int = 100,
) -> GraphTopology:
    """A random connected undirected fabric: spanning tree plus extras."""
    if n_nodes < 2:
        raise SimulationError("need at least two nodes")
    rng = random.Random(seed ^ 0x70B0)
    order = list(range(n_nodes))
    rng.shuffle(order)
    edges = set()
    for i in range(1, n_nodes):
        a, b = order[rng.randrange(i)], order[i]
        edges.add((min(a, b), max(a, b)))
    attempts = 0
    while len(edges) < n_nodes - 1 + extra_edges and attempts < 10 * extra_edges:
        attempts += 1
        a, b = rng.sample(range(n_nodes), 2)
        edges.add((min(a, b), max(a, b)))
    return GraphTopology(
        n_nodes,
        sorted(edges),
        capacity_bps=capacity_bps,
        latency_ns=latency_ns,
        name=f"random({n_nodes}n,seed={seed})",
    )


def random_single_path_specs(
    seed: int, topology: Topology, n_flows: int = 6
) -> List[FlowSpec]:
    """Random network-limited single-path ("ecmp") flows for the LP oracle."""
    rng = random.Random(seed ^ 0xF10)
    specs = []
    for flow_id in range(n_flows):
        src, dst = rng.sample(range(topology.n_nodes), 2)
        specs.append(FlowSpec(flow_id=flow_id, src=src, dst=dst, protocol="ecmp"))
    return specs


# ----------------------------------------------------------------------
# Waterfill vs LP reference
# ----------------------------------------------------------------------
def waterfill_vs_lp_case(
    topology: Topology,
    specs: List[FlowSpec],
    provider: Optional[WeightProvider] = None,
    seed: int = 0,
) -> DifferentialCase:
    """Cross-check the water-fill against LP max-min on one flow set.

    The flows must be single-path (``ecmp``): with the split fixed to one
    path per flow, R2C2's restricted allocation and the unrestricted optimum
    coincide, so any disagreement is an allocator bug, not a modelling gap.
    """
    provider = provider if provider is not None else WeightProvider(topology)
    allocation = waterfill(topology, specs, provider, headroom=0.0)
    ecmp = provider.protocol("ecmp")
    path_flows = [
        PathFlow(s.flow_id, [ecmp.flow_path(s.src, s.dst, s.flow_id)]) for s in specs
    ]
    reference = maxmin_rates(topology, path_flows)
    per_flow = {}
    for spec in specs:
        lp_rate = reference[spec.flow_id]
        wf_rate = allocation.rates_bps[spec.flow_id]
        per_flow[spec.flow_id] = abs(wf_rate - lp_rate) / max(lp_rate, _RATE_FLOOR)
    return DifferentialCase(
        seed=seed,
        description=f"waterfill-vs-lp on {topology.name} with {len(specs)} flows",
        n_flows=len(specs),
        max_rel_error=max(per_flow.values(), default=0.0),
        per_flow_rel_error=per_flow,
    )


def waterfill_vs_lp_report(
    n_cases: int = 20,
    seed: int = 0,
    tolerance: float = 1e-6,
    n_nodes: int = 8,
    n_flows: int = 6,
) -> DifferentialReport:
    """Randomized sweep of :func:`waterfill_vs_lp_case`."""
    report = DifferentialReport(name="waterfill-vs-lp", tolerance=tolerance)
    for i in range(n_cases):
        case_seed = seed * 1000 + i
        topology = random_connected_topology(case_seed, n_nodes=n_nodes)
        specs = random_single_path_specs(case_seed, topology, n_flows=n_flows)
        report.cases.append(
            waterfill_vs_lp_case(topology, specs, seed=case_seed)
        )
    return report


# ----------------------------------------------------------------------
# Packet simulator vs fluid simulator
# ----------------------------------------------------------------------
def _long_flow_trace(
    seed: int,
    topology: Topology,
    n_flows: int,
    size_bytes: int,
    protocol: str = "ecmp",
) -> List[FlowArrival]:
    """Equal-size long flows with distinct starts inside the first epoch."""
    rng = random.Random(seed ^ 0x51F)
    starts = sorted(rng.sample(range(0, usec(100), 100), n_flows))
    trace = []
    for flow_id, start_ns in enumerate(starts):
        src, dst = rng.sample(range(topology.n_nodes), 2)
        trace.append(
            FlowArrival(
                flow_id=flow_id,
                src=src,
                dst=dst,
                size_bytes=size_bytes,
                start_ns=start_ns,
                protocol=protocol,
            )
        )
    return trace


def sim_vs_fluid_case(
    seed: int,
    n_flows: int = 5,
    size_bytes: int = 2_000_000,
    headroom: float = 0.05,
    mtu_payload: int = 8192,
) -> DifferentialCase:
    """Packet simulator vs fluid simulator on one long-flow workload.

    The flows are single-path (``ecmp``): the fluid model happily allocates
    a multipath flow more than one link's line rate, a rate the packet data
    plane can only approach (per-port serialization plus spraying
    burstiness), so rps workloads would compare modelling regimes rather
    than implementations.  On single paths the residual gap is header
    overhead (35 bytes per MTU) plus the per-hop store-and-forward
    pipeline, both second-order for long flows.
    """
    from ..topology.torus import TorusTopology

    rng = random.Random(seed ^ 0xD1FF)
    dims = rng.choice([(3, 3), (4, 4), (2, 4), (3, 4)])
    topology = TorusTopology(dims, capacity_bps=gbps(10))
    trace = _long_flow_trace(seed, topology, n_flows, size_bytes)

    provider = WeightProvider(topology)
    sim = run_simulation(
        topology,
        trace,
        SimConfig(
            stack="r2c2", mtu_payload=mtu_payload, headroom=headroom, seed=seed
        ),
        provider=provider,
    )
    fluid = FluidSimulator(
        topology, provider, FluidConfig(headroom=headroom)
    ).run(trace)

    per_flow = {}
    for flow in sim.completed_flows():
        fluid_rate = fluid[flow.flow_id].average_rate_bps
        sim_rate = flow.average_throughput_bps()
        per_flow[flow.flow_id] = abs(sim_rate - fluid_rate) / max(
            fluid_rate, _RATE_FLOOR
        )
    if len(per_flow) != len(trace):
        missing = sorted(set(f.flow_id for f in sim.flows) - set(per_flow))
        raise SimulationError(
            f"sim-vs-fluid case seed={seed}: flows {missing} never completed"
        )
    return DifferentialCase(
        seed=seed,
        description=f"sim-vs-fluid on torus{dims} with {n_flows} flows",
        n_flows=n_flows,
        max_rel_error=max(per_flow.values(), default=0.0),
        per_flow_rel_error=per_flow,
    )


def sim_vs_fluid_report(
    n_cases: int = 20,
    seed: int = 0,
    tolerance: float = 0.05,
    n_flows: int = 5,
    size_bytes: int = 2_000_000,
) -> DifferentialReport:
    """Randomized sweep of :func:`sim_vs_fluid_case`."""
    report = DifferentialReport(name="sim-vs-fluid", tolerance=tolerance)
    for i in range(n_cases):
        report.cases.append(
            sim_vs_fluid_case(
                seed * 1000 + i, n_flows=n_flows, size_bytes=size_bytes
            )
        )
    return report


# ----------------------------------------------------------------------
# Packet simulator vs Maze emulation
# ----------------------------------------------------------------------
def sim_vs_maze_case(
    seed: int,
    n_flows: int = 12,
    size_bytes: int = 500_000,
    dims: Tuple[int, int] = (3, 3),
) -> DifferentialCase:
    """Packet simulator vs the Maze emulation on one randomized workload.

    The comparison is coarser than the fluid one (the emulator quantizes
    time into steps and ships 8 KB slots), so the oracle reports the
    relative error of the *mean* per-flow rate, Figure 7 style.
    """
    from ..maze.runner import EmulationConfig, run_emulation
    from ..topology.torus import TorusTopology
    from ..workloads.generator import poisson_trace
    from ..workloads.sizes import FixedSize

    topology = TorusTopology(dims, capacity_bps=gbps(5))
    trace = poisson_trace(
        topology,
        n_flows,
        150_000,
        sizes=FixedSize(size_bytes),
        seed=seed,
    )
    maze = run_emulation(topology, trace, EmulationConfig(seed=seed))
    sim = run_simulation(
        topology, trace, SimConfig(stack="r2c2", mtu_payload=8192, seed=seed)
    )
    maze_rates = {f.flow_id: f.average_throughput_bps() for f in maze.completed_flows()}
    sim_rates = {f.flow_id: f.average_throughput_bps() for f in sim.completed_flows()}
    shared = sorted(set(maze_rates) & set(sim_rates))
    if not shared:
        raise SimulationError(f"sim-vs-maze case seed={seed}: no completed flows")
    mean_maze = sum(maze_rates[i] for i in shared) / len(shared)
    mean_sim = sum(sim_rates[i] for i in shared) / len(shared)
    error = abs(mean_sim - mean_maze) / max(mean_maze, _RATE_FLOOR)
    return DifferentialCase(
        seed=seed,
        description=f"sim-vs-maze on torus{dims} with {n_flows} flows",
        n_flows=len(shared),
        max_rel_error=error,
        per_flow_rel_error={
            i: abs(sim_rates[i] - maze_rates[i]) / max(maze_rates[i], _RATE_FLOOR)
            for i in shared
        },
    )


def sim_vs_maze_report(
    n_cases: int = 10,
    seed: int = 0,
    tolerance: float = 0.35,
    n_flows: int = 12,
    size_bytes: int = 500_000,
) -> DifferentialReport:
    """Randomized sweep of :func:`sim_vs_maze_case`.

    The default tolerance is loose by design: the emulator quantizes time
    into steps and moves 8 KB slots, so per-run mean rates land within tens
    of percent of the simulator's, not within it (observed max ≈ 0.22 over
    the first ten seeds).
    """
    report = DifferentialReport(name="sim-vs-maze", tolerance=tolerance)
    for i in range(n_cases):
        report.cases.append(
            sim_vs_maze_case(
                seed * 1000 + i, n_flows=n_flows, size_bytes=size_bytes
            )
        )
    return report


# ----------------------------------------------------------------------
# Sharded simulator vs serial engine (exact equality)
# ----------------------------------------------------------------------
def _random_sharded_workload(seed: int, n_flows: int):
    """A randomized (topology, trace, config) triple that supports sharding."""
    from ..topology.clos import FoldedClosTopology
    from ..topology.torus import TorusTopology
    from ..workloads.generator import poisson_trace
    from ..workloads.sizes import ParetoSizes

    rng = random.Random(seed ^ 0x5A4D)
    sizes = ParetoSizes(mean_bytes=rng.choice([20_000, 50_000]))
    if rng.random() < 0.5:
        topology = TorusTopology(rng.choice([(4, 4), (3, 4), (2, 4)]))
        trace = poisson_trace(
            topology,
            n_flows,
            mean_interarrival_ns=10_000,
            sizes=sizes,
            seed=seed,
        )
    else:
        topology = FoldedClosTopology(n_hosts=16, radix=8)
        # Host-to-host traffic only: switches neither send nor receive.
        trace = []
        start_ns = 0
        for flow_id in range(n_flows):
            src = rng.randrange(topology.n_hosts)
            dst = rng.randrange(topology.n_hosts - 1)
            if dst >= src:
                dst += 1
            trace.append(
                FlowArrival(
                    flow_id=flow_id,
                    src=src,
                    dst=dst,
                    size_bytes=sizes.sample(rng),
                    start_ns=start_ns,
                )
            )
            start_ns += rng.randrange(1, 20_000)
    # Wire loss and auditing are simulation semantics, not executor policy,
    # so the oracle space covers them: per-port loss RNG streams and merged
    # per-shard audit reports must reproduce the serial run exactly.  Lossy
    # r2c2 uses the reliable transport so flows still complete (the plain
    # stack has no retransmission and would run to the horizon).
    loss_rate = rng.choice([0.0, 0.0, 0.01])
    audit = rng.random() < 0.5
    if rng.random() < 0.5:
        config = SimConfig(
            stack="r2c2",
            control_plane="per_node",
            seed=seed,
            loss_rate=loss_rate,
            reliable=loss_rate > 0,
            audit=audit,
        )
    else:
        config = SimConfig(stack="tcp", seed=seed, loss_rate=loss_rate, audit=audit)
    return topology, trace, config


def sharded_vs_serial_case(
    seed: int,
    shards: int = 2,
    executor: str = "virtual",
    n_flows: int = 30,
) -> DifferentialCase:
    """One exact-equality check of the sharded engine against the serial one.

    Runs the same randomized workload through :func:`repro.sim.runner.
    run_simulation` and :func:`repro.distsim.run_sharded_simulation` (both
    with metrics-only telemetry) and compares the canonical metrics digest
    *and* the merged telemetry snapshot for equality.  ``max_rel_error`` is
    0.0 on agreement and 1.0 on any difference; ``per_flow_rel_error``
    pinpoints the differing flows (the telemetry comparison, if it is the
    one that differs, appears under flow id -1).
    """
    from ..distsim import (
        canonical_flow,
        canonical_metrics,
        comparable_snapshot,
        run_sharded_simulation,
    )
    from ..telemetry import Telemetry, TelemetryConfig

    topology, trace, config = _random_sharded_workload(seed, n_flows)
    telemetry = Telemetry(TelemetryConfig(metrics=True, trace=False))
    serial = run_simulation(topology, trace, config, telemetry=telemetry)
    sharded = run_sharded_simulation(
        topology,
        trace,
        config,
        shards=shards,
        executor=executor,
        telemetry_config=TelemetryConfig(metrics=True, trace=False),
    )

    per_flow: Dict[FlowId, float] = {}
    for serial_flow, sharded_flow in zip(serial.flows, sharded.metrics.flows):
        if canonical_flow(serial_flow) != canonical_flow(sharded_flow):
            per_flow[serial_flow.flow_id] = 1.0
    if comparable_snapshot(telemetry.metrics.snapshot()) != comparable_snapshot(
        sharded.telemetry_snapshot
    ):
        per_flow[-1] = 1.0
    equal = (
        not per_flow
        and canonical_metrics(serial) == canonical_metrics(sharded.metrics)
    )
    return DifferentialCase(
        seed=seed,
        description=(
            f"sharded-vs-serial on {topology.name} ({config.stack}, "
            f"K={shards}, {executor})"
        ),
        n_flows=len(trace),
        max_rel_error=0.0 if equal else 1.0,
        per_flow_rel_error=per_flow,
    )


def sharded_vs_serial_report(
    n_cases: int = 6,
    seed: int = 0,
    shards: Tuple[int, ...] = (2, 4),
    executor: str = "virtual",
    n_flows: int = 30,
) -> DifferentialReport:
    """Randomized sweep of :func:`sharded_vs_serial_case` (tolerance 0)."""
    report = DifferentialReport(name="sharded-vs-serial", tolerance=0.0)
    for i in range(n_cases):
        for k in shards:
            report.cases.append(
                sharded_vs_serial_case(
                    seed * 1000 + i, shards=k, executor=executor, n_flows=n_flows
                )
            )
    return report
