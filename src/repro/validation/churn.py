"""The churn oracle: scratch ≡ incremental after every operation.

Extends the waterfill-vs-LP differential family to sustained churn: a
seeded sequence of single-flow arrivals / departures / demand updates is
applied to an :class:`~repro.congestion.IncrementalWaterfill`, and after
**every** operation the live (patched) allocation is compared against a
full scratch :func:`~repro.congestion.waterfill` over the same flow set.
Weighted max-min allocations are unique, so any divergence beyond the
LP oracle's 1e-6 tolerance is an incremental-patch bug, not a modelling
gap.

Forced-fallback coverage: a case may flip the failure view mid-sequence
(:class:`~repro.validation.faults.FaultInjector` fails symmetric links and
the allocator is :meth:`~repro.congestion.IncrementalWaterfill.rebuild`
onto the degraded fabric), exercising the multi-link-membership fallback
path the patch must never try to absorb incrementally.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional

from ..congestion import FlowSpec, IncrementalWaterfill
from ..topology.base import Topology
from .oracle import (
    DifferentialCase,
    DifferentialReport,
    _RATE_FLOOR,
    random_connected_topology,
)

#: Same tolerance as the waterfill-vs-LP oracle.
CHURN_TOLERANCE = 1e-6

#: Protocols drawn for churn flows: single-path (tight affected sets) and
#: packet-spraying (rack-wide membership) stress different patch regimes.
_CHURN_PROTOCOLS = ("ecmp", "ecmp", "rps")


def churn_ops(
    seed: int,
    n_nodes: int,
    n_ops: int,
    max_flows: int = 24,
    capacity_bps: float = 1.0,
    protocols=_CHURN_PROTOCOLS,
) -> List[dict]:
    """A deterministic churn sequence of *n_ops* operation dicts.

    Ops are ``{"op": "add", "spec": FlowSpec}``, ``{"op": "remove",
    "flow_id": id}`` or ``{"op": "demand", "flow_id": id, "demand_bps":
    bps}``; arrival-biased until ``max_flows`` live flows, then balanced.
    """
    rng = random.Random(seed ^ 0xC4B2)
    ops: List[dict] = []
    live: List[int] = []
    next_id = 0
    for _ in range(n_ops):
        roll = rng.random()
        at_cap = len(live) >= max_flows
        if not live or (roll < 0.55 and not at_cap):
            src = rng.randrange(n_nodes)
            dst = rng.randrange(n_nodes)
            while dst == src:
                dst = rng.randrange(n_nodes)
            demand = (
                math.inf
                if rng.random() < 0.5
                else rng.uniform(0.05, 2.0) * capacity_bps
            )
            spec = FlowSpec(
                flow_id=next_id,
                src=src,
                dst=dst,
                protocol=rng.choice(protocols),
                weight=rng.choice((0.5, 1.0, 1.0, 2.0)),
                demand_bps=demand,
            )
            ops.append({"op": "add", "spec": spec})
            live.append(next_id)
            next_id += 1
        elif roll < 0.85 or at_cap:
            flow_id = live.pop(rng.randrange(len(live)))
            ops.append({"op": "remove", "flow_id": flow_id})
        else:
            ops.append(
                {
                    "op": "demand",
                    "flow_id": rng.choice(live),
                    "demand_bps": rng.uniform(0.05, 2.0) * capacity_bps,
                }
            )
    return ops


def apply_churn_op(incremental: IncrementalWaterfill, op: dict) -> None:
    """Apply one :func:`churn_ops` entry to *incremental*."""
    kind = op["op"]
    if kind == "add":
        incremental.add_flow(op["spec"])
    elif kind == "remove":
        incremental.remove_flow(op["flow_id"])
    elif kind == "demand":
        incremental.update_demand(op["flow_id"], op["demand_bps"])
    else:
        raise ValueError(f"unknown churn op {kind!r}")


def compare_against_scratch(incremental: IncrementalWaterfill) -> Dict[int, float]:
    """Per-flow relative error of the live allocation vs a scratch fill."""
    reference = incremental.scratch_allocation()
    errors: Dict[int, float] = {}
    for flow_id, ref_rate in reference.rates_bps.items():
        live_rate = incremental.rate(flow_id)
        errors[flow_id] = abs(live_rate - ref_rate) / max(ref_rate, _RATE_FLOOR)
    return errors


def churn_case(
    seed: int,
    n_ops: int = 200,
    n_nodes: int = 8,
    max_flows: int = 24,
    fallback_at: Optional[int] = None,
    fail_links: int = 1,
    topology: Optional[Topology] = None,
    check_every: int = 1,
) -> DifferentialCase:
    """One churn sequence, scratch-checked after every ``check_every`` ops.

    With *fallback_at* set, that op index first flips the failure view:
    ``FaultInjector(seed).fail_links`` degrades the fabric symmetrically
    and the allocator is rebuilt onto it — a forced full recompute in the
    middle of the sequence.
    """
    from .faults import FaultInjector

    if topology is None:
        topology = random_connected_topology(seed, n_nodes=n_nodes)
    incremental = IncrementalWaterfill(topology)
    ops = churn_ops(
        seed, topology.n_nodes, n_ops, max_flows=max_flows,
        capacity_bps=topology.capacity_bps,
    )
    worst = 0.0
    worst_per_flow: Dict[int, float] = {}
    peak_flows = 0
    for index, op in enumerate(ops):
        if fallback_at is not None and index == fallback_at:
            degraded, _failed = FaultInjector(seed=seed).fail_links(
                topology, fail_links, require_connected=True, symmetric=True
            )
            incremental.rebuild(topology=degraded)
        apply_churn_op(incremental, op)
        peak_flows = max(peak_flows, incremental.n_flows)
        if index % check_every == 0 or index == len(ops) - 1:
            errors = compare_against_scratch(incremental)
            step_worst = max(errors.values(), default=0.0)
            if step_worst >= worst:
                worst = step_worst
                worst_per_flow = errors
    flip = f", failure flip at op {fallback_at}" if fallback_at is not None else ""
    return DifferentialCase(
        seed=seed,
        description=(
            f"incremental-vs-scratch churn: {n_ops} ops on "
            f"{topology.name} (peak {peak_flows} flows{flip})"
        ),
        n_flows=peak_flows,
        max_rel_error=worst,
        per_flow_rel_error=worst_per_flow,
    )


def churn_report(
    n_cases: int = 8,
    seed: int = 0,
    n_ops: int = 200,
    tolerance: float = CHURN_TOLERANCE,
    n_nodes: int = 8,
    max_flows: int = 24,
    fallback_every: int = 4,
) -> DifferentialReport:
    """Randomized sweep of :func:`churn_case`.

    Every ``fallback_every``-th case injects a mid-sequence failure-view
    flip so forced-fallback steps stay inside the oracle's coverage.
    """
    report = DifferentialReport(name="incremental-vs-scratch-churn", tolerance=tolerance)
    for i in range(n_cases):
        case_seed = seed * 1000 + i
        fallback_at = n_ops // 2 if (fallback_every and i % fallback_every == fallback_every - 1) else None
        report.cases.append(
            churn_case(
                case_seed,
                n_ops=n_ops,
                n_nodes=n_nodes,
                max_flows=max_flows,
                fallback_at=fallback_at,
            )
        )
    return report


__all__ = [
    "CHURN_TOLERANCE",
    "apply_churn_op",
    "churn_case",
    "churn_ops",
    "churn_report",
    "compare_against_scratch",
]
