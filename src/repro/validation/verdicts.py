"""Structured oracle verdicts for machine consumers (the scenario fuzzer).

The differential oracles in :mod:`repro.validation.oracle` report
human-oriented error statistics; the fuzzer needs a uniform, JSON-able
answer to one question per oracle: *did this scenario violate the
invariant, and how?*  An :class:`OracleVerdict` is that answer, and the
adapters below produce one from each checkable surface of an executed
``repro.experiments`` sim task:

* :func:`crash_verdict` — the scenario raised instead of returning;
* :func:`audit_verdict` — the invariant auditor's collected violations;
* :func:`sanity_verdicts` — structural facts every result must satisfy
  (completion rate in [0, 1], completed <= flows);
* :func:`consistency_verdict` — the sharded-vs-serial differential,
  phrased over task result dicts: ``Scenario.shards`` is executor policy,
  so the serial and K-shard executions of one scenario must return
  byte-identical results.

Verdicts are deterministic functions of their inputs, so a fuzzing run's
verdict stream is as reproducible as the simulations themselves.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, List, Mapping, Optional, Tuple

__all__ = [
    "OracleVerdict",
    "audit_verdict",
    "churn_verdict",
    "crash_verdict",
    "sanity_verdicts",
    "consistency_verdict",
    "sim_result_verdicts",
]


@dataclass(frozen=True)
class OracleVerdict:
    """One oracle's pass/fail answer for one executed scenario."""

    oracle: str
    ok: bool
    details: Tuple[str, ...] = field(default_factory=tuple)
    #: Optional flight-recorder dump (:mod:`repro.obs.flight`) captured at
    #: failure time — the run's last-moments context, shipped with corpus
    #: entries so reproducers can be triaged without re-running.  Excluded
    #: from comparison: two verdicts agree iff they judge the same way.
    flight: Optional[dict] = field(default=None, compare=False)

    def to_dict(self) -> dict:
        """JSON-able form (corpus entries persist failing verdicts)."""
        data = {"oracle": self.oracle, "ok": self.ok, "details": list(self.details)}
        if self.flight is not None:
            data["flight"] = self.flight
        return data

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "OracleVerdict":
        """Inverse of :meth:`to_dict`."""
        return OracleVerdict(
            oracle=str(data["oracle"]),
            ok=bool(data["ok"]),
            details=tuple(str(d) for d in data.get("details", ())),
            flight=data.get("flight"),
        )


def crash_verdict(
    error: Optional[str], flight: Optional[dict] = None
) -> OracleVerdict:
    """Failing when the scenario raised; *error* is the exception string."""
    if error is None:
        return OracleVerdict(oracle="crash", ok=True)
    return OracleVerdict(oracle="crash", ok=False, details=(error,), flight=flight)


def audit_verdict(result: Mapping[str, Any]) -> OracleVerdict:
    """The invariant auditor's verdict from a sim-task result dict.

    Scenarios executed without ``audit=True`` pass vacuously (the fuzzer
    always audits; hand-built scenarios may not).
    """
    audit = result.get("audit")
    if audit is None:
        return OracleVerdict(oracle="audit", ok=True)
    return OracleVerdict(
        oracle="audit",
        ok=bool(audit.get("ok", True)),
        details=tuple(audit.get("violations", ())),
    )


def sanity_verdicts(result: Mapping[str, Any]) -> List[OracleVerdict]:
    """Structural checks every sim-task result must satisfy."""
    verdicts: List[OracleVerdict] = []
    completion = float(result.get("completion_rate", 1.0))
    detail = ()
    if not (0.0 <= completion <= 1.0):
        detail = (f"completion_rate {completion} outside [0, 1]",)
    verdicts.append(
        OracleVerdict(oracle="completion_rate", ok=not detail, details=detail)
    )
    summary = result.get("summary", {})
    flows = summary.get("flows")
    completed = summary.get("completed")
    detail = ()
    if flows is not None and completed is not None and completed > flows:
        detail = (f"{completed} completed of {flows} flows",)
    verdicts.append(
        OracleVerdict(oracle="flow_accounting", ok=not detail, details=detail)
    )
    return verdicts


def consistency_verdict(
    serial_result: Mapping[str, Any], sharded_result: Mapping[str, Any]
) -> OracleVerdict:
    """Sharded-vs-serial differential over task result dicts.

    ``Scenario.shards`` is executor policy (outside the cache
    fingerprint), so the two executions must return byte-identical JSON;
    any difference is an engine bug, with the differing top-level keys
    named in the details.
    """
    canon_serial = json.dumps(serial_result, sort_keys=True)
    canon_sharded = json.dumps(sharded_result, sort_keys=True)
    if canon_serial == canon_sharded:
        return OracleVerdict(oracle="sharded_vs_serial", ok=True)
    differing = sorted(
        key
        for key in set(serial_result) | set(sharded_result)
        if json.dumps(serial_result.get(key), sort_keys=True)
        != json.dumps(sharded_result.get(key), sort_keys=True)
    )
    return OracleVerdict(
        oracle="sharded_vs_serial",
        ok=False,
        details=tuple(f"result key {key!r} differs between executors" for key in differing),
    )


def churn_verdict(source: Mapping[str, Any]) -> OracleVerdict:
    """The churn oracle's verdict: scratch ≡ incremental within tolerance.

    Accepts either a churn-task result's ``churn`` section (``{"max_rel_error",
    "tolerance", ...}``) or a :class:`~repro.validation.oracle.DifferentialReport`
    from :func:`repro.validation.churn.churn_report`.
    """
    if hasattr(source, "max_rel_error") and hasattr(source, "tolerance"):
        max_err, tolerance = source.max_rel_error, source.tolerance
        context = getattr(source, "name", "churn")
    else:
        max_err = float(source.get("max_rel_error", 0.0))
        tolerance = float(source.get("tolerance", 1e-6))
        context = f"{source.get('ops', '?')} ops"
    if max_err <= tolerance:
        return OracleVerdict(oracle="churn_vs_scratch", ok=True)
    return OracleVerdict(
        oracle="churn_vs_scratch",
        ok=False,
        details=(
            f"incremental diverged from scratch: max rel error {max_err:.3g} "
            f"> tolerance {tolerance:.3g} ({context})",
        ),
    )


def sim_result_verdicts(result: Mapping[str, Any]) -> List[OracleVerdict]:
    """All result-level verdicts for one executed task (no differential).

    Churn-task results carry a ``churn`` section; its scratch-vs-incremental
    verdict rides along with the structural checks.
    """
    verdicts = [audit_verdict(result), *sanity_verdicts(result)]
    if "churn" in result:
        verdicts.append(churn_verdict(result["churn"]))
    return verdicts
