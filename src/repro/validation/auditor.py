"""Runtime invariant auditor for the packet simulator.

The auditor is a passive observer wired into three layers:

* the :class:`~repro.sim.engine.EventLoop` (via ``attach_loop``) — checks
  that the simulation clock never moves backwards and that events sharing a
  timestamp execute in scheduling order (FIFO causality);
* the :class:`~repro.sim.network.RackNetwork` and its output ports (via the
  ``auditor=`` constructor argument) — checks packet and byte conservation
  per port, that no port ever serializes two packets concurrently (which is
  exactly what "load above line rate" would look like in this simulator),
  and that every propagated packet eventually arrives;
* the host stacks and the control plane — checks monotone flow completion
  (received bytes never shrink, completion is set exactly once and never
  before the flow started) and that every rate allocation the control plane
  produces respects headroom-adjusted link capacities.

All hooks are disabled by simply not attaching an auditor; the instrumented
code then pays one ``is not None`` branch per event, which is noise next to
the work each event performs.  A constructed auditor can also be paused
with :attr:`enabled`.

In ``strict`` mode (default) any violation raises
:class:`~repro.errors.InvariantViolation` at the point of detection; in
collecting mode violations accumulate in :attr:`violations` for later
inspection, which tests use to assert that a deliberately injected bug *is*
caught.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import InvariantViolation
from ..types import NodeId

#: Relative tolerance for capacity checks (floating-point dust from the
#: allocator's incremental updates must not read as an overload).
_CAP_REL_TOL = 1e-6


@dataclass
class _PortAudit:
    """Conservation counters for one output port."""

    accepted: int = 0
    rejected: int = 0
    started: int = 0
    finished: int = 0
    wire_lost: int = 0
    bytes_accepted: int = 0
    bytes_started: int = 0
    #: absolute time the in-progress serialization ends; transmissions that
    #: overlap this window would imply the link ran above line rate.
    tx_busy_until: int = 0
    busy_ns: int = 0


@dataclass
class AuditReport:
    """Summary of everything an auditor observed during a run."""

    events: int = 0
    packets_accepted: int = 0
    packets_rejected: int = 0
    packets_propagated: int = 0
    packets_arrived: int = 0
    packets_delivered: int = 0
    packets_wire_lost: int = 0
    allocations_audited: int = 0
    flow_checks: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no invariant was violated."""
        return not self.violations


class InvariantAuditor:
    """Machine-checks the simulator's structural invariants at runtime."""

    def __init__(self, strict: bool = True, telemetry=None) -> None:
        self.strict = strict
        self.enabled = True
        self.violations: List[str] = []
        self._loop = None
        self._network = None
        #: optional crash flight recorder (repro.obs.flight); every
        #: violation is recorded to the "auditor" ring before strict mode
        #: raises, so the dump attached to the crash includes it.
        self.flight = None
        # Telemetry sinks (repro.telemetry): violations become a counter
        # and trace instants so an audited run's anomalies line up with
        # the epoch/broadcast/link timeline.  Falsy when telemetry is off.
        if telemetry is not None:
            self._ctr_violations = (
                telemetry.metrics.counter("validation.violations") or None
            )
            self._tel_trace = telemetry.trace or None
        else:
            self._ctr_violations = None
            self._tel_trace = None
        # Event-loop causality state.
        self._last_at_ns = -1
        self._last_prio = 0
        self._last_seq = -1
        self._events = 0
        # Port conservation state.
        self._ports: Dict[Tuple[NodeId, NodeId], _PortAudit] = {}
        # Network-wide packet accounting.
        self._propagated = 0
        self._arrived = 0
        self._delivered = 0
        self._rejected = 0
        # Flow monotonicity state: flow_id -> (bytes_received, completed_ns).
        self._flow_state: Dict[int, Tuple[int, Optional[int]]] = {}
        self._flow_checks = 0
        self._allocations = 0

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach_loop(self, loop) -> None:
        """Observe *loop*'s events (clock monotonicity, FIFO causality)."""
        self._loop = loop
        loop.attach_observer(self)

    def attach_network(self, network) -> None:
        """Called by :class:`~repro.sim.network.RackNetwork` on construction."""
        self._network = network
        if self._loop is None:
            self._loop = network._loop

    # ------------------------------------------------------------------
    # Violation plumbing
    # ------------------------------------------------------------------
    def _violate(self, message: str) -> None:
        self.violations.append(message)
        if self._ctr_violations:
            self._ctr_violations.inc()
        if self._tel_trace:
            from ..telemetry.trace import TRACK_VALIDATION

            self._tel_trace.instant(
                "violation",
                "validation",
                self._loop.now if self._loop is not None else 0,
                tid=TRACK_VALIDATION,
                args={"message": message},
            )
        if self.flight is not None:
            self.flight.record(
                "auditor",
                "violation",
                self._loop.now if self._loop is not None else 0,
                message=message,
            )
        if self.strict:
            raise InvariantViolation(message)

    # ------------------------------------------------------------------
    # Event-loop hook
    # ------------------------------------------------------------------
    def on_event(self, at_ns: int, prio: int, seq: int) -> None:
        """One event is about to execute at *at_ns* with key (*prio*, *seq*).

        Same-instant events must execute in ascending ``(priority,
        sequence)`` order: priority is the engine's deterministic
        content-based tie-break (packet deliveries carry their link's
        identity), and the FIFO sequence number orders events of equal
        priority by scheduling time.
        """
        if not self.enabled:
            return
        self._events += 1
        if at_ns < self._last_at_ns:
            self._violate(
                f"clock moved backwards: event at {at_ns} ns after {self._last_at_ns} ns"
            )
        elif at_ns == self._last_at_ns and (prio, seq) <= (
            self._last_prio,
            self._last_seq,
        ):
            self._violate(
                f"FIFO causality broken at t={at_ns} ns: key ({prio}, {seq}) "
                f"executed after ({self._last_prio}, {self._last_seq})"
            )
        self._last_at_ns = at_ns
        self._last_prio = prio
        self._last_seq = seq

    # ------------------------------------------------------------------
    # Network hooks
    # ------------------------------------------------------------------
    def _port(self, port) -> _PortAudit:
        audit = self._ports.get((port.src, port.dst))
        if audit is None:
            audit = _PortAudit()
            self._ports[(port.src, port.dst)] = audit
        return audit

    def on_port_send(self, port, packet, accepted: bool) -> None:
        """A packet was offered to a port's queue."""
        if not self.enabled:
            return
        audit = self._port(port)
        if accepted:
            audit.accepted += 1
            audit.bytes_accepted += packet.size_bytes
        else:
            audit.rejected += 1
            self._rejected += 1
        occupancy = port.queue.occupancy_bytes
        if occupancy < 0:
            self._violate(
                f"port {port.src}->{port.dst}: negative queue occupancy {occupancy}"
            )

    def on_transmit_start(self, port, packet, duration_ns: int) -> None:
        """A port began serializing a packet for *duration_ns*."""
        if not self.enabled:
            return
        audit = self._port(port)
        audit.started += 1
        audit.bytes_started += packet.size_bytes
        audit.busy_ns += duration_ns
        if self._loop is None:
            return  # no clock to check serialization windows against
        now = self._loop.now
        if now < audit.tx_busy_until:
            self._violate(
                f"port {port.src}->{port.dst}: serialization overlap at {now} ns "
                f"(previous transmission runs until {audit.tx_busy_until} ns) — "
                f"link driven above line rate"
            )
        audit.tx_busy_until = now + duration_ns
        if audit.busy_ns > now + duration_ns:
            self._violate(
                f"port {port.src}->{port.dst}: cumulative busy time "
                f"{audit.busy_ns} ns exceeds elapsed time {now + duration_ns} ns"
            )

    def on_wire_loss(self, port, packet) -> None:
        """A transmitted packet was corrupted on the wire (fault injection)."""
        if not self.enabled:
            return
        audit = self._port(port)
        audit.finished += 1
        audit.wire_lost += 1

    def on_propagate(self, port, packet) -> None:
        """A packet finished serialization and entered propagation."""
        if not self.enabled:
            return
        self._port(port).finished += 1
        self._propagated += 1

    def on_arrive(self, node: NodeId, packet) -> None:
        """A packet finished propagating to *node*."""
        if not self.enabled:
            return
        self._arrived += 1

    def on_local_deliver(self, node: NodeId, packet) -> None:
        """A packet was handed to the host stack at *node*."""
        if not self.enabled:
            return
        self._delivered += 1

    # ------------------------------------------------------------------
    # Stack / flow hooks
    # ------------------------------------------------------------------
    def on_flow_progress(self, flow, now_ns: int) -> None:
        """Receiver-side progress: received bytes and completion must be
        monotone, and completion can only be declared once."""
        if not self.enabled:
            return
        self._flow_checks += 1
        prev = self._flow_state.get(flow.flow_id)
        if prev is not None:
            prev_bytes, prev_completed = prev
            if flow.bytes_received < prev_bytes:
                self._violate(
                    f"flow {flow.flow_id}: received bytes shrank "
                    f"{prev_bytes} -> {flow.bytes_received}"
                )
            if prev_completed is not None and flow.completed_ns != prev_completed:
                self._violate(
                    f"flow {flow.flow_id}: completion time changed "
                    f"{prev_completed} -> {flow.completed_ns}"
                )
        if flow.completed_ns is not None and flow.completed_ns < flow.start_ns:
            self._violate(
                f"flow {flow.flow_id}: completed at {flow.completed_ns} ns "
                f"before it started at {flow.start_ns} ns"
            )
        self._flow_state[flow.flow_id] = (flow.bytes_received, flow.completed_ns)

    # ------------------------------------------------------------------
    # Control-plane hook
    # ------------------------------------------------------------------
    def audit_allocation(self, allocation) -> None:
        """Check one :class:`~repro.congestion.waterfill.RateAllocation`:
        non-negative finite rates, and per-link load within the
        headroom-adjusted capacity the fill was given."""
        if not self.enabled or allocation is None:
            return
        self._allocations += 1
        for flow_id, rate in allocation.rates_bps.items():
            if rate < 0 or not math.isfinite(rate):
                self._violate(f"flow {flow_id}: allocated invalid rate {rate}")
        load = allocation.link_load_bps
        cap = allocation.link_capacity_bps
        for link in range(load.size):
            limit = cap[link] * (1.0 + _CAP_REL_TOL) + 1e-3
            if load[link] > limit:
                self._violate(
                    f"link {link}: allocated load {load[link]:.6g} bps exceeds "
                    f"headroom-adjusted capacity {cap[link]:.6g} bps"
                )

    # ------------------------------------------------------------------
    # End-of-run checks
    # ------------------------------------------------------------------
    def check_conservation(self, drained: bool = True, check_transit: bool = True) -> None:
        """Packet conservation: every packet offered to a port is either
        rejected, still queued, in serialization, wire-lost or propagated;
        with a drained event loop, every propagated packet arrived.

        ``check_transit=False`` skips the propagated-equals-arrived check:
        a shard of a sharded run legitimately propagates packets that
        arrive in *another* shard's auditor, so the transit check only
        holds on the summed counters (see :func:`merge_audit_reports`).
        """
        if not self.enabled:
            return
        for (src, dst), audit in self._ports.items():
            port = self._network.port(src, dst) if self._network is not None else None
            queued = len(port.queue) if port is not None else 0
            in_service = 1 if (port is not None and port.busy) else 0
            if audit.accepted != audit.started + queued:
                self._violate(
                    f"port {src}->{dst}: conservation broken — accepted "
                    f"{audit.accepted} != started {audit.started} + queued {queued}"
                )
            if audit.started != audit.finished + in_service:
                self._violate(
                    f"port {src}->{dst}: conservation broken — started "
                    f"{audit.started} != finished {audit.finished} + in-service {in_service}"
                )
        if check_transit and drained and self._propagated != self._arrived:
            self._violate(
                f"packet conservation broken: {self._propagated} packets entered "
                f"propagation but {self._arrived} arrived"
            )

    def audit_flows(self, flows) -> None:
        """Final flow-state sanity: byte accounting within bounds and
        completion implying full delivery."""
        if not self.enabled:
            return
        for flow in flows:
            self._flow_checks += 1
            if flow.bytes_sent > flow.size_bytes:
                self._violate(
                    f"flow {flow.flow_id}: sender transmitted {flow.bytes_sent} "
                    f"of {flow.size_bytes} bytes"
                )
            if flow.completed_ns is not None:
                if flow.bytes_received < flow.size_bytes:
                    self._violate(
                        f"flow {flow.flow_id}: completed with only "
                        f"{flow.bytes_received} of {flow.size_bytes} bytes"
                    )
                if flow.completed_ns < flow.start_ns:
                    self._violate(
                        f"flow {flow.flow_id}: completed at {flow.completed_ns} ns "
                        f"before start at {flow.start_ns} ns"
                    )

    def final_check(
        self, flows=None, drained: bool = True, check_transit: bool = True
    ) -> AuditReport:
        """Run all end-of-run checks and return the :class:`AuditReport`."""
        self.check_conservation(drained=drained, check_transit=check_transit)
        if flows is not None:
            self.audit_flows(flows)
        return self.report()

    def report(self) -> AuditReport:
        """The current counters and collected violations."""
        return AuditReport(
            events=self._events,
            packets_accepted=sum(a.accepted for a in self._ports.values()),
            packets_rejected=self._rejected,
            packets_propagated=self._propagated,
            packets_arrived=self._arrived,
            packets_delivered=self._delivered,
            packets_wire_lost=sum(a.wire_lost for a in self._ports.values()),
            allocations_audited=self._allocations,
            flow_checks=self._flow_checks,
            violations=list(self.violations),
        )


def merge_audit_reports(
    reports, flows=None, drained: bool = True, strict: bool = True
) -> AuditReport:
    """Combine per-shard :class:`AuditReport`\\ s into one run-level report.

    Each shard audits its own slice with ``check_transit=False`` (a cut
    port's propagated packets arrive in another shard's auditor); this
    helper sums the counters, keeps the violations in shard order, and runs
    the two checks only the whole run can answer: propagated-equals-arrived
    over the summed counters, and the final per-flow byte/completion audit
    over the merged flow states.  With ``strict`` the first run-level
    violation raises :class:`~repro.errors.InvariantViolation`, matching a
    serial ``audit_strict`` run (per-shard violations already raised inside
    their shard).
    """
    merged = AuditReport()
    for report in reports:
        merged.events += report.events
        merged.packets_accepted += report.packets_accepted
        merged.packets_rejected += report.packets_rejected
        merged.packets_propagated += report.packets_propagated
        merged.packets_arrived += report.packets_arrived
        merged.packets_delivered += report.packets_delivered
        merged.packets_wire_lost += report.packets_wire_lost
        merged.allocations_audited += report.allocations_audited
        merged.flow_checks += report.flow_checks
        merged.violations.extend(report.violations)
    checker = InvariantAuditor(strict=strict)
    checker.violations = merged.violations  # shared list: _violate appends here
    if drained and merged.packets_propagated != merged.packets_arrived:
        checker._violate(
            f"packet conservation broken: {merged.packets_propagated} packets "
            f"entered propagation but {merged.packets_arrived} arrived"
        )
    if flows is not None:
        checker.audit_flows(flows)
        merged.flow_checks += checker._flow_checks
    return merged
