"""Validation subsystem: invariant auditing, fault injection, oracles.

R2C2's claims are only trustworthy if the stack's invariants are checked by
machine, continuously, rather than eyeballed off benchmark figures.  This
package provides the three layers of that correctness net:

* :mod:`repro.validation.auditor` — a runtime invariant auditor that hooks
  the event loop, the network fabric and the host stacks and asserts
  packet/byte conservation, link-capacity respect, FIFO event causality and
  monotone flow completion.  Attaching it is opt-in; when detached the data
  plane pays one ``is not None`` test per event.
* :mod:`repro.validation.faults` — deterministic (seeded) fault injection:
  link/node failures through the topology failure views, packet bit
  corruption caught by :mod:`repro.wire.checksum`, packet drop/reorder
  deciders and control-plane message loss against
  :mod:`repro.broadcast.reliability`.
* :mod:`repro.validation.oracle` — differential oracles that cross-check
  the water-filling allocator against the LP max-min reference, the packet
  simulator against the fluid simulator and the simulator against the Maze
  emulation on randomized topologies and workloads, reporting maximum
  relative rate error the way Figures 15/16 do.
* :mod:`repro.validation.verdicts` — structured per-oracle pass/fail
  verdicts over executed ``repro.experiments`` sim tasks (crash, audit,
  sanity, sharded-vs-serial consistency), the machine-readable form the
  scenario fuzzer (:mod:`repro.fuzz`) triages and persists.
* :mod:`repro.validation.churn` — the churn oracle for incremental
  max-min: scratch water-fill ≡ :class:`~repro.congestion.IncrementalWaterfill`
  after every operation of seeded arrival/departure sequences, including
  forced failure-view fallbacks.
"""

from .auditor import AuditReport, InvariantAuditor, merge_audit_reports
from .churn import (
    CHURN_TOLERANCE,
    apply_churn_op,
    churn_case,
    churn_ops,
    churn_report,
    compare_against_scratch,
)
from .faults import FaultEvent, FaultInjector, FaultSchedule
from .oracle import (
    DifferentialCase,
    DifferentialReport,
    random_connected_topology,
    random_single_path_specs,
    sim_vs_fluid_case,
    sim_vs_fluid_report,
    sim_vs_maze_case,
    sim_vs_maze_report,
    waterfill_vs_lp_case,
    waterfill_vs_lp_report,
)
from .verdicts import (
    OracleVerdict,
    audit_verdict,
    churn_verdict,
    consistency_verdict,
    crash_verdict,
    sanity_verdicts,
    sim_result_verdicts,
)

__all__ = [
    "AuditReport",
    "CHURN_TOLERANCE",
    "apply_churn_op",
    "audit_verdict",
    "churn_case",
    "churn_ops",
    "churn_report",
    "churn_verdict",
    "compare_against_scratch",
    "consistency_verdict",
    "crash_verdict",
    "DifferentialCase",
    "DifferentialReport",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "InvariantAuditor",
    "merge_audit_reports",
    "OracleVerdict",
    "random_connected_topology",
    "random_single_path_specs",
    "sanity_verdicts",
    "sim_result_verdicts",
    "sim_vs_fluid_case",
    "sim_vs_fluid_report",
    "sim_vs_maze_case",
    "sim_vs_maze_report",
    "waterfill_vs_lp_case",
    "waterfill_vs_lp_report",
]
