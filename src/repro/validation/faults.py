"""Deterministic fault injection.

Every injector is seeded, so a failing test names the exact fault sequence
that produced it and re-runs bit-for-bit identically.  The injectors reuse
the stack's own failure machinery rather than inventing a parallel one:

* link/node failures produce degraded :class:`~repro.topology.base.Topology`
  views via ``without_links`` / ``without_nodes`` and are recorded in a
  :class:`~repro.broadcast.reliability.FailureRecovery` so the §3.2
  re-announce path can be exercised on demand;
* packet corruption flips real bits and is expected to be caught by the
  :mod:`repro.wire.checksum` functions;
* drop and reorder deciders produce the loss/reordering patterns the
  transport and broadcast reliability layers must absorb.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from ..broadcast.reliability import FailureRecovery
from ..errors import SimulationError
from ..topology.base import Topology
from ..types import NodeId


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Attributes:
        at_ns: Simulated time the fault fires.
        kind: ``"link_failure"``, ``"node_failure"``, ``"link_recovery"``,
            ``"node_recovery"`` or any caller-defined tag.
        target: The failed link ``(src, dst)``, node id, or other payload.
    """

    at_ns: int
    kind: str
    target: object


class FaultSchedule:
    """A time-ordered list of faults, installable on an event loop."""

    def __init__(self, events: Optional[Iterable[FaultEvent]] = None) -> None:
        self._events: List[FaultEvent] = sorted(
            events or [], key=lambda e: (e.at_ns, e.kind)
        )

    @property
    def events(self) -> List[FaultEvent]:
        """The scheduled faults, time-ordered."""
        return list(self._events)

    def add(self, event: FaultEvent) -> None:
        """Insert one fault, keeping the schedule time-ordered."""
        self._events.append(event)
        self._events.sort(key=lambda e: (e.at_ns, e.kind))

    def install(self, loop, handler: Callable[[FaultEvent], None]) -> int:
        """Schedule every fault on *loop*; *handler* receives each event.

        Returns the number of events installed.
        """
        for event in self._events:
            loop.schedule_at(event.at_ns, lambda e=event: handler(e))
        return len(self._events)


class FaultInjector:
    """Seeded source of every fault class the validation suite injects."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed ^ 0xFA017)
        #: failures recorded through this injector, in the same state
        #: machine the production stack uses.
        self.recovery = FailureRecovery()

    # ------------------------------------------------------------------
    # Link / node failures (topology failure views)
    # ------------------------------------------------------------------
    def sample_links(self, topology: Topology, k: int) -> List[Tuple[NodeId, NodeId]]:
        """Pick *k* distinct directed links, uniformly without replacement."""
        if k > topology.n_links:
            raise SimulationError(
                f"cannot fail {k} of {topology.n_links} links"
            )
        chosen = self._rng.sample(list(topology.links), k)
        return [(link.src, link.dst) for link in chosen]

    def sample_duplex_links(
        self, topology: Topology, k: int
    ) -> List[Tuple[NodeId, NodeId]]:
        """Pick *k* distinct undirected links as canonical (low, high) pairs."""
        duplex = sorted({(min(l.src, l.dst), max(l.src, l.dst)) for l in topology.links})
        if k > len(duplex):
            raise SimulationError(
                f"cannot fail {k} of {len(duplex)} duplex links"
            )
        return self._rng.sample(duplex, k)

    def fail_links(
        self,
        topology: Topology,
        k: int,
        require_connected: bool = True,
        max_tries: int = 64,
        symmetric: bool = False,
    ) -> Tuple[Topology, List[Tuple[NodeId, NodeId]]]:
        """Fail *k* directed links; returns (degraded view, failed links).

        With ``require_connected`` the sample is redrawn until the degraded
        fabric stays strongly connected (the regime §3.2's re-announce is
        designed for — partitions are a different failure class).

        ``symmetric`` fails *k* undirected links — both directions of each,
        modeling a dead cable rather than a dead transceiver.  Protocols
        that send replies along the reversed data path (TCP ACKs, the
        reliable transport's ACKs) assume symmetric connectivity, so
        storm-style experiments use this mode; the returned list then
        contains both directions of every failed link.
        """
        for _ in range(max_tries):
            if symmetric:
                duplex = self.sample_duplex_links(topology, k)
                failed = [(a, b) for a, b in duplex] + [(b, a) for a, b in duplex]
            else:
                failed = self.sample_links(topology, k)
            degraded = topology.without_links(failed)
            if not require_connected or degraded.is_connected():
                for src, dst in failed:
                    self.recovery.on_link_failure(src, dst)
                return degraded, failed
        raise SimulationError(
            f"no connected view found failing {k} links in {max_tries} tries"
        )

    def fail_nodes(
        self,
        topology: Topology,
        k: int,
        require_connected: bool = True,
        max_tries: int = 64,
    ) -> Tuple[Topology, List[NodeId]]:
        """Fail *k* nodes; returns (degraded view, failed node ids).

        Connectivity, when required, is judged over the surviving nodes
        (the failed ids remain as isolated islands by design).
        """
        if k >= topology.n_nodes:
            raise SimulationError(
                f"cannot fail {k} of {topology.n_nodes} nodes"
            )
        for _ in range(max_tries):
            failed = sorted(self._rng.sample(list(topology.nodes()), k))
            degraded = topology.without_nodes(failed)
            if not require_connected or _survivors_connected(degraded, failed):
                for node in failed:
                    self.recovery.on_node_failure(node)
                return degraded, failed
        raise SimulationError(
            f"no connected view found failing {k} nodes in {max_tries} tries"
        )

    # ------------------------------------------------------------------
    # Packet corruption (wire.checksum's job to catch)
    # ------------------------------------------------------------------
    def corrupt(self, data: bytes, n_bits: int = 1) -> bytes:
        """Flip *n_bits* distinct bits of *data*; always returns != data."""
        if not data:
            raise SimulationError("cannot corrupt an empty buffer")
        n_bits = max(1, min(n_bits, len(data) * 8))
        positions = self._rng.sample(range(len(data) * 8), n_bits)
        corrupted = bytearray(data)
        for position in positions:
            corrupted[position // 8] ^= 1 << (position % 8)
        return bytes(corrupted)

    def truncate(self, data: bytes) -> bytes:
        """Drop a random non-zero number of trailing bytes."""
        if len(data) < 2:
            raise SimulationError("buffer too short to truncate")
        return data[: self._rng.randrange(1, len(data))]

    # ------------------------------------------------------------------
    # Drop / reorder deciders
    # ------------------------------------------------------------------
    def drop_decider(self, loss_rate: float) -> Callable[[], bool]:
        """A deterministic callable answering "drop this one?" at *loss_rate*."""
        if not (0.0 <= loss_rate <= 1.0):
            raise SimulationError(f"loss_rate must be in [0, 1], got {loss_rate}")
        rng = random.Random(self._rng.randrange(1 << 62))
        return lambda: rng.random() < loss_rate

    def reordered(self, items: Sequence, window: int = 4) -> List:
        """A bounded reordering of *items*: nothing moves more than *window*
        positions, mimicking multi-path skew rather than arbitrary shuffles."""
        if window < 1:
            raise SimulationError(f"reorder window must be >= 1, got {window}")
        keyed = [
            (index + self._rng.uniform(0, window), index)
            for index in range(len(items))
        ]
        keyed.sort()
        return [items[index] for _, index in keyed]

    # ------------------------------------------------------------------
    # Control-plane message loss (broadcast.reliability's job to absorb)
    # ------------------------------------------------------------------
    def lose_control_messages(
        self, seqs: Iterable[int], loss_rate: float
    ) -> List[int]:
        """Choose which broadcast sequence numbers get lost in transit."""
        decide = self.drop_decider(loss_rate)
        return [seq for seq in seqs if decide()]


def _survivors_connected(degraded: Topology, failed: Sequence[NodeId]) -> bool:
    """Strong connectivity over the non-failed nodes of a degraded view."""
    failed_set = set(failed)
    survivors = [n for n in degraded.nodes() if n not in failed_set]
    if len(survivors) <= 1:
        return True
    root = survivors[0]
    forward = degraded.distances_from(root)
    backward = degraded.distances_to(root)
    return all(forward[n] >= 0 and backward[n] >= 0 for n in survivors)
