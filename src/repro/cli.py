"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info``      — describe a rack topology (nodes, links, diameter, paths).
* ``rates``     — start flows on a rack and print their R2C2 allocations.
* ``simulate``  — run the packet-level simulator on a synthetic workload
  (``--trace``/``--metrics`` capture telemetry, ``--flight-dump`` the
  crash flight recorder; see DESIGN.md).
* ``explain-flow`` — causal critical-path report: decompose completed
  flows' FCTs into pacing / serialization / queueing / propagation /
  control-wait / host-wait / retransmit-wait (``repro.obs``).
* ``report``    — pretty-print a ``--metrics`` snapshot.
* ``figure2``   — print the routing-throughput table for a 2D torus.
* ``claims``    — check the paper's headline numeric claims.
* ``sweep``     — run an evaluation campaign (parallel, cached, resumable).
* ``figures``   — run a figure campaign and emit its results tables.
* ``fuzz``      — coverage-guided scenario fuzzing: ``run`` the search,
  ``replay`` the regression corpus, ``shrink`` a reproducer.
* ``synth``     — inter-rack fabric synthesis (``repro.topology.synth``):
  ``generate`` a fabric manifest from a spec, ``describe`` its budgets and
  per-tier channel loads, ``sweep`` the multi-rack synth campaign.
* ``serve``     — run the long-lived control-plane daemon: incremental
  max-min allocation served over the binary control protocol
  (flow announce/finish, allocation queries, telemetry snapshot
  subscriptions), with atomic snapshot/restore across restarts.

The CLI is a thin veneer over the library; every command maps to a few
lines of public API (printed with ``--show-code`` for discoverability).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .analysis import format_table, throughput_table
from .topology import (
    HypercubeTopology,
    MeshTopology,
    TorusTopology,
    count_shortest_paths,
)


def _parse_dims(text: str) -> tuple:
    try:
        dims = tuple(int(part) for part in text.lower().split("x"))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"dimensions look like 4x4x4, got {text!r}"
        ) from None
    if not dims:
        raise argparse.ArgumentTypeError("need at least one dimension")
    return dims


def _build_topology(kind: str, dims: tuple):
    if kind == "torus":
        return TorusTopology(dims)
    if kind == "mesh":
        return MeshTopology(dims)
    if kind == "hypercube":
        return HypercubeTopology(dims[0])
    raise argparse.ArgumentTypeError(f"unknown topology {kind!r}")


def cmd_info(args) -> int:
    topo = _build_topology(args.topology, args.dims)
    print(f"topology:        {topo.name}")
    print(f"nodes:           {topo.n_nodes}")
    print(f"directed links:  {topo.n_links}")
    print(f"degree:          {topo.max_degree()}")
    print(f"diameter:        {topo.diameter()}")
    print(f"avg distance:    {topo.average_distance():.2f} hops")
    if topo.n_nodes >= 2:
        far = max(topo.nodes(), key=lambda n: topo.distance(0, n))
        paths = count_shortest_paths(topo, 0, far)
        print(f"minimal paths 0 -> {far} (a farthest pair): {paths}")
    from .topology import bisection_bandwidth_bps

    try:
        print(f"bisection:       {bisection_bandwidth_bps(topo) / 1e12:.2f} Tbps")
    except Exception:
        pass
    return 0


def cmd_rates(args) -> int:
    from .core import R2C2Config, Rack
    from .types import usec

    topo = _build_topology(args.topology, args.dims)
    rack = Rack(topo, R2C2Config(headroom=args.headroom))
    rng_pairs = []
    import random

    rng = random.Random(args.seed)
    for _ in range(args.flows):
        src = rng.randrange(topo.n_nodes)
        dst = rng.randrange(topo.n_nodes - 1)
        if dst >= src:
            dst += 1
        rng_pairs.append((src, dst))
        rack.start_flow(src, dst, protocol=args.protocol)
    rack.advance_time(usec(500))
    print(f"{args.flows} {args.protocol} flows on {topo.name} "
          f"(headroom {args.headroom:.0%}):")
    for flow_id, rate in sorted(rack.rates().items()):
        src, dst = rng_pairs[flow_id]
        print(f"  flow {flow_id:3d}  {src:3d} -> {dst:3d}  {rate / 1e9:6.2f} Gbps")
    allocation = rack.nodes[0].controller.allocation
    print(f"aggregate: {allocation.aggregate_throughput_bps() / 1e9:.1f} Gbps; "
          f"max link utilization {allocation.max_link_utilization():.0%}")
    return 0


def _sim_setup(args, obs: bool = False, flight: bool = False):
    """The (topology, trace, config) a simulate-style command runs."""
    from .sim import SimConfig
    from .workloads import ParetoSizes, poisson_trace

    topo = _build_topology(args.topology, args.dims)
    trace = poisson_trace(
        topo,
        args.flows,
        args.interarrival_ns,
        sizes=ParetoSizes(mean_bytes=args.mean_bytes, shape=1.05, cap_bytes=20_000_000),
        seed=args.seed,
    )
    config = SimConfig(
        stack=args.stack,
        control_plane=args.control_plane,
        reliable=args.reliable,
        seed=args.seed,
        obs=obs,
        flight=flight,
    )
    return topo, trace, config


def cmd_simulate(args) -> int:
    from .sim import run_simulation

    topo, trace, config = _sim_setup(args, flight=args.flight_dump is not None)

    def execute():
        if args.shards > 1:
            from .distsim import run_sharded_simulation
            from .telemetry import TelemetryConfig

            telemetry_config = None
            if args.metrics_out is not None or args.trace_out is not None:
                telemetry_config = TelemetryConfig(
                    metrics=args.metrics_out is not None,
                    trace=args.trace_out is not None,
                )
            result = run_sharded_simulation(
                topo,
                trace,
                config,
                shards=args.shards,
                executor=args.shard_executor,
                telemetry_config=telemetry_config,
            )
            return result.metrics, result.telemetry_snapshot, result
        telemetry = None
        if args.trace_out or args.metrics_out:
            from .telemetry import Telemetry, TelemetryConfig

            telemetry = Telemetry(
                TelemetryConfig(
                    metrics=args.metrics_out is not None,
                    trace=args.trace_out is not None,
                )
            )
        metrics = run_simulation(topo, trace, config, telemetry=telemetry)
        return metrics, telemetry, None

    if args.profile is not None:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        metrics, telemetry, sharded = execute()
        profiler.disable()
        if args.profile == "-":
            pstats.Stats(profiler).sort_stats("cumulative").print_stats(30)
        else:
            profiler.dump_stats(args.profile)
            print(f"profile written to {args.profile} "
                  f"(inspect with: python -m pstats {args.profile})")
    else:
        metrics, telemetry, sharded = execute()
    print(f"stack={args.stack} on {topo.name}: "
          f"{len(trace)} flows, {metrics.duration_ns / 1e6:.2f} ms simulated, "
          f"{metrics.wallclock_s:.1f} s wall")
    if sharded is not None:
        print(f"  sharded: K={sharded.shards} ({sharded.executor}), "
              f"sizes {'/'.join(str(s) for s in sharded.shard_sizes)}, "
              f"{sharded.cut_links} cut links, "
              f"lookahead {sharded.lookahead_ns} ns, "
              f"{sharded.rounds} rounds, "
              f"{sharded.boundary_messages} boundary messages")
        sync = sharded.sync_profile
        if sync is not None:
            util = sync.get("lookahead_utilization")
            print(f"  sync: blocked {sync['blocked_s']:.3f} s, "
                  f"executing {sync['exec_s']:.3f} s, "
                  f"mean window {sync['mean_window_ns']:.0f} ns, "
                  f"lookahead utilization "
                  f"{'n/a' if util is None else f'{util:.1%}'}")
    for key, value in metrics.summary().items():
        print(f"  {key:20s} {value:,.2f}")
    if sharded is not None:
        import json

        if args.trace_out and sharded.trace_document is not None:
            with open(args.trace_out, "w") as fh:
                fh.write(json.dumps(sharded.trace_document, sort_keys=True))
                fh.write("\n")
            print(f"merged trace written to {args.trace_out} "
                  f"(open in https://ui.perfetto.dev)")
        if args.metrics_out:
            snapshot = dict(sharded.telemetry_snapshot or {})
            # Surface the sync profile in the snapshot so `repro report`
            # can render how the shards spent their wall-clock time.
            snapshot["sync_profile"] = sharded.sync_profile
            with open(args.metrics_out, "w") as fh:
                json.dump(snapshot, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"merged metrics snapshot written to {args.metrics_out} "
                  f"(pretty-print with: repro report {args.metrics_out})")
    elif telemetry is not None:
        if args.trace_out:
            telemetry.save_trace(args.trace_out)
            print(f"trace written to {args.trace_out} "
                  f"(open in https://ui.perfetto.dev)")
        if args.metrics_out:
            telemetry.save_metrics(args.metrics_out)
            print(f"metrics snapshot written to {args.metrics_out} "
                  f"(pretty-print with: repro report {args.metrics_out})")
    if args.flight_dump is not None and sharded is None:
        import json

        with open(args.flight_dump, "w") as fh:
            json.dump(metrics.flight_dump, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"flight-recorder dump written to {args.flight_dump}")
    return 0


def cmd_explain_flow(args) -> int:
    """Causal critical-path report for completed flows (repro.obs)."""
    from .obs import explain_report
    from .sim import run_simulation

    topo, trace, config = _sim_setup(args, obs=True)
    if args.shards > 1:
        from .distsim import run_sharded_simulation

        result = run_sharded_simulation(
            topo, trace, config,
            shards=args.shards, executor=args.shard_executor,
        )
        flow_obs = result.metrics.flow_obs or {}
        duration_ns = result.metrics.duration_ns
    else:
        metrics = run_simulation(topo, trace, config)
        flow_obs = metrics.flow_obs or {}
        duration_ns = metrics.duration_ns
    flow_ids = args.flow if args.flow else None
    lines, errors = explain_report(flow_obs, flow_ids=flow_ids, check=args.check)
    header = (
        f"causal FCT decomposition: stack={args.stack} on {topo.name}, "
        f"{len(flow_obs)}/{len(trace)} flows completed in "
        f"{duration_ns / 1e6:.2f} ms simulated"
    )
    text = "\n".join([header, ""] + lines)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
            if not text.endswith("\n"):
                fh.write("\n")
        print(f"report written to {args.out}")
    else:
        print(text)
    for problem in errors:
        print(f"error: {problem}", file=sys.stderr)
    return 1 if errors else 0


def cmd_report(args) -> int:
    """Pretty-print a metrics snapshot produced by ``--metrics``."""
    import json

    with open(args.snapshot) as fh:
        snap = json.load(fh)
    counters = snap.get("counters", {})
    gauges = snap.get("gauges", {})
    histograms = snap.get("histograms", {})
    series = snap.get("series", {})
    if counters:
        print("counters:")
        for name, value in sorted(counters.items()):
            print(f"  {name:48s} {value:>16,}")
    if gauges:
        print("gauges:")
        for name, value in sorted(gauges.items()):
            print(f"  {name:48s} {value:>16,.2f}")
    if histograms:
        print("histograms:")
        for name, hist in sorted(histograms.items()):
            count = hist.get("count", 0)
            print(f"  {name}: n={count}, sum={hist.get('sum', 0):,.0f}, "
                  f"min={hist.get('min')}, max={hist.get('max')}")
            if not count or args.no_bars:
                continue
            bounds = hist["buckets"]
            peak = max(hist["counts"]) or 1
            for i, n in enumerate(hist["counts"]):
                if not n:
                    continue
                label = (f"<= {bounds[i]:,.0f}" if i < len(bounds)
                         else f"> {bounds[-1]:,.0f}")
                bar = "#" * max(1, round(24 * n / peak))
                print(f"    {label:>16s} {n:>10,} {bar}")
    sync = snap.get("sync_profile")
    if sync:
        print("sync profile (sharded execution):")
        util = sync.get("lookahead_utilization")
        print(f"  rounds              {sync.get('rounds', 0):>16,}")
        print(f"  boundary messages   {sync.get('boundary_messages', 0):>16,}")
        if sync.get("lookahead_ns") is not None:
            print(f"  lookahead           {sync['lookahead_ns']:>13,} ns")
        if sync.get("mean_window_ns") is not None:
            print(f"  mean window         {sync['mean_window_ns']:>13,.0f} ns")
        if util is not None:
            print(f"  lookahead util      {util:>15.1%}")
        print(f"  blocked wall        {sync.get('blocked_s', 0.0):>14.3f} s")
        print(f"  executing wall      {sync.get('exec_s', 0.0):>14.3f} s")
        for shard in sync.get("shards") or ():
            if not shard:
                continue
            print(f"    shard: rounds={shard['rounds']:,} "
                  f"in={shard['boundary_in']:,} out={shard['boundary_out']:,} "
                  f"blocked={shard['blocked_s']:.3f}s exec={shard['exec_s']:.3f}s")
    if series:
        print(f"series: {len(series)} recorded "
              f"(per-link time series; inspect the JSON directly)")
        shown = 0
        for name, data in sorted(series.items()):
            if "{" in name and args.no_bars:
                continue
            if "{" not in name:
                values = data.get("values", [])
                peak = max(values) if values else 0
                print(f"  {name}: {len(values)} samples, peak {peak:,.0f}")
                shown += 1
        if not shown:
            print("  (aggregate series absent; see the raw JSON)")
    tier_load = snap.get("tier_load")
    if tier_load:
        _print_tier_load(tier_load)
    if snap.get("bisection_gbps") is not None:
        print(f"bisection bandwidth: {snap['bisection_gbps']:,.1f} Gbps")
    return 0


def _print_tier_load(tier_load) -> None:
    """Render a per-tier channel-load section (synth manifests, Fig. 2)."""
    bottleneck = tier_load.get("bottleneck")
    print("per-tier channel load:")
    for name, tier in sorted(tier_load.get("tiers", {}).items()):
        saturation = tier.get("saturation")
        sat_text = f"{saturation:.4f}" if saturation is not None else "inf"
        marker = "  <-- bottleneck" if name == bottleneck else ""
        print(f"  {name:8s} links={tier['links']:>6,} "
              f"capacity={tier['capacity_bps'] / 1e9:6.1f} Gbps "
              f"max_load={tier['max_load']:8.2f} "
              f"saturation={sat_text}{marker}")
    overall = tier_load.get("saturation")
    if overall is not None:
        print(f"  saturation throughput: {overall:.4f} of injection capacity")


def cmd_figure2(args) -> int:
    from .routing import (
        DestinationTagRouting,
        RandomPacketSpraying,
        ValiantLoadBalancing,
        WeightedLoadBalancing,
    )
    from .workloads import STANDARD_PATTERNS

    topo = TorusTopology((args.radix, args.radix))
    protocols = [
        RandomPacketSpraying(topo),
        DestinationTagRouting(topo),
        ValiantLoadBalancing(topo),
        WeightedLoadBalancing(topo),
    ]
    patterns = [
        STANDARD_PATTERNS[name]
        for name in ("nearest-neighbor", "uniform", "bit-complement", "transpose", "tornado")
    ]
    table = throughput_table(protocols, patterns, include_worst_case=args.worst_case)
    rows = {
        pattern: [values[p.name] for p in protocols]
        for pattern, values in table.items()
    }
    print(
        format_table(
            f"Saturation throughput on the {args.radix}-ary 2-cube",
            [p.name for p in protocols],
            rows,
        )
    )
    return 0


def cmd_claims(args) -> int:
    from .broadcast import broadcast_bytes_total, flow_event_overhead
    from .topology import TorusTopology as _Torus

    checks = []
    torus = _Torus((8, 8, 8))
    checks.append(
        ("1,680 minimal paths for a (3,3,3) displacement",
         count_shortest_paths(torus, 0, torus.node_at((3, 3, 3))) == 1680)
    )
    checks.append(
        ("one 512-node broadcast is ~8 KB",
         abs(broadcast_bytes_total(512) - 8176) < 1)
    )
    checks.append(
        ("announcing a 10 KB flow costs ~26.66%",
         abs(flow_event_overhead(10 * 1024, 512, 6.0) - 0.2666) < 0.01)
    )
    ok = True
    for label, passed in checks:
        print(f"  [{'ok' if passed else 'FAIL'}] {label}")
        ok &= passed
    return 0 if ok else 1


def _campaign_from_args(args):
    """Build the (possibly filtered) campaign plus executor config."""
    from .errors import ExperimentError
    from .experiments import ExecutorConfig, campaign_for, current_scale
    from .validation import FaultEvent

    if args.figure is None:
        raise ExperimentError(
            "missing figure name (try `repro sweep --list` for choices)"
        )
    scale = current_scale(args.scale)
    campaign = campaign_for(args.figure, scale)
    if args.only:
        kept = [s for s in campaign.scenarios if args.only in s.name]
        if not kept:
            raise ExperimentError(
                f"--only {args.only!r} matches none of the "
                f"{len(campaign.scenarios)} scenarios of {campaign.name}"
            )
        # Task seeds/fingerprints depend only on (campaign seed, scenario,
        # replicate), so a filtered run shares its cache with full runs.
        campaign = type(campaign)(
            name=campaign.name,
            scenarios=kept,
            seed=campaign.seed,
            description=campaign.description,
        )
    fault_events = []
    if args.max_tasks is not None:
        fault_events.append(
            FaultEvent(at_ns=args.max_tasks, kind="kill_campaign", target=None)
        )
    for spec in args.fail_task or ():
        key, _, count = spec.partition(":")
        fault_events.append(
            FaultEvent(
                at_ns=int(count) if count else 1,
                kind="worker_failure",
                target=key,
            )
        )
    config = ExecutorConfig(
        workers=args.workers,
        task_timeout_s=args.timeout,
        max_retries=args.retries,
    )
    return scale, campaign, config, fault_events


def _run_campaign_cli(args):
    from .experiments import run_campaign

    scale, campaign, config, fault_events = _campaign_from_args(args)
    if args.dry_run:
        print(f"campaign {campaign.name} [scale={scale.name}]: "
              f"{len(campaign.expand())} task(s)")
        for task in campaign.expand():
            print(f"  {task.key}  seed={task.seed}  fp={task.fingerprint()[:12]}")
        return scale, campaign, None
    result = run_campaign(
        campaign,
        config,
        cache_dir=args.cache_dir,
        fault_events=fault_events,
        progress=print,
    )
    counts = result.manifest["counts"]
    print(
        f"campaign {campaign.name} [scale={scale.name}]: {result.status} — "
        f"{counts['tasks']} task(s), {counts['cache_hits']} cached, "
        f"{counts['computed']} computed, {counts['failed']} failed, "
        f"{counts['retries']} retrie(s), "
        f"{result.manifest['wallclock_s']:.2f}s wall "
        f"[mode={result.manifest['mode']}]"
    )
    return scale, campaign, result


_SWEEP_EXIT_CODES = {"complete": 0, "failed": 1, "interrupted": 3}


def cmd_sweep(args) -> int:
    from .experiments import FIGURES

    if args.list:
        for name in sorted(FIGURES):
            fig = FIGURES[name]
            print(f"  {name:10s} {fig.title}")
        return 0
    _scale, _campaign, result = _run_campaign_cli(args)
    if result is None:  # --dry-run
        return 0
    return _SWEEP_EXIT_CODES[result.status]


def cmd_fuzz_run(args) -> int:
    from .fuzz import CoverageMap, FuzzConfig, run_fuzz  # noqa: F401

    config = FuzzConfig(
        seed=args.seed,
        budget=args.budget,
        batch_size=args.batch_size,
        corpus_dir=args.corpus_dir,
        differential=not args.no_differential,
        workers=args.workers,
    )
    report = run_fuzz(config, progress=print)
    if args.coverage_out:
        report.coverage.save(args.coverage_out)
        print(f"coverage map written to {args.coverage_out}")
    import json as _json

    print(_json.dumps(report.summary(), indent=2, sort_keys=True))
    if report.found_failures:
        print(
            f"{len(report.failures)} failing scenario(s) found; "
            f"shrunk reproducers in {args.corpus_dir}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_fuzz_replay(args) -> int:
    from .fuzz import Corpus, replay_entry

    corpus = Corpus(args.corpus_dir)
    entries = corpus.entries()
    if args.entry:
        wanted = set(args.entry)
        entries = [e for e in entries if any(e.entry_id.startswith(w) for w in wanted)]
        if not entries:
            print(f"no corpus entry matches {sorted(wanted)}", file=sys.stderr)
            return 2
    if not entries:
        print(f"corpus {corpus.root} is empty; nothing to replay")
        return 0
    failing = 0
    for entry in entries:
        verdicts = replay_entry(entry)
        bad = [v for v in verdicts if not v.ok]
        status = "FAIL" if bad else "ok"
        print(f"{entry.entry_id}  {entry.scenario.name:20s} {status}")
        for v in bad:
            failing += 1
            for detail in v.details:
                print(f"    {v.oracle}: {detail}")
    return 1 if failing else 0


def cmd_fuzz_shrink(args) -> int:
    import json as _json
    from pathlib import Path

    from .experiments import Scenario
    from .fuzz import Corpus, CorpusEntry, FuzzConfig
    from .fuzz.fuzzer import _evaluate, _failing_set
    from .fuzz.shrink import shrink_scenario

    corpus = Corpus(args.corpus_dir)
    entry = corpus.find(args.target)
    if entry is not None:
        scenario = entry.scenario
    elif Path(args.target).is_file():
        scenario = Scenario.from_json(Path(args.target).read_text(encoding="utf-8"))
    else:
        print(f"{args.target!r}: not a corpus entry id or spec file", file=sys.stderr)
        return 2
    config = FuzzConfig(seed=args.seed)
    verdicts, signature, _result = _evaluate(scenario, config.seed, True, config.shards)
    failing = _failing_set(verdicts)
    if not failing:
        print(f"{scenario.name}: all oracles pass; nothing to shrink")
        return 0
    print(f"{scenario.name}: failing oracles {sorted(failing)}; shrinking")

    def still_fails(candidate):
        cand_verdicts, _s, _r = _evaluate(candidate, config.seed, True, config.shards)
        return _failing_set(cand_verdicts) == failing

    shrunk = shrink_scenario(scenario, still_fails, max_evals=args.max_evals)
    final_verdicts, final_signature, _r = _evaluate(
        shrunk.scenario, config.seed, True, config.shards
    )
    new_entry = CorpusEntry(
        scenario=shrunk.scenario,
        verdicts=final_verdicts,
        signature=final_signature,
        found_from=scenario.fingerprint(),
        shrink_steps=tuple(shrunk.steps),
        root_seed=config.seed,
    )
    path = corpus.add(new_entry)
    print(
        f"shrunk in {len(shrunk.steps)} step(s) "
        f"({shrunk.evals} evaluations); written to {path}"
    )
    print(_json.dumps(new_entry.scenario.to_dict(), indent=2, sort_keys=True))
    return 1


def cmd_serve(args) -> int:
    from .congestion import WeightProvider
    from .service import ServiceState, serve_forever

    topo = _build_topology(args.topology, args.dims)
    state = ServiceState(
        topo,
        headroom=args.headroom,
        snapshot_path=args.snapshot,
        provider=WeightProvider(topo),
    )
    if state.restored:
        print(
            f"restored {state.incremental.n_flows} flow(s) from {args.snapshot} "
            f"(seq {state.seq})"
        )
    print(f"serving {topo.name} on {args.host} (headroom {args.headroom:g})")
    serve_forever(
        state,
        host=args.host,
        port=args.port,
        port_file=args.port_file,
        max_seconds=args.seconds,
    )
    stats = state.incremental.stats()
    print(
        f"stopped after {state.announces} announce(s), {state.finishes} "
        f"finish(es), {state.queries} quer(ies); "
        f"{stats['incremental_ops']} incremental / "
        f"{stats['fallback_recomputes']} fallback recompute(s)"
    )
    return 0


def _synth_spec_from_args(args):
    from .topology.synth import FabricSpec

    return FabricSpec(
        design=args.design,
        rack=args.rack,
        rack_dims=args.rack_dims,
        n_racks=args.racks,
        gateway_ports=args.gateway_ports,
        oversubscription=args.oversubscription,
        bridge_capacity_bps=(
            args.bridge_gbps * 1e9 if args.bridge_gbps is not None else None
        ),
        bridge_latency_ns=args.bridge_latency_ns,
        seed=args.seed,
        switch_radix=args.switch_radix,
        switch_cost=args.switch_cost,
        cable_cost=args.cable_cost,
        max_cost=args.max_cost,
    )


def _synth_tier_load(fabric, protocol_name: str, pattern_name: str):
    """Per-tier channel loads for a synthesized fabric, JSON-sanitized."""
    from .analysis import tiered_channel_loads
    from .routing.base import make_protocol
    from .workloads.patterns import COMPOSED_PATTERNS, STANDARD_PATTERNS

    from .errors import ReproError

    pattern = COMPOSED_PATTERNS.get(pattern_name) or STANDARD_PATTERNS.get(
        pattern_name
    )
    if pattern is None:
        raise ReproError(f"unknown traffic pattern {pattern_name!r}")
    protocol = make_protocol(protocol_name, fabric.topology)
    tier_load = tiered_channel_loads(protocol, pattern.matrix(fabric.topology))
    if tier_load["saturation"] == float("inf"):
        tier_load["saturation"] = None
    for tier in tier_load["tiers"].values():
        if tier["saturation"] == float("inf"):
            tier["saturation"] = None
    return tier_load


def cmd_synth_generate(args) -> int:
    import json
    from pathlib import Path

    from .topology import bisection_bandwidth_bps
    from .topology.synth import synthesize

    fabric = synthesize(_synth_spec_from_args(args))
    manifest = fabric.describe()
    manifest["bisection_gbps"] = bisection_bandwidth_bps(fabric.topology) / 1e9
    if args.protocol:
        manifest["protocol"] = args.protocol
        manifest["pattern"] = args.pattern
        manifest["tier_load"] = _synth_tier_load(
            fabric, args.protocol, args.pattern
        )
    text = json.dumps(manifest, indent=2, sort_keys=True)
    if args.out:
        from .core import atomic_write_text

        atomic_write_text(Path(args.out), text + "\n")
        print(f"manifest written to {args.out} "
              f"(fabric fingerprint {fabric.fingerprint[:12]})")
    else:
        print(text)
    return 0


def cmd_synth_describe(args) -> int:
    from .topology import bisection_bandwidth_bps
    from .topology.synth import synthesize

    spec = _synth_spec_from_args(args)
    fabric = synthesize(spec)
    report = fabric.report
    dims_text = "x".join(str(d) for d in spec.rack_dims)
    print(f"design:            {spec.design} "
          f"({spec.n_racks} x {spec.rack} {dims_text}, seed {spec.seed})")
    print(f"nodes:             {fabric.topology.n_nodes:,} "
          f"({report['n_racks']} racks x {report['rack_size']} nodes)")
    print(f"directed links:    {fabric.topology.n_links:,}")
    print(f"gateway wiring:    {len(fabric.bridges)} bridge(s), "
          f"{report.get('switches', 0)} switch(es), "
          f"{report.get('cables', 0)} inter-rack cable(s)")
    print(f"gateway capacity:  {report['gateway_capacity_bps'] / 1e9:.1f} Gbps, "
          f"{spec.bridge_latency_ns} ns")
    achieved = report.get("oversubscription")
    if achieved is not None:
        print(f"oversubscription:  {achieved:.2f} (target <= "
              f"{spec.oversubscription:g})")
    print(f"cost:              {report['cost']:,.0f}"
          + (f" (budget {spec.max_cost:,.0f})" if spec.max_cost else ""))
    print(f"bisection:         "
          f"{bisection_bandwidth_bps(fabric.topology) / 1e9:,.1f} Gbps")
    print(f"spec fingerprint:  {spec.fingerprint()}")
    print(f"fabric fingerprint: {fabric.fingerprint}")
    if args.protocol:
        _print_tier_load(_synth_tier_load(fabric, args.protocol, args.pattern))
    return 0


def cmd_synth_sweep(args) -> int:
    args.figure = "synth"
    return cmd_figures(args)


def cmd_figures(args) -> int:
    from pathlib import Path

    from .core import atomic_write_text
    from .experiments import FIGURES

    scale, campaign, result = _run_campaign_cli(args)
    if result is None:  # --dry-run
        return 0
    if result.status != "complete":
        print(f"campaign incomplete ({result.status}); no tables emitted")
        return _SWEEP_EXIT_CODES[result.status]
    results_dir = Path(args.results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    for stem, text in FIGURES[args.figure].aggregate(result.results, scale).items():
        # Same banner format as benchmarks/conftest.emit, so CLI-emitted
        # tables are byte-identical to pytest-emitted ones.
        banner = f"\n===== {stem} [scale={scale.name}] =====\n"
        print(banner + text)
        atomic_write_text(results_dir / f"{stem}.txt", banner + text + "\n")
        print(f"table written to {results_dir / (stem + '.txt')}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="R2C2: a network stack for rack-scale computers (SIGCOMM 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_topology_args(p):
        p.add_argument("--topology", choices=("torus", "mesh", "hypercube"), default="torus")
        p.add_argument("--dims", type=_parse_dims, default=(4, 4, 4),
                       help="dimensions, e.g. 4x4x4 (hypercube: number of bits, e.g. 6)")

    p_info = sub.add_parser("info", help="describe a rack topology")
    add_topology_args(p_info)
    p_info.set_defaults(func=cmd_info)

    p_rates = sub.add_parser("rates", help="allocate rates for random flows")
    add_topology_args(p_rates)
    p_rates.add_argument("--flows", type=int, default=8)
    p_rates.add_argument("--protocol", default="rps")
    p_rates.add_argument("--headroom", type=float, default=0.05)
    p_rates.add_argument("--seed", type=int, default=0)
    p_rates.set_defaults(func=cmd_rates)

    def add_sim_args(p):
        add_topology_args(p)
        p.add_argument("--stack", choices=("r2c2", "tcp", "pfq"), default="r2c2")
        p.add_argument("--flows", type=int, default=200)
        p.add_argument("--interarrival-ns", type=int, default=5000)
        p.add_argument("--mean-bytes", type=int, default=100 * 1024)
        p.add_argument("--reliable", action="store_true")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--control-plane", choices=("shared", "per_node"),
                       default="shared",
                       help="r2c2 rate-control placement; sharded r2c2 runs "
                            "require per_node")
        p.add_argument("--shards", type=int, default=1,
                       help="split the simulation across N event loops "
                            "(repro.distsim); results are byte-identical "
                            "to a serial run")
        p.add_argument("--shard-executor", choices=("virtual", "process"),
                       default="process",
                       help="sharded back end: in-process loops (virtual) "
                            "or one worker process per shard (process)")

    p_sim = sub.add_parser("simulate", help="run the packet-level simulator")
    add_sim_args(p_sim)
    p_sim.add_argument("--profile", nargs="?", const="-", default=None,
                       metavar="FILE",
                       help="profile the run with cProfile; dump stats to "
                            "FILE, or print the top entries when no FILE "
                            "is given")
    p_sim.add_argument("--trace", dest="trace_out", default=None, metavar="FILE",
                       help="record a Chrome trace-event JSON of the run "
                            "(epochs, broadcasts, link probes, sampled "
                            "packets); open in https://ui.perfetto.dev")
    p_sim.add_argument("--metrics", dest="metrics_out", default=None,
                       metavar="FILE",
                       help="write a metrics snapshot JSON (counters, "
                            "queue-occupancy histograms, link time series); "
                            "pretty-print with `repro report FILE`")
    p_sim.add_argument("--flight-dump", dest="flight_dump", default=None,
                       metavar="FILE",
                       help="enable the crash flight recorder and write its "
                            "end-of-run dump JSON here (serial runs only)")
    p_sim.set_defaults(func=cmd_simulate)

    p_explain = sub.add_parser(
        "explain-flow",
        help="decompose completed flows' FCTs into causal components",
        description="Run the simulator with causal tracing (repro.obs) and "
                    "report, for each completed flow, where its FCT went: "
                    "pacing, serialization, queueing, propagation, "
                    "control-wait, host-wait and retransmit-wait — the "
                    "components sum exactly to the measured FCT.",
    )
    add_sim_args(p_explain)
    p_explain.add_argument("--flow", type=int, action="append", default=None,
                           metavar="ID",
                           help="flow id to explain (repeatable; default: "
                                "every completed flow)")
    p_explain.add_argument("--check", action="store_true",
                           help="verify every reported decomposition sums "
                                "to its FCT within 1 ns (exit 1 otherwise)")
    p_explain.add_argument("--out", default=None, metavar="FILE",
                           help="write the report here instead of stdout")
    p_explain.set_defaults(func=cmd_explain_flow)

    p_report = sub.add_parser(
        "report", help="pretty-print a metrics snapshot from simulate --metrics"
    )
    p_report.add_argument("snapshot", help="metrics snapshot JSON file")
    p_report.add_argument("--no-bars", action="store_true",
                          help="omit histogram bucket bars (terse output)")
    p_report.set_defaults(func=cmd_report)

    p_fig2 = sub.add_parser("figure2", help="print the Figure 2 routing table")
    p_fig2.add_argument("--radix", type=int, default=8)
    p_fig2.add_argument("--worst-case", action="store_true",
                        help="include the (slower) worst-case row")
    p_fig2.set_defaults(func=cmd_figure2)

    p_claims = sub.add_parser("claims", help="verify headline paper claims")
    p_claims.set_defaults(func=cmd_claims)

    def add_campaign_args(p, figure_arg=True):
        if figure_arg:
            p.add_argument("figure", nargs="?", default=None,
                           help="figure campaign to run (see `repro sweep --list`)")
        p.add_argument("--scale", default=None,
                       choices=("small", "medium", "paper"),
                       help="experiment scale (default: $REPRO_SCALE or small)")
        p.add_argument("--workers", type=int, default=1,
                       help="worker processes; 1 = serial in-process")
        p.add_argument("--cache-dir", default=".repro_cache",
                       help="content-addressed result cache root "
                            "(resume re-runs only missing tasks)")
        p.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-task timeout in seconds (pool mode)")
        p.add_argument("--retries", type=int, default=2,
                       help="retry budget per task on worker failure")
        p.add_argument("--only", default=None, metavar="SUBSTR",
                       help="run only scenarios whose name contains SUBSTR")
        p.add_argument("--max-tasks", type=int, default=None, metavar="N",
                       help="stop (crash-simulate) after N freshly computed "
                            "tasks; exit code 3, resume by re-running")
        p.add_argument("--fail-task", action="append", default=None,
                       metavar="KEY[:N]",
                       help="inject N (default 1) worker failures for task "
                            "KEY to exercise the retry path")
        p.add_argument("--dry-run", action="store_true",
                       help="list the campaign's tasks without running")

    p_sweep = sub.add_parser(
        "sweep",
        help="run an evaluation campaign (parallel, cached, resumable)",
    )
    add_campaign_args(p_sweep)
    p_sweep.add_argument("--list", action="store_true",
                         help="list available figure campaigns")
    p_sweep.set_defaults(func=cmd_sweep)

    p_figures = sub.add_parser(
        "figures",
        help="run a figure campaign and emit its benchmarks/results tables",
    )
    add_campaign_args(p_figures)
    p_figures.add_argument("--results-dir", default="benchmarks/results",
                           help="where to write the *.txt tables")
    p_figures.set_defaults(func=cmd_figures)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="coverage-guided scenario fuzzing (run / replay / shrink)",
    )
    fuzz_sub = p_fuzz.add_subparsers(dest="fuzz_cmd", required=True)

    p_frun = fuzz_sub.add_parser(
        "run", help="fuzz the stack: generate, execute, cover, shrink"
    )
    p_frun.add_argument("--budget", type=int, default=100,
                        help="scenarios to execute (default 100)")
    p_frun.add_argument("--seed", type=int, default=0, help="root fuzzing seed")
    p_frun.add_argument("--batch-size", type=int, default=10)
    p_frun.add_argument("--corpus-dir", default="tests/corpus",
                        help="where shrunk failures are persisted")
    p_frun.add_argument("--coverage-out", default=None,
                        help="write the coverage map JSON here")
    p_frun.add_argument("--no-differential", action="store_true",
                        help="skip the sharded-vs-serial oracle")
    p_frun.add_argument("--workers", type=int, default=1,
                        help="campaign executor workers")
    p_frun.set_defaults(func=cmd_fuzz_run)

    p_freplay = fuzz_sub.add_parser(
        "replay", help="re-run corpus entries and re-judge every oracle"
    )
    p_freplay.add_argument("entry", nargs="*",
                           help="entry id prefixes (default: whole corpus)")
    p_freplay.add_argument("--corpus-dir", default="tests/corpus")
    p_freplay.set_defaults(func=cmd_fuzz_replay)

    p_fshrink = fuzz_sub.add_parser(
        "shrink", help="(re-)shrink a corpus entry or scenario spec file"
    )
    p_fshrink.add_argument("target",
                           help="corpus entry id prefix or scenario JSON path")
    p_fshrink.add_argument("--corpus-dir", default="tests/corpus")
    p_fshrink.add_argument("--seed", type=int, default=0)
    p_fshrink.add_argument("--max-evals", type=int, default=80)
    p_fshrink.set_defaults(func=cmd_fuzz_shrink)

    p_synth = sub.add_parser(
        "synth",
        help="synthesize inter-rack fabrics (generate / describe / sweep)",
    )
    synth_sub = p_synth.add_subparsers(dest="synth_cmd", required=True)

    def add_synth_spec_args(p):
        p.add_argument("--design",
                       choices=("flat", "ring", "fattree", "switched"),
                       default="flat",
                       help="inter-rack design family (default flat "
                            "random-regular direct-connect)")
        p.add_argument("--rack", choices=("torus", "mesh", "hypercube"),
                       default="torus")
        p.add_argument("--rack-dims", type=_parse_dims, default=(3, 3, 3),
                       help="per-rack dimensions, e.g. 4x4x5")
        p.add_argument("--racks", type=int, default=8,
                       help="number of racks to compose")
        p.add_argument("--gateway-ports", type=int, default=4,
                       help="inter-rack ports available per rack")
        p.add_argument("--oversubscription", type=float, default=64.0,
                       help="worst acceptable host:gateway bandwidth ratio")
        p.add_argument("--bridge-gbps", type=float, default=None,
                       help="gateway link capacity (default: rack capacity)")
        p.add_argument("--bridge-latency-ns", type=int, default=500)
        p.add_argument("--seed", type=int, default=0,
                       help="synthesis seed (flat design wiring)")
        p.add_argument("--switch-radix", type=int, default=64,
                       help="ports per switch (fattree/switched designs)")
        p.add_argument("--switch-cost", type=float, default=300.0)
        p.add_argument("--cable-cost", type=float, default=10.0)
        p.add_argument("--max-cost", type=float, default=None,
                       help="reject fabrics costing more than this")
        p.add_argument("--protocol", default=None,
                       help="also compute per-tier channel loads under this "
                            "routing protocol (e.g. hier_wlb, hier_vlb)")
        p.add_argument("--pattern", default="rack-shift",
                       help="traffic pattern for --protocol "
                            "(default rack-shift)")

    p_sgen = synth_sub.add_parser(
        "generate",
        help="synthesize a fabric and emit its JSON manifest",
        description="Deterministically synthesize the fabric described by "
                    "the spec flags, enforce its port/oversubscription/cost "
                    "budgets, and emit the manifest (spec, report, "
                    "fingerprints, bridge wiring) as JSON — identical bytes "
                    "for identical specs, in any process.",
    )
    add_synth_spec_args(p_sgen)
    p_sgen.add_argument("--out", default=None, metavar="FILE",
                        help="write the manifest here (atomic) instead of "
                             "stdout; render with `repro report FILE`")
    p_sgen.set_defaults(func=cmd_synth_generate)

    p_sdesc = synth_sub.add_parser(
        "describe",
        help="synthesize a fabric and print a human-readable summary",
    )
    add_synth_spec_args(p_sdesc)
    p_sdesc.set_defaults(func=cmd_synth_describe)

    p_ssweep = synth_sub.add_parser(
        "sweep",
        help="run the multi-rack synth figure campaign",
        description="Shorthand for `repro figures synth`: synthesize the "
                    "scale's fabric designs, run the sharded rack-cut "
                    "simulation and churn-oracle scenarios, and emit the "
                    "synth_fabrics / synth_tier_load / synth_campaign "
                    "tables.",
    )
    add_campaign_args(p_ssweep, figure_arg=False)
    p_ssweep.add_argument("--results-dir", default="benchmarks/results",
                          help="where to write the *.txt tables")
    p_ssweep.set_defaults(func=cmd_synth_sweep)

    p_serve = sub.add_parser(
        "serve",
        help="run the control-plane daemon (announce/finish/query over TCP)",
    )
    add_topology_args(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="listen port (0 = ephemeral; see --port-file)")
    p_serve.add_argument("--port-file", default=None,
                         help="write the bound port here once listening "
                              "(atomic; doubles as the readiness signal)")
    p_serve.add_argument("--headroom", type=float, default=0.05,
                         help="capacity fraction reserved from allocation")
    p_serve.add_argument("--snapshot", default=None,
                         help="flow-table snapshot path: restored on start "
                              "when present, rewritten after every mutation")
    p_serve.add_argument("--seconds", type=float, default=None,
                         help="exit after this many seconds (default: run "
                              "until SIGTERM/SIGINT)")
    p_serve.set_defaults(func=cmd_serve)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    from .errors import ReproError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
