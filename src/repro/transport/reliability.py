"""End-to-end reliability decoupled from congestion control (paper §6).

R2C2 "does not provide a complete network transport protocol — it does not
provide end-to-end reliability"; the paper argues that classic mechanisms
become *simpler* under R2C2 because acknowledgements are used solely for
reliability, not for ACK-clocked rate control.  This module implements that
transport layer:

* :class:`ReliableSender` — a retransmission window over numbered segments.
  *When* to send is the congestion controller's business (the token-bucket
  rate); the sender only decides *what*: the oldest expired unacked segment,
  else the next new one.
* :class:`ReliableReceiver` — tracks received segments and produces
  cumulative + selective acknowledgements.

Both are plain state machines (no timers, no I/O) so they run unchanged in
the packet simulator, the Maze emulation, or tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..errors import ReproError

#: Width of the selective-ack bitmap carried beyond the cumulative ack.
SACK_WINDOW = 32


@dataclass(frozen=True)
class AckInfo:
    """The receiver's view, as carried by an ACK packet.

    Attributes:
        cumulative: All segments below this index have been received.
        sack_bitmap: Bit *i* set means segment ``cumulative + 1 + i`` has
            been received out of order.
    """

    cumulative: int
    sack_bitmap: int = 0

    def is_received(self, seq: int) -> bool:
        """Whether this ACK proves receipt of segment *seq*."""
        if seq < self.cumulative:
            return True
        offset = seq - (self.cumulative + 1)
        return 0 <= offset < SACK_WINDOW and bool(self.sack_bitmap >> offset & 1)


class ReliableSender:
    """Retransmission bookkeeping for one flow.

    Segments are fixed-index units 0..n-1 (the last may be short).  The
    sender tracks, per in-flight segment, when it was (last) sent; a
    segment whose age exceeds the caller-supplied retransmission timeout is
    eligible again.  Because rate control is handled elsewhere, there is no
    window — the controller's token bucket is the only throttle.
    """

    def __init__(self, n_segments: int, rto_ns: int) -> None:
        if n_segments < 1:
            raise ReproError(f"need at least one segment, got {n_segments}")
        if rto_ns <= 0:
            raise ReproError(f"rto must be positive, got {rto_ns}")
        self.n_segments = n_segments
        self.rto_ns = rto_ns
        self._next_new = 0
        self._acked: Set[int] = set()
        self._in_flight: Dict[int, int] = {}  # seq -> last send time
        self.retransmissions = 0

    @property
    def all_acked(self) -> bool:
        """True when every segment has been acknowledged."""
        return len(self._acked) == self.n_segments

    @property
    def in_flight(self) -> int:
        """Segments sent but not yet acknowledged."""
        return len(self._in_flight)

    def next_segment(self, now_ns: int) -> Optional[int]:
        """The segment to transmit next, or None if nothing is eligible.

        Priority: the oldest timed-out unacked segment (retransmission),
        then the next never-sent segment.  ``None`` means everything sent
        is still within its RTO and no new data remains.
        """
        expired = [
            seq
            for seq, sent in self._in_flight.items()
            if now_ns - sent >= self.rto_ns
        ]
        if expired:
            seq = min(expired)
            self.retransmissions += 1
            return seq
        while self._next_new < self.n_segments and self._next_new in self._acked:
            self._next_new += 1
        if self._next_new < self.n_segments:
            return self._next_new
        return None

    def on_sent(self, seq: int, now_ns: int) -> None:
        """Record a (re)transmission of segment *seq*."""
        if not (0 <= seq < self.n_segments):
            raise ReproError(f"segment {seq} outside 0..{self.n_segments - 1}")
        if seq in self._acked:
            raise ReproError(f"segment {seq} already acknowledged")
        if seq == self._next_new:
            self._next_new += 1
        self._in_flight[seq] = now_ns

    def on_ack(self, ack: AckInfo) -> int:
        """Apply an acknowledgement; returns how many segments it newly
        acknowledged."""
        newly = 0
        for seq in range(min(ack.cumulative, self.n_segments)):
            if seq not in self._acked:
                self._acked.add(seq)
                self._in_flight.pop(seq, None)
                newly += 1
        base = ack.cumulative + 1
        for offset in range(SACK_WINDOW):
            if ack.sack_bitmap >> offset & 1:
                seq = base + offset
                if seq < self.n_segments and seq not in self._acked:
                    self._acked.add(seq)
                    self._in_flight.pop(seq, None)
                    newly += 1
        return newly

    def next_timeout_ns(self, now_ns: int) -> Optional[int]:
        """When the earliest in-flight segment will become retransmittable
        (``None`` if nothing is in flight)."""
        if not self._in_flight:
            return None
        oldest = min(self._in_flight.values())
        return max(now_ns, oldest + self.rto_ns)


class ReliableReceiver:
    """Receive-side segment tracking and ACK generation for one flow."""

    def __init__(self, n_segments: int) -> None:
        if n_segments < 1:
            raise ReproError(f"need at least one segment, got {n_segments}")
        self.n_segments = n_segments
        self._received: Set[int] = set()
        self._cumulative = 0
        self.duplicates = 0

    @property
    def complete(self) -> bool:
        """True when every segment has arrived."""
        return self._cumulative == self.n_segments

    @property
    def cumulative(self) -> int:
        """All segments below this index have been received in order."""
        return self._cumulative

    def on_segment(self, seq: int) -> bool:
        """Record an arriving segment; returns False for duplicates."""
        if not (0 <= seq < self.n_segments):
            raise ReproError(f"segment {seq} outside 0..{self.n_segments - 1}")
        if seq < self._cumulative or seq in self._received:
            self.duplicates += 1
            return False
        self._received.add(seq)
        while self._cumulative in self._received:
            self._received.discard(self._cumulative)
            self._cumulative += 1
        return True

    def ack_info(self) -> AckInfo:
        """The ACK describing the current receive state."""
        bitmap = 0
        base = self._cumulative + 1
        for seq in self._received:
            offset = seq - base
            if 0 <= offset < SACK_WINDOW:
                bitmap |= 1 << offset
        return AckInfo(cumulative=self._cumulative, sack_bitmap=bitmap)
