"""End-to-end reliability for R2C2 flows (paper §6, "Reliability").

Acknowledgements here serve reliability only; sending rates always come
from the congestion controller — the decoupling the paper argues makes both
mechanisms simpler than in TCP-like ACK-clocked designs.
"""

from .reliability import SACK_WINDOW, AckInfo, ReliableReceiver, ReliableSender

__all__ = ["AckInfo", "ReliableReceiver", "ReliableSender", "SACK_WINDOW"]
