"""Maze's memory structures: data ring buffers and pointer rings (§4.1).

A real Maze server receives packets by RDMA writes into *data ring buffers*
(DR) registered with the NIC, and forwards them zero-copy by pushing
*pointer rings* (PR) entries that reference the DR slots.  We model both
faithfully: a :class:`DataRingBuffer` owns fixed-size byte slots holding
real encoded packets, and a :class:`PointerRing` holds (buffer, slot)
references; forwarding never copies packet bytes, and freed slots are
zeroed, exactly as the paper describes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import EmulationError


class DataRingBuffer:
    """A fixed array of byte slots written by (emulated) RDMA.

    Slots are allocated on write and freed (and zeroed) once the packet has
    been forwarded or consumed, mirroring Maze's "we zero the memory of the
    forwarded packet to make space for new packets".
    """

    def __init__(self, n_slots: int, slot_bytes: int, name: str = "dr") -> None:
        if n_slots < 1 or slot_bytes < 1:
            raise EmulationError("ring buffer needs positive slot count and size")
        self.name = name
        self.n_slots = n_slots
        self.slot_bytes = slot_bytes
        self._slots: List[Optional[bytes]] = [None] * n_slots
        self._lengths = [0] * n_slots
        self._free: List[int] = list(range(n_slots - 1, -1, -1))
        self.writes = 0
        self.write_failures = 0
        self.max_used = 0

    @property
    def used_slots(self) -> int:
        """Slots currently holding a packet."""
        return self.n_slots - len(self._free)

    @property
    def used_bytes(self) -> int:
        """Bytes currently buffered (occupancy metric)."""
        return sum(self._lengths[i] for i in range(self.n_slots) if self._slots[i] is not None)

    def has_space(self) -> bool:
        """True if an RDMA write would currently succeed."""
        return bool(self._free)

    def write(self, data: bytes) -> Optional[int]:
        """Emulated RDMA write; returns the slot index or None when full."""
        if len(data) > self.slot_bytes:
            raise EmulationError(
                f"packet of {len(data)} bytes exceeds {self.slot_bytes}-byte slots"
            )
        if not self._free:
            self.write_failures += 1
            return None
        slot = self._free.pop()
        self._slots[slot] = data
        self._lengths[slot] = len(data)
        self.writes += 1
        used = self.used_slots
        if used > self.max_used:
            self.max_used = used
        return slot

    def read(self, slot: int) -> bytes:
        """Read the bytes in *slot* (zero-copy in spirit: no state change)."""
        data = self._slots[slot]
        if data is None:
            raise EmulationError(f"read of freed slot {slot} in {self.name}")
        return data

    def replace(self, slot: int, data: bytes) -> None:
        """In-place mutation of a held packet (forwarders bump ridx)."""
        if self._slots[slot] is None:
            raise EmulationError(f"replace of freed slot {slot} in {self.name}")
        if len(data) > self.slot_bytes:
            raise EmulationError("replacement data exceeds slot size")
        self._slots[slot] = data
        self._lengths[slot] = len(data)

    def free(self, slot: int) -> None:
        """Zero and release a slot after its packet left the server."""
        if self._slots[slot] is None:
            raise EmulationError(f"double free of slot {slot} in {self.name}")
        self._slots[slot] = None
        self._lengths[slot] = 0
        self._free.append(slot)


class PointerRing:
    """A bounded FIFO of (ring buffer, slot) references."""

    def __init__(self, capacity: int, name: str = "pr") -> None:
        if capacity < 1:
            raise EmulationError("pointer ring capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self._entries: List[Tuple[DataRingBuffer, int]] = []
        self.push_failures = 0
        self.max_depth = 0

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, buffer: DataRingBuffer, slot: int) -> bool:
        """Append a reference; False when the ring is full."""
        if len(self._entries) >= self.capacity:
            self.push_failures += 1
            return False
        self._entries.append((buffer, slot))
        if len(self._entries) > self.max_depth:
            self.max_depth = len(self._entries)
        return True

    def peek(self) -> Optional[Tuple[DataRingBuffer, int]]:
        """The oldest reference, without removing it."""
        return self._entries[0] if self._entries else None

    def pop(self) -> Tuple[DataRingBuffer, int]:
        """Remove and return the oldest reference."""
        if not self._entries:
            raise EmulationError(f"pop from empty pointer ring {self.name}")
        return self._entries.pop(0)

    def queued_bytes(self) -> int:
        """Bytes referenced by queued pointers (queue-occupancy metric)."""
        return sum(len(buf.read(slot)) for buf, slot in self._entries)
