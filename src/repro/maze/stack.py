"""R2C2 as a user-space network stack on the Maze platform (paper §4.2).

This is the same control plane as everywhere else (one
:class:`~repro.congestion.controller.RateController`), but the data plane is
the byte-level Maze machinery: flows are paced by
:class:`~repro.maze.ratelimit.TokenBucket` limiters, packets are *really
encoded* with :class:`~repro.wire.packets.DataPacket` (and checksum-verified
at the receiver), paths are sampled per packet by the flow's routing
protocol, and flow events travel as encoded 16-byte broadcast packets along
the broadcast trees.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..broadcast.fib import BroadcastFib
from ..congestion.controller import RateController
from ..congestion.flowstate import FlowSpec
from ..errors import EmulationError
from ..routing.base import protocol_class
from ..sim.flows import SimFlow
from ..types import NodeId
from ..wire.packets import (
    EVENT_FLOW_FINISH,
    EVENT_FLOW_START,
    TYPE_BROADCAST,
    TYPE_DATA,
    BroadcastPacket,
    DataPacket,
)
from .ratelimit import TokenBucket
from .server import MazeServer


class MazeR2C2Stack:
    """One node's R2C2 endpoint on the emulation platform."""

    def __init__(
        self,
        node: NodeId,
        server: MazeServer,
        controller: RateController,
        fib: BroadcastFib,
        flows_by_id: Dict[int, SimFlow],
        mtu_payload: int = 8192,
        seed: int = 0,
        metrics=None,
    ) -> None:
        self.node = node
        self._server = server
        self._controller = controller
        self._fib = fib
        self._flows = flows_by_id
        self._mtu = mtu_payload
        self._rng = random.Random((seed << 16) ^ node ^ 0xA5A5)
        self._metrics = metrics
        self._buckets: Dict[int, TokenBucket] = {}
        self._local_flows: List[SimFlow] = []
        self._next_tree = node
        self._bcast_seq = 0
        #: set by the runner before each step so deliveries are timestamped.
        self._now_ns_hint = 0
        server.on_local_delivery = self._on_delivery

    # ------------------------------------------------------------------
    # Flow lifecycle (sender side)
    # ------------------------------------------------------------------
    def start_flow(self, flow: SimFlow, now_ns: int) -> None:
        if flow.src != self.node:
            raise EmulationError(f"flow {flow.flow_id} not sourced at {self.node}")
        spec = FlowSpec(
            flow_id=flow.flow_id,
            src=flow.src,
            dst=flow.dst,
            protocol=flow.protocol,
            weight=flow.weight,
            priority=flow.priority,
            start_time_ns=now_ns,
            tenant=flow.tenant,
        )
        self._controller.on_flow_started(spec, now_ns)
        rate = self._controller.rate_for(flow.flow_id)
        packet_size = 35 + self._mtu
        self._buckets[flow.flow_id] = TokenBucket(
            rate_bps=max(rate, 1.0), burst_bytes=packet_size, now_ns=now_ns
        )
        self._local_flows.append(flow)
        self._broadcast(flow, EVENT_FLOW_START, now_ns)

    def _broadcast(self, flow: SimFlow, event: int, now_ns: int) -> None:
        tree_id = self._next_tree % self._fib.n_trees
        self._next_tree += 1
        protocol_id = protocol_class(flow.protocol).protocol_id
        packet = BroadcastPacket(
            event=event,
            src=flow.src,
            dst=flow.dst,
            flow_id=flow.flow_id,
            weight=min(max(flow.weight, 1 / 16), 255 / 16),
            priority=flow.priority,
            tree_id=tree_id,
            protocol_id=protocol_id,
        )
        children = list(self._fib.next_hops(self.node, self.node, tree_id))
        if children:
            self._server.app_send(packet.encode(), children)

    def refresh_rates(self, now_ns: int) -> None:
        """Pull new allocations into the token buckets (epoch hook)."""
        for flow in self._local_flows:
            if flow.sender_done:
                continue
            bucket = self._buckets.get(flow.flow_id)
            if bucket is not None:
                rate = self._controller.rate_for(flow.flow_id)
                bucket.set_rate(max(rate, 1.0), now_ns)

    def pump(self, now_ns: int) -> None:
        """Emit as many packets as tokens and ring space allow (per step)."""
        finished: List[SimFlow] = []
        for flow in self._local_flows:
            if flow.sender_done:
                continue
            bucket = self._buckets[flow.flow_id]
            provider = self._controller.provider
            protocol = provider.protocol(flow.protocol)
            while not flow.sender_done:
                payload_len = min(self._mtu, flow.remaining_bytes)
                size = 35 + payload_len
                if bucket.tokens(now_ns) < size:
                    break
                path = protocol.sample_path(
                    flow.src, flow.dst, self._rng, flow.flow_id
                )
                # route_index starts at 1: handing the packet to the first
                # hop's output ring *is* taking hop 0, so the next node must
                # consult the route at index 1.
                packet = DataPacket(
                    flow_id=flow.flow_id,
                    src=flow.src,
                    dst=flow.dst,
                    seq=flow.next_seq,
                    route_ports=tuple(
                        self._topology().port_of(path[i], path[i + 1])
                        for i in range(len(path) - 1)
                    ),
                    route_index=1,
                    payload=bytes(payload_len),
                )
                if not self._server.app_send(packet.encode(), [path[1]]):
                    break  # first-hop ring full; retry next step
                bucket.try_consume(size, now_ns)
                flow.next_seq += 1
                flow.bytes_sent += payload_len
            if flow.sender_done and flow.sender_done_ns is None:
                flow.sender_done_ns = now_ns
                finished.append(flow)
        for flow in finished:
            self._controller.on_flow_finished(flow.flow_id, now_ns)
            self._broadcast(flow, EVENT_FLOW_FINISH, now_ns)
            self._buckets.pop(flow.flow_id, None)
        if finished:
            self._local_flows = [f for f in self._local_flows if not f.sender_done]

    def _topology(self):
        return self._server._topology  # noqa: SLF001 - same package

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def _on_delivery(self, data: bytes) -> None:
        ptype = data[0] >> 4
        if ptype == TYPE_BROADCAST:
            if self._metrics is not None:
                self._metrics.broadcast_bytes += len(data)
                self._metrics.broadcast_packets += 1
            return
        if ptype != TYPE_DATA:
            raise EmulationError(f"unexpected packet type {ptype}")
        packet = DataPacket.decode(data, verify_checksum=True)
        if packet.dst != self.node:
            raise EmulationError(
                f"misrouted packet: flow {packet.flow_id} for node {packet.dst} "
                f"delivered at node {self.node}"
            )
        flow = self._flows.get(packet.flow_id)
        if flow is None:
            raise EmulationError(f"packet for unknown flow {packet.flow_id}")
        flow.record_in_order(packet.seq)
        flow.bytes_received += len(packet.payload)
        if flow.bytes_received >= flow.size_bytes and flow.completed_ns is None:
            flow.completed_ns = self._now_ns_hint

    def set_time_hint(self, now_ns: int) -> None:
        """Runner-provided timestamp for deliveries within the next step."""
        self._now_ns_hint = now_ns
