"""The Maze cluster emulation platform (paper §4.1).

A :class:`MazePlatform` maps a virtual rack topology onto a set of
:class:`~repro.maze.server.MazeServer` instances and advances them in fixed
timesteps, the way a polling-loop user-space stack behaves on a real
cluster.  Inter-server transfers model RDMA writes: bytes leave a pointer
ring within the link's byte budget, propagate for the link latency, then
land in the destination server's data ring buffer (retried while the buffer
is full, which is RDMA flow control in miniature).

This engine is deliberately *different* from the event-driven packet
simulator — discrete time vs events, byte buffers vs packet objects — so
that agreement between the two (Figure 7) is a meaningful cross-validation.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

from ..broadcast.fib import BroadcastFib
from ..errors import EmulationError
from ..topology.base import Topology
from ..types import NodeId
from .server import MazeServer


class MazePlatform:
    """All servers of one emulated rack plus the virtual links between them."""

    def __init__(
        self,
        topology: Topology,
        fib: Optional[BroadcastFib] = None,
        step_ns: int = 1000,
        dr_slots: int = 256,
        slot_bytes: int = 9 * 1024,
        pr_capacity: int = 4096,
    ) -> None:
        if step_ns < 1:
            raise EmulationError(f"step must be >= 1 ns, got {step_ns}")
        self._topology = topology
        self.step_ns = step_ns
        self.now_ns = 0
        self.servers: List[MazeServer] = [
            MazeServer(
                node,
                topology,
                fib,
                dr_slots=dr_slots,
                slot_bytes=slot_bytes,
                pr_capacity=pr_capacity,
            )
            for node in topology.nodes()
        ]
        #: in-flight transfers: (arrival time, seq, dst node, src node, bytes)
        self._in_flight: List[Tuple[int, int, NodeId, NodeId, bytes]] = []
        self._flight_seq = 0
        #: transfers that arrived but found the destination ring full.
        self._blocked: List[Tuple[NodeId, NodeId, bytes]] = []
        #: per-step hooks (the stack layer registers its work here).
        self._step_hooks: List[Callable[[int], None]] = []
        self.total_bytes_transferred = 0

    @property
    def topology(self) -> Topology:
        """The virtual topology being emulated."""
        return self._topology

    def server(self, node: NodeId) -> MazeServer:
        """The server emulating *node*."""
        return self.servers[node]

    def add_step_hook(self, hook: Callable[[int], None]) -> None:
        """Register a callable invoked with ``now_ns`` once per step."""
        self._step_hooks.append(hook)

    # ------------------------------------------------------------------
    # Time advance
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the emulation by one timestep."""
        self.now_ns += self.step_ns

        # 1. Land transfers whose propagation delay elapsed.
        self._deliver_due()

        # 2. Every server forwards what it has.
        for server in self.servers:
            server.process_incoming()

        # 3. Application-level work (flow emission, control plane).
        for hook in self._step_hooks:
            hook(self.now_ns)

        # 4. Every server serves its outgoing links.
        for server in self.servers:
            server.transmit(self.step_ns, self._send)

    def run_for(self, duration_ns: int) -> None:
        """Advance by *duration_ns* (rounded up to whole steps)."""
        steps = -(-duration_ns // self.step_ns)
        for _ in range(steps):
            self.step()

    def run_until(self, predicate: Callable[[], bool], max_ns: int) -> bool:
        """Step until *predicate* holds; False if *max_ns* elapsed first."""
        deadline = self.now_ns + max_ns
        while self.now_ns < deadline:
            if predicate():
                return True
            self.step()
        return predicate()

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def _send(self, src: NodeId, dst: NodeId, data: bytes) -> None:
        link = self._topology.link(src, dst)
        arrival = self.now_ns + link.latency_ns
        heapq.heappush(
            self._in_flight, (arrival, self._flight_seq, dst, src, data)
        )
        self._flight_seq += 1
        self.total_bytes_transferred += len(data)

    def _deliver_due(self) -> None:
        still_blocked: List[Tuple[NodeId, NodeId, bytes]] = []
        for dst, src, data in self._blocked:
            if not self.servers[dst].rdma_write(src, data):
                still_blocked.append((dst, src, data))
        self._blocked = still_blocked
        while self._in_flight and self._in_flight[0][0] <= self.now_ns:
            _, _, dst, src, data = heapq.heappop(self._in_flight)
            if not self.servers[dst].rdma_write(src, data):
                self._blocked.append((dst, src, data))

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def max_queue_occupancies(self) -> List[int]:
        """Per-outgoing-link max queued bytes, across all servers."""
        out: List[int] = []
        for server in self.servers:
            out.extend(server.max_queue_occupancies())
        return out

    def quiescent(self) -> bool:
        """True when nothing is queued or in flight anywhere."""
        if self._in_flight or self._blocked:
            return False
        return all(
            out.queued_bytes == 0
            for server in self.servers
            for out in server.out_links.values()
        )
