"""Software token-bucket rate limiters (Maze §4.1, "Rate control").

One token bucket per flow gates how fast the application's packet pointers
are inserted onto outgoing pointer rings; R2C2's congestion controller sets
the bucket rate.  Very fine-grained software rate limiting is feasible at
these speeds [29], and the paper notes one limiter per flow suffices because
R2C2 respects the routing protocol's relative path rates.
"""

from __future__ import annotations

from ..errors import EmulationError


class TokenBucket:
    """A classic token bucket in byte units with nanosecond accounting."""

    def __init__(self, rate_bps: float, burst_bytes: int, now_ns: int = 0) -> None:
        if rate_bps < 0:
            raise EmulationError(f"rate must be >= 0, got {rate_bps}")
        if burst_bytes < 1:
            raise EmulationError(f"burst must be >= 1 byte, got {burst_bytes}")
        self._rate_bps = rate_bps
        self._burst = burst_bytes
        self._tokens = float(burst_bytes)
        self._last_ns = now_ns

    @property
    def rate_bps(self) -> float:
        """Current fill rate."""
        return self._rate_bps

    def set_rate(self, rate_bps: float, now_ns: int) -> None:
        """Change the fill rate (called on every recomputation epoch)."""
        if rate_bps < 0:
            raise EmulationError(f"rate must be >= 0, got {rate_bps}")
        self._refill(now_ns)
        self._rate_bps = rate_bps

    def _refill(self, now_ns: int) -> None:
        if now_ns < self._last_ns:
            raise EmulationError("token bucket time went backwards")
        elapsed = now_ns - self._last_ns
        self._last_ns = now_ns
        self._tokens = min(
            float(self._burst), self._tokens + self._rate_bps * elapsed / 8e9
        )

    def try_consume(self, size_bytes: int, now_ns: int) -> bool:
        """Spend tokens for one packet if available."""
        self._refill(now_ns)
        if self._tokens >= size_bytes:
            self._tokens -= size_bytes
            return True
        return False

    def tokens(self, now_ns: int) -> float:
        """Current token level (testing hook)."""
        self._refill(now_ns)
        return self._tokens
