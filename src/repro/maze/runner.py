"""Run flow traces on the Maze emulation platform (Figure 7's left column).

Returns the same :class:`~repro.sim.metrics.SimMetrics` the packet
simulator produces, so the cross-validation can compare them directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..broadcast.fib import BroadcastFib
from ..congestion.controller import ControllerConfig, RateController
from ..congestion.linkweights import WeightProvider
from ..errors import EmulationError
from ..sim.flows import SimFlow
from ..sim.metrics import SimMetrics
from ..topology.base import Topology
from ..types import msec, usec
from ..workloads.generator import FlowArrival
from .platform import MazePlatform
from .stack import MazeR2C2Stack


@dataclass
class EmulationConfig:
    """Knobs of one emulation run.

    The defaults mirror the paper's Maze deployment: 8 KB packets, a 5 %
    headroom and 500 µs recomputation interval.
    """

    step_ns: int = 1000
    mtu_payload: int = 8192
    headroom: float = 0.05
    recompute_interval_ns: int = usec(500)
    n_broadcast_trees: int = 4
    initial_rate_policy: str = "mean_allocated"
    seed: int = 0
    #: Optional substream key (see :class:`repro.sim.runner.SimConfig`):
    #: RNGs seed from ``derive_seed(seed, *seed_parts)``; the default
    #: keeps the exact historical stream of ``seed``.
    seed_parts: tuple = ()
    horizon_ns: Optional[int] = None

    def __post_init__(self) -> None:
        if self.step_ns < 1:
            raise EmulationError("step_ns must be >= 1")
        self.seed_parts = tuple(self.seed_parts)

    def effective_seed(self) -> int:
        """The seed the run actually uses."""
        from ..core.seeds import derive_seed

        return derive_seed(self.seed, *self.seed_parts)


def run_emulation(
    topology: Topology,
    trace: Sequence[FlowArrival],
    config: Optional[EmulationConfig] = None,
    provider: Optional[WeightProvider] = None,
    telemetry=None,
) -> SimMetrics:
    """Emulate *trace* on the Maze platform with the R2C2 stack.

    Args:
        telemetry: Optional :class:`~repro.telemetry.Telemetry` session;
            records controller epochs, queue-occupancy probes and wire
            totals exactly like the packet simulator, so emulation and
            simulation snapshots are directly comparable (the Figure 7
            cross-validation, live).
    """
    config = config or EmulationConfig()
    if not trace:
        raise EmulationError("empty flow trace")
    for arrival in trace:
        if arrival.src == arrival.dst:
            raise EmulationError(f"flow {arrival.flow_id} has src == dst")

    metrics = SimMetrics()
    flows: Dict[int, SimFlow] = {a.flow_id: SimFlow(a) for a in trace}
    seed = config.effective_seed()
    fib = BroadcastFib(topology, n_trees=config.n_broadcast_trees, seed=seed)
    platform = MazePlatform(
        topology,
        fib=fib,
        step_ns=config.step_ns,
        slot_bytes=config.mtu_payload + 64,
    )
    provider = provider if provider is not None else WeightProvider(topology)
    controller = RateController(
        topology,
        node=0,
        provider=provider,
        config=ControllerConfig(
            headroom=config.headroom,
            recompute_interval_ns=config.recompute_interval_ns,
            initial_rate_policy=config.initial_rate_policy,
        ),
        telemetry=telemetry,
    )
    stacks: List[MazeR2C2Stack] = [
        MazeR2C2Stack(
            node,
            platform.server(node),
            controller,
            fib,
            flows,
            mtu_payload=config.mtu_payload,
            seed=seed,
            metrics=metrics,
        )
        for node in topology.nodes()
    ]

    pending = sorted(trace, key=lambda a: (a.start_ns, a.flow_id))
    cursor = {"next": 0}

    # Queue-occupancy probe (pulled from the step hook on a cadence, like
    # the simulator's link probes; never perturbs emulation behaviour).
    probe_state = {"next_due": 0}
    if telemetry is not None and telemetry.enabled:
        from ..telemetry import QUEUE_BUCKETS

        probe_interval = max(
            telemetry.config.link_probe_interval_ns, platform.step_ns
        )
        hist_queue = telemetry.metrics.histogram(
            "queue.occupancy_bytes", buckets=QUEUE_BUCKETS
        )
        series_queued = telemetry.metrics.series("rack.queued_bytes")

        def probe(now_ns: int) -> None:
            if now_ns < probe_state["next_due"]:
                return
            probe_state["next_due"] = now_ns + probe_interval
            total = 0
            for server in platform.servers:
                for out in server.out_links.values():
                    hist_queue.observe(out.queued_bytes)
                    total += out.queued_bytes
            series_queued.append(now_ns, total)
            if telemetry.trace:
                telemetry.trace.counter(
                    "rack.queued_bytes", now_ns, {"bytes": total}
                )
    else:
        probe = None

    def step_hook(now_ns: int) -> None:
        # Start flows whose arrival time has come.
        i = cursor["next"]
        while i < len(pending) and pending[i].start_ns <= now_ns:
            arrival = pending[i]
            stacks[arrival.src].start_flow(flows[arrival.flow_id], now_ns)
            i += 1
        cursor["next"] = i
        # Periodic recomputation plus token-bucket refresh.
        if controller.maybe_recompute(now_ns) is not None:
            for stack in stacks:
                stack.refresh_rates(now_ns)
        # Data-plane emission.
        for stack in stacks:
            stack.set_time_hint(now_ns)
            stack.pump(now_ns)
        if probe is not None:
            probe(now_ns)

    platform.add_step_hook(step_hook)

    horizon = config.horizon_ns
    if horizon is None:
        last_arrival = max(a.start_ns for a in trace)
        total_bits = sum(a.size_bytes for a in trace) * 8
        horizon = last_arrival + max(
            int(total_bits / (topology.capacity_bps / 10) * 1e9), msec(50)
        )

    started_wall = time.perf_counter()
    platform.run_until(
        lambda: all(f.completed for f in flows.values()),
        max_ns=horizon,
    )

    metrics.flows = list(flows.values())
    metrics.max_queue_occupancy_bytes = platform.max_queue_occupancies()
    metrics.total_bytes_on_wire = platform.total_bytes_transferred
    metrics.data_bytes_on_wire = metrics.total_bytes_on_wire - metrics.broadcast_bytes
    metrics.duration_ns = platform.now_ns
    metrics.events_processed = platform.now_ns // platform.step_ns
    metrics.wallclock_s = time.perf_counter() - started_wall
    metrics.recompute_overheads = [s.cpu_overhead for s in controller.stats]
    metrics.epochs_skipped = sum(1 for s in controller.stats if s.skipped)
    metrics.epochs_recomputed = len(controller.stats) - metrics.epochs_skipped
    if telemetry is not None and telemetry.enabled:
        from ..telemetry import QUEUE_BUCKETS

        registry = telemetry.metrics
        registry.counter("wire.total_bytes").inc(metrics.total_bytes_on_wire)
        registry.gauge("sim.duration_ns").set(metrics.duration_ns)
        registry.gauge("sim.flows_total").set(len(metrics.flows))
        registry.gauge("sim.flows_completed").set(len(metrics.completed_flows()))
        hist = registry.histogram("queue.max_occupancy_bytes", buckets=QUEUE_BUCKETS)
        for occupancy in metrics.max_queue_occupancy_bytes:
            hist.observe(occupancy)
    return metrics
