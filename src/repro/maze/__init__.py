"""The Maze rack-emulation platform, reimplemented in software (paper §4.1).

The paper runs Maze on a 16-server RDMA cluster; here the same
architecture — data ring buffers written by (emulated) RDMA, per-link
pointer rings, zero-copy forwarding, software rate limiters — runs as a
discrete-time in-process emulation, which is the documented substitution
(see DESIGN.md §2).  Packets are real encoded bytes, checksum-verified at
their destination.
"""

from .platform import MazePlatform
from .ratelimit import TokenBucket
from .ringbuffer import DataRingBuffer, PointerRing
from .runner import EmulationConfig, run_emulation
from .server import SOURCE_APP, MazeOutLink, MazeServer
from .stack import MazeR2C2Stack

__all__ = [
    "DataRingBuffer",
    "EmulationConfig",
    "MazeOutLink",
    "MazePlatform",
    "MazeR2C2Stack",
    "MazeServer",
    "PointerRing",
    "SOURCE_APP",
    "TokenBucket",
    "run_emulation",
]
