"""One emulated Maze server (paper §4.1, Figure 5).

A server owns, per incoming link, a data ring buffer that remote peers
(emulated-)RDMA-write packets into; per outgoing link, a set of pointer
rings (one per incoming link plus one for the local application) drained at
line rate; and the forwarding logic between them, which is the real R2C2
data plane: it reads the *encoded* packet header, extracts the next port
from the 3-bit route field, bumps the route index in place and hands the
pointer — never the bytes — to the chosen outgoing link.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..broadcast.fib import BroadcastFib
from ..errors import EmulationError
from ..topology.base import Topology
from ..types import NodeId
from ..wire.packets import TYPE_BROADCAST, TYPE_DATA
from ..wire.route_encoding import port_at
from .ringbuffer import DataRingBuffer, PointerRing

#: Pointer-ring source tags.
SOURCE_APP = -1


class MazeOutLink:
    """An outgoing link: pointer rings, a byte budget, and the emulated QP."""

    def __init__(
        self,
        src: NodeId,
        dst: NodeId,
        capacity_bps: float,
        latency_ns: int,
        pr_capacity: int,
    ) -> None:
        self.src = src
        self.dst = dst
        self.capacity_bps = capacity_bps
        self.latency_ns = latency_ns
        self._pr_capacity = pr_capacity
        #: pointer rings keyed by source (incoming neighbor id or SOURCE_APP)
        self.rings: Dict[int, PointerRing] = {}
        self._service_order: List[int] = []
        self._next_ring = 0
        self._budget_bytes = 0.0
        self.queued_bytes = 0
        self.max_queued_bytes = 0
        self.bytes_sent = 0

    def ring_for(self, source: int) -> PointerRing:
        """The pointer ring fed by *source* (created lazily)."""
        ring = self.rings.get(source)
        if ring is None:
            ring = PointerRing(
                self._pr_capacity, name=f"pr({self.src}->{self.dst})[{source}]"
            )
            self.rings[source] = ring
            self._service_order.append(source)
        return ring

    def push(self, source: int, buffer: DataRingBuffer, slot: int) -> bool:
        """Queue a packet pointer for transmission."""
        ring = self.ring_for(source)
        if not ring.push(buffer, slot):
            return False
        self.queued_bytes += len(buffer.read(slot))
        if self.queued_bytes > self.max_queued_bytes:
            self.max_queued_bytes = self.queued_bytes
        return True

    def add_budget(self, dt_ns: int, max_accumulation_bytes: float) -> None:
        """Accrue transmission budget for one timestep."""
        self._budget_bytes = min(
            self._budget_bytes + self.capacity_bps * dt_ns / 8e9,
            max_accumulation_bytes,
        )

    def transmit(
        self, send: Callable[[NodeId, NodeId, bytes], None]
    ) -> List[Tuple[DataRingBuffer, int]]:
        """Drain pointer rings round-robin within the byte budget.

        *send* emits the bytes toward the neighbor; the freed (buffer, slot)
        references are returned so the server can release them.
        """
        sent: List[Tuple[DataRingBuffer, int]] = []
        if not self._service_order:
            return sent
        idle_scans = 0
        while idle_scans < len(self._service_order):
            source = self._service_order[self._next_ring % len(self._service_order)]
            self._next_ring += 1
            ring = self.rings[source]
            head = ring.peek()
            if head is None:
                idle_scans += 1
                continue
            buffer, slot = head
            size = len(buffer.read(slot))
            if size > self._budget_bytes:
                break
            ring.pop()
            self._budget_bytes -= size
            self.queued_bytes -= size
            self.bytes_sent += size
            send(self.src, self.dst, buffer.read(slot))
            sent.append((buffer, slot))
            idle_scans = 0
        return sent


class MazeServer:
    """One rack node: ring buffers, pointer rings, forwarding."""

    def __init__(
        self,
        node: NodeId,
        topology: Topology,
        fib: Optional[BroadcastFib],
        dr_slots: int = 256,
        slot_bytes: int = 9 * 1024,
        pr_capacity: int = 4096,
        app_dr_slots: int = 1024,
    ) -> None:
        self.node = node
        self._topology = topology
        self._fib = fib
        self.slot_bytes = slot_bytes
        # One data ring buffer per incoming link, plus one for the app.
        self.incoming_dr: Dict[NodeId, DataRingBuffer] = {
            up: DataRingBuffer(dr_slots, slot_bytes, name=f"dr({up}->{node})")
            for up in topology.in_neighbors(node)
        }
        self.app_dr = DataRingBuffer(app_dr_slots, slot_bytes, name=f"dr(app@{node})")
        self.out_links: Dict[NodeId, MazeOutLink] = {}
        for down in topology.neighbors(node):
            link = topology.link(node, down)
            self.out_links[down] = MazeOutLink(
                node, down, link.capacity_bps, link.latency_ns, pr_capacity
            )
        #: slots awaiting forwarding, per incoming link, in arrival order.
        self._pending: Dict[NodeId, Deque[int]] = {
            up: deque() for up in self.incoming_dr
        }
        #: reference counts for multicast (broadcast) slots.
        self._refcount: Dict[Tuple[int, int], int] = {}
        #: local delivery callback, installed by the stack.
        self.on_local_delivery: Optional[Callable[[bytes], None]] = None
        self.forwarded_packets = 0
        self.delivered_packets = 0

    # ------------------------------------------------------------------
    # Receiving (emulated RDMA write landing in our memory)
    # ------------------------------------------------------------------
    def rdma_write(self, from_node: NodeId, data: bytes) -> bool:
        """A neighbor wrote *data* into our ring buffer for that link."""
        dr = self.incoming_dr.get(from_node)
        if dr is None:
            raise EmulationError(f"no incoming link {from_node} -> {self.node}")
        slot = dr.write(data)
        if slot is None:
            return False
        self._pending[from_node].append(slot)
        return True

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def process_incoming(self) -> None:
        """Forward or deliver every pending packet (head-of-line per DR)."""
        for up, pending in self._pending.items():
            dr = self.incoming_dr[up]
            while pending:
                slot = pending[0]
                if not self._handle_packet(dr, slot, source=up):
                    break  # output ring full; retry next step
                pending.popleft()

    def _handle_packet(self, dr: DataRingBuffer, slot: int, source: int) -> bool:
        data = dr.read(slot)
        ptype = data[0] >> 4
        if ptype == TYPE_BROADCAST:
            return self._handle_broadcast(dr, slot, data, source)
        if ptype != TYPE_DATA:
            raise EmulationError(f"unknown packet type {ptype} at node {self.node}")
        rlen = data[1]
        ridx = data[2]
        if ridx >= rlen:
            self._deliver_local(data)
            dr.free(slot)
            return True
        port = port_at(data[19:35], ridx)
        next_node = self._topology.neighbor_at_port(self.node, port)
        # Bump the route index in place — excluded from the checksum by
        # design, so no recomputation is needed.
        mutated = data[:2] + bytes([ridx + 1]) + data[3:]
        out = self.out_links[next_node]
        dr.replace(slot, mutated)
        if not out.push(source, dr, slot):
            # Ring full: undo the mutation so a retry next step is clean.
            dr.replace(slot, data)
            return False
        self.forwarded_packets += 1
        return True

    def _handle_broadcast(
        self, dr: DataRingBuffer, slot: int, data: bytes, source: int
    ) -> bool:
        if self._fib is None:
            raise EmulationError("broadcast received but no FIB configured")
        bsrc = int.from_bytes(data[1:3], "big")
        tree_id = data[14] >> 4
        children = self._fib.next_hops(self.node, bsrc, tree_id)
        # All-or-nothing: only proceed if every child ring has space, so a
        # retry cannot double-send to some children.
        for child in children:
            ring = self.out_links[child].ring_for(source)
            if len(ring) >= ring.capacity:
                return False
        self._deliver_local(data)
        if not children:
            dr.free(slot)
            return True
        self._refcount[(id(dr), slot)] = len(children)
        for child in children:
            if not self.out_links[child].push(source, dr, slot):
                raise EmulationError("broadcast push failed after capacity check")
        self.forwarded_packets += len(children)
        return True

    def _deliver_local(self, data: bytes) -> None:
        self.delivered_packets += 1
        if self.on_local_delivery is not None:
            self.on_local_delivery(data)

    # ------------------------------------------------------------------
    # Application send path
    # ------------------------------------------------------------------
    def app_send(self, data: bytes, first_hops: List[NodeId]) -> bool:
        """The local application queues *data* toward one or more neighbors.

        Multiple first hops occur only for broadcasts (the source forwards a
        copy down every child of its tree).  All-or-nothing like forwarding.
        """
        if not first_hops:
            raise EmulationError("app_send needs at least one first hop")
        for hop in first_hops:
            ring = self.out_links[hop].ring_for(SOURCE_APP)
            if len(ring) >= ring.capacity:
                return False
        if not self.app_dr.has_space():
            return False
        slot = self.app_dr.write(data)
        assert slot is not None
        if len(first_hops) > 1:
            self._refcount[(id(self.app_dr), slot)] = len(first_hops)
        for hop in first_hops:
            if not self.out_links[hop].push(SOURCE_APP, self.app_dr, slot):
                raise EmulationError("app push failed after capacity check")
        return True

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def transmit(self, dt_ns: int, send: Callable[[NodeId, NodeId, bytes], None]) -> None:
        """Serve every outgoing link's pointer rings for one timestep."""
        # Budget accrual is capped at one maximum-size packet: a link that
        # sat idle must not burst several packets back-to-back into the next
        # hop, which would inflate downstream queues beyond what line-rate
        # serialization allows.
        for out in self.out_links.values():
            out.add_budget(dt_ns, max_accumulation_bytes=float(self.slot_bytes))
            for buffer, slot in out.transmit(send):
                self._release(buffer, slot)

    def _release(self, buffer: DataRingBuffer, slot: int) -> None:
        key = (id(buffer), slot)
        count = self._refcount.get(key)
        if count is None:
            buffer.free(slot)
            return
        if count <= 1:
            del self._refcount[key]
            buffer.free(slot)
        else:
            self._refcount[key] = count - 1

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def max_queue_occupancies(self) -> List[int]:
        """Per-outgoing-link maximum queued bytes."""
        return [out.max_queued_bytes for out in self.out_links.values()]
