"""Randomized packet spraying (RPS) — minimal multi-path routing.

Each packet independently picks, at every hop, a uniformly random neighbor
that lies on some shortest path to the destination (Dixit et al. [22]).  This
is R2C2's default protocol for new flows (§3.4: "new flows start with minimal
routing").
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping

from ..types import LinkId, NodeId
from .base import RoutingProtocol, register_protocol
from .weights import sample_spray_path, spray_link_weights


@register_protocol
class RandomPacketSpraying(RoutingProtocol):
    """Per-hop uniform random minimal routing."""

    name = "rps"
    protocol_id = 0
    minimal = True

    def __init__(self, topology) -> None:
        super().__init__(topology)
        self._weights_cache: Dict[tuple, Mapping[LinkId, float]] = {}

    def sample_path(
        self, src: NodeId, dst: NodeId, rng: random.Random, flow_id: int = 0
    ) -> List[NodeId]:
        self._check_endpoints(src, dst)
        return sample_spray_path(self._topology, src, dst, rng)

    def link_weights(
        self, src: NodeId, dst: NodeId, flow_id: int = 0
    ) -> Mapping[LinkId, float]:
        self._check_endpoints(src, dst)
        key = (src, dst)
        cached = self._weights_cache.get(key)
        if cached is None:
            cached = spray_link_weights(self._topology, src, dst)
            self._weights_cache[key] = cached
        return cached
