"""Valiant load balancing (VLB) — non-minimal oblivious routing.

Each packet travels minimally to a uniformly random waypoint node, then
minimally to the destination (Valiant & Brebner [45]).  This transforms any
traffic matrix into (two copies of) uniform traffic, which yields the
guaranteed 0.5 worst-case throughput in Figure 2 at the cost of halved
best-case throughput.

Link-weight computation exploits linearity:

* phase 2 is a single spray DP toward ``dst`` with uniform injection
  (every node is the waypoint with probability 1/n);
* phase 1 is the expensive direction (a different DAG per waypoint), so we
  compute the aggregate once for a canonical source and *translate* it
  through the topology's automorphism group.  Tori translate coordinates,
  hypercubes XOR node ids; other topologies fall back to a per-source
  computation with caching.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional

from ..topology.hypercube import HypercubeTopology
from ..topology.torus import TorusTopology
from ..types import LinkId, NodeId
from .base import RoutingProtocol, register_protocol
from .weights import merge_weights, sample_spray_path, spray_injection_weights, spray_link_weights


def translation_map(topology, target: NodeId) -> Optional[List[NodeId]]:
    """Automorphism sending node 0 to *target*, as a node permutation.

    Returns ``None`` when the topology has no known vertex-transitive
    structure.  For a torus this is coordinate translation; for a hypercube
    it is XOR with *target*.
    """
    if isinstance(topology, HypercubeTopology):
        return [node ^ target for node in topology.nodes()]
    if isinstance(topology, TorusTopology):
        shift = topology.coordinates(target)
        dims = topology.dims
        mapping = []
        for node in topology.nodes():
            coords = topology.coordinates(node)
            moved = tuple((c + s) % k for c, s, k in zip(coords, shift, dims))
            mapping.append(topology.node_at(moved))
        return mapping
    return None


@register_protocol
class ValiantLoadBalancing(RoutingProtocol):
    """Two-phase minimal routing through a uniformly random waypoint."""

    name = "vlb"
    protocol_id = 2
    minimal = False

    def __init__(self, topology) -> None:
        super().__init__(topology)
        self._phase1_cache: Dict[NodeId, Mapping[LinkId, float]] = {}
        self._phase2_cache: Dict[NodeId, Mapping[LinkId, float]] = {}
        self._pair_cache: Dict[tuple, Mapping[LinkId, float]] = {}
        self._canonical_phase1: Optional[Mapping[LinkId, float]] = None
        self._transitive = translation_map(topology, 0) is not None

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def sample_path(
        self, src: NodeId, dst: NodeId, rng: random.Random, flow_id: int = 0
    ) -> List[NodeId]:
        self._check_endpoints(src, dst)
        if src == dst:
            return [src]
        waypoint = rng.randrange(self._topology.n_nodes)
        leg1 = sample_spray_path(self._topology, src, waypoint, rng)
        leg2 = sample_spray_path(self._topology, waypoint, dst, rng)
        return leg1 + leg2[1:]

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def link_weights(
        self, src: NodeId, dst: NodeId, flow_id: int = 0
    ) -> Mapping[LinkId, float]:
        self._check_endpoints(src, dst)
        key = (src, dst)
        cached = self._pair_cache.get(key)
        if cached is None:
            cached = merge_weights(self._phase1_weights(src), self._phase2_weights(dst))
            self._pair_cache[key] = cached
        return cached

    def _phase2_weights(self, dst: NodeId) -> Mapping[LinkId, float]:
        """Expected weights of the waypoint -> dst leg: one spray DP with a
        uniform 1/n injection at every node."""
        cached = self._phase2_cache.get(dst)
        if cached is None:
            n = self._topology.n_nodes
            injection = {node: 1.0 / n for node in self._topology.nodes()}
            cached = spray_injection_weights(self._topology, dst, injection)
            self._phase2_cache[dst] = cached
        return cached

    def _phase1_weights(self, src: NodeId) -> Mapping[LinkId, float]:
        """Expected weights of the src -> waypoint leg, averaged over all
        waypoints."""
        cached = self._phase1_cache.get(src)
        if cached is not None:
            return cached
        if self._transitive:
            weights = self._translate_phase1(src)
        else:
            weights = self._compute_phase1(src)
        self._phase1_cache[src] = weights
        return weights

    def _compute_phase1(self, src: NodeId) -> Mapping[LinkId, float]:
        n = self._topology.n_nodes
        maps = [
            spray_link_weights(self._topology, src, waypoint)
            for waypoint in self._topology.nodes()
            if waypoint != src
        ]
        return merge_weights(*maps, scales=[1.0 / n] * len(maps))

    def _translate_phase1(self, src: NodeId) -> Mapping[LinkId, float]:
        if self._canonical_phase1 is None:
            self._canonical_phase1 = self._compute_phase1(0)
        if src == 0:
            return self._canonical_phase1
        mapping = translation_map(self._topology, src)
        assert mapping is not None
        topo = self._topology
        translated: Dict[LinkId, float] = {}
        for link_id, weight in self._canonical_phase1.items():
            link = topo.links[link_id]
            moved = topo.link_id(mapping[link.src], mapping[link.dst])
            translated[moved] = translated.get(moved, 0.0) + weight
        return translated
