"""Per-flow routing protocols (paper §2.2.1, §3.4, §4.2).

The paper's implementation ships random packet spraying, destination-tag
routing and VLB; we additionally provide WLB (studied in Figure 2) and the
single-path ECMP used by the TCP baseline.

Protocols are registered with one-byte wire ids so they can be named in
broadcast packets::

    rps = 0, dor = 1, vlb = 2, wlb = 3, ecmp = 4
"""

from .base import (
    RoutingProtocol,
    make_protocol,
    protocol_class,
    register_protocol,
    registered_protocols,
)
from .dor import DestinationTagRouting
from .ecmp import EcmpSinglePath
from .spraying import RandomPacketSpraying
from .valiant import ValiantLoadBalancing, translation_map
from .weights import (
    deterministic_minimal_path,
    merge_weights,
    path_weights,
    sample_spray_path,
    spray_injection_weights,
    spray_link_weights,
)
from .wlb import WeightedLoadBalancing

__all__ = [
    "DestinationTagRouting",
    "EcmpSinglePath",
    "RandomPacketSpraying",
    "RoutingProtocol",
    "ValiantLoadBalancing",
    "WeightedLoadBalancing",
    "deterministic_minimal_path",
    "make_protocol",
    "merge_weights",
    "path_weights",
    "protocol_class",
    "register_protocol",
    "registered_protocols",
    "sample_spray_path",
    "spray_injection_weights",
    "spray_link_weights",
    "translation_map",
]
