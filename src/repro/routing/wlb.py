"""Weighted load balancing (WLB) — locality-preserving non-minimal routing.

Follows the randomized locality-preserving oblivious routing of Singh et al.
[44]: independently for each torus dimension the packet picks a travel
direction, choosing the minimal direction with probability proportional to
the *inverse* of the distance that way — i.e. with offset ``d`` on a ring of
size ``k`` the short way is taken with probability ``(k - d) / k``.  Within
the chosen "quadrant" (fixed direction and hop count per dimension) the
packet sprays uniformly over the remaining dimensions at every hop.

This interpolates between minimal routing (offsets much smaller than ``k/2``
almost always go the short way) and Valiant-style balancing (offsets near
``k/2`` split close to 50/50), reproducing the Figure 2 behaviour: 2.33 on
nearest-neighbour traffic, 0.53 on tornado, 0.31 worst-case.

WLB requires a coordinate topology (torus, mesh, hypercube); on meshes there
is no long way around, so it degenerates to minimal quadrant spraying.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Sequence, Tuple

from ..errors import RoutingError
from ..types import LinkId, NodeId
from .base import RoutingProtocol, register_protocol


@register_protocol
class WeightedLoadBalancing(RoutingProtocol):
    """Inverse-distance-weighted direction choice plus quadrant spraying."""

    name = "wlb"
    protocol_id = 3
    minimal = False

    def __init__(self, topology) -> None:
        super().__init__(topology)
        if topology.dims is None:
            raise RoutingError(
                "WLB requires a coordinate topology (torus/mesh/hypercube), "
                f"got {topology.name}"
            )
        self._dims = topology.dims
        self._wraps = self._detect_wraparound()
        self._weights_cache: Dict[tuple, Mapping[LinkId, float]] = {}

    def _detect_wraparound(self) -> bool:
        topo = self._topology
        for axis, size in enumerate(self._dims):
            if size <= 2:
                continue
            coords = [0] * len(self._dims)
            coords[axis] = size - 1
            return topo.has_link(0, topo.node_at(coords))
        return True  # all-dims-2 cubes wrap trivially

    # ------------------------------------------------------------------
    # Direction choice
    # ------------------------------------------------------------------
    def _direction_options(
        self, src: NodeId, dst: NodeId
    ) -> List[List[Tuple[int, int, float]]]:
        """Per dimension: list of ``(signed_step, hop_count, probability)``.

        Dimensions with zero offset contribute an empty list (no movement).
        """
        topo = self._topology
        a = topo.coordinates(src)
        b = topo.coordinates(dst)
        options: List[List[Tuple[int, int, float]]] = []
        for ca, cb, size in zip(a, b, self._dims):
            if ca == cb:
                options.append([])
                continue
            if not self._wraps:
                # Mesh: only one way to go.
                step = 1 if cb > ca else -1
                options.append([(step, abs(cb - ca), 1.0)])
                continue
            fwd = (cb - ca) % size  # hops going +1
            back = size - fwd  # hops going -1
            # Inverse-distance weighting: p(+) = back / (fwd + back) = back/k.
            p_fwd = back / size
            opts = []
            if fwd > 0:
                opts.append((1, fwd, p_fwd))
            if back > 0:
                opts.append((-1, back, 1.0 - p_fwd))
            options.append(opts)
        return options

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def sample_path(
        self, src: NodeId, dst: NodeId, rng: random.Random, flow_id: int = 0
    ) -> List[NodeId]:
        self._check_endpoints(src, dst)
        if src == dst:
            return [src]
        steps: List[Tuple[int, int, int]] = []  # (axis, step, remaining)
        for axis, opts in enumerate(self._direction_options(src, dst)):
            if not opts:
                continue
            if len(opts) == 1 or rng.random() < opts[0][2]:
                step, count, _ = opts[0]
            else:
                step, count, _ = opts[1]
            steps.append((axis, step, count))

        topo = self._topology
        coords = list(topo.coordinates(src))
        path = [src]
        remaining = {axis: count for axis, _, count in steps}
        directions = {axis: step for axis, step, _ in steps}
        while remaining:
            live = list(remaining)
            axis = live[rng.randrange(len(live))] if len(live) > 1 else live[0]
            coords[axis] = (coords[axis] + directions[axis]) % self._dims[axis]
            path.append(topo.node_at(coords))
            remaining[axis] -= 1
            if remaining[axis] == 0:
                del remaining[axis]
        return path

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def link_weights(
        self, src: NodeId, dst: NodeId, flow_id: int = 0
    ) -> Mapping[LinkId, float]:
        self._check_endpoints(src, dst)
        key = (src, dst)
        cached = self._weights_cache.get(key)
        if cached is not None:
            return cached
        if src == dst:
            weights: Dict[LinkId, float] = {}
        else:
            weights = {}
            for combo_prob, steps in self._enumerate_quadrants(src, dst):
                for link, w in self._quadrant_weights(src, steps).items():
                    weights[link] = weights.get(link, 0.0) + combo_prob * w
        self._weights_cache[key] = weights
        return weights

    def _enumerate_quadrants(self, src: NodeId, dst: NodeId):
        """Yield ``(probability, steps)`` for every direction combination,
        where steps is a list of ``(axis, signed_step, hop_count)``."""
        per_dim = self._direction_options(src, dst)
        combos: List[Tuple[float, List[Tuple[int, int, int]]]] = [(1.0, [])]
        for axis, opts in enumerate(per_dim):
            if not opts:
                continue
            expanded = []
            for prob, steps in combos:
                for step, count, p in opts:
                    expanded.append((prob * p, steps + [(axis, step, count)]))
            combos = expanded
        return combos

    def _quadrant_weights(
        self, src: NodeId, steps: Sequence[Tuple[int, int, int]]
    ) -> Dict[LinkId, float]:
        """Spray uniformly over dimension interleavings inside one quadrant.

        Dynamic program over the *remaining-hops* vector: the absolute
        position is recoverable from it, so the state space is the product
        of the per-dimension hop counts plus one.
        """
        topo = self._topology
        src_coords = topo.coordinates(src)
        axes = [axis for axis, _, _ in steps]
        dirs = {axis: step for axis, step, _ in steps}
        totals = {axis: count for axis, _, count in steps}

        def position(remaining: Tuple[int, ...]) -> NodeId:
            coords = list(src_coords)
            for axis, rem in zip(axes, remaining):
                done = totals[axis] - rem
                coords[axis] = (coords[axis] + dirs[axis] * done) % self._dims[axis]
            return topo.node_at(coords)

        weights: Dict[LinkId, float] = {}
        start = tuple(totals[axis] for axis in axes)
        frontier: Dict[Tuple[int, ...], float] = {start: 1.0}
        while frontier:
            next_frontier: Dict[Tuple[int, ...], float] = {}
            for remaining, mass in frontier.items():
                live = [i for i, rem in enumerate(remaining) if rem > 0]
                if not live:
                    continue
                share = mass / len(live)
                here = position(remaining)
                for i in live:
                    nxt = list(remaining)
                    nxt[i] -= 1
                    nxt_t = tuple(nxt)
                    there = position(nxt_t)
                    link = topo.link_id(here, there)
                    weights[link] = weights.get(link, 0.0) + share
                    if any(nxt_t):
                        next_frontier[nxt_t] = next_frontier.get(nxt_t, 0.0) + share
            frontier = next_frontier
        return weights
