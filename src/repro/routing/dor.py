"""Destination-tag / dimension-order routing (DOR).

The classic deterministic minimal routing for k-ary n-cubes (Dally & Towles
[20]): correct the offset one dimension at a time, in fixed dimension order.
On a torus ring whose offset is exactly half the ring, both directions are
minimal; we split that tie 50/50 per packet, which is also how the link
weights account for it.

On topologies without a coordinate system the protocol degrades to the
deterministic lowest-port minimal path, which preserves the defining
property (a single fixed path per source/destination pair).
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping

from ..errors import RoutingError
from ..types import LinkId, NodeId
from .base import RoutingProtocol, register_protocol
from .weights import deterministic_minimal_path, merge_weights, path_weights


def _coordinate_dims(topology):
    return topology.dims  # None for non-coordinate topologies


@register_protocol
class DestinationTagRouting(RoutingProtocol):
    """Deterministic dimension-order minimal routing."""

    name = "dor"
    protocol_id = 1
    minimal = True

    def __init__(self, topology) -> None:
        super().__init__(topology)
        self._weights_cache: Dict[tuple, Mapping[LinkId, float]] = {}
        self._has_coords = _coordinate_dims(topology) is not None
        # Wraparound only exists on tori/hypercubes; meshes expose dims but
        # their offsets never wrap, which _signed_offsets handles naturally.
        self._wraps = self._has_coords and all(
            topology.has_link(0, topology.node_at(self._wrap_neighbor(0, axis)))
            for axis in range(len(topology.dims))
            if topology.dims[axis] > 2
        )

    def _wrap_neighbor(self, node: NodeId, axis: int):
        coords = list(self._topology.coordinates(node))
        coords[axis] = (coords[axis] - 1) % self._topology.dims[axis]
        return coords

    def _signed_offsets(self, src: NodeId, dst: NodeId) -> List[List[int]]:
        """Minimal signed offset(s) per dimension; two entries on a wrap tie."""
        topo = self._topology
        a = topo.coordinates(src)
        b = topo.coordinates(dst)
        offsets: List[List[int]] = []
        for ca, cb, size in zip(a, b, topo.dims):
            direct = cb - ca
            if not self._wraps:
                offsets.append([direct])
                continue
            fwd = (cb - ca) % size
            back = fwd - size
            if fwd == 0:
                offsets.append([0])
            elif fwd < -back:
                offsets.append([fwd])
            elif fwd > -back:
                offsets.append([back])
            else:
                offsets.append([fwd, back])
        return offsets

    def _path_for_offsets(self, src: NodeId, chosen: List[int]) -> List[NodeId]:
        topo = self._topology
        coords = list(topo.coordinates(src))
        path = [src]
        for axis, offset in enumerate(chosen):
            step = 1 if offset > 0 else -1
            size = topo.dims[axis]
            for _ in range(abs(offset)):
                coords[axis] = (coords[axis] + step) % size
                path.append(topo.node_at(coords))
        return path

    def sample_path(
        self, src: NodeId, dst: NodeId, rng: random.Random, flow_id: int = 0
    ) -> List[NodeId]:
        self._check_endpoints(src, dst)
        if src == dst:
            return [src]
        if not self._has_coords:
            return deterministic_minimal_path(self._topology, src, dst)
        chosen = []
        for options in self._signed_offsets(src, dst):
            if len(options) == 1:
                chosen.append(options[0])
            else:
                chosen.append(options[rng.randrange(2)])
        return self._path_for_offsets(src, chosen)

    def link_weights(
        self, src: NodeId, dst: NodeId, flow_id: int = 0
    ) -> Mapping[LinkId, float]:
        self._check_endpoints(src, dst)
        key = (src, dst)
        cached = self._weights_cache.get(key)
        if cached is not None:
            return cached
        if src == dst:
            weights: Mapping[LinkId, float] = {}
        elif not self._has_coords:
            weights = path_weights(
                self._topology, deterministic_minimal_path(self._topology, src, dst)
            )
        else:
            weights = self._tie_split_weights(src, dst)
        self._weights_cache[key] = weights
        return weights

    def _tie_split_weights(self, src: NodeId, dst: NodeId) -> Mapping[LinkId, float]:
        """Average the single-path weights over all wrap-tie resolutions."""
        offset_options = self._signed_offsets(src, dst)
        combos: List[List[int]] = [[]]
        for options in offset_options:
            combos = [combo + [opt] for combo in combos for opt in options]
        if len(combos) > 64:
            raise RoutingError(
                f"unexpectedly many wrap ties between {src} and {dst}"
            )
        maps = [
            path_weights(self._topology, self._path_for_offsets(src, combo))
            for combo in combos
        ]
        scale = 1.0 / len(maps)
        return merge_weights(*maps, scales=[scale] * len(maps))
