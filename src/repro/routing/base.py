"""Routing-protocol interface and registry.

R2C2 routes each flow with a per-flow routing protocol (§3.4).  A protocol
must expose two things:

* a *data-plane* operation, :meth:`RoutingProtocol.sample_path`, which draws
  the path for one packet (the sender encodes it into the packet header and
  intermediate nodes just follow it), and
* a *control-plane* operation, :meth:`RoutingProtocol.link_weights`, giving
  the expected fraction of the flow's rate crossing each directed link.
  This is the paper's key observation (§3.3): "a flow's routing protocol
  dictates its relative rate across its paths", which is what makes flow-level
  max-min computation tractable.

Protocols register a one-byte id (the ``rp`` field of the broadcast packet)
so control messages can name them on the wire.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, List, Mapping, Type

from ..errors import RoutingError
from ..topology.base import Topology
from ..types import LinkId, NodeId


class RoutingProtocol(ABC):
    """Base class for per-flow routing protocols.

    Subclasses set the class attributes :attr:`name` (human-readable, unique)
    and :attr:`protocol_id` (one byte, unique; encoded in broadcast packets).
    Instances are bound to a topology and are stateless across packets, so a
    single instance can serve every flow using that protocol.
    """

    name: str = "abstract"
    protocol_id: int = -1
    #: True if the protocol only ever uses shortest paths.
    minimal: bool = True

    def __init__(self, topology: Topology) -> None:
        self._topology = topology

    @property
    def topology(self) -> Topology:
        """The topology this protocol instance routes on."""
        return self._topology

    @abstractmethod
    def sample_path(
        self, src: NodeId, dst: NodeId, rng: random.Random, flow_id: int = 0
    ) -> List[NodeId]:
        """Draw the node path for one packet of flow *flow_id*.

        The returned path starts at *src* and ends at *dst*; ``[src]`` when
        they coincide.  Deterministic protocols ignore *rng*.
        """

    @abstractmethod
    def link_weights(
        self, src: NodeId, dst: NodeId, flow_id: int = 0
    ) -> Mapping[LinkId, float]:
        """Expected fraction of the flow's rate on each directed link.

        The values sum to the expected path length; each individual value is
        the coefficient the congestion controller multiplies the flow's total
        rate by to obtain its load on that link.
        """

    def max_path_hops(self) -> int:
        """Upper bound on path length, used to validate route encodability."""
        diameter = self._topology.diameter()
        return diameter if self.minimal else 2 * diameter

    def _check_endpoints(self, src: NodeId, dst: NodeId) -> None:
        n = self._topology.n_nodes
        if not (0 <= src < n and 0 <= dst < n):
            raise RoutingError(f"endpoints ({src}, {dst}) outside node range 0..{n - 1}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} on {self._topology.name}>"


_REGISTRY: Dict[str, Type[RoutingProtocol]] = {}
_REGISTRY_BY_ID: Dict[int, Type[RoutingProtocol]] = {}


def register_protocol(cls: Type[RoutingProtocol]) -> Type[RoutingProtocol]:
    """Class decorator adding a protocol to the wire-id registry."""
    if not cls.name or cls.name == "abstract":
        raise RoutingError(f"{cls.__name__} must define a unique name")
    if not (0 <= cls.protocol_id <= 255):
        raise RoutingError(f"{cls.__name__}.protocol_id must fit in one byte")
    if cls.name in _REGISTRY:
        raise RoutingError(f"duplicate protocol name {cls.name!r}")
    if cls.protocol_id in _REGISTRY_BY_ID:
        raise RoutingError(f"duplicate protocol id {cls.protocol_id}")
    _REGISTRY[cls.name] = cls
    _REGISTRY_BY_ID[cls.protocol_id] = cls
    return cls


def protocol_class(name_or_id) -> Type[RoutingProtocol]:
    """Look up a protocol class by name or wire id."""
    if isinstance(name_or_id, str):
        try:
            return _REGISTRY[name_or_id]
        except KeyError:
            raise RoutingError(
                f"unknown routing protocol {name_or_id!r}; known: {sorted(_REGISTRY)}"
            ) from None
    try:
        return _REGISTRY_BY_ID[int(name_or_id)]
    except (KeyError, ValueError):
        raise RoutingError(f"unknown routing protocol id {name_or_id!r}") from None


def registered_protocols() -> Dict[str, Type[RoutingProtocol]]:
    """Snapshot of the registry (name -> class)."""
    return dict(_REGISTRY)


def make_protocol(name_or_id, topology: Topology, **kwargs) -> RoutingProtocol:
    """Instantiate a registered protocol on *topology*."""
    return protocol_class(name_or_id)(topology, **kwargs)
