"""Single-path ECMP-style routing, the substrate for the TCP baseline.

Section 5.2 of the paper evaluates TCP over "an ECMP-like routing protocol,
which selects a single path between source and destination, based on the
hash of the flow ID", so that all packets of a flow stay in order while
different flows between the same endpoints can take different shortest
paths.  We reproduce exactly that: the flow id seeds a deterministic walk of
the minimal DAG, so the same flow always maps to the same path.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping

from ..topology.paths import shared_dag
from ..types import LinkId, NodeId
from .base import RoutingProtocol, register_protocol
from .weights import path_weights


def _mix(*values: int) -> int:
    """A small deterministic integer hash (splitmix64-style) for path picks."""
    h = 0x9E3779B97F4A7C15
    for v in values:
        h ^= (v + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)) & 0xFFFFFFFFFFFFFFFF
        h = (h * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        h ^= h >> 27
    return h & 0xFFFFFFFFFFFFFFFF


@register_protocol
class EcmpSinglePath(RoutingProtocol):
    """Deterministic per-flow single shortest path chosen by flow-id hash."""

    name = "ecmp"
    protocol_id = 4
    minimal = True

    def __init__(self, topology) -> None:
        super().__init__(topology)
        self._path_cache: Dict[tuple, List[NodeId]] = {}

    def flow_path(self, src: NodeId, dst: NodeId, flow_id: int) -> List[NodeId]:
        """The (single, deterministic) path assigned to this flow."""
        self._check_endpoints(src, dst)
        key = (src, dst, flow_id)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        if src == dst:
            path = [src]
        else:
            dag = shared_dag(self._topology, dst)
            path = [src]
            node = src
            hop = 0
            while node != dst:
                hops = dag.next_hops(node)
                if len(hops) == 1:
                    node = hops[0]
                else:
                    node = hops[_mix(flow_id, src, dst, hop) % len(hops)]
                path.append(node)
                hop += 1
        self._path_cache[key] = path
        return path

    def sample_path(
        self, src: NodeId, dst: NodeId, rng: random.Random, flow_id: int = 0
    ) -> List[NodeId]:
        return list(self.flow_path(src, dst, flow_id))

    def link_weights(
        self, src: NodeId, dst: NodeId, flow_id: int = 0
    ) -> Mapping[LinkId, float]:
        return path_weights(self._topology, self.flow_path(src, dst, flow_id))
