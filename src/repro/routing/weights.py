"""Dynamic programs over shortest-path DAGs.

All link-weight computations reduce to one primitive: propagate an injection
of probability mass through the minimal DAG toward a destination, splitting
uniformly over the minimal next-hops at every node ("per-hop spraying", the
behaviour of randomized packet spraying).  Because the propagation is linear
in the injection, a single pass also yields aggregate quantities such as the
Valiant phase-two weights (uniform injection at every node toward ``dst``).

Weights are returned as plain ``{link_id: fraction}`` dicts; the congestion
controller converts them to sparse vectors.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping

from ..errors import RoutingError
from ..topology.base import Topology
from ..topology.paths import shared_dag
from ..types import LinkId, NodeId


def spray_link_weights(
    topology: Topology, src: NodeId, dst: NodeId
) -> Dict[LinkId, float]:
    """Per-link traversal probability under per-hop uniform spraying.

    A packet at node *u* picks uniformly among *u*'s minimal next-hops
    toward *dst*.  Returns the probability each directed link is traversed;
    probabilities on the links out of a node sum to the probability of
    visiting that node.
    """
    return spray_injection_weights(topology, dst, {src: 1.0})


def spray_injection_weights(
    topology: Topology, dst: NodeId, injection: Mapping[NodeId, float]
) -> Dict[LinkId, float]:
    """Propagate an arbitrary *injection* of mass toward *dst* by spraying.

    ``injection`` maps nodes to non-negative mass inserted at that node; mass
    injected at ``dst`` itself is absorbed immediately.  Linearity makes this
    the workhorse for Valiant phase aggregation: a uniform injection gives
    the aggregate phase-two weights in a single O(V + E) sweep.

    The propagation walks distance buckets farthest-first, so every node is
    expanded exactly once, after all of its upstream mass has arrived.
    """
    dag = shared_dag(topology, dst)
    buckets: Dict[int, Dict[NodeId, float]] = {}
    max_dist = 0
    for node, amount in injection.items():
        if amount < 0:
            raise RoutingError(f"negative injection {amount} at node {node}")
        if amount == 0 or node == dst:
            continue
        if dag.dist[node] < 0:
            raise RoutingError(f"{dst} unreachable from {node}")
        layer = buckets.setdefault(dag.dist[node], {})
        layer[node] = layer.get(node, 0.0) + amount
        max_dist = max(max_dist, dag.dist[node])

    weights: Dict[LinkId, float] = {}
    for dist in range(max_dist, 0, -1):
        layer = buckets.pop(dist, None)
        if not layer:
            continue
        next_layer = buckets.setdefault(dist - 1, {})
        for node, amount in layer.items():
            hops = dag.next_hops(node)
            share = amount / len(hops)
            for nxt in hops:
                link = topology.link_id(node, nxt)
                weights[link] = weights.get(link, 0.0) + share
                if nxt != dst:
                    next_layer[nxt] = next_layer.get(nxt, 0.0) + share
    return weights


def sample_spray_path(
    topology: Topology, src: NodeId, dst: NodeId, rng: random.Random
) -> List[NodeId]:
    """Draw one minimal path by per-hop uniform choices (data plane of RPS)."""
    if src == dst:
        return [src]
    dag = shared_dag(topology, dst)
    if dag.dist[src] < 0:
        raise RoutingError(f"{dst} unreachable from {src}")
    path = [src]
    node = src
    while node != dst:
        hops = dag.next_hops(node)
        node = hops[rng.randrange(len(hops))] if len(hops) > 1 else hops[0]
        path.append(node)
    return path


def deterministic_minimal_path(
    topology: Topology, src: NodeId, dst: NodeId
) -> List[NodeId]:
    """The lowest-port minimal path (deterministic single-path fallback)."""
    if src == dst:
        return [src]
    dag = shared_dag(topology, dst)
    if dag.dist[src] < 0:
        raise RoutingError(f"{dst} unreachable from {src}")
    path = [src]
    node = src
    while node != dst:
        node = dag.next_hops(node)[0]
        path.append(node)
    return path


def path_weights(topology: Topology, path) -> Dict[LinkId, float]:
    """Weights of a single deterministic path: 1.0 on every traversed link."""
    weights: Dict[LinkId, float] = {}
    for i in range(len(path) - 1):
        link = topology.link_id(path[i], path[i + 1])
        weights[link] = weights.get(link, 0.0) + 1.0
    return weights


def merge_weights(
    *weight_maps: Mapping[LinkId, float], scales=None
) -> Dict[LinkId, float]:
    """Linear combination of weight maps (defaults to plain sum)."""
    if scales is None:
        scales = [1.0] * len(weight_maps)
    if len(scales) != len(weight_maps):
        raise RoutingError("merge_weights: scales and maps length mismatch")
    out: Dict[LinkId, float] = {}
    for weights, scale in zip(weight_maps, scales):
        if scale == 0.0:
            continue
        for link, value in weights.items():
            out[link] = out.get(link, 0.0) + scale * value
    return out
