"""Static path sets — operator-pinned multi-path routes.

A :class:`StaticPathSet` carries an explicit table of weighted paths per
(src, dst) pair.  It exists for three reasons:

* it expresses textbook scenarios exactly (the paper's Figure 4 example has
  a flow split 50/50 over a 1-hop and a 2-hop path, which no oblivious
  protocol produces);
* operators can pin routes for debugging or traffic engineering;
* tests can exercise the congestion controller with hand-crafted splits.

Unlike the oblivious protocols, instances are stateful (the path table), so
they should be registered with the
:class:`~repro.congestion.linkweights.WeightProvider` explicitly rather than
instantiated by name.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import RoutingError
from ..topology.paths import is_valid_path
from ..types import LinkId, NodeId
from .base import RoutingProtocol, register_protocol
from .weights import merge_weights, path_weights


@register_protocol
class StaticPathSet(RoutingProtocol):
    """Routes each (src, dst) pair over an explicit weighted path set."""

    name = "static"
    protocol_id = 5
    minimal = False

    def __init__(self, topology) -> None:
        super().__init__(topology)
        self._paths: Dict[Tuple[NodeId, NodeId], List[Tuple[List[NodeId], float]]] = {}
        self._weights_cache: Dict[Tuple[NodeId, NodeId], Mapping[LinkId, float]] = {}

    def set_paths(
        self,
        src: NodeId,
        dst: NodeId,
        paths: Sequence[Sequence[NodeId]],
        probabilities: Optional[Sequence[float]] = None,
    ) -> None:
        """Pin the paths (and optional split probabilities) for a pair.

        Probabilities default to a uniform split and are normalized to sum
        to one.  Every path must start at *src*, end at *dst* and follow
        existing links.
        """
        self._check_endpoints(src, dst)
        if not paths:
            raise RoutingError(f"need at least one path for ({src}, {dst})")
        if probabilities is None:
            probabilities = [1.0] * len(paths)
        if len(probabilities) != len(paths):
            raise RoutingError("paths and probabilities length mismatch")
        total = float(sum(probabilities))
        if total <= 0 or any(p < 0 for p in probabilities):
            raise RoutingError("path probabilities must be non-negative, sum > 0")

        validated: List[Tuple[List[NodeId], float]] = []
        for path, prob in zip(paths, probabilities):
            path = list(path)
            if path[0] != src or path[-1] != dst:
                raise RoutingError(f"path {path} does not join {src} -> {dst}")
            if not is_valid_path(self._topology, path):
                raise RoutingError(f"path {path} uses non-existent links")
            validated.append((path, prob / total))

        self._paths[(src, dst)] = validated
        self._weights_cache.pop((src, dst), None)

    def _lookup(self, src: NodeId, dst: NodeId) -> List[Tuple[List[NodeId], float]]:
        try:
            return self._paths[(src, dst)]
        except KeyError:
            raise RoutingError(
                f"no static paths configured for ({src}, {dst})"
            ) from None

    def sample_path(
        self, src: NodeId, dst: NodeId, rng: random.Random, flow_id: int = 0
    ) -> List[NodeId]:
        if src == dst:
            return [src]
        entries = self._lookup(src, dst)
        roll = rng.random()
        acc = 0.0
        for path, prob in entries:
            acc += prob
            if roll < acc:
                return list(path)
        return list(entries[-1][0])

    def link_weights(
        self, src: NodeId, dst: NodeId, flow_id: int = 0
    ) -> Mapping[LinkId, float]:
        if src == dst:
            return {}
        key = (src, dst)
        cached = self._weights_cache.get(key)
        if cached is None:
            entries = self._lookup(src, dst)
            maps = [path_weights(self._topology, path) for path, _ in entries]
            cached = merge_weights(*maps, scales=[prob for _, prob in entries])
            self._weights_cache[key] = cached
        return cached
