"""Lightweight in-simulator packet objects.

The simulator does not serialize every packet to bytes (that would dominate
runtime); instead :class:`SimPacket` carries the same fields the wire
formats define, plus the byte sizes those formats imply, and tests assert
that representative simulator packets round-trip through the real encoders
(:mod:`repro.wire`).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..types import FlowId, NodeId
from ..wire.packets import BROADCAST_PACKET_SIZE, DATA_HEADER_SIZE

#: Packet kinds.
KIND_DATA = 0
KIND_BROADCAST = 1
KIND_ACK = 2
KIND_PAUSE = 3
KIND_DROP_NOTE = 4

#: ACKs model a minimal reverse-direction header.
ACK_SIZE_BYTES = 40
#: Drop notifications mirror the 10-byte wire format.
DROP_NOTE_SIZE_BYTES = 10


class SimPacket:
    """One packet in flight.

    Attributes mirror the R2C2 wire formats; ``path`` is the explicit node
    route (source routing), with ``hop`` the index of the node the packet
    currently sits at.
    """

    __slots__ = (
        "kind",
        "flow_id",
        "src",
        "dst",
        "seq",
        "size_bytes",
        "path",
        "hop",
        "tree_id",
        "payload",
        "sent_ns",
        "obs",
    )

    def __init__(
        self,
        kind: int,
        flow_id: FlowId,
        src: NodeId,
        dst: NodeId,
        seq: int,
        size_bytes: int,
        path: Optional[Tuple[NodeId, ...]] = None,
        tree_id: int = 0,
        payload=None,
        sent_ns: int = 0,
    ) -> None:
        self.kind = kind
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.seq = seq
        self.size_bytes = size_bytes
        self.path = path
        self.hop = 0
        self.tree_id = tree_id
        self.payload = payload
        self.sent_ns = sent_ns
        #: optional causal-tracing record (repro.obs.PacketObs); None on
        #: every default path — hot-path hooks guard on ``is not None``.
        self.obs = None

    def current_node(self) -> NodeId:
        """Node the packet is at (along its source route)."""
        assert self.path is not None
        return self.path[self.hop]

    def next_node(self) -> NodeId:
        """Next hop along the source route."""
        assert self.path is not None
        return self.path[self.hop + 1]

    def at_destination(self) -> bool:
        """True if the packet has reached the end of its route."""
        return self.path is not None and self.hop == len(self.path) - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<pkt kind={self.kind} flow={self.flow_id} seq={self.seq} "
            f"{self.src}->{self.dst} hop={self.hop}>"
        )


def data_packet_size(payload_bytes: int) -> int:
    """Wire size of a data packet with *payload_bytes* of payload."""
    return DATA_HEADER_SIZE + payload_bytes


def broadcast_packet_size() -> int:
    """Wire size of a broadcast packet (fixed 16 bytes)."""
    return BROADCAST_PACKET_SIZE
