"""The simulated network fabric: output ports, queues, forwarding.

Each directed link is modelled as an *output port* at its sending node: a
queue (discipline pluggable) feeding a transmitter that serializes packets
at line rate, plus the link's propagation latency.  Intermediate nodes
forward data packets by following the path in the packet (source routing,
§3.5) and broadcast packets by consulting the rack-wide broadcast FIB
(§3.2) — exactly the two lookups the paper argues are simple enough for
on-chip implementation.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..broadcast.fib import BroadcastFib
from ..core.seeds import derive_seed
from ..errors import SimulationError
from ..topology.base import Topology
from ..types import NodeId, transmission_time_ns
from .engine import EventLoop
from .packets import KIND_BROADCAST, SimPacket


def link_prio(src: NodeId, dst: NodeId, n_nodes: int) -> int:
    """Event-loop priority of link ``src -> dst``'s delivery events.

    A dense, positive encoding of the link's identity (timer/arrival/epoch
    events keep the default priority 0 and sort first).  Both the serial
    engine and every shard use this same function, which is what makes the
    relative order of same-instant deliveries — the one tie the serial
    engine used to break by global scheduling order — reproducible across
    any sharding of the fabric.
    """
    return 1 + src * n_nodes + dst


class FifoQueue:
    """Single drop-tail FIFO per port — R2C2's data-plane assumption.

    ``limit_bytes=None`` models the measurement setup of Figures 7b/14
    (unbounded queue, occupancy recorded); a finite limit models
    small-buffer micro-servers and drives TCP's loss-based control.
    """

    def __init__(self, limit_bytes: Optional[int] = None) -> None:
        self._queue: Deque[SimPacket] = deque()
        self._bytes = 0
        self._limit = limit_bytes

    def enqueue(self, packet: SimPacket) -> bool:
        if self._limit is not None and self._bytes + packet.size_bytes > self._limit:
            return False
        self._queue.append(packet)
        self._bytes += packet.size_bytes
        return True

    def dequeue(self) -> Optional[SimPacket]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size_bytes
        return packet

    @property
    def occupancy_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._queue)


class PerFlowRoundRobin:
    """Per-flow queues served round-robin — the idealized PFQ baseline.

    Flows can be *paused* (back-pressure): a paused flow's queue retains its
    packets but is skipped by the scheduler.
    """

    def __init__(self, limit_bytes_per_flow: Optional[int] = None) -> None:
        self._queues: Dict[int, Deque[SimPacket]] = {}
        self._flow_bytes: Dict[int, int] = {}
        self._active: Deque[int] = deque()
        self._paused: set = set()
        self._bytes = 0
        self._limit = limit_bytes_per_flow

    def enqueue(self, packet: SimPacket) -> bool:
        flow = packet.flow_id
        if (
            self._limit is not None
            and self._flow_bytes.get(flow, 0) + packet.size_bytes > self._limit
        ):
            return False
        queue = self._queues.get(flow)
        if queue is None:
            queue = deque()
            self._queues[flow] = queue
            self._flow_bytes[flow] = 0
        if not queue and flow not in self._paused:
            self._active.append(flow)
        queue.append(packet)
        self._flow_bytes[flow] += packet.size_bytes
        self._bytes += packet.size_bytes
        return True

    def dequeue(self) -> Optional[SimPacket]:
        while self._active:
            flow = self._active.popleft()
            queue = self._queues.get(flow)
            if not queue or flow in self._paused:
                continue
            packet = queue.popleft()
            self._flow_bytes[flow] -= packet.size_bytes
            self._bytes -= packet.size_bytes
            if queue:
                self._active.append(flow)
            return packet
        return None

    def pause(self, flow_id: int) -> None:
        """Back-pressure: stop serving this flow's queue."""
        self._paused.add(flow_id)

    def resume(self, flow_id: int) -> None:
        """Lift back-pressure; re-activate the flow if it has packets."""
        if flow_id in self._paused:
            self._paused.discard(flow_id)
            if self._queues.get(flow_id):
                self._active.append(flow_id)

    def flow_occupancy_bytes(self, flow_id: int) -> int:
        """Bytes queued for one flow (back-pressure trigger)."""
        return self._flow_bytes.get(flow_id, 0)

    @property
    def occupancy_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())


class OutputPort:
    """One directed link's queue and transmitter at its sending node."""

    def __init__(
        self,
        loop: EventLoop,
        src: NodeId,
        dst: NodeId,
        capacity_bps: float,
        latency_ns: int,
        queue,
        deliver: Callable[[SimPacket], None],
        on_drop: Optional[Callable[[SimPacket], None]] = None,
        loss_rate: float = 0.0,
        loss_rng: Optional[random.Random] = None,
        auditor=None,
        prio: int = 0,
        flight=None,
    ) -> None:
        self._loop = loop
        self.src = src
        self.dst = dst
        #: Deterministic same-instant tie-break for this link's delivery
        #: events: two packets arriving anywhere in the fabric at the same
        #: nanosecond are delivered in link-identity order, independent of
        #: event scheduling order (and therefore identical between serial
        #: and sharded execution).
        self.prio = prio
        self._capacity_bps = capacity_bps
        self._latency_ns = latency_ns
        self.queue = queue
        self._deliver = deliver
        self._on_drop = on_drop
        #: optional invariant auditor (repro.validation); None disables all
        #: audit hooks at the cost of one attribute test per packet event.
        self._auditor = auditor
        #: optional flight recorder (repro.obs); same None discipline.
        self._flight = flight
        #: probability a transmitted data/ACK packet is corrupted on the
        #: wire (fault injection for reliability tests); broadcasts are
        #: exempt so the control plane stays testable independently.
        self._loss_rate = loss_rate
        self._loss_rng = loss_rng
        self._busy = False
        # Statistics.
        self.max_occupancy_bytes = 0
        self.bytes_sent = 0
        self.packets_sent = 0
        self.drops = 0
        self.wire_losses = 0
        self.busy_ns = 0

    def send(self, packet: SimPacket) -> bool:
        """Queue a packet for transmission; returns False on drop."""
        if not self.queue.enqueue(packet):
            self.drops += 1
            if self._auditor is not None:
                self._auditor.on_port_send(self, packet, accepted=False)
            if self._flight is not None:
                self._record_drop(packet)
            if self._on_drop is not None:
                self._on_drop(packet)
            return False
        if self._auditor is not None:
            self._auditor.on_port_send(self, packet, accepted=True)
        obs = packet.obs
        if obs is not None:
            obs.enq_ns = self._loop.now
        occupancy = self.queue.occupancy_bytes
        if occupancy > self.max_occupancy_bytes:
            self.max_occupancy_bytes = occupancy
        if not self._busy:
            self._start_next()
        return True

    def send_batched(self, packet: SimPacket, pending: list) -> bool:
        """Like :meth:`send`, but hand the finish event to the caller.

        If accepting *packet* starts a transmission, its ``(duration_ns,
        finish_callback)`` is appended to *pending* instead of being
        scheduled — the caller coalesces same-duration finishes of a
        broadcast fan-out into one event-loop entry.
        """
        if not self.queue.enqueue(packet):
            self.drops += 1
            if self._auditor is not None:
                self._auditor.on_port_send(self, packet, accepted=False)
            if self._flight is not None:
                self._record_drop(packet)
            if self._on_drop is not None:
                self._on_drop(packet)
            return False
        if self._auditor is not None:
            self._auditor.on_port_send(self, packet, accepted=True)
        occupancy = self.queue.occupancy_bytes
        if occupancy > self.max_occupancy_bytes:
            self.max_occupancy_bytes = occupancy
        if not self._busy:
            begun = self._begin()
            if begun is not None:
                duration, head = begun
                pending.append((duration, lambda p=head: self._finish(p)))
        return True

    def _begin(self):
        """Dequeue and start transmitting the next packet, if any.

        Returns ``(duration_ns, packet)`` with the finish *not yet
        scheduled*, or ``None`` when the queue is empty.
        """
        packet = self.queue.dequeue()
        if packet is None:
            self._busy = False
            return None
        self._busy = True
        duration = transmission_time_ns(packet.size_bytes, self._capacity_bps)
        self.busy_ns += duration
        self.bytes_sent += packet.size_bytes
        self.packets_sent += 1
        if self._auditor is not None:
            self._auditor.on_transmit_start(self, packet, duration)
        obs = packet.obs
        if obs is not None:
            wait = self._loop.now - obs.enq_ns
            obs.queue_ns += wait
            obs.ser_ns += duration
            obs.hops.append((self.src, self.dst, wait))
        return duration, packet

    def _start_next(self) -> None:
        begun = self._begin()
        if begun is not None:
            duration, packet = begun
            self._loop.schedule(duration, lambda p=packet: self._finish(p))

    def _finish(self, packet: SimPacket) -> None:
        if (
            self._loss_rate > 0.0
            and packet.kind != KIND_BROADCAST
            and self._loss_rng is not None
            and self._loss_rng.random() < self._loss_rate
        ):
            # Corrupted on the wire: it consumed transmission time but is
            # discarded by the receiver's checksum.
            self.wire_losses += 1
            if self._auditor is not None:
                self._auditor.on_wire_loss(self, packet)
            if self._flight is not None:
                self._flight.record(
                    "network",
                    "wire_loss",
                    self._loop.now,
                    src=self.src,
                    dst=self.dst,
                    flow=packet.flow_id,
                    seq=packet.seq,
                )
        else:
            # Propagation happens in parallel with the next serialization.
            if self._auditor is not None:
                self._auditor.on_propagate(self, packet)
            obs = packet.obs
            if obs is not None:
                obs.last_finish_ns = self._loop.now
            self._loop.schedule(
                self._latency_ns, lambda p=packet: self._deliver(p), self.prio
            )
        self._start_next()

    def kick(self) -> None:
        """Restart transmission after a pause/resume changed the queue."""
        if not self._busy:
            self._start_next()

    def _record_drop(self, packet: SimPacket) -> None:
        self._flight.record(
            "network",
            "queue_drop",
            self._loop.now,
            src=self.src,
            dst=self.dst,
            flow=packet.flow_id,
            kind=packet.kind,
            seq=packet.seq,
        )

    @property
    def busy(self) -> bool:
        """True while a packet is being serialized."""
        return self._busy

    @property
    def capacity_bps(self) -> float:
        """The link's line rate (telemetry probes compute utilization)."""
        return self._capacity_bps


class RackNetwork:
    """All ports of the rack plus the forwarding logic between them."""

    def __init__(
        self,
        loop: EventLoop,
        topology: Topology,
        fib: Optional[BroadcastFib] = None,
        queue_factory: Callable[[], object] = FifoQueue,
        on_drop: Optional[Callable[[NodeId, SimPacket], None]] = None,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
        auditor=None,
        owned_nodes=None,
        boundary: Optional[Callable[[int, NodeId, SimPacket], None]] = None,
        flight=None,
    ) -> None:
        """Build the fabric (or, for sharded runs, one shard's slice of it).

        With ``owned_nodes`` set (an iterable of node ids), only the output
        ports whose *sending* node is owned are instantiated.  A cut port —
        owned sender, remote receiver — serializes packets normally (so its
        queueing/transmission statistics stay exact) but hands the finished
        packet to ``boundary(arrival_ns, dst, packet)`` at transmission-end
        time instead of scheduling local propagation; the shard coordinator
        relays it to the owning shard, which re-enters it via
        :meth:`arrived`.  The hand-off consumes exactly the event-loop slot
        the serial engine would spend on the propagation event (keeping
        per-shard sequence assignment aligned), and the injected event
        carries the link's delivery priority, so same-instant ordering at
        the destination is byte-identical to the serial run.
        """
        if not (0.0 <= loss_rate < 1.0):
            raise SimulationError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self._loop = loop
        self._topology = topology
        self._fib = fib
        self._on_drop = on_drop
        self._auditor = auditor
        self._flight = flight
        owned = None if owned_nodes is None else set(owned_nodes)
        if owned is not None and boundary is None:
            raise SimulationError("owned_nodes requires a boundary callback")
        self._owned = owned
        self._boundary = boundary
        #: stack_at[node] is installed by the runner; it must expose
        #: deliver(packet) for packets terminating at the node.
        self.stack_at: List[Optional[object]] = [None] * topology.n_nodes
        self._ports: Dict[Tuple[NodeId, NodeId], OutputPort] = {}
        for link in topology.links:
            if owned is not None and link.src not in owned:
                continue
            if owned is not None and link.dst not in owned:
                deliver = self._make_boundary_deliver(
                    link.src, link.dst, link.latency_ns
                )
                latency_ns = 0
            else:
                deliver = self._make_deliver(link.dst)
                latency_ns = link.latency_ns
            # Wire-loss draws come from a per-port stream keyed by the
            # link's identity: each port's sequence depends only on its own
            # transmissions, so any sharding of the fabric (which splits
            # ports across processes) reproduces the serial draws exactly.
            loss_rng = (
                random.Random(derive_seed(loss_seed, "wire-loss", link.src, link.dst))
                if loss_rate > 0
                else None
            )
            self._ports[(link.src, link.dst)] = OutputPort(
                loop,
                link.src,
                link.dst,
                link.capacity_bps,
                latency_ns,
                queue_factory(),
                deliver=deliver,
                on_drop=self._make_drop_handler(link.src),
                loss_rate=loss_rate,
                loss_rng=loss_rng,
                auditor=auditor,
                prio=link_prio(link.src, link.dst, topology.n_nodes),
                flight=flight,
            )
        if auditor is not None:
            auditor.attach_network(self)

    @property
    def topology(self) -> Topology:
        """The fabric being simulated."""
        return self._topology

    @property
    def fib(self) -> Optional[BroadcastFib]:
        """The broadcast FIB, if broadcasts are in use."""
        return self._fib

    def port(self, src: NodeId, dst: NodeId) -> OutputPort:
        """The output port for directed link src -> dst."""
        try:
            return self._ports[(src, dst)]
        except KeyError:
            raise SimulationError(f"no link {src} -> {dst}") from None

    def ports(self) -> List[OutputPort]:
        """All output ports (stats collection)."""
        return list(self._ports.values())

    def _make_deliver(self, node: NodeId):
        return lambda packet: self.arrived(node, packet)

    def _make_boundary_deliver(self, src: NodeId, dst: NodeId, latency_ns: int):
        """Deliver closure for a cut port: emit a timestamped message.

        Fires at transmission-finish time (the port's scheduling latency is
        zero); the true arrival instant is computed here so the remote shard
        can schedule :meth:`arrived` at exactly the time the serial engine
        would have — with the link's delivery priority, so the injected
        event sorts against the destination shard's same-instant events
        exactly as the serial engine's propagation event would.
        """
        return lambda packet: self._boundary(
            self._loop.now + latency_ns, src, dst, packet
        )

    def _make_drop_handler(self, node: NodeId):
        if self._on_drop is None:
            return None
        return lambda packet: self._on_drop(node, packet)

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def inject(self, node: NodeId, packet: SimPacket) -> bool:
        """A host at *node* hands a packet to its switching element."""
        if packet.kind == KIND_BROADCAST:
            return self._forward_broadcast(node, packet, is_source=True)
        return self._forward_data(node, packet)

    def arrived(self, node: NodeId, packet: SimPacket) -> None:
        """A packet finished propagating to *node*."""
        if self._auditor is not None:
            self._auditor.on_arrive(node, packet)
        if packet.kind == KIND_BROADCAST:
            self._deliver_local(node, packet)
            self._forward_broadcast(node, packet, is_source=False)
            return
        obs = packet.obs
        if obs is not None and obs.last_finish_ns is not None:
            # Receiver-side propagation accounting: exact for cut ports
            # too, whose local latency is zero (the true latency is baked
            # into the boundary arrival time).
            obs.prop_ns += self._loop.now - obs.last_finish_ns
        packet.hop += 1
        if packet.at_destination():
            self._deliver_local(node, packet)
        else:
            self._forward_data(node, packet)

    def _forward_data(self, node: NodeId, packet: SimPacket) -> bool:
        if packet.path is None:
            raise SimulationError("data packet without a source route")
        if packet.current_node() != node:
            raise SimulationError(
                f"packet at node {node} but route says {packet.current_node()}"
            )
        return self.port(node, packet.next_node()).send(packet)

    def _forward_broadcast(
        self, node: NodeId, packet: SimPacket, is_source: bool
    ) -> bool:
        if self._fib is None:
            raise SimulationError("broadcast sent but no FIB configured")
        if is_source:
            self._deliver_local(node, packet)
        ok = True
        pending: list = []
        for child in self._fib.next_hops(node, packet.src, packet.tree_id):
            copy = SimPacket(
                kind=packet.kind,
                flow_id=packet.flow_id,
                src=packet.src,
                dst=packet.dst,
                seq=packet.seq,
                size_bytes=packet.size_bytes,
                path=(node, child),
                tree_id=packet.tree_id,
                payload=packet.payload,
                sent_ns=packet.sent_ns,
            )
            ok = self.port(node, child).send_batched(copy, pending) and ok
        self._schedule_transmissions(pending)
        return ok

    def _schedule_transmissions(self, pending: list) -> None:
        """Schedule batched port finishes, coalescing equal durations.

        A broadcast fan-out pushes identical-size copies onto several idle
        ports at once; on a uniform fabric their serializations finish at
        the same instant, so the finish callbacks share one event-loop
        entry.  The sort is stable, keeping FIFO order within a group.
        """
        if not pending:
            return
        loop = self._loop
        if len(pending) == 1:
            duration, fire = pending[0]
            loop.schedule(duration, fire)
            return
        pending.sort(key=lambda item: item[0])
        i = 0
        n = len(pending)
        while i < n:
            duration = pending[i][0]
            j = i + 1
            while j < n and pending[j][0] == duration:
                j += 1
            if j - i == 1:
                loop.schedule(duration, pending[i][1])
            else:
                loop.schedule_batch(duration, [item[1] for item in pending[i:j]])
            i = j

    def _deliver_local(self, node: NodeId, packet: SimPacket) -> None:
        stack = self.stack_at[node]
        if stack is None:
            raise SimulationError(f"no host stack installed at node {node}")
        if self._auditor is not None:
            self._auditor.on_local_deliver(node, packet)
        stack.deliver(packet)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def link_stats(self):
        """Yield ``(src, dst, bytes_sent, queue_bytes, drops)`` per port.

        The telemetry link probes sample this on a cadence; iteration
        order is the (deterministic) port construction order.
        """
        for (src, dst), port in self._ports.items():
            yield src, dst, port.bytes_sent, port.queue.occupancy_bytes, port.drops

    def link_capacity_bps(self, src: NodeId, dst: NodeId) -> float:
        """Line rate of directed link src -> dst."""
        return self.port(src, dst).capacity_bps

    def max_queue_occupancies(self) -> List[int]:
        """Per-port maximum queue occupancy in bytes (Figures 7b, 14)."""
        return [port.max_occupancy_bytes for port in self.ports()]

    def total_drops(self) -> int:
        """Packets dropped across all ports."""
        return sum(port.drops for port in self.ports())

    def total_wire_losses(self) -> int:
        """Packets corrupted by injected wire loss across all ports."""
        return sum(port.wire_losses for port in self.ports())

    def total_bytes_sent(self) -> int:
        """Bytes transmitted across all links."""
        return sum(port.bytes_sent for port in self.ports())
