"""The packet-level simulator (paper §5.2) and a fluid companion.

* :func:`run_simulation` — packet-level runs of the ``r2c2``, ``tcp`` and
  ``pfq`` stacks.
* :class:`~repro.sim.fluid.FluidSimulator` — flow-level (rate-based) runs
  for the rate-accuracy experiments (Figures 15/16) and fast sweeps.
"""

from .engine import EventLoop
from .flows import SimFlow
from .metrics import LONG_FLOW_BYTES, SHORT_FLOW_BYTES, SimMetrics
from .network import FifoQueue, OutputPort, PerFlowRoundRobin, RackNetwork
from .packets import (
    ACK_SIZE_BYTES,
    KIND_ACK,
    KIND_BROADCAST,
    KIND_DATA,
    SimPacket,
    broadcast_packet_size,
    data_packet_size,
)
from .runner import STACKS, SimConfig, run_simulation

__all__ = [
    "ACK_SIZE_BYTES",
    "EventLoop",
    "FifoQueue",
    "KIND_ACK",
    "KIND_BROADCAST",
    "KIND_DATA",
    "LONG_FLOW_BYTES",
    "OutputPort",
    "PerFlowRoundRobin",
    "RackNetwork",
    "SHORT_FLOW_BYTES",
    "STACKS",
    "SimConfig",
    "SimFlow",
    "SimMetrics",
    "SimPacket",
    "broadcast_packet_size",
    "data_packet_size",
    "run_simulation",
]
