"""Simulation façade: configure, run, collect (paper §5.2 methodology).

:func:`run_simulation` executes a flow trace on one of the three stacks the
evaluation compares — ``r2c2``, ``tcp`` or ``pfq`` — and returns a
:class:`~repro.sim.metrics.SimMetrics` with the figures' quantities.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..broadcast.fib import BroadcastFib
from ..congestion.controller import ControllerConfig, RateController
from ..congestion.linkweights import WeightProvider
from ..core.seeds import derive_seed
from ..errors import SimulationError
from ..routing.ecmp import EcmpSinglePath
from ..topology.base import Topology
from ..types import msec, usec
from ..workloads.generator import FlowArrival
from .engine import EventLoop
from .flows import SimFlow
from .metrics import SimMetrics
from .network import FifoQueue, RackNetwork
from .packets import data_packet_size
from .stacks.pfq import BackpressureQueue, PfqCoordinator, PfqStack
from .stacks.r2c2 import PerNodeControlPlane, R2C2Stack, SharedControlPlane
from .stacks.r2c2_reliable import R2C2ReliableStack
from .stacks.tcp import DEFAULT_TCP_QUEUE_LIMIT, TcpStack

#: Stacks selectable in :class:`SimConfig`.
STACKS = ("r2c2", "tcp", "pfq")


@dataclass
class SimConfig:
    """Knobs of one simulation run.

    Defaults mirror the paper: 5 % headroom, 500 µs recomputation interval,
    random packet spraying for R2C2/PFQ, ECMP single path for TCP.
    """

    stack: str = "r2c2"
    mtu_payload: int = 1500
    headroom: float = 0.05
    recompute_interval_ns: int = usec(500)
    n_broadcast_trees: int = 4
    exempt_young_flows: bool = True
    #: Use the §6 reliability transport (numbered segments, SACKs,
    #: retransmission) for the R2C2 stack.
    reliable: bool = False
    #: Retransmission timeout of the reliability transport.
    rto_ns: int = usec(150)
    #: Probability that a transmitted data/ACK packet is corrupted on the
    #: wire (fault injection; broadcasts are exempt).
    loss_rate: float = 0.0
    #: "shared" collapses the (provably identical) per-node controllers
    #: into one; "per_node" runs a controller per node, fed only by actual
    #: broadcast deliveries (full visibility-skew fidelity).
    control_plane: str = "shared"
    #: Optional finite queue limit for the R2C2 stack's ports.  ``None``
    #: (paper behaviour) measures unbounded queues; a finite limit enables
    #: the §3.2 broadcast drop-notification/retransmission path.
    queue_limit_bytes: Optional[int] = None
    pfq_protocol: str = "rps"
    pfq_high_packets: int = 3
    pfq_low_packets: int = 1
    tcp_queue_limit_bytes: int = DEFAULT_TCP_QUEUE_LIMIT
    seed: int = 0
    #: Optional substream key: the run seeds its RNGs from
    #: ``derive_seed(seed, *seed_parts)`` (SHA-256, stable across
    #: processes).  Campaign tasks pass their task key here so sweep cells
    #: draw independent streams from one campaign seed; the default keeps
    #: the exact historical behaviour of ``seed``.
    seed_parts: tuple = ()
    horizon_ns: Optional[int] = None
    progress_chunk_ns: int = msec(1)
    #: Attach a :class:`~repro.validation.InvariantAuditor` to the run.
    #: Off by default: the instrumented code then pays only a per-hook
    #: ``is not None`` branch.
    audit: bool = False
    #: With auditing on, raise :class:`~repro.errors.InvariantViolation`
    #: at the point of detection; otherwise collect violations into
    #: ``metrics.audit.violations``.
    audit_strict: bool = True
    #: Causal critical-path tracing (:mod:`repro.obs`): decompose every
    #: completed flow's FCT into its causal components
    #: (``metrics.flow_obs``).  Off by default — the instrumented hot
    #: paths then pay only an ``is not None`` branch.
    obs: bool = False
    #: Crash flight recorder (:mod:`repro.obs.flight`): keep bounded rings
    #: of recent structured events per subsystem.  On a crash the dump is
    #: attached to the exception as ``exc.repro_flight``; on success it
    #: lands in ``metrics.flight_dump``.
    flight: bool = False

    def __post_init__(self) -> None:
        if self.stack not in STACKS:
            raise SimulationError(f"unknown stack {self.stack!r}; choose from {STACKS}")
        if self.mtu_payload < 1:
            raise SimulationError("mtu_payload must be >= 1")
        if self.control_plane not in ("shared", "per_node"):
            raise SimulationError(
                f"control_plane must be 'shared' or 'per_node', got {self.control_plane!r}"
            )
        self.seed_parts = tuple(self.seed_parts)

    def effective_seed(self) -> int:
        """The seed the run actually uses (``seed`` routed through
        :func:`repro.core.derive_seed` with ``seed_parts``)."""
        return derive_seed(self.seed, *self.seed_parts)


def run_simulation(
    topology: Topology,
    trace: Sequence[FlowArrival],
    config: Optional[SimConfig] = None,
    provider: Optional[WeightProvider] = None,
    telemetry=None,
) -> SimMetrics:
    """Simulate *trace* on *topology* under *config*.

    The run ends when every flow has completed, or at ``config.horizon_ns``
    (default: a generous bound derived from the trace).

    Args:
        provider: Optional shared :class:`WeightProvider` so parameter
            sweeps reuse the (expensive) link-weight cache across runs.
        telemetry: Optional :class:`~repro.telemetry.Telemetry` session.
            When given, the run records metrics, trace events and link
            probes into it; telemetry never perturbs the simulation (probes
            are pulled from the progress loop, no events are scheduled), so
            results are identical with or without it.
    """
    config = config or SimConfig()
    if not trace:
        raise SimulationError("empty flow trace")
    for arrival in trace:
        if arrival.src == arrival.dst:
            raise SimulationError(f"flow {arrival.flow_id} has src == dst")

    loop = EventLoop()
    metrics = SimMetrics()
    flows: Dict[int, SimFlow] = {a.flow_id: SimFlow(a) for a in trace}
    if len(flows) != len(trace):
        raise SimulationError("duplicate flow ids in trace")

    obs_session = None
    flight = None
    if config.obs or config.flight:
        from ..obs import FlightBatchObserver, FlightRecorder, ObsSession

        if config.obs:
            obs_session = ObsSession()
        if config.flight:
            flight = FlightRecorder()
            loop.attach_batch_observer(FlightBatchObserver(flight))

    auditor = None
    if config.audit:
        # Imported lazily: repro.validation imports this module for its
        # differential oracles, so a top-level import would be circular.
        from ..validation import InvariantAuditor

        auditor = InvariantAuditor(strict=config.audit_strict, telemetry=telemetry)
        auditor.attach_loop(loop)
        auditor.flight = flight

    probes = None
    if telemetry is not None and telemetry.trace and telemetry.config.trace_eventloop:
        from ..telemetry import EventLoopTracer

        loop.attach_batch_observer(EventLoopTracer(telemetry.trace))

    started_wall = time.perf_counter()
    try:
        if config.stack == "r2c2":
            network, control = _build_r2c2(
                topology,
                loop,
                flows,
                metrics,
                config,
                provider,
                auditor,
                telemetry,
                obs=obs_session,
                flight=flight,
            )
        elif config.stack == "tcp":
            network = _build_tcp(
                topology, loop, flows, metrics, config, auditor,
                obs=obs_session, flight=flight,
            )
            control = None
        else:
            network = _build_pfq(topology, loop, flows, metrics, config, auditor)
            control = None
        if telemetry is not None and telemetry.enabled:
            probes = telemetry.link_probes(network)
        if auditor is not None:
            for stack in network.stack_at:
                if stack is not None:
                    stack.auditor = auditor
            if control is not None:
                control.auditor = auditor
        if flight is not None and control is not None:
            control.flight = flight

        for arrival in trace:
            flow = flows[arrival.flow_id]
            loop.schedule_at(
                arrival.start_ns,
                lambda f=flow: network.stack_at[f.src].start_flow(f),
            )

        horizon = config.horizon_ns
        if horizon is None:
            horizon = _default_horizon(topology, trace)
        chunk = max(config.progress_chunk_ns, 1)
        while loop.now < horizon:
            loop.run_batch(until_ns=min(loop.now + chunk, horizon))
            # Pulled (not scheduled) so telemetry never perturbs the event
            # heap or the termination conditions below.
            if probes is not None:
                probes.maybe_sample(loop.now)
            if all(f.completed for f in flows.values()):
                break
            if loop.pending() == 0:
                break
    except Exception as exc:
        # Attach the flight dump to the crash so fuzzers and campaign
        # runners can preserve the last moments without re-running.
        if flight is not None and not hasattr(exc, "repro_flight"):
            exc.repro_flight = flight.dump(
                reason=f"{type(exc).__name__}: {exc}"
            )
        raise

    metrics.flows = list(flows.values())
    metrics.max_queue_occupancy_bytes = network.max_queue_occupancies()
    metrics.total_bytes_on_wire = network.total_bytes_sent()
    metrics.data_bytes_on_wire = (
        metrics.total_bytes_on_wire - metrics.broadcast_bytes - metrics.ack_bytes
    )
    metrics.drops = network.total_drops()
    metrics.wire_losses = network.total_wire_losses()
    metrics.events_processed = loop.events_processed
    metrics.duration_ns = loop.now
    metrics.wallclock_s = time.perf_counter() - started_wall
    if control is not None:
        stats = control.recompute_stats()
        metrics.recompute_overheads = [s.cpu_overhead for s in stats]
        metrics.epochs_skipped = sum(1 for s in stats if s.skipped)
        metrics.epochs_recomputed = len(stats) - metrics.epochs_skipped
    if auditor is not None:
        metrics.audit = auditor.final_check(
            flows=flows.values(), drained=(loop.pending() == 0)
        )
    if telemetry is not None and telemetry.enabled:
        if probes is not None:
            probes.sample(loop.now)  # final sample, even for tiny runs
        _finalize_telemetry(telemetry, metrics)
    if obs_session is not None:
        metrics.flow_obs = obs_session.results()
    if flight is not None:
        metrics.flight_dump = flight.dump()
    return metrics


def _finalize_telemetry(telemetry, metrics: SimMetrics) -> None:
    """End-of-run rollups into the metrics registry.

    Wire-byte counters are recorded so a snapshot matches the
    :class:`SimMetrics` totals exactly (`wire.*` from the network's port
    statistics, `broadcast.wire_bytes` accumulated live at delivery); the
    per-port *maximum* queue occupancies become the Figure 7b/14 histogram.
    Shared with :mod:`repro.distsim`, which applies it once to the merged
    metrics so the combined snapshot finalizes exactly like a serial run's.
    """
    from ..telemetry import QUEUE_BUCKETS

    registry = telemetry.metrics
    registry.counter("wire.total_bytes").inc(metrics.total_bytes_on_wire)
    registry.counter("wire.data_bytes").inc(metrics.data_bytes_on_wire)
    registry.counter("wire.ack_bytes").inc(metrics.ack_bytes)
    registry.counter("wire.drops").inc(metrics.drops)
    registry.counter("wire.losses").inc(metrics.wire_losses)
    registry.gauge("sim.events_processed").set(metrics.events_processed)
    registry.gauge("sim.duration_ns").set(metrics.duration_ns)
    registry.gauge("sim.flows_total").set(len(metrics.flows))
    registry.gauge("sim.flows_completed").set(len(metrics.completed_flows()))
    hist = registry.histogram("queue.max_occupancy_bytes", buckets=QUEUE_BUCKETS)
    for occupancy in metrics.max_queue_occupancy_bytes:
        hist.observe(occupancy)


def _default_horizon(topology: Topology, trace: Sequence[FlowArrival]) -> int:
    """A generous stop time: last arrival plus time to drain all bytes at a
    pessimistic tenth of one link's rate, plus a floor."""
    last_arrival = max(a.start_ns for a in trace)
    total_bits = sum(a.size_bytes for a in trace) * 8
    drain_ns = int(total_bits / (topology.capacity_bps / 10) * 1e9)
    return last_arrival + max(drain_ns, msec(50))


def _build_r2c2(
    topology,
    loop,
    flows,
    metrics,
    config,
    provider,
    auditor=None,
    telemetry=None,
    owned_nodes=None,
    boundary=None,
    fib_telemetry=True,
    obs=None,
    flight=None,
):
    """Wire up the R2C2 stack; ``owned_nodes``/``boundary`` restrict the
    build to one shard's slice of the fabric (see :mod:`repro.distsim`).

    Every shard builds an identical FIB, so ``fib_telemetry=False`` lets all
    shards but one skip the (build-time) FIB instruments — the merged
    registry then carries them exactly once, like a serial run.
    """
    from ..routing.weights import deterministic_minimal_path
    from .packets import DROP_NOTE_SIZE_BYTES, KIND_BROADCAST, KIND_DROP_NOTE, SimPacket

    seed = config.effective_seed()
    fib = BroadcastFib(
        topology,
        n_trees=config.n_broadcast_trees,
        seed=seed,
        telemetry=telemetry if fib_telemetry else None,
    )
    network_holder = {}

    def on_drop(node, packet):
        # §3.2: a node that drops a broadcast (queue overflow) notifies the
        # source so it can retransmit on another tree.  Best effort: the
        # notification itself may be dropped too.
        if packet.kind != KIND_BROADCAST or node == packet.src:
            return
        path = deterministic_minimal_path(topology, node, packet.src)
        note = SimPacket(
            kind=KIND_DROP_NOTE,
            flow_id=packet.flow_id,
            src=node,
            dst=packet.src,
            seq=packet.seq,
            size_bytes=DROP_NOTE_SIZE_BYTES,
            path=tuple(path),
            sent_ns=loop.now,
        )
        network_holder["net"].inject(node, note)

    network = RackNetwork(
        loop,
        topology,
        fib=fib,
        queue_factory=(
            (lambda: FifoQueue(limit_bytes=config.queue_limit_bytes))
            if config.queue_limit_bytes is not None
            else FifoQueue
        ),
        on_drop=on_drop,
        loss_rate=config.loss_rate,
        loss_seed=seed,
        auditor=auditor,
        owned_nodes=owned_nodes,
        boundary=boundary,
        flight=flight,
    )
    network_holder["net"] = network
    provider = provider if provider is not None else WeightProvider(topology)
    controller_config = ControllerConfig(
        headroom=config.headroom,
        recompute_interval_ns=config.recompute_interval_ns,
        exempt_young_flows=config.exempt_young_flows,
    )
    if config.control_plane == "per_node":
        control = PerNodeControlPlane(
            loop,
            network,
            topology,
            provider,
            controller_config,
            telemetry=telemetry,
            nodes=owned_nodes,
        )
    else:
        controller = RateController(
            topology,
            node=0,
            provider=provider,
            config=controller_config,
            telemetry=telemetry,
        )
        control = SharedControlPlane(loop, network, controller)
    common = dict(
        mtu_payload=config.mtu_payload,
        seed=seed,
        n_trees=config.n_broadcast_trees,
        metrics=metrics,
        telemetry=telemetry,
        obs=obs,
        flight=flight,
    )
    nodes = topology.nodes() if owned_nodes is None else sorted(owned_nodes)
    for node in nodes:
        if config.reliable:
            network.stack_at[node] = R2C2ReliableStack(
                node, loop, network, control, flows, rto_ns=config.rto_ns, **common
            )
        else:
            network.stack_at[node] = R2C2Stack(
                node, loop, network, control, flows, **common
            )
    control.start_epochs()
    return network, control


def _build_tcp(
    topology, loop, flows, metrics, config, auditor=None, owned_nodes=None,
    boundary=None, obs=None, flight=None,
):
    limit = config.tcp_queue_limit_bytes
    network = RackNetwork(
        loop,
        topology,
        queue_factory=lambda: FifoQueue(limit_bytes=limit),
        loss_rate=config.loss_rate,
        loss_seed=config.effective_seed(),
        auditor=auditor,
        owned_nodes=owned_nodes,
        boundary=boundary,
        flight=flight,
    )
    ecmp = EcmpSinglePath(topology)
    nodes = topology.nodes() if owned_nodes is None else sorted(owned_nodes)
    for node in nodes:
        network.stack_at[node] = TcpStack(
            node,
            loop,
            network,
            flows,
            ecmp,
            mtu_payload=config.mtu_payload,
            metrics=metrics,
            obs=obs,
            flight=flight,
        )
    return network


def _build_pfq(topology, loop, flows, metrics, config, auditor=None):
    coordinator = PfqCoordinator()
    packet_bytes = data_packet_size(config.mtu_payload)
    high = config.pfq_high_packets * packet_bytes
    low = config.pfq_low_packets * packet_bytes
    network = RackNetwork(
        loop,
        topology,
        queue_factory=lambda: BackpressureQueue(coordinator, high, low),
        auditor=auditor,
    )
    from ..routing.base import make_protocol

    protocol = make_protocol(config.pfq_protocol, topology)
    for node in topology.nodes():
        network.stack_at[node] = PfqStack(
            node,
            loop,
            network,
            coordinator,
            flows,
            protocol,
            mtu_payload=config.mtu_payload,
            seed=config.effective_seed(),
            metrics=metrics,
        )
    return network
