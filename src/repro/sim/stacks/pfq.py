"""The idealized per-flow-queue (PFQ) baseline (paper §5.2).

"An idealized baseline, per-flow queues (PFQ), that uses back-pressure and
per-flow queues at each node ... impractical because, apart from forwarding
complexity at rack nodes, it results in very high buffering requirements.
However ... it provides the upper bound of the performance achievable by any
rate control protocol."

Implementation: every output port runs a per-flow round-robin scheduler;
when any port's queue for a flow exceeds a high-water mark the flow's
*source* is paused (idealized instantaneous back-pressure — control signals
are free, as befits an upper bound), and resumed when the queue drains below
the low-water mark.  Sources inject at line rate while unpaused, spraying
packets over minimal paths like R2C2 does.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional, Set

from ...errors import SimulationError
from ...routing.base import RoutingProtocol
from ...types import NodeId
from ..engine import EventLoop
from ..flows import SimFlow
from ..network import PerFlowRoundRobin, RackNetwork
from ..packets import KIND_DATA, SimPacket, data_packet_size
from .base import HostStack


class BackpressureQueue(PerFlowRoundRobin):
    """Per-flow round-robin queue that reports high/low water crossings."""

    def __init__(
        self,
        coordinator: "PfqCoordinator",
        high_bytes: int,
        low_bytes: int,
    ) -> None:
        super().__init__(limit_bytes_per_flow=None)
        self._coordinator = coordinator
        self._high = high_bytes
        self._low = low_bytes
        self._congested: Set[int] = set()

    def enqueue(self, packet: SimPacket) -> bool:
        ok = super().enqueue(packet)
        if ok:
            flow = packet.flow_id
            if (
                flow not in self._congested
                and self.flow_occupancy_bytes(flow) > self._high
            ):
                self._congested.add(flow)
                self._coordinator.queue_congested(flow)
        return ok

    def dequeue(self) -> Optional[SimPacket]:
        packet = super().dequeue()
        if packet is not None:
            flow = packet.flow_id
            if (
                flow in self._congested
                and self.flow_occupancy_bytes(flow) <= self._low
            ):
                self._congested.discard(flow)
                self._coordinator.queue_drained(flow)
        return packet


class PfqCoordinator:
    """Tracks, per flow, how many queues currently exert back-pressure."""

    def __init__(self) -> None:
        self._congested_count: Dict[int, int] = {}
        self._pause: Dict[int, Callable[[], None]] = {}
        self._resume: Dict[int, Callable[[], None]] = {}

    def register_flow(
        self, flow_id: int, pause: Callable[[], None], resume: Callable[[], None]
    ) -> None:
        """The source stack registers its pause/resume handlers."""
        self._pause[flow_id] = pause
        self._resume[flow_id] = resume
        # Back-pressure may already exist if registration races enqueue
        # (it cannot in practice: the source sends the first packet).
        if self._congested_count.get(flow_id, 0) > 0:
            pause()

    def unregister_flow(self, flow_id: int) -> None:
        """Forget a finished flow's handlers.

        The congestion counts are kept: the flow's packets are still
        draining through queues whose high-water crossings were already
        counted, and those queues will report the matching drain events.
        """
        self._pause.pop(flow_id, None)
        self._resume.pop(flow_id, None)

    def is_paused(self, flow_id: int) -> bool:
        """True while any queue holds too much of this flow."""
        return self._congested_count.get(flow_id, 0) > 0

    def queue_congested(self, flow_id: int) -> None:
        count = self._congested_count.get(flow_id, 0) + 1
        self._congested_count[flow_id] = count
        if count == 1:
            pause = self._pause.get(flow_id)
            if pause is not None:
                pause()

    def queue_drained(self, flow_id: int) -> None:
        count = self._congested_count.get(flow_id, 0) - 1
        if count < 0:
            raise SimulationError(f"flow {flow_id} drained more queues than congested")
        self._congested_count[flow_id] = count
        if count == 0:
            resume = self._resume.get(flow_id)
            if resume is not None:
                resume()


class PfqStack(HostStack):
    """Source pacing at line rate, gated by global back-pressure."""

    def __init__(
        self,
        node: NodeId,
        loop: EventLoop,
        network: RackNetwork,
        coordinator: PfqCoordinator,
        flows_by_id: Dict[int, SimFlow],
        protocol: RoutingProtocol,
        mtu_payload: int = 1500,
        seed: int = 0,
        metrics=None,
    ) -> None:
        super().__init__(node, loop, network)
        self._coordinator = coordinator
        self._flows = flows_by_id
        self._protocol = protocol
        self._mtu = mtu_payload
        self._metrics = metrics
        self._rng = random.Random((seed << 16) ^ node ^ 0x5F5F)
        self._paused: Set[int] = set()
        self._emitting: Set[int] = set()

    def start_flow(self, flow: SimFlow) -> None:
        if flow.src != self.node:
            raise SimulationError(f"flow {flow.flow_id} not sourced here")
        self._coordinator.register_flow(
            flow.flow_id,
            pause=lambda fid=flow.flow_id: self._paused.add(fid),
            resume=lambda fid=flow.flow_id: self._on_resume(fid),
        )
        self._emit(flow)

    def _on_resume(self, flow_id: int) -> None:
        self._paused.discard(flow_id)
        flow = self._flows.get(flow_id)
        if flow is not None and not flow.sender_done and flow_id not in self._emitting:
            self._emit(flow)

    def _emit(self, flow: SimFlow) -> None:
        self._emitting.discard(flow.flow_id)
        if flow.sender_done:
            return
        if flow.flow_id in self._paused:
            return  # resumed later by the coordinator
        payload = min(self._mtu, flow.remaining_bytes)
        size = data_packet_size(payload)
        path = self._protocol.sample_path(flow.src, flow.dst, self._rng, flow.flow_id)
        packet = SimPacket(
            kind=KIND_DATA,
            flow_id=flow.flow_id,
            src=flow.src,
            dst=flow.dst,
            seq=flow.next_seq,
            size_bytes=size,
            path=tuple(path),
            payload=payload,
            sent_ns=self.loop.now,
        )
        flow.next_seq += 1
        flow.bytes_sent += payload
        self.network.inject(self.node, packet)
        if flow.sender_done:
            flow.sender_done_ns = self.loop.now
            self._coordinator.unregister_flow(flow.flow_id)
            return
        # Pace at the node's aggregate outgoing capacity: the idealized
        # upper-bound baseline must be able to use every path a multi-path
        # flow spreads over (back-pressure, not the source, is what
        # throttles it).
        topology = self.network.topology
        capacity = topology.capacity_bps * max(1, topology.degree(flow.src))
        delay = max(1, int(size * 8 * 1e9 / capacity))
        self._emitting.add(flow.flow_id)
        self.loop.schedule(delay, lambda f=flow: self._emit(f))

    def deliver(self, packet: SimPacket) -> None:
        if packet.kind != KIND_DATA:
            raise SimulationError(f"unexpected packet kind {packet.kind}")
        flow = self._flows.get(packet.flow_id)
        if flow is None:
            raise SimulationError(f"packet for unknown flow {packet.flow_id}")
        if self._metrics is not None:
            self._metrics.packet_latency.record(self.loop.now - packet.sent_ns)
        flow.record_in_order(packet.seq)
        flow.bytes_received += packet.payload
        if flow.bytes_received >= flow.size_bytes and flow.completed_ns is None:
            flow.completed_ns = self.loop.now
        self._audit_flow(flow)
