"""TCP baseline over single-path ECMP routing (paper §5.2).

The paper compares R2C2 against "TCP [with] an ECMP-like routing protocol,
which selects a single path between source and destination, based on the
hash of the flow ID".  This is a NewReno-flavoured implementation: slow
start, congestion avoidance, triple-duplicate-ACK fast retransmit, and
retransmission timeouts with exponential backoff.  ACKs are real 40-byte
packets on the reverse path, and drop-tail queues (finite, unlike R2C2's
measured-unbounded queues) provide the loss signal.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set

from ...errors import SimulationError
from ...routing.ecmp import EcmpSinglePath
from ...types import NodeId
from ..engine import EventLoop
from ..flows import SimFlow
from ..network import RackNetwork
from ..packets import ACK_SIZE_BYTES, KIND_ACK, KIND_DATA, SimPacket, data_packet_size
from .base import HostStack

#: Default drop-tail queue limit for TCP runs, bytes (≈100 MTU packets).
DEFAULT_TCP_QUEUE_LIMIT = 150_000

#: Lower bound on the retransmission timer; rack RTTs are microseconds, so
#: a datacenter-tuned minimum is used rather than the WAN-era 200 ms.
MIN_RTO_NS = 100_000


class _TcpSender:
    """Congestion-control state for one flow at its source."""

    __slots__ = (
        "flow",
        "path",
        "ack_path",
        "n_segments",
        "seg_payload",
        "cwnd",
        "ssthresh",
        "cum_acked",
        "next_to_send",
        "dup_acks",
        "srtt_ns",
        "rttvar_ns",
        "rto_ns",
        "timer_epoch",
        "in_flight",
        "send_times",
        "recovery_until",
        "done",
    )

    def __init__(self, flow: SimFlow, path: List[NodeId], seg_payload: int) -> None:
        self.flow = flow
        self.path = tuple(path)
        self.ack_path = tuple(reversed(path))
        self.seg_payload = seg_payload
        self.n_segments = max(1, -(-flow.size_bytes // seg_payload))
        self.cwnd = 2.0
        self.ssthresh = 64.0
        self.cum_acked = 0
        self.next_to_send = 0
        self.dup_acks = 0
        self.srtt_ns: Optional[float] = None
        self.rttvar_ns = 0.0
        self.rto_ns = 10 * MIN_RTO_NS
        self.timer_epoch = 0
        self.in_flight = 0
        self.send_times: Dict[int, int] = {}
        self.recovery_until = -1
        self.done = False

    def segment_payload(self, seg: int) -> int:
        if seg == self.n_segments - 1:
            last = self.flow.size_bytes - (self.n_segments - 1) * self.seg_payload
            return last if last > 0 else self.seg_payload
        return self.seg_payload


class TcpStack(HostStack):
    """Per-node TCP endpoints (all flows sourced or sunk at this node)."""

    def __init__(
        self,
        node: NodeId,
        loop: EventLoop,
        network: RackNetwork,
        flows_by_id: Dict[int, SimFlow],
        ecmp: EcmpSinglePath,
        mtu_payload: int = 1500,
        metrics=None,
        obs=None,
        flight=None,
    ) -> None:
        super().__init__(node, loop, network)
        self._flows = flows_by_id
        self._ecmp = ecmp
        self._mtu = mtu_payload
        self._metrics = metrics
        # Optional causal tracing / flight recorder (repro.obs).  TCP has
        # no explicit pacing timers, so all sender-side residence lands in
        # the pacing remainder (ACK-clocked sending); only injection and
        # delivery need hooks.
        self._obs = obs
        self._flight = flight
        self._senders: Dict[int, _TcpSender] = {}
        self._recv_segments: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------
    # Sender
    # ------------------------------------------------------------------
    def start_flow(self, flow: SimFlow) -> None:
        if flow.src != self.node:
            raise SimulationError(f"flow {flow.flow_id} not sourced here")
        path = self._ecmp.flow_path(flow.src, flow.dst, flow.flow_id)
        sender = _TcpSender(flow, path, self._mtu)
        self._senders[flow.flow_id] = sender
        self._try_send(sender)
        self._arm_timer(sender)

    def _try_send(self, sender: _TcpSender) -> None:
        while (
            not sender.done
            and sender.next_to_send < sender.n_segments
            and sender.in_flight < int(sender.cwnd)
        ):
            self._send_segment(sender, sender.next_to_send)
            sender.next_to_send += 1

    def _send_segment(self, sender: _TcpSender, seg: int) -> None:
        payload = sender.segment_payload(seg)
        packet = SimPacket(
            kind=KIND_DATA,
            flow_id=sender.flow.flow_id,
            src=sender.flow.src,
            dst=sender.flow.dst,
            seq=seg,
            size_bytes=data_packet_size(payload),
            path=sender.path,
            payload=payload,
            sent_ns=self.loop.now,
        )
        sender.in_flight += 1
        # bytes_sent counts useful payload only, like the reliable R2C2
        # transport: a segment contributes on its first transmission, never
        # on retransmits (wire-level totals live in the port counters).
        if seg not in sender.send_times:
            sender.flow.bytes_sent += payload
        sender.send_times[seg] = self.loop.now
        if self._obs is not None:
            self._obs.on_inject(sender.flow, packet, self.loop.now)
        self.network.inject(self.node, packet)

    def _arm_timer(self, sender: _TcpSender) -> None:
        sender.timer_epoch += 1
        epoch = sender.timer_epoch
        self.loop.schedule(
            int(sender.rto_ns), lambda s=sender, e=epoch: self._on_rto(s, e)
        )

    def _on_rto(self, sender: _TcpSender, epoch: int) -> None:
        if sender.done or epoch != sender.timer_epoch:
            return
        if sender.cum_acked >= sender.n_segments:
            return
        # Timeout: collapse the window and go back to the first unacked
        # segment.
        if self._flight is not None:
            self._flight.record(
                "stack",
                "tcp_rto",
                self.loop.now,
                flow=sender.flow.flow_id,
                cum_acked=sender.cum_acked,
            )
        sender.ssthresh = max(sender.cwnd / 2.0, 2.0)
        sender.cwnd = 2.0
        sender.dup_acks = 0
        sender.rto_ns = min(sender.rto_ns * 2, 100 * MIN_RTO_NS * 2 ** 6)
        sender.next_to_send = sender.cum_acked
        sender.in_flight = 0
        self._try_send(sender)
        self._arm_timer(sender)

    def _on_ack(self, sender: _TcpSender, ack: int) -> None:
        if sender.done:
            return
        if ack > sender.cum_acked:
            newly = ack - sender.cum_acked
            sender.cum_acked = ack
            # Never (re)send below the cumulative ACK point: an ACK that
            # overtakes an RTO-rewound next_to_send would otherwise make
            # _try_send retransmit segments the receiver already has.
            sender.next_to_send = max(sender.next_to_send, ack)
            sender.in_flight = max(0, sender.in_flight - newly)
            sender.dup_acks = 0
            # RTT sample from the newest acked segment (Karn-ish: only if we
            # recorded a single send time for it).
            sent = sender.send_times.pop(ack - 1, None)
            if sent is not None:
                self._update_rtt(sender, self.loop.now - sent)
            if sender.cwnd < sender.ssthresh:
                sender.cwnd += newly  # slow start
            else:
                sender.cwnd += newly / sender.cwnd  # congestion avoidance
            if ack >= sender.n_segments:
                sender.done = True
                sender.timer_epoch += 1
                return
            self._arm_timer(sender)
            self._try_send(sender)
        else:
            sender.dup_acks += 1
            if sender.dup_acks == 3 and sender.cum_acked > sender.recovery_until:
                # Fast retransmit of the missing segment.
                sender.ssthresh = max(sender.cwnd / 2.0, 2.0)
                sender.cwnd = sender.ssthresh
                sender.recovery_until = sender.next_to_send
                sender.in_flight = max(0, sender.in_flight - 1)
                self._send_segment(sender, sender.cum_acked)
                self._arm_timer(sender)

    def _update_rtt(self, sender: _TcpSender, sample_ns: int) -> None:
        if sender.srtt_ns is None:
            sender.srtt_ns = float(sample_ns)
            sender.rttvar_ns = sample_ns / 2.0
        else:
            err = sample_ns - sender.srtt_ns
            sender.srtt_ns += 0.125 * err
            sender.rttvar_ns += 0.25 * (abs(err) - sender.rttvar_ns)
        sender.rto_ns = max(
            MIN_RTO_NS, sender.srtt_ns + 4.0 * sender.rttvar_ns
        )

    # ------------------------------------------------------------------
    # Receiver
    # ------------------------------------------------------------------
    def deliver(self, packet: SimPacket) -> None:
        if packet.kind == KIND_ACK:
            sender = self._senders.get(packet.flow_id)
            if sender is not None:
                self._on_ack(sender, packet.seq)
            return
        if packet.kind != KIND_DATA:
            raise SimulationError(f"unexpected packet kind {packet.kind}")
        flow = self._flows.get(packet.flow_id)
        if flow is None:
            raise SimulationError(f"packet for unknown flow {packet.flow_id}")
        if self._metrics is not None:
            self._metrics.packet_latency.record(self.loop.now - packet.sent_ns)
        segments = self._recv_segments.setdefault(packet.flow_id, set())
        if packet.seq not in segments:
            segments.add(packet.seq)
            flow.bytes_received += packet.payload
            flow.record_in_order(packet.seq)
            if flow.bytes_received >= flow.size_bytes and flow.completed_ns is None:
                flow.completed_ns = self.loop.now
                if self._flight is not None:
                    self._flight.record(
                        "stack",
                        "flow_complete",
                        self.loop.now,
                        flow=flow.flow_id,
                        node=self.node,
                    )
        if packet.obs is not None and self._obs is not None:
            self._obs.on_delivered(flow, packet, self.loop.now)
        self._audit_flow(flow)
        # Cumulative ACK: number of in-order segments received.
        ack_no = flow.expected_seq
        ack = SimPacket(
            kind=KIND_ACK,
            flow_id=packet.flow_id,
            src=self.node,
            dst=packet.src,
            seq=ack_no,
            size_bytes=ACK_SIZE_BYTES,
            path=tuple(reversed(packet.path)),
            sent_ns=self.loop.now,
        )
        if self._metrics is not None:
            self._metrics.ack_bytes += ACK_SIZE_BYTES
        self.network.inject(self.node, ack)
