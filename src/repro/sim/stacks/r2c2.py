"""The R2C2 host stack inside the packet simulator (paper §3, §4.2).

Sender side: per-flow token-bucket pacing at the controller-assigned rate,
per-packet path sampling by the flow's routing protocol, source-route
injection, and flow start/finish broadcasts that travel as real 16-byte
packets along the broadcast trees (consuming link bandwidth).

Receiver side: payload accounting, completion detection and reorder-buffer
measurement.

Two control-plane models share one interface:

* :class:`SharedControlPlane` (default) — a single rack-wide
  :class:`~repro.congestion.controller.RateController`.  Every node would
  compute identical allocations from identical broadcast-fed tables, so the
  simulator computes them once per epoch instead of once per node per
  epoch; the table is updated the moment a sender *emits* an event.
* :class:`PerNodeControlPlane` — full fidelity: one controller per node,
  updated only when a broadcast packet is actually *delivered* to that node
  (the sender applies its own events immediately).  Identical tables still
  cost one water-fill thanks to a shared allocation memo, so this mode is
  affordable and is used to validate the shared collapsing
  (`tests/integration/` and `SimConfig(control_plane="per_node")`).
"""

from __future__ import annotations

import os
import random
from typing import Dict, List, Optional, Set, Tuple

from ...broadcast.fib import BroadcastFib
from ...congestion.controller import ControllerConfig, RateController
from ...congestion.flowstate import FlowSpec
from ...errors import SimulationError
from ...lru import BoundedLru
from ...telemetry.trace import TRACK_BROADCAST, TRACK_PACKETS
from ...types import NodeId
from ..engine import EventLoop
from ..flows import SimFlow
from ..network import RackNetwork
from ..packets import (
    DROP_NOTE_SIZE_BYTES,
    KIND_BROADCAST,
    KIND_DATA,
    KIND_DROP_NOTE,
    SimPacket,
    broadcast_packet_size,
    data_packet_size,
)
from .base import HostStack

#: Broadcast payload markers (mirrors the wire event codes).
_EVENT_START = 1
_EVENT_FINISH = 2
_EVENT_DEMAND = 3

#: Human-readable event names for telemetry labels/trace args.
_EVENT_NAMES = {_EVENT_START: "start", _EVENT_FINISH: "finish", _EVENT_DEMAND: "demand"}


class SharedControlPlane:
    """One rack-wide controller standing in for all per-node copies."""

    def __init__(
        self,
        loop: EventLoop,
        network: RackNetwork,
        controller: RateController,
    ) -> None:
        self.loop = loop
        self.network = network
        self.controller = controller
        self._stacks: List["R2C2Stack"] = []
        self._epoch_scheduled = False
        #: optional invariant auditor (repro.validation); checks every
        #: recomputed allocation against link capacities when installed.
        self.auditor = None
        #: optional crash flight recorder (repro.obs.flight).
        self.flight = None

    @property
    def provider(self):
        """The shared link-weight cache."""
        return self.controller.provider

    @property
    def config(self) -> ControllerConfig:
        """The rack-wide controller configuration."""
        return self.controller.config

    def register(self, stack: "R2C2Stack") -> None:
        """A node stack joins the control plane."""
        self._stacks.append(stack)

    def start_epochs(self) -> None:
        """Schedule the periodic recomputation (idempotent)."""
        if self._epoch_scheduled:
            return
        self._epoch_scheduled = True
        interval = self.controller.config.recompute_interval_ns
        if interval <= 0:
            return  # strawman mode recomputes per event instead

        def tick() -> None:
            self.controller.recompute(self.loop.now)
            if self.auditor is not None:
                self.auditor.audit_allocation(self.controller.allocation)
            if self.flight is not None:
                allocation = self.controller.allocation
                self.flight.record(
                    "controller",
                    "epoch",
                    self.loop.now,
                    flows=0 if allocation is None else len(allocation.rates_bps),
                )
            for stack in self._stacks:
                stack.on_epoch()
            self.loop.schedule(interval, tick)

        self.loop.schedule(interval, tick)

    def on_flow_started(self, spec: FlowSpec, node: NodeId) -> None:
        """Sender announced a flow (its own table knows immediately)."""
        self.controller.on_flow_started(spec, self.loop.now)

    def on_flow_reannounced(self, spec: FlowSpec, node: NodeId) -> None:
        """§3.2 recovery: refresh the table entry without re-running the
        young-flow admission path (the flow is not new, just re-told)."""
        self.controller.table.add(spec)

    def on_flow_finished(self, flow_id: int, node: NodeId) -> None:
        """Sender announced a finish."""
        self.controller.on_flow_finished(flow_id, self.loop.now)

    def on_demand_update(self, flow_id: int, demand_bps: float, node: NodeId) -> None:
        """Sender announced a demand estimate."""
        self.controller.on_demand_update(flow_id, demand_bps)

    def rate_for(self, flow_id: int, node: NodeId) -> float:
        """Current enforced rate for a flow, as node *node* sees it."""
        return self.controller.rate_for(flow_id)

    def apply_broadcast(self, node: NodeId, src: NodeId, payload) -> None:
        """Broadcast delivery at *node*: a no-op — the shared table was
        already updated when the sender emitted the event."""

    def recompute_stats(self):
        """Recomputation statistics for the metrics collector."""
        return self.controller.stats


class PerNodeControlPlane:
    """Full-fidelity control plane: one controller per rack node.

    Remote nodes learn about flows only when the 16-byte broadcast packets
    actually reach them through the simulated fabric, so visibility skew is
    modelled exactly.  A shared allocation memo keeps the cost near the
    shared mode's: nodes whose tables agree (the overwhelmingly common
    case) reuse one water-fill result.
    """

    def __init__(
        self,
        loop: EventLoop,
        network: RackNetwork,
        topology,
        provider,
        config: ControllerConfig,
        telemetry=None,
        nodes=None,
    ) -> None:
        self.loop = loop
        self.network = network
        self._config = config
        self._provider = provider
        self._cache = BoundedLru(4096)
        #: nodes this plane manages — all of them in a serial run, one
        #: shard's subset under repro.distsim.  Ascending order keeps the
        #: epoch-tick iteration identical to the serial engine's.
        self._nodes: List[NodeId] = (
            list(topology.nodes()) if nodes is None else sorted(nodes)
        )
        self._by_node: Dict[NodeId, RateController] = {
            node: RateController(
                topology,
                node,
                provider=provider,
                config=config,
                allocation_cache=self._cache,
                telemetry=telemetry,
            )
            for node in self._nodes
        }
        self.controllers: List[RateController] = [
            self._by_node[node] for node in self._nodes
        ]
        #: kept for interface parity (metrics, reliable stack internals).
        self.controller = self.controllers[0]
        self._stacks: List["R2C2Stack"] = []
        self._epoch_scheduled = False
        #: optional invariant auditor (repro.validation).
        self.auditor = None
        #: optional crash flight recorder (repro.obs.flight).
        self.flight = None

    @property
    def provider(self):
        """The shared link-weight cache."""
        return self._provider

    @property
    def config(self) -> ControllerConfig:
        """The rack-wide controller configuration."""
        return self._config

    def register(self, stack: "R2C2Stack") -> None:
        """A node stack joins the control plane."""
        self._stacks.append(stack)

    def start_epochs(self) -> None:
        """Every node recomputes at the same epoch boundaries."""
        if self._epoch_scheduled:
            return
        self._epoch_scheduled = True
        interval = self._config.recompute_interval_ns
        if interval <= 0:
            return

        def tick() -> None:
            for controller in self.controllers:
                controller.recompute(self.loop.now)
                if self.auditor is not None:
                    self.auditor.audit_allocation(controller.allocation)
            if self.flight is not None:
                self.flight.record(
                    "controller", "epoch", self.loop.now, nodes=len(self.controllers)
                )
            for stack in self._stacks:
                stack.on_epoch()
            self.loop.schedule(interval, tick)

        self.loop.schedule(interval, tick)

    def on_flow_started(self, spec: FlowSpec, node: NodeId) -> None:
        """The sender's controller learns immediately; others by delivery."""
        self._by_node[node].on_flow_started(spec, self.loop.now)

    def on_flow_reannounced(self, spec: FlowSpec, node: NodeId) -> None:
        """§3.2 recovery: the sender refreshes its own table entry."""
        self._by_node[node].table.add(spec)

    def on_flow_finished(self, flow_id: int, node: NodeId) -> None:
        self._by_node[node].on_flow_finished(flow_id, self.loop.now)

    def on_demand_update(self, flow_id: int, demand_bps: float, node: NodeId) -> None:
        self._by_node[node].on_demand_update(flow_id, demand_bps)

    def rate_for(self, flow_id: int, node: NodeId) -> float:
        return self._by_node[node].rate_for(flow_id)

    def apply_broadcast(self, node: NodeId, src: NodeId, payload) -> None:
        """A broadcast packet reached *node*: apply it to that node's view."""
        if src == node:
            return  # the sender already applied its own event
        event, data = payload
        controller = self._by_node[node]
        if event == _EVENT_START:
            # Remote nodes store the spec; they never rate-limit it, so the
            # young-flow water-fill is suppressed by inserting directly.
            controller.table.add(data)
        elif event == _EVENT_FINISH:
            controller.table.remove(data)
        elif event == _EVENT_DEMAND:
            flow_id, demand_bps = data
            controller.on_demand_update(flow_id, demand_bps)
        else:
            raise SimulationError(f"unknown broadcast event {event}")

    def recompute_stats(self):
        """Aggregate recomputation statistics across all controllers."""
        stats = []
        for controller in self.controllers:
            stats.extend(controller.stats)
        return stats

    def recompute_stats_by_node(self):
        """Per-node recomputation statistics (``{node: [stats, ...]}``).

        The sharded merge concatenates these in global node order, which
        reproduces :meth:`recompute_stats` of a serial run exactly.
        """
        return {node: list(self._by_node[node].stats) for node in self._nodes}


class R2C2Stack(HostStack):
    """One node's R2C2 data plane plus its control-plane hooks."""

    def __init__(
        self,
        node: NodeId,
        loop: EventLoop,
        network: RackNetwork,
        control: SharedControlPlane,
        flows_by_id: Dict[int, SimFlow],
        mtu_payload: int = 1500,
        seed: int = 0,
        n_trees: int = 4,
        metrics=None,
        telemetry=None,
        obs=None,
        flight=None,
    ) -> None:
        super().__init__(node, loop, network)
        self.control = control
        #: optional causal-tracing session (repro.obs) and crash flight
        #: recorder; None on every default path.
        self._obs = obs
        self._flight = flight
        self._flows = flows_by_id
        self._mtu = mtu_payload
        # Test-only planted fault (the fuzzer's end-to-end exercise): with
        # REPRO_PLANT_BUG=early-completion the receiver declares a flow
        # complete one MTU short and tears down accounting for anything
        # arriving after, so multi-segment flows end under-accounted and
        # the invariant auditor's flow check must trip.  Read once at
        # construction so behavior cannot flip mid-run.
        self._planted_bug = os.environ.get("REPRO_PLANT_BUG", "")
        self._rng = random.Random((seed << 16) ^ node)
        self._n_trees = n_trees
        self._next_tree = node  # stagger tree choice across nodes
        self._metrics = metrics
        # Telemetry instruments, resolved once (see repro.telemetry); all
        # instruments are shared registry objects, so per-stack increments
        # aggregate rack-wide.  Falsy when telemetry is off.
        if telemetry is not None:
            registry = telemetry.metrics
            # ``or None`` collapses disabled (falsy null) sinks to None so
            # the per-packet guards below test None at C speed instead of
            # calling a Python-level __bool__.
            self._ctr_bcast_events = {
                _EVENT_START: registry.counter("broadcast.announcements", event="start"),
                _EVENT_FINISH: registry.counter("broadcast.announcements", event="finish"),
                _EVENT_DEMAND: registry.counter("broadcast.announcements", event="demand"),
            } if registry else None
            self._ctr_bcast_wire_bytes = registry.counter("broadcast.wire_bytes") or None
            self._ctr_bcast_wire_packets = registry.counter("broadcast.wire_packets") or None
            self._ctr_bcast_retransmits = registry.counter("broadcast.retransmissions") or None
            self._tel_trace = telemetry.trace or None
            self._pkt_sample_every = telemetry.config.packet_sample_every
        else:
            self._ctr_bcast_events = None
            self._ctr_bcast_wire_bytes = None
            self._ctr_bcast_wire_packets = None
            self._ctr_bcast_retransmits = None
            self._tel_trace = None
            self._pkt_sample_every = 0
        self._active_local: Set[int] = set()
        self._stalled: Set[int] = set()
        self._bcast_seq = 0
        #: demand estimators for host-limited local flows (§3.3.2).
        self._estimators: Dict[int, object] = {}
        #: recently sent broadcasts, for §3.2 drop-triggered retransmission
        #: (seq -> (flow, event, data)); bounded replay window.
        self._bcast_pending: Dict[int, tuple] = {}
        self.broadcast_retransmissions = 0
        control.register(self)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def start_flow(self, flow: SimFlow) -> None:
        if flow.src != self.node:
            raise SimulationError(
                f"flow {flow.flow_id} sourced at {flow.src}, not {self.node}"
            )
        if flow.src == flow.dst:
            raise SimulationError("self-flows are not meaningful in the rack fabric")
        spec = FlowSpec(
            flow_id=flow.flow_id,
            src=flow.src,
            dst=flow.dst,
            protocol=flow.protocol,
            weight=flow.weight,
            priority=flow.priority,
            start_time_ns=self.loop.now,
            tenant=flow.tenant,
        )
        self.control.on_flow_started(spec, self.node)
        if self._flight is not None:
            self._flight.record(
                "stack",
                "flow_start",
                self.loop.now,
                flow=flow.flow_id,
                src=flow.src,
                dst=flow.dst,
                size=flow.size_bytes,
            )
        self._broadcast(flow, _EVENT_START, spec)
        self._active_local.add(flow.flow_id)
        if flow.app_rate_bps is not None:
            from ...congestion.demand import DemandEstimator

            interval = max(
                self.control.config.recompute_interval_ns, 1
            )
            self._estimators[flow.flow_id] = DemandEstimator(period_ns=interval)
        self._emit(flow)

    def _broadcast(self, flow: SimFlow, event: int, data=None) -> None:
        seq = self._bcast_seq
        self._bcast_seq += 1
        self._bcast_pending[seq] = (flow, event, data)
        if len(self._bcast_pending) > 256:
            self._bcast_pending.pop(next(iter(self._bcast_pending)))
        self._send_broadcast(flow, event, data, seq)

    def _send_broadcast(self, flow: SimFlow, event: int, data, seq: int) -> None:
        tree_id = self._next_tree % self._n_trees
        self._next_tree += 1
        if self._ctr_bcast_events is not None:
            self._ctr_bcast_events[event].inc()
        if self._tel_trace:
            self._tel_trace.instant(
                "announce",
                "broadcast",
                self.loop.now,
                tid=TRACK_BROADCAST,
                args={
                    "event": _EVENT_NAMES.get(event, event),
                    "flow": flow.flow_id,
                    "node": self.node,
                    "tree": tree_id,
                },
            )
        packet = SimPacket(
            kind=KIND_BROADCAST,
            flow_id=flow.flow_id,
            src=self.node,
            dst=flow.dst,
            seq=seq,
            size_bytes=broadcast_packet_size(),
            tree_id=tree_id,
            payload=(event, data if data is not None else flow.flow_id),
            sent_ns=self.loop.now,
        )
        self.network.inject(self.node, packet)

    def on_broadcast_dropped(self, dropped_at: NodeId, seq: int) -> None:
        """§3.2: "the node dropping a broadcast packet informs the sender
        who can then re-transmit" — retransmit on the next tree."""
        pending = self._bcast_pending.get(seq)
        if pending is None:
            return  # aged out of the replay window
        flow, event, data = pending
        self.broadcast_retransmissions += 1
        if self._ctr_bcast_retransmits:
            self._ctr_bcast_retransmits.inc()
        if self._flight is not None:
            self._flight.record(
                "stack",
                "broadcast_retransmit",
                self.loop.now,
                flow=flow.flow_id,
                dropped_at=dropped_at,
                seq=seq,
            )
        if self._tel_trace:
            self._tel_trace.instant(
                "retransmit",
                "broadcast",
                self.loop.now,
                tid=TRACK_BROADCAST,
                args={"flow": flow.flow_id, "dropped_at": dropped_at, "seq": seq},
            )
        self._send_broadcast(flow, event, data, seq)

    def _emit(self, flow: SimFlow) -> None:
        if flow.sender_done or flow.flow_id not in self._active_local:
            return
        rate = self.control.rate_for(flow.flow_id, self.node)
        if rate <= 0:
            self._stalled.add(flow.flow_id)
            if self._obs is not None:
                self._obs.on_stall(flow.flow_id, self.loop.now)
            return
        if self._obs is not None:
            self._obs.on_resume(flow.flow_id, self.loop.now)
        payload = min(self._mtu, flow.remaining_bytes)
        available = flow.produced_bytes(self.loop.now) - flow.bytes_sent
        if available < payload:
            # Host-limited: the application has not produced enough bytes
            # yet; resume when it has.
            assert flow.app_rate_bps is not None
            needed = payload - available
            delay = max(1, int(needed * 8 * 1e9 / flow.app_rate_bps))
            if self._obs is not None:
                self._obs.on_host_wait(flow.flow_id, delay)
            self.loop.schedule(delay, lambda f=flow: self._emit(f))
            return
        size = data_packet_size(payload)
        protocol = self.control.provider.protocol(flow.protocol)
        path = protocol.sample_path(flow.src, flow.dst, self._rng, flow.flow_id)
        packet = SimPacket(
            kind=KIND_DATA,
            flow_id=flow.flow_id,
            src=flow.src,
            dst=flow.dst,
            seq=flow.next_seq,
            size_bytes=size,
            path=tuple(path),
            payload=payload,
            sent_ns=self.loop.now,
        )
        flow.next_seq += 1
        flow.bytes_sent += payload
        if self._obs is not None:
            self._obs.on_inject(flow, packet, self.loop.now)
        self.network.inject(self.node, packet)

        if flow.sender_done:
            flow.sender_done_ns = self.loop.now
            self._active_local.discard(flow.flow_id)
            self._estimators.pop(flow.flow_id, None)
            self.control.on_flow_finished(flow.flow_id, self.node)
            self._broadcast(flow, _EVENT_FINISH, flow.flow_id)
        else:
            # Token-bucket pacing: the next packet may start once this one's
            # bits have been paid for at the allocated rate.
            delay = max(1, int(size * 8 * 1e9 / rate))
            self.loop.schedule(delay, lambda f=flow: self._emit(f))

    def reannounce_ongoing(self) -> int:
        """§3.2 failure recovery: re-broadcast every ongoing local flow.

        Topology discovery reporting a failed link/node triggers this on
        every node so that flow tables rebuilt after the event reconverge.
        Returns the number of flows re-announced.
        """
        count = 0
        for flow_id in sorted(self._active_local):
            flow = self._flows.get(flow_id)
            if flow is None or flow.sender_done:
                continue
            spec = FlowSpec(
                flow_id=flow.flow_id,
                src=flow.src,
                dst=flow.dst,
                protocol=flow.protocol,
                weight=flow.weight,
                priority=flow.priority,
                start_time_ns=flow.start_ns,
                tenant=flow.tenant,
            )
            self.control.on_flow_reannounced(spec, self.node)
            self._broadcast(flow, _EVENT_START, spec)
            count += 1
        if self._tel_trace:
            self._tel_trace.instant(
                "reannounce_round",
                "broadcast",
                self.loop.now,
                tid=TRACK_BROADCAST,
                args={"node": self.node, "flows": count},
            )
        return count

    def on_epoch(self) -> None:
        """Epoch duties: wake stalled flows, refresh demand estimates."""
        stalled = list(self._stalled)
        self._stalled.clear()
        for flow_id in stalled:
            flow = self._flows.get(flow_id)
            if flow is not None and not flow.sender_done:
                self._emit(flow)
        # Demand estimation for host-limited flows (eq. 1): backlog is the
        # bytes the app produced that the flow has not yet sent.
        for flow_id, estimator in list(self._estimators.items()):
            flow = self._flows.get(flow_id)
            if flow is None or flow.sender_done:
                continue
            allocated = self.control.rate_for(flow_id, self.node)
            backlog = max(0, flow.produced_bytes(self.loop.now) - flow.bytes_sent)
            estimator.observe(allocated, backlog)
            if estimator.should_broadcast(allocated):
                demand = estimator.mark_broadcast()
                self.control.on_demand_update(flow_id, demand, self.node)
                self._broadcast(flow, _EVENT_DEMAND, (flow_id, demand))

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def deliver(self, packet: SimPacket) -> None:
        if packet.kind == KIND_BROADCAST:
            # Count wire traffic only: the copy the source hands to its own
            # control plane never crossed a link.
            if packet.src != self.node:
                if self._metrics is not None:
                    self._metrics.broadcast_bytes += packet.size_bytes
                    self._metrics.broadcast_packets += 1
                if self._ctr_bcast_wire_bytes:
                    self._ctr_bcast_wire_bytes.inc(packet.size_bytes)
                    self._ctr_bcast_wire_packets.inc()
            # Shared mode: no-op (the sender already applied the event);
            # per-node mode: this delivery is when the node's table learns.
            self.control.apply_broadcast(self.node, packet.src, packet.payload)
            return
        if packet.kind == KIND_DROP_NOTE:
            self.on_broadcast_dropped(packet.src, packet.seq)
            return
        if packet.kind != KIND_DATA:
            raise SimulationError(f"unexpected packet kind {packet.kind}")
        flow = self._flows.get(packet.flow_id)
        if flow is None:
            raise SimulationError(f"packet for unknown flow {packet.flow_id}")
        if self._planted_bug == "early-completion" and flow.completed_ns is not None:
            # Planted fault: "torn down" receiver state discards
            # post-completion segments (paired with the early completion
            # threshold below).
            return
        if self._metrics is not None:
            self._metrics.packet_latency.record(self.loop.now - packet.sent_ns)
        if (
            self._tel_trace
            and self._pkt_sample_every
            and packet.seq % self._pkt_sample_every == 0
        ):
            # Sampled packet lifecycle: injection -> delivery as a span.
            self._tel_trace.complete(
                f"flow {packet.flow_id}",
                "packet",
                packet.sent_ns,
                self.loop.now - packet.sent_ns,
                tid=TRACK_PACKETS,
                args={"seq": packet.seq, "bytes": packet.size_bytes},
            )
        flow.record_in_order(packet.seq)
        flow.bytes_received += packet.payload
        done_at = flow.size_bytes
        if self._planted_bug == "early-completion":
            # Planted fault: completion fires once the flow is within one
            # MTU of done, i.e. one segment early for multi-segment flows.
            done_at = max(1, flow.size_bytes - self._mtu)
        if flow.bytes_received >= done_at and flow.completed_ns is None:
            flow.completed_ns = self.loop.now
            if self._flight is not None:
                self._flight.record(
                    "stack",
                    "flow_complete",
                    self.loop.now,
                    flow=flow.flow_id,
                    node=self.node,
                )
        if packet.obs is not None and self._obs is not None:
            self._obs.on_delivered(flow, packet, self.loop.now)
        self._audit_flow(flow)
