"""R2C2 with the §6 end-to-end reliability transport.

Same control plane and token-bucket pacing as :class:`R2C2Stack`, but
payload is carried in numbered segments tracked by
:class:`~repro.transport.reliability.ReliableSender` /
:class:`~repro.transport.reliability.ReliableReceiver`: receivers return
40-byte cumulative+selective ACKs along the reverse path, lost segments are
retransmitted after a fixed timeout, and a flow only finishes (and releases
its allocation) once every byte is acknowledged.

The deliberate contrast with the TCP stack: ACKs never influence the
sending *rate* — that remains the congestion controller's output — so loss
recovery and congestion control stay decoupled, exactly the simplification
the paper claims R2C2 enables.
"""

from __future__ import annotations

from typing import Dict

from ...errors import SimulationError
from ...telemetry.trace import TRACK_PACKETS
from ...transport.reliability import AckInfo, ReliableReceiver, ReliableSender
from ...types import NodeId, usec
from ..flows import SimFlow
from ..packets import ACK_SIZE_BYTES, KIND_ACK, KIND_BROADCAST, KIND_DATA, SimPacket, data_packet_size
from .r2c2 import _EVENT_FINISH, R2C2Stack


class R2C2ReliableStack(R2C2Stack):
    """R2C2 data plane plus acknowledgement-based reliability."""

    def __init__(self, *args, rto_ns: int = usec(150), **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if rto_ns <= 0:
            raise SimulationError(f"rto must be positive, got {rto_ns}")
        self._rto_ns = rto_ns
        self._senders: Dict[int, ReliableSender] = {}
        self._receivers: Dict[int, ReliableReceiver] = {}
        self.retransmitted_bytes = 0

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def start_flow(self, flow: SimFlow) -> None:
        n_segments = max(1, -(-flow.size_bytes // self._mtu))
        self._senders[flow.flow_id] = ReliableSender(n_segments, self._rto_ns)
        flow.total_segments = n_segments
        super().start_flow(flow)

    def _segment_payload(self, flow: SimFlow, seq: int) -> int:
        sender = self._senders[flow.flow_id]
        if seq == sender.n_segments - 1:
            last = flow.size_bytes - (sender.n_segments - 1) * self._mtu
            return last if last > 0 else self._mtu
        return self._mtu

    def _emit(self, flow: SimFlow) -> None:
        if flow.flow_id not in self._active_local:
            return
        sender = self._senders[flow.flow_id]
        if sender.all_acked:
            return
        rate = self.control.rate_for(flow.flow_id, self.node)
        if rate <= 0:
            self._stalled.add(flow.flow_id)
            if self._obs is not None:
                self._obs.on_stall(flow.flow_id, self.loop.now)
            return
        if self._obs is not None:
            self._obs.on_resume(flow.flow_id, self.loop.now)

        seq = sender.next_segment(self.loop.now)
        if seq is None:
            # Everything outstanding is within its RTO: wake when the
            # earliest segment becomes eligible for retransmission.
            wake = sender.next_timeout_ns(self.loop.now)
            if wake is not None:
                delay = max(1, wake - self.loop.now)
                if self._obs is not None:
                    self._obs.on_rto_wait(flow.flow_id, delay)
                self.loop.schedule(delay, lambda f=flow: self._emit(f))
            return

        payload = self._segment_payload(flow, seq)
        first_transmission = seq >= flow.next_seq
        size = data_packet_size(payload)
        protocol = self.control.provider.protocol(flow.protocol)
        path = protocol.sample_path(flow.src, flow.dst, self._rng, flow.flow_id)
        packet = SimPacket(
            kind=KIND_DATA,
            flow_id=flow.flow_id,
            src=flow.src,
            dst=flow.dst,
            seq=seq,
            size_bytes=size,
            path=tuple(path),
            payload=payload,
            sent_ns=self.loop.now,
        )
        sender.on_sent(seq, self.loop.now)
        if first_transmission:
            flow.next_seq = max(flow.next_seq, seq + 1)
            flow.bytes_sent += payload
        else:
            self.retransmitted_bytes += payload
        if self._obs is not None:
            self._obs.on_inject(flow, packet, self.loop.now)
        self.network.inject(flow.src, packet)

        # Retransmissions pay the same token cost: pacing applies to bytes
        # on the wire, not to "useful" bytes.
        delay = max(1, int(size * 8 * 1e9 / rate))
        self.loop.schedule(delay, lambda f=flow: self._emit(f))

    def _finish_if_done(self, flow: SimFlow) -> None:
        sender = self._senders.get(flow.flow_id)
        if sender is None or not sender.all_acked:
            return
        if flow.flow_id in self._active_local:
            flow.sender_done_ns = self.loop.now
            self._active_local.discard(flow.flow_id)
            self._estimators.pop(flow.flow_id, None)
            self.control.on_flow_finished(flow.flow_id, self.node)
            self._broadcast(flow, _EVENT_FINISH, flow.flow_id)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def deliver(self, packet: SimPacket) -> None:
        if packet.kind == KIND_BROADCAST:
            super().deliver(packet)
            return
        if packet.kind == KIND_ACK:
            self._on_ack(packet)
            return
        if packet.kind != KIND_DATA:
            raise SimulationError(f"unexpected packet kind {packet.kind}")
        flow = self._flows.get(packet.flow_id)
        if flow is None:
            raise SimulationError(f"packet for unknown flow {packet.flow_id}")
        if self._metrics is not None:
            self._metrics.packet_latency.record(self.loop.now - packet.sent_ns)
        if (
            self._tel_trace
            and self._pkt_sample_every
            and packet.seq % self._pkt_sample_every == 0
        ):
            self._tel_trace.complete(
                f"flow {packet.flow_id}",
                "packet",
                packet.sent_ns,
                self.loop.now - packet.sent_ns,
                tid=TRACK_PACKETS,
                args={"seq": packet.seq, "bytes": packet.size_bytes},
            )
        receiver = self._receivers.get(packet.flow_id)
        if receiver is None:
            # The sender writes flow.total_segments at start_flow, but in a
            # sharded run it may live in another shard; both sides derive
            # the same count from the flow size and the configured MTU.
            n_segments = (
                flow.total_segments
                if flow.total_segments is not None
                else max(1, -(-flow.size_bytes // self._mtu))
            )
            receiver = ReliableReceiver(n_segments)
            self._receivers[packet.flow_id] = receiver
        if receiver.on_segment(packet.seq):
            flow.record_in_order(packet.seq)
            flow.bytes_received += packet.payload
            if receiver.complete and flow.completed_ns is None:
                flow.completed_ns = self.loop.now
                if self._flight is not None:
                    self._flight.record(
                        "stack",
                        "flow_complete",
                        self.loop.now,
                        flow=flow.flow_id,
                        node=self.node,
                    )
        if packet.obs is not None and self._obs is not None:
            self._obs.on_delivered(flow, packet, self.loop.now)
        self._audit_flow(flow)
        ack_info = receiver.ack_info()
        ack = SimPacket(
            kind=KIND_ACK,
            flow_id=packet.flow_id,
            src=self.node,
            dst=packet.src,
            seq=ack_info.cumulative,
            size_bytes=ACK_SIZE_BYTES,
            path=tuple(reversed(packet.path)),
            payload=ack_info,
            sent_ns=self.loop.now,
        )
        if self._metrics is not None:
            self._metrics.ack_bytes += ACK_SIZE_BYTES
        self.network.inject(self.node, ack)

    def _on_ack(self, packet: SimPacket) -> None:
        sender = self._senders.get(packet.flow_id)
        if sender is None:
            return
        ack_info = packet.payload
        if not isinstance(ack_info, AckInfo):
            raise SimulationError("ACK packet without AckInfo payload")
        sender.on_ack(ack_info)
        flow = self._flows.get(packet.flow_id)
        if flow is not None:
            self._finish_if_done(flow)
