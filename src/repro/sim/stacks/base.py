"""Host-stack interface: what every transport implementation provides."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from ...types import NodeId
from ..engine import EventLoop
from ..flows import SimFlow
from ..network import RackNetwork
from ..packets import SimPacket


class HostStack(ABC):
    """Per-node transport endpoint.

    The runner installs one stack per node; the network calls
    :meth:`deliver` for every packet that terminates at the node, and the
    runner calls :meth:`start_flow` on the source node's stack when a flow
    arrives.
    """

    def __init__(self, node: NodeId, loop: EventLoop, network: RackNetwork) -> None:
        self.node = node
        self.loop = loop
        self.network = network
        #: optional invariant auditor (repro.validation); installed by the
        #: runner when auditing is enabled, None otherwise.
        self.auditor = None

    @abstractmethod
    def start_flow(self, flow: SimFlow) -> None:
        """Begin transmitting *flow* (this node is its source)."""

    @abstractmethod
    def deliver(self, packet: SimPacket) -> None:
        """Handle a packet addressed to (or broadcast reaching) this node."""

    def _audit_flow(self, flow: SimFlow) -> None:
        """Report receiver-side flow progress to the auditor, if attached."""
        if self.auditor is not None:
            self.auditor.on_flow_progress(flow, self.loop.now)

    def on_epoch(self) -> None:
        """Hook invoked after each control-plane recomputation (optional)."""
