"""Simulation metrics: the quantities the paper's figures report.

* Flow completion times of short flows (< 100 KB): Figures 10, 12.
* Average throughput of long flows (> 1 MB): Figures 11, 13, 17b.
* Maximum queue occupancy percentiles: Figures 7b, 14.
* Reorder-buffer sizes (§5.2's reordering note).
* Control-plane byte accounting: Figure 19 and the §3.2 overhead claims.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..analysis.stats import SummaryStats, percentile
from ..errors import SimulationError
from .flows import SimFlow

#: Paper thresholds for "short" and "long" flows (§5.2).
SHORT_FLOW_BYTES = 100 * 1024
LONG_FLOW_BYTES = 1024 * 1024


class LatencyReservoir:
    """Bounded reservoir sample of per-packet end-to-end latencies.

    Simulations move millions of packets; storing every latency would
    dominate memory, so a classic reservoir sample (plus exact count, max
    and mean) keeps percentile estimates cheap and unbiased.
    """

    def __init__(self, capacity: int = 8192, seed: int = 0) -> None:
        if capacity < 1:
            raise SimulationError("reservoir capacity must be >= 1")
        self._capacity = capacity
        self._rng = random.Random(seed ^ 0x1A7E)
        self._samples: List[int] = []
        self.count = 0
        self.total_ns = 0
        self.max_ns = 0

    def record(self, latency_ns: int) -> None:
        """Fold one packet latency into the reservoir."""
        self.count += 1
        self.total_ns += latency_ns
        if latency_ns > self.max_ns:
            self.max_ns = latency_ns
        if len(self._samples) < self._capacity:
            self._samples.append(latency_ns)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self._capacity:
                self._samples[slot] = latency_ns

    @property
    def mean_ns(self) -> float:
        """Exact mean latency."""
        return self.total_ns / self.count if self.count else 0.0

    def percentile_us(self, pct: float) -> float:
        """Estimated latency percentile in microseconds (0.0 when empty).

        Empty-safe: a run that delivered no packets (e.g. a horizon cut
        short, or a telemetry export of a dry run) reports 0.0 instead of
        raising mid-export.
        """
        if not self._samples:
            return 0.0
        return percentile(self._samples, pct) / 1e3

    def to_dict(self) -> Dict[str, float]:
        """JSON-ready summary (exact count/mean/max, estimated percentiles)."""
        return {
            "count": self.count,
            "mean_ns": self.mean_ns,
            "max_ns": self.max_ns,
            "p50_us": self.percentile_us(50),
            "p99_us": self.percentile_us(99),
        }


@dataclass
class SimMetrics:
    """Aggregated results of one simulation run."""

    flows: List[SimFlow] = field(default_factory=list)
    max_queue_occupancy_bytes: List[int] = field(default_factory=list)
    broadcast_bytes: int = 0
    broadcast_packets: int = 0
    ack_bytes: int = 0
    data_bytes_on_wire: int = 0
    total_bytes_on_wire: int = 0
    drops: int = 0
    wire_losses: int = 0
    events_processed: int = 0
    packet_latency: LatencyReservoir = field(default_factory=LatencyReservoir)
    duration_ns: int = 0
    wallclock_s: float = 0.0
    recompute_overheads: List[float] = field(default_factory=list)
    #: Control-loop epoch accounting (PR 2's short-circuit optimisation):
    #: how many epochs actually re-ran the water-fill vs. were skipped
    #: because the flow table had not changed.
    epochs_recomputed: int = 0
    epochs_skipped: int = 0
    #: :class:`~repro.validation.AuditReport` when the run was audited
    #: (``SimConfig(audit=True)``), ``None`` otherwise.  Typed loosely to
    #: keep this module independent of :mod:`repro.validation`.
    audit: Optional[object] = None
    #: Causal FCT decompositions (``SimConfig(obs=True)``): flow_id ->
    #: record, see :meth:`repro.obs.ObsSession.results`.  ``None`` when
    #: tracing is off.  Pure simulated-time integers, so serial and sharded
    #: runs of one scenario produce identical maps.
    flow_obs: Optional[Dict[int, dict]] = None
    #: Flight-recorder dump (``SimConfig(flight=True)``), ``None``
    #: otherwise; see :meth:`repro.obs.FlightRecorder.dump`.
    flight_dump: Optional[dict] = None

    # ------------------------------------------------------------------
    # Flow selections
    # ------------------------------------------------------------------
    def completed_flows(self) -> List[SimFlow]:
        """Flows that finished within the simulated horizon."""
        return [f for f in self.flows if f.completed]

    def short_flows(self, threshold: int = SHORT_FLOW_BYTES) -> List[SimFlow]:
        """Completed flows smaller than *threshold* bytes."""
        return [f for f in self.completed_flows() if f.size_bytes < threshold]

    def long_flows(self, threshold: int = LONG_FLOW_BYTES) -> List[SimFlow]:
        """Completed flows larger than *threshold* bytes."""
        return [f for f in self.completed_flows() if f.size_bytes > threshold]

    # ------------------------------------------------------------------
    # Headline metrics
    # ------------------------------------------------------------------
    def short_fcts_us(self) -> List[float]:
        """Short-flow completion times in microseconds."""
        return [f.fct_ns() / 1e3 for f in self.short_flows()]

    def long_throughputs_gbps(self) -> List[float]:
        """Long-flow average throughputs in Gbit/s."""
        return [f.average_throughput_bps() / 1e9 for f in self.long_flows()]

    def fct_percentile_us(self, pct: float) -> float:
        """Short-flow FCT percentile (Figure 12 reports the 99th)."""
        values = self.short_fcts_us()
        if not values:
            raise SimulationError("no completed short flows")
        return percentile(values, pct)

    def mean_long_throughput_gbps(self) -> float:
        """Average long-flow throughput (Figure 13)."""
        values = self.long_throughputs_gbps()
        if not values:
            raise SimulationError("no completed long flows")
        return sum(values) / len(values)

    def queue_occupancy_percentile_kb(self, pct: float) -> float:
        """Percentile over per-port max occupancies, in KB (Figure 14)."""
        if not self.max_queue_occupancy_bytes:
            raise SimulationError("no queue statistics recorded")
        return percentile(self.max_queue_occupancy_bytes, pct) / 1000.0

    def reorder_buffer_percentile(self, pct: float) -> float:
        """Percentile of per-flow max reorder-buffer size, in packets."""
        sizes = [f.max_reorder_buffer for f in self.completed_flows()]
        if not sizes:
            raise SimulationError("no completed flows")
        return percentile(sizes, pct)

    def broadcast_capacity_fraction(self) -> float:
        """Share of all wire bytes spent on broadcasts (Figure 9 measured)."""
        if self.total_bytes_on_wire == 0:
            return 0.0
        return self.broadcast_bytes / self.total_bytes_on_wire

    def completion_rate(self) -> float:
        """Fraction of flows that completed within the horizon."""
        if not self.flows:
            return 1.0
        return len(self.completed_flows()) / len(self.flows)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """A flat dict of headline numbers for printing/logging."""
        out: Dict[str, float] = {
            "flows": float(len(self.flows)),
            "completed": float(len(self.completed_flows())),
            "drops": float(self.drops),
            "broadcast_bytes": float(self.broadcast_bytes),
            "events": float(self.events_processed),
            "duration_ms": self.duration_ns / 1e6,
        }
        if self.epochs_recomputed or self.epochs_skipped:
            out["epochs_recomputed"] = float(self.epochs_recomputed)
            out["epochs_skipped"] = float(self.epochs_skipped)
        shorts = self.short_fcts_us()
        if shorts:
            stats = SummaryStats.of(shorts)
            out["short_fct_p50_us"] = stats.p50
            out["short_fct_p99_us"] = stats.p99
        longs = self.long_throughputs_gbps()
        if longs:
            out["long_tput_mean_gbps"] = sum(longs) / len(longs)
        if self.max_queue_occupancy_bytes:
            out["queue_p50_kb"] = self.queue_occupancy_percentile_kb(50)
            out["queue_p99_kb"] = self.queue_occupancy_percentile_kb(99)
        return out
