"""Per-flow simulation state shared by sender and receiver sides."""

from __future__ import annotations

from typing import Optional, Set

from ..types import FlowId, NodeId
from ..workloads.generator import FlowArrival


class SimFlow:
    """Mutable state of one flow across its lifetime in the simulator."""

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "size_bytes",
        "start_ns",
        "protocol",
        "weight",
        "priority",
        "tenant",
        "bytes_sent",
        "bytes_received",
        "next_seq",
        "sender_done_ns",
        "completed_ns",
        "expected_seq",
        "reorder_buffer",
        "max_reorder_buffer",
        "received_seqs",
        "total_segments",
        "app_rate_bps",
    )

    def __init__(self, arrival: FlowArrival) -> None:
        self.flow_id: FlowId = arrival.flow_id
        self.src: NodeId = arrival.src
        self.dst: NodeId = arrival.dst
        self.size_bytes = arrival.size_bytes
        self.start_ns = arrival.start_ns
        self.protocol = arrival.protocol
        self.weight = arrival.weight
        self.priority = arrival.priority
        self.tenant = arrival.tenant
        self.bytes_sent = 0
        self.bytes_received = 0
        self.next_seq = 0
        self.sender_done_ns: Optional[int] = None
        self.completed_ns: Optional[int] = None
        # Receiver-side reordering bookkeeping (multi-path delivery).
        self.expected_seq = 0
        self.reorder_buffer: Set[int] = set()
        self.max_reorder_buffer = 0
        self.received_seqs: Optional[Set[int]] = None
        self.total_segments: Optional[int] = None
        self.app_rate_bps = arrival.app_rate_bps

    def produced_bytes(self, now_ns: int) -> int:
        """Bytes the application has made available by *now_ns*.

        Network-limited flows have everything available immediately;
        host-limited flows produce at ``app_rate_bps``.
        """
        if self.app_rate_bps is None:
            return self.size_bytes
        elapsed = max(0, now_ns - self.start_ns)
        return min(self.size_bytes, int(self.app_rate_bps * elapsed / 8e9))

    @property
    def remaining_bytes(self) -> int:
        """Bytes the sender still has to transmit."""
        return self.size_bytes - self.bytes_sent

    @property
    def sender_done(self) -> bool:
        """True once the sender transmitted every byte."""
        return self.bytes_sent >= self.size_bytes

    @property
    def completed(self) -> bool:
        """True once the receiver holds every byte."""
        return self.completed_ns is not None

    def fct_ns(self) -> int:
        """Flow completion time (receiver-side, last byte minus start)."""
        if self.completed_ns is None:
            raise ValueError(f"flow {self.flow_id} has not completed")
        return self.completed_ns - self.start_ns

    def average_throughput_bps(self) -> float:
        """size / FCT — the Figure 11/13 long-flow metric."""
        fct = self.fct_ns()
        if fct <= 0:
            return float("inf")
        return self.size_bytes * 8 * 1e9 / fct

    def record_in_order(self, seq: int) -> None:
        """Receiver-side reorder tracking for sequentially numbered packets."""
        if seq == self.expected_seq:
            self.expected_seq += 1
            while self.expected_seq in self.reorder_buffer:
                self.reorder_buffer.discard(self.expected_seq)
                self.expected_seq += 1
        elif seq > self.expected_seq:
            self.reorder_buffer.add(seq)
            if len(self.reorder_buffer) > self.max_reorder_buffer:
                self.max_reorder_buffer = len(self.reorder_buffer)
        # seq < expected_seq is a duplicate (retransmission); ignore.
