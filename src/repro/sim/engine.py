"""Discrete-event simulation engine.

A minimal, fast event loop: integer-nanosecond timestamps, a binary heap,
and FIFO ordering among simultaneous events (a monotonically increasing
sequence number breaks timestamp ties, so causality between same-time events
follows scheduling order).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from ..errors import SimulationError


class EventLoop:
    """The simulation clock and event queue."""

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._queue: List[Tuple[int, int, Callable[[], None]]] = []
        self._events_processed = 0

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events executed so far (performance accounting)."""
        return self._events_processed

    def schedule(self, delay_ns: int, action: Callable[[], None]) -> None:
        """Run *action* ``delay_ns`` nanoseconds from now."""
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule {delay_ns} ns in the past")
        self.schedule_at(self._now + delay_ns, action)

    def schedule_at(self, at_ns: int, action: Callable[[], None]) -> None:
        """Run *action* at absolute time *at_ns*."""
        if at_ns < self._now:
            raise SimulationError(
                f"cannot schedule at {at_ns} ns, current time is {self._now} ns"
            )
        heapq.heappush(self._queue, (at_ns, self._seq, action))
        self._seq += 1

    def run(self, until_ns: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Process events until the queue drains or a bound is reached.

        Args:
            until_ns: Stop once the next event is later than this time (the
                clock is left at ``until_ns``).
            max_events: Safety bound on processed events.

        Returns:
            Number of events processed during this call.
        """
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                break
            at_ns, _, action = self._queue[0]
            if until_ns is not None and at_ns > until_ns:
                self._now = until_ns
                break
            heapq.heappop(self._queue)
            self._now = at_ns
            action()
            processed += 1
        else:
            if until_ns is not None and self._now < until_ns:
                self._now = until_ns
        self._events_processed += processed
        return processed

    def pending(self) -> int:
        """Events currently queued."""
        return len(self._queue)
