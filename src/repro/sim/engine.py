"""Discrete-event simulation engine.

A minimal, fast event loop: integer-nanosecond timestamps, a binary heap,
and deterministic ordering among simultaneous events.  The heap key is
``(timestamp, priority, sequence)``: an integer *priority* (default 0)
orders same-instant events by **content** — packet-delivery events carry
their link's identity — and a monotonically increasing sequence number
breaks the remaining ties FIFO, so causality between same-time same-priority
events follows scheduling order.  Content-based tie-breaking is what makes
sharded execution (:mod:`repro.distsim`) byte-identical to a serial run:
the relative order of two same-instant deliveries at different nodes is a
property of the links involved, not of which event loop scheduled first.

An optional *observer* (see :mod:`repro.validation`) receives every
``(timestamp, priority, sequence)`` triple as it executes, which lets the
invariant auditor machine-check clock monotonicity and tie-break causality.
With no observer attached the cost is a single ``is not None`` test per
event.
"""

from __future__ import annotations

import heapq
import math
import operator
from typing import Callable, List, Optional, Tuple

from ..errors import SimulationError


def _as_time_ns(value, what: str) -> int:
    """Coerce *value* to an integer nanosecond count or raise.

    Accepts exact ints (and anything implementing ``__index__``, e.g. numpy
    integers) plus floats that carry an exact integral value; rejects NaN,
    infinities and fractional delays, which would silently corrupt heap
    ordering (NaN compares false against everything).
    """
    if type(value) is int:
        return value
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value) or not value.is_integer():
            raise SimulationError(
                f"{what} must be an integer nanosecond count, got {value!r}"
            )
        return int(value)
    try:
        return operator.index(value)
    except TypeError:
        raise SimulationError(
            f"{what} must be an integer nanosecond count, got {value!r}"
        ) from None


class _BatchTee:
    """Fan a batch-observer callback out to two observers (chainable)."""

    __slots__ = ("_first", "_second")

    def __init__(self, first, second) -> None:
        self._first = first
        self._second = second

    def on_batch(self, start_ns: int, end_ns: int, processed: int) -> None:
        self._first.on_batch(start_ns, end_ns, processed)
        self._second.on_batch(start_ns, end_ns, processed)


class EventLoop:
    """The simulation clock and event queue."""

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._queue: List[Tuple[int, int, int, Callable[[], None]]] = []
        self._events_processed = 0
        self._observer = None
        self._batch_observer = None

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events executed so far (performance accounting)."""
        return self._events_processed

    def attach_observer(self, observer) -> None:
        """Install an event observer (``observer.on_event(at_ns, prio, seq)``).

        Used by the invariant auditor; pass ``None`` to detach.
        """
        self._observer = observer

    def attach_batch_observer(self, observer) -> None:
        """Install a batch observer (telemetry span hook); ``None`` detaches.

        After every :meth:`run` / :meth:`run_batch` call that processed at
        least one event, ``observer.on_batch(start_ns, end_ns, processed)``
        receives the clock interval the batch covered and its event count.
        Unlike the per-event observer this costs one test per *batch*, so
        it never forces the slow path.

        Attaching while an observer is already installed *tees*: both
        observers see every batch (the telemetry span hook and the flight
        recorder can coexist).  ``None`` detaches all of them.
        """
        if observer is None or self._batch_observer is None:
            self._batch_observer = observer
        else:
            self._batch_observer = _BatchTee(self._batch_observer, observer)

    def schedule(
        self, delay_ns: int, action: Callable[[], None], prio: int = 0
    ) -> None:
        """Run *action* ``delay_ns`` nanoseconds from now.

        *prio* orders same-instant events (ascending) before the FIFO
        sequence number does; events with equal priority keep FIFO order.
        """
        delay_ns = _as_time_ns(delay_ns, "delay")
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule {delay_ns} ns in the past")
        self.schedule_at(self._now + delay_ns, action, prio)

    def schedule_at(
        self, at_ns: int, action: Callable[[], None], prio: int = 0
    ) -> None:
        """Run *action* at absolute time *at_ns* (see :meth:`schedule`)."""
        at_ns = _as_time_ns(at_ns, "timestamp")
        if at_ns < self._now:
            raise SimulationError(
                f"cannot schedule at {at_ns} ns, current time is {self._now} ns"
            )
        heapq.heappush(self._queue, (at_ns, prio, self._seq, action))
        self._seq += 1

    def run(self, until_ns: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Process events until the queue drains or a bound is reached.

        Args:
            until_ns: Stop once the next event is later than this time (the
                clock is left at ``until_ns``).  Must not lie in the past.
            max_events: Safety bound on processed events.

        Returns:
            Number of events processed during this call.
        """
        if until_ns is not None:
            until_ns = _as_time_ns(until_ns, "until_ns")
            if until_ns < self._now:
                raise SimulationError(
                    f"cannot run until {until_ns} ns, current time is {self._now} ns"
                )
        observer = self._observer
        batch_start = self._now
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                break
            at_ns, prio, seq, action = self._queue[0]
            if until_ns is not None and at_ns > until_ns:
                self._now = until_ns
                break
            heapq.heappop(self._queue)
            self._now = at_ns
            if observer is not None:
                observer.on_event(at_ns, prio, seq)
            action()
            processed += 1
        else:
            if until_ns is not None and self._now < until_ns:
                self._now = until_ns
        self._events_processed += processed
        if self._batch_observer is not None and processed:
            self._batch_observer.on_batch(batch_start, self._now, processed)
        return processed

    def run_batch(
        self, until_ns: Optional[int] = None, max_events: Optional[int] = None
    ) -> int:
        """Drain the queue on a fast path with hoisted per-event checks.

        Semantically identical to :meth:`run`; the observer hook and the
        ``max_events`` bound are tested once up front instead of per event
        (falling back to :meth:`run` when either is in play), and the heap
        is bound to a local inside the loop.  This is the inner loop of the
        packet simulator, where the per-event constant factor is the whole
        game.
        """
        if self._observer is not None or max_events is not None:
            return self.run(until_ns=until_ns, max_events=max_events)
        if until_ns is not None:
            until_ns = _as_time_ns(until_ns, "until_ns")
            if until_ns < self._now:
                raise SimulationError(
                    f"cannot run until {until_ns} ns, current time is {self._now} ns"
                )
        queue = self._queue
        pop = heapq.heappop
        batch_start = self._now
        processed = 0
        if until_ns is None:
            while queue:
                at_ns, _prio, _seq, action = pop(queue)
                self._now = at_ns
                action()
                processed += 1
        else:
            while queue:
                at_ns = queue[0][0]
                if at_ns > until_ns:
                    break
                _, _prio, _seq, action = pop(queue)
                self._now = at_ns
                action()
                processed += 1
            if self._now < until_ns:
                self._now = until_ns
        self._events_processed += processed
        if self._batch_observer is not None and processed:
            self._batch_observer.on_batch(batch_start, self._now, processed)
        return processed

    def schedule_batch(self, delay_ns: int, actions) -> None:
        """Run several actions at one future instant as a *single* event.

        FIFO-equivalent to scheduling each action consecutively at the same
        delay (they execute in list order), but costs one heap entry instead
        of ``len(actions)``.  Used to coalesce the same-timestamp finish
        events of a broadcast fan-out.  Note that the batch counts as one
        processed event in :attr:`events_processed`.
        """
        actions = list(actions)
        if not actions:
            return
        if len(actions) == 1:
            self.schedule(delay_ns, actions[0])
            return

        def fire() -> None:
            for action in actions:
                action()

        self.schedule(delay_ns, fire)

    def run_until(self, until_ns: int, max_events: Optional[int] = None) -> int:
        """Run strictly up to *until_ns*, leaving the clock there.

        A bound-checked convenience over :meth:`run`: *until_ns* must be an
        integer timestamp no earlier than the current clock.
        """
        if until_ns is None:
            raise SimulationError("run_until requires an explicit until_ns")
        return self.run(until_ns=until_ns, max_events=max_events)

    def next_event_time(self) -> Optional[int]:
        """Timestamp of the earliest queued event, or ``None`` when empty.

        A pure peek: neither the clock nor the queue changes.  Shard
        coordinators use this to compute the global lower bound on virtual
        time before granting the next safe execution window.
        """
        if not self._queue:
            return None
        return self._queue[0][0]

    def run_window(self, end_ns: int) -> int:
        """Process every event with timestamp ``<= end_ns``; clock ends at *end_ns*.

        The bounded-window primitive of conservative parallel simulation: a
        shard granted the window ``(now, end_ns]`` executes exactly the
        events inside it and parks its clock at the window edge even if the
        queue drains early, so all shards observe identical window
        boundaries.  *end_ns* must be an exact integer timestamp no earlier
        than the current clock (the same validation as :meth:`schedule_at`).

        Returns:
            Number of events processed during this call.
        """
        end_ns = _as_time_ns(end_ns, "end_ns")
        if end_ns < self._now:
            raise SimulationError(
                f"cannot run window to {end_ns} ns, current time is {self._now} ns"
            )
        return self.run_batch(until_ns=end_ns)

    def pending(self) -> int:
        """Events currently queued."""
        return len(self._queue)
