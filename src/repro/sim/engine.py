"""Discrete-event simulation engine.

A minimal, fast event loop: integer-nanosecond timestamps, a binary heap,
and FIFO ordering among simultaneous events (a monotonically increasing
sequence number breaks timestamp ties, so causality between same-time events
follows scheduling order).

An optional *observer* (see :mod:`repro.validation`) receives every
``(timestamp, sequence)`` pair as it executes, which lets the invariant
auditor machine-check clock monotonicity and FIFO causality.  With no
observer attached the cost is a single ``is not None`` test per event.
"""

from __future__ import annotations

import heapq
import math
import operator
from typing import Callable, List, Optional, Tuple

from ..errors import SimulationError


def _as_time_ns(value, what: str) -> int:
    """Coerce *value* to an integer nanosecond count or raise.

    Accepts exact ints (and anything implementing ``__index__``, e.g. numpy
    integers) plus floats that carry an exact integral value; rejects NaN,
    infinities and fractional delays, which would silently corrupt heap
    ordering (NaN compares false against everything).
    """
    if type(value) is int:
        return value
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value) or not value.is_integer():
            raise SimulationError(
                f"{what} must be an integer nanosecond count, got {value!r}"
            )
        return int(value)
    try:
        return operator.index(value)
    except TypeError:
        raise SimulationError(
            f"{what} must be an integer nanosecond count, got {value!r}"
        ) from None


class EventLoop:
    """The simulation clock and event queue."""

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._queue: List[Tuple[int, int, Callable[[], None]]] = []
        self._events_processed = 0
        self._observer = None
        self._batch_observer = None

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events executed so far (performance accounting)."""
        return self._events_processed

    def attach_observer(self, observer) -> None:
        """Install an event observer (``observer.on_event(at_ns, seq)``).

        Used by the invariant auditor; pass ``None`` to detach.
        """
        self._observer = observer

    def attach_batch_observer(self, observer) -> None:
        """Install a batch observer (telemetry span hook); ``None`` detaches.

        After every :meth:`run` / :meth:`run_batch` call that processed at
        least one event, ``observer.on_batch(start_ns, end_ns, processed)``
        receives the clock interval the batch covered and its event count.
        Unlike the per-event observer this costs one test per *batch*, so
        it never forces the slow path.
        """
        self._batch_observer = observer

    def schedule(self, delay_ns: int, action: Callable[[], None]) -> None:
        """Run *action* ``delay_ns`` nanoseconds from now."""
        delay_ns = _as_time_ns(delay_ns, "delay")
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule {delay_ns} ns in the past")
        self.schedule_at(self._now + delay_ns, action)

    def schedule_at(self, at_ns: int, action: Callable[[], None]) -> None:
        """Run *action* at absolute time *at_ns*."""
        at_ns = _as_time_ns(at_ns, "timestamp")
        if at_ns < self._now:
            raise SimulationError(
                f"cannot schedule at {at_ns} ns, current time is {self._now} ns"
            )
        heapq.heappush(self._queue, (at_ns, self._seq, action))
        self._seq += 1

    def run(self, until_ns: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Process events until the queue drains or a bound is reached.

        Args:
            until_ns: Stop once the next event is later than this time (the
                clock is left at ``until_ns``).  Must not lie in the past.
            max_events: Safety bound on processed events.

        Returns:
            Number of events processed during this call.
        """
        if until_ns is not None:
            until_ns = _as_time_ns(until_ns, "until_ns")
            if until_ns < self._now:
                raise SimulationError(
                    f"cannot run until {until_ns} ns, current time is {self._now} ns"
                )
        observer = self._observer
        batch_start = self._now
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                break
            at_ns, seq, action = self._queue[0]
            if until_ns is not None and at_ns > until_ns:
                self._now = until_ns
                break
            heapq.heappop(self._queue)
            self._now = at_ns
            if observer is not None:
                observer.on_event(at_ns, seq)
            action()
            processed += 1
        else:
            if until_ns is not None and self._now < until_ns:
                self._now = until_ns
        self._events_processed += processed
        if self._batch_observer is not None and processed:
            self._batch_observer.on_batch(batch_start, self._now, processed)
        return processed

    def run_batch(
        self, until_ns: Optional[int] = None, max_events: Optional[int] = None
    ) -> int:
        """Drain the queue on a fast path with hoisted per-event checks.

        Semantically identical to :meth:`run`; the observer hook and the
        ``max_events`` bound are tested once up front instead of per event
        (falling back to :meth:`run` when either is in play), and the heap
        is bound to a local inside the loop.  This is the inner loop of the
        packet simulator, where the per-event constant factor is the whole
        game.
        """
        if self._observer is not None or max_events is not None:
            return self.run(until_ns=until_ns, max_events=max_events)
        if until_ns is not None:
            until_ns = _as_time_ns(until_ns, "until_ns")
            if until_ns < self._now:
                raise SimulationError(
                    f"cannot run until {until_ns} ns, current time is {self._now} ns"
                )
        queue = self._queue
        pop = heapq.heappop
        batch_start = self._now
        processed = 0
        if until_ns is None:
            while queue:
                at_ns, _seq, action = pop(queue)
                self._now = at_ns
                action()
                processed += 1
        else:
            while queue:
                at_ns = queue[0][0]
                if at_ns > until_ns:
                    break
                _, _seq, action = pop(queue)
                self._now = at_ns
                action()
                processed += 1
            if self._now < until_ns:
                self._now = until_ns
        self._events_processed += processed
        if self._batch_observer is not None and processed:
            self._batch_observer.on_batch(batch_start, self._now, processed)
        return processed

    def schedule_batch(self, delay_ns: int, actions) -> None:
        """Run several actions at one future instant as a *single* event.

        FIFO-equivalent to scheduling each action consecutively at the same
        delay (they execute in list order), but costs one heap entry instead
        of ``len(actions)``.  Used to coalesce the same-timestamp finish
        events of a broadcast fan-out.  Note that the batch counts as one
        processed event in :attr:`events_processed`.
        """
        actions = list(actions)
        if not actions:
            return
        if len(actions) == 1:
            self.schedule(delay_ns, actions[0])
            return

        def fire() -> None:
            for action in actions:
                action()

        self.schedule(delay_ns, fire)

    def run_until(self, until_ns: int, max_events: Optional[int] = None) -> int:
        """Run strictly up to *until_ns*, leaving the clock there.

        A bound-checked convenience over :meth:`run`: *until_ns* must be an
        integer timestamp no earlier than the current clock.
        """
        return self.run(until_ns=until_ns, max_events=max_events)

    def pending(self) -> int:
        """Events currently queued."""
        return len(self._queue)
