"""Flow-level (fluid) simulation: rates instead of packets.

Used where the paper's experiments are about *rate dynamics* rather than
queueing — the recomputation-interval accuracy study (Figures 15 and 16)
compares the average rate each flow receives under a periodic recomputation
interval ρ against the ideal ρ=0 case (recompute at every flow event).

Between rate changes every flow drains linearly at its allocated rate, so
the simulation advances from event to event (arrival, departure, epoch)
analytically, with one water-fill per recomputation.  Young-flow semantics
match the packet simulator: under batching (ρ > 0) a new flow transmits at
the initial rate until the first epoch boundary that includes it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..congestion.flowstate import FlowSpec
from ..congestion.linkweights import WeightProvider
from ..congestion.waterfill import waterfill
from ..errors import SimulationError
from ..topology.base import Topology
from ..types import FlowId, usec
from ..workloads.generator import FlowArrival


@dataclass
class FluidConfig:
    """Fluid-simulation knobs.

    ``recompute_interval_ns == 0`` is the ideal case: rates recomputed at
    every flow arrival and departure, with no young-flow exemption.
    """

    headroom: float = 0.05
    recompute_interval_ns: int = usec(500)
    #: Young-flow rate policy, mirroring ControllerConfig:
    #: "local_waterfill" (sender computes the new flow's allocation at flow
    #: start, the §3.1 reading), "mean_allocated" (cheap estimate) or
    #: "line_rate" (headroom absorbs the blast).
    initial_rate_policy: str = "local_waterfill"
    initial_rate_bps: Optional[float] = None  # explicit override

    def __post_init__(self) -> None:
        if self.recompute_interval_ns < 0:
            raise SimulationError("recompute interval must be >= 0")
        if self.initial_rate_policy not in (
            "local_waterfill",
            "mean_allocated",
            "line_rate",
        ):
            raise SimulationError(
                f"unknown initial_rate_policy {self.initial_rate_policy!r}"
            )


@dataclass
class FluidFlowResult:
    """Outcome of one flow in a fluid run."""

    flow_id: FlowId
    size_bytes: int
    start_ns: int
    finish_ns: int

    @property
    def fct_ns(self) -> int:
        return self.finish_ns - self.start_ns

    @property
    def average_rate_bps(self) -> float:
        """size / FCT — the quantity Figures 15/16 compare across ρ."""
        if self.fct_ns <= 0:
            return float("inf")
        return self.size_bytes * 8 * 1e9 / self.fct_ns


class _ActiveFlow:
    __slots__ = ("spec", "remaining_bits", "rate_bps", "young")

    def __init__(self, spec: FlowSpec, size_bytes: int, rate_bps: float) -> None:
        self.spec = spec
        self.remaining_bits = size_bytes * 8.0
        self.rate_bps = rate_bps
        self.young = True


class FluidSimulator:
    """Event-to-event fluid execution of a flow trace."""

    def __init__(
        self,
        topology: Topology,
        provider: Optional[WeightProvider] = None,
        config: Optional[FluidConfig] = None,
    ) -> None:
        self._topology = topology
        self._provider = provider if provider is not None else WeightProvider(topology)
        self._config = config or FluidConfig()
        self.recomputations = 0
        self.sender_computations = 0

    @property
    def provider(self) -> WeightProvider:
        """The shared link-weight cache (reusable across runs)."""
        return self._provider

    def run(self, trace: Sequence[FlowArrival]) -> Dict[FlowId, FluidFlowResult]:
        """Simulate until every flow in *trace* completes."""
        if not trace:
            return {}
        config = self._config
        rho = config.recompute_interval_ns
        capacity = self._topology.capacity_bps
        last_mean_rate = capacity

        def initial_rate() -> float:
            if config.initial_rate_bps is not None:
                return config.initial_rate_bps
            if config.initial_rate_policy == "mean_allocated":
                return min(capacity, last_mean_rate)
            return capacity

        arrivals = sorted(trace, key=lambda a: (a.start_ns, a.flow_id))
        arrival_by_id = {a.flow_id: a for a in arrivals}
        next_arrival = 0
        active: Dict[FlowId, _ActiveFlow] = {}
        results: Dict[FlowId, FluidFlowResult] = {}
        now = float(arrivals[0].start_ns)
        next_epoch = (math.floor(now / rho) + 1) * rho if rho > 0 else math.inf

        def recompute() -> None:
            nonlocal last_mean_rate
            self.recomputations += 1
            specs = [f.spec for f in active.values()]
            allocation = waterfill(
                self._topology, specs, self._provider, headroom=config.headroom
            )
            for flow in active.values():
                flow.rate_bps = allocation.rates_bps[flow.spec.flow_id]
                flow.young = False
            if allocation.rates_bps:
                rates = allocation.rates_bps.values()
                last_mean_rate = sum(rates) / len(rates)

        while next_arrival < len(arrivals) or active:
            # Next departure under current rates.
            dep_time = math.inf
            dep_flow: Optional[FlowId] = None
            for fid, flow in active.items():
                if flow.rate_bps > 0:
                    t = now + flow.remaining_bits / flow.rate_bps * 1e9
                    if t < dep_time:
                        dep_time = t
                        dep_flow = fid
            arr_time = (
                float(arrivals[next_arrival].start_ns)
                if next_arrival < len(arrivals)
                else math.inf
            )
            epoch_time = next_epoch if (rho > 0 and active) else (
                next_epoch if rho > 0 else math.inf
            )
            t_next = min(dep_time, arr_time, epoch_time)
            if math.isinf(t_next):
                raise SimulationError(
                    "fluid simulation stalled: active flows with zero rate "
                    "and no upcoming events"
                )

            # Drain all flows to t_next.
            dt = t_next - now
            if dt > 0:
                for flow in active.values():
                    flow.remaining_bits -= flow.rate_bps * dt / 1e9
            now = t_next

            if t_next == epoch_time and rho > 0:
                next_epoch += rho
                if active:
                    recompute()
                continue

            if t_next == arr_time:
                arrival = arrivals[next_arrival]
                next_arrival += 1
                spec = FlowSpec(
                    flow_id=arrival.flow_id,
                    src=arrival.src,
                    dst=arrival.dst,
                    protocol=arrival.protocol,
                    weight=arrival.weight,
                    priority=arrival.priority,
                    start_time_ns=int(now),
                    tenant=arrival.tenant,
                )
                flow = _ActiveFlow(spec, arrival.size_bytes, initial_rate())
                active[arrival.flow_id] = flow
                if rho == 0:
                    recompute()
                elif config.initial_rate_policy == "local_waterfill":
                    # Sender-side computation for the new flow only; other
                    # flows keep their batched rates until the next epoch.
                    self.sender_computations += 1
                    allocation = waterfill(
                        self._topology,
                        [f.spec for f in active.values()],
                        self._provider,
                        headroom=config.headroom,
                    )
                    flow.rate_bps = allocation.rates_bps[arrival.flow_id]
                continue

            # Departure (numerical slack: anything within one bit counts).
            assert dep_flow is not None
            flow = active.pop(dep_flow)
            arrival_record = arrival_by_id[dep_flow]
            results[dep_flow] = FluidFlowResult(
                flow_id=dep_flow,
                size_bytes=arrival_record.size_bytes,
                start_ns=flow.spec.start_time_ns,
                finish_ns=int(now),
            )
            if rho == 0 and active:
                recompute()

        return results


def average_rate_error(
    topology: Topology,
    trace: Sequence[FlowArrival],
    rho_ns: int,
    headroom: float = 0.05,
    provider: Optional[WeightProvider] = None,
) -> List[float]:
    """Per-flow normalized |rate(ρ) − rate(0)| / rate(0) (Figures 15/16)."""
    provider = provider if provider is not None else WeightProvider(topology)
    ideal = FluidSimulator(
        topology, provider, FluidConfig(headroom=headroom, recompute_interval_ns=0)
    ).run(trace)
    actual = FluidSimulator(
        topology, provider, FluidConfig(headroom=headroom, recompute_interval_ns=rho_ns)
    ).run(trace)
    errors = []
    for flow_id, ideal_result in ideal.items():
        ideal_rate = ideal_result.average_rate_bps
        actual_rate = actual[flow_id].average_rate_bps
        if ideal_rate > 0 and math.isfinite(ideal_rate):
            errors.append(abs(actual_rate - ideal_rate) / ideal_rate)
    return errors
