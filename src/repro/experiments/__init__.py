"""Experiment campaigns: parallel, fault-tolerant paper-scale sweeps.

Every figure in the paper's evaluation (§5) is a sweep — over routing
protocols, traffic patterns, headroom values, stacks and scales.  This
subsystem turns those sweeps into first-class objects:

* :class:`Scenario` / :class:`Campaign` (:mod:`.spec`) — declarative,
  JSON-serializable sweep specs with content fingerprints;
* :data:`FIGURES` (:mod:`.figures`) — the paper's Figure 2/7/10-14/17/18
  grids re-expressed as campaigns, with aggregators that emit the
  ``benchmarks/results/*.txt`` tables;
* :func:`run_campaign` (:mod:`.runner`) — a parallel executor on
  :class:`~concurrent.futures.ProcessPoolExecutor` with deterministic
  per-task seeds (:func:`repro.core.derive_seed`), per-task timeouts,
  bounded retry-with-backoff, and graceful degradation to serial;
* :class:`ResultCache` (:mod:`.cache`) — a content-addressed, atomically
  written result store giving checkpoint/resume: a killed campaign re-runs
  only its missing tasks;
* :class:`Scale` / :data:`SCALES` (:mod:`.scales`) — the ``REPRO_SCALE``
  parameter tables shared with the benchmark harness.

Drive campaigns from the CLI with ``repro sweep`` / ``repro figures``; see
EXPERIMENTS.md ("Running sweeps") and DESIGN.md §6c.
"""

from .cache import ResultCache
from .figures import FIGURES, FigureDef, campaign_for, fig02_table, fig18_rows
from .runner import CampaignResult, ExecutorConfig, run_campaign
from .scales import SCALE_ENV_VAR, SCALES, Scale, current_scale
from .spec import CACHE_SCHEMA_VERSION, Campaign, Scenario, Task
from .tasks import InjectedWorkerFailure, execute_task

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "Campaign",
    "CampaignResult",
    "ExecutorConfig",
    "FIGURES",
    "FigureDef",
    "InjectedWorkerFailure",
    "ResultCache",
    "SCALES",
    "SCALE_ENV_VAR",
    "Scale",
    "Scenario",
    "Task",
    "campaign_for",
    "current_scale",
    "execute_task",
    "fig02_table",
    "fig18_rows",
    "run_campaign",
]
