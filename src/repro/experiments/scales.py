"""Experiment scales: the parameter tables behind ``REPRO_SCALE``.

The paper's evaluation runs on a 512-node 3D torus; reproducing every
figure at that scale takes hours, so the benchmark harness and the
campaign runner share three parameter tables — ``small`` (CI-friendly),
``medium`` and ``paper`` — selected by the ``REPRO_SCALE`` environment
variable.  Absolute numbers change with scale; the *shape* of each figure
(who wins, by what factor, where crossovers fall) is the claim being
reproduced.

Previously these tables lived in ``benchmarks/conftest.py``; they moved
here so the :mod:`repro.experiments` subsystem can expand campaign grids
without importing pytest plumbing, and so the tables are unit-testable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ExperimentError

__all__ = ["Scale", "SCALES", "SCALE_ENV_VAR", "current_scale"]

#: Environment variable selecting the active scale.
SCALE_ENV_VAR = "REPRO_SCALE"


@dataclass(frozen=True)
class Scale:
    """Per-scale experiment parameters."""

    name: str
    torus_dims: tuple
    n_flows: int
    tau_sweep_ns: tuple  # flow inter-arrival times for the load sweeps
    tau_default_ns: int
    crossval_flows: int
    fig18_loads: tuple

    @property
    def n_nodes(self) -> int:
        n = 1
        for d in self.torus_dims:
            n *= d
        return n


SCALES: Dict[str, Scale] = {
    "small": Scale(
        name="small",
        torus_dims=(4, 4, 4),
        n_flows=600,
        tau_sweep_ns=(1_000, 5_000, 25_000),
        tau_default_ns=2_000,
        crossval_flows=60,
        fig18_loads=(0.125, 0.25, 0.5, 0.75, 1.0),
    ),
    "medium": Scale(
        name="medium",
        torus_dims=(6, 6, 6),
        n_flows=1_500,
        tau_sweep_ns=(500, 1_000, 10_000, 50_000),
        tau_default_ns=1_000,
        crossval_flows=150,
        fig18_loads=(0.125, 0.25, 0.5, 0.75, 1.0),
    ),
    "paper": Scale(
        name="paper",
        torus_dims=(8, 8, 8),
        n_flows=4_000,
        tau_sweep_ns=(100, 1_000, 10_000, 100_000),
        tau_default_ns=1_000,
        crossval_flows=1_000,
        fig18_loads=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    ),
}


def current_scale(name: Optional[str] = None) -> Scale:
    """The scale named by *name*, or by ``REPRO_SCALE`` (default: small).

    Raises :class:`~repro.errors.ExperimentError` with the valid choices
    for an unknown name — callers embedding this in pytest collection
    should re-raise as a usage error (see ``benchmarks/conftest.py``).
    """
    if name is None:
        name = os.environ.get(SCALE_ENV_VAR, "small")
    if name not in SCALES:
        raise ExperimentError(
            f"unknown scale {name!r}: {SCALE_ENV_VAR} must be one of "
            f"{', '.join(sorted(SCALES))}"
        )
    return SCALES[name]
