"""The campaign executor: parallel, fault-tolerant, resumable.

:func:`run_campaign` expands a :class:`~repro.experiments.spec.Campaign`
into tasks, satisfies as many as possible from the content-addressed
result cache, and executes the rest — on a
:class:`concurrent.futures.ProcessPoolExecutor` when ``workers > 1``,
degrading gracefully to serial in-process execution when the pool cannot
be created (restricted environments) or breaks mid-flight.

Fault tolerance:

* every completed task is persisted to the cache *immediately* and
  atomically, so a killed campaign resumes with only missing tasks re-run;
* worker failures are retried with exponential backoff up to
  ``max_retries`` times;
* per-task timeouts abandon stuck workers and retry (pool mode; a serial
  run cannot preempt itself — overruns are recorded in the manifest);
* crash simulation reuses :class:`repro.validation.FaultEvent`: a
  ``kill_campaign`` event stops the run after N fresh tasks (the CLI's
  ``--max-tasks``), a ``worker_failure`` event forces injected failures
  for a task key without touching its fingerprint.

Determinism: task seeds come from :func:`repro.core.derive_seed`, results
are keyed and aggregated in expansion order (never completion order), so
a 2-worker run is byte-identical to a serial run of the same campaign.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.ioutil import atomic_write_json
from ..errors import ExperimentError
from .cache import ResultCache
from .spec import CACHE_SCHEMA_VERSION, Campaign, Task
from .tasks import InjectedWorkerFailure, execute_payload, execute_task

__all__ = ["ExecutorConfig", "CampaignResult", "run_campaign"]

#: FaultEvent kinds the executor interprets (see module docstring).
KILL_CAMPAIGN = "kill_campaign"
WORKER_FAILURE = "worker_failure"


@dataclass
class ExecutorConfig:
    """Execution policy for one campaign run."""

    workers: int = 1
    task_timeout_s: Optional[float] = None
    max_retries: int = 2
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    #: Raise instead of recording ``status="failed"`` when a task exhausts
    #: its retry budget.
    strict: bool = False
    #: Forced injected failures per task key (key -> number of attempts
    #: that fail).  Deliberately *outside* the scenario, so chaos testing
    #: never perturbs task fingerprints or cache keys.
    forced_failures: Dict[str, int] = field(default_factory=dict)
    #: multiprocessing start method ("fork", "spawn", ...); None = default.
    mp_start_method: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ExperimentError("workers must be >= 1")
        if self.max_retries < 0:
            raise ExperimentError("max_retries must be >= 0")


@dataclass
class CampaignResult:
    """Everything one campaign run produced."""

    campaign: Campaign
    #: task key -> result dict, in expansion order.
    results: Dict[str, Dict[str, Any]]
    manifest: Dict[str, Any]
    status: str  # "complete" | "interrupted" | "failed"

    @property
    def complete(self) -> bool:
        return self.status == "complete"


def _pool_entry(payload: Mapping[str, Any], attempt: int, forced_n: int):
    """Top-level (picklable) worker entry point."""
    if attempt < forced_n:
        raise InjectedWorkerFailure(
            f"injected worker failure for {payload['key']} (attempt {attempt})"
        )
    return execute_payload(payload, attempt=attempt)


def _interpret_faults(
    fault_events: Sequence[Any], config: ExecutorConfig
) -> Optional[int]:
    """Fold validation FaultEvents into executor policy.

    Returns the kill threshold (number of freshly computed tasks after
    which the campaign stops), or None.
    """
    kill_after: Optional[int] = None
    for event in fault_events:
        kind = getattr(event, "kind", None)
        if kind == KILL_CAMPAIGN:
            threshold = int(event.at_ns)
            kill_after = threshold if kill_after is None else min(kill_after, threshold)
        elif kind == WORKER_FAILURE:
            key = str(event.target)
            count = max(1, int(event.at_ns))
            config.forced_failures[key] = max(
                config.forced_failures.get(key, 0), count
            )
    return kill_after


def run_campaign(
    campaign: Campaign,
    config: Optional[ExecutorConfig] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    fault_events: Sequence[Any] = (),
    manifest_path: Optional[Union[str, Path]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignResult:
    """Run *campaign* under *config*; returns results plus a manifest.

    Args:
        cache_dir: Root of the content-addressed result cache.  ``None``
            disables caching (every task recomputed, nothing persisted).
        fault_events: :class:`repro.validation.FaultEvent` objects with
            the executor-recognized kinds (module docstring).
        manifest_path: Where to write the campaign manifest JSON
            (default: ``<cache_dir>/manifest-<campaign>.json`` when a
            cache directory is given).
        progress: Optional callable receiving one-line status strings.
    """
    config = config or ExecutorConfig()
    say = progress or (lambda _msg: None)
    kill_after = _interpret_faults(fault_events, config)

    started = time.perf_counter()
    tasks = campaign.expand()
    cache = ResultCache(cache_dir) if cache_dir is not None else None

    results: Dict[str, Dict[str, Any]] = {}
    meta: Dict[str, Dict[str, Any]] = {}
    retries_total = 0

    # ------------------------------------------------------------------
    # Phase 1: satisfy what we can from the cache.
    # ------------------------------------------------------------------
    missing: List[Task] = []
    for task in tasks:
        cached = cache.load(task) if cache is not None else None
        if cached is not None:
            results[task.key] = cached
            meta[task.key] = {
                "fingerprint": task.fingerprint(),
                "status": "cached",
                "attempts": 0,
                "wallclock_s": 0.0,
            }
        else:
            missing.append(task)
    if cache is not None and cache.hits:
        say(f"cache: {cache.hits} hit(s), {len(missing)} task(s) to run")

    # ------------------------------------------------------------------
    # Phase 2: decide what this run executes (crash simulation may cap it).
    # ------------------------------------------------------------------
    interrupted = False
    to_run = missing
    if kill_after is not None and kill_after < len(missing):
        to_run = missing[:kill_after]
        interrupted = True
        say(
            f"fault injection: killing campaign after {kill_after} of "
            f"{len(missing)} pending task(s)"
        )

    def finish(task: Task, result: Dict[str, Any], attempts: int, wall: float) -> None:
        if cache is not None:
            cache.store(task, result)
        results[task.key] = result
        meta[task.key] = {
            "fingerprint": task.fingerprint(),
            "status": "computed",
            "attempts": attempts,
            "wallclock_s": wall,
        }

    def fail(task: Task, attempts: int, error: str) -> None:
        meta[task.key] = {
            "fingerprint": task.fingerprint(),
            "status": "failed",
            "attempts": attempts,
            "error": error,
        }
        say(f"task {task.key}: FAILED after {attempts} attempt(s): {error}")

    # ------------------------------------------------------------------
    # Phase 3: execute.
    # ------------------------------------------------------------------
    mode = "serial"
    if to_run:
        if config.workers > 1:
            try:
                retries_total += _run_pool(to_run, config, finish, fail, say)
                mode = f"pool:{config.workers}"
            except _PoolUnavailable as exc:
                say(f"process pool unavailable ({exc}); degrading to serial")
                remaining = [t for t in to_run if t.key not in meta]
                retries_total += _run_serial(remaining, config, finish, fail, say)
        else:
            retries_total += _run_serial(to_run, config, finish, fail, say)

    failed_keys = [k for k, m in meta.items() if m["status"] == "failed"]
    if interrupted:
        status = "interrupted"
    elif failed_keys:
        status = "failed"
    else:
        status = "complete"

    # ------------------------------------------------------------------
    # Phase 4: manifest + rollups.
    # ------------------------------------------------------------------
    from ..telemetry import merge_snapshots

    rollup = merge_snapshots(
        r["telemetry"] for r in results.values() if isinstance(r.get("telemetry"), dict)
    )
    counts = {
        "tasks": len(tasks),
        "cache_hits": cache.hits if cache is not None else 0,
        "computed": sum(1 for m in meta.values() if m["status"] == "computed"),
        "failed": len(failed_keys),
        "pending": len(tasks) - len(meta),
        "retries": retries_total,
        "corrupt_cache_records": cache.corrupt if cache is not None else 0,
    }
    manifest: Dict[str, Any] = {
        "schema": CACHE_SCHEMA_VERSION,
        "campaign": campaign.name,
        "campaign_fingerprint": campaign.fingerprint(),
        "seed": campaign.seed,
        "status": status,
        "mode": mode,
        "counts": counts,
        "tasks": {t.key: meta.get(t.key, {"status": "pending"}) for t in tasks},
        "telemetry": rollup,
        "wallclock_s": time.perf_counter() - started,
    }
    if manifest_path is None and cache_dir is not None:
        manifest_path = Path(cache_dir) / f"manifest-{campaign.name}.json"
    if manifest_path is not None:
        atomic_write_json(manifest_path, manifest)
        say(f"manifest written to {manifest_path}")

    if failed_keys and config.strict:
        raise ExperimentError(
            f"campaign {campaign.name!r}: {len(failed_keys)} task(s) failed "
            f"after retries: {', '.join(sorted(failed_keys))}"
        )
    # Results in deterministic expansion order regardless of completion order.
    ordered = {t.key: results[t.key] for t in tasks if t.key in results}
    return CampaignResult(
        campaign=campaign, results=ordered, manifest=manifest, status=status
    )


# ----------------------------------------------------------------------
# Serial execution (also the degradation target)
# ----------------------------------------------------------------------
def _run_serial(tasks, config: ExecutorConfig, finish, fail, say) -> int:
    retries = 0
    for task in tasks:
        forced_n = config.forced_failures.get(task.key, 0)
        attempt = 0
        while True:
            task_started = time.perf_counter()
            try:
                if attempt < forced_n:
                    raise InjectedWorkerFailure(
                        f"injected worker failure for {task.key} "
                        f"(attempt {attempt})"
                    )
                result = execute_task(task, attempt=attempt)
            except Exception as exc:  # noqa: BLE001 — any worker error retries
                if attempt >= config.max_retries:
                    fail(task, attempt + 1, f"{type(exc).__name__}: {exc}")
                    break
                delay = config.backoff_s * (config.backoff_factor ** attempt)
                say(
                    f"task {task.key}: attempt {attempt} failed "
                    f"({type(exc).__name__}); retrying in {delay:.2f}s"
                )
                time.sleep(delay)
                attempt += 1
                retries += 1
                continue
            wall = time.perf_counter() - task_started
            if (
                config.task_timeout_s is not None
                and wall > config.task_timeout_s
            ):
                # A serial run cannot preempt itself; record the overrun.
                say(
                    f"task {task.key}: overran timeout "
                    f"({wall:.2f}s > {config.task_timeout_s:.2f}s)"
                )
            finish(task, result, attempt + 1, wall)
            break
    return retries


# ----------------------------------------------------------------------
# Pool execution
# ----------------------------------------------------------------------
class _PoolUnavailable(RuntimeError):
    """The process pool could not be created or broke mid-run."""


def _run_pool(tasks, config: ExecutorConfig, finish, fail, say) -> int:
    import multiprocessing

    retries = 0
    mp_context = None
    if config.mp_start_method is not None:
        mp_context = multiprocessing.get_context(config.mp_start_method)
    try:
        pool = ProcessPoolExecutor(
            max_workers=config.workers, mp_context=mp_context
        )
    except (OSError, ValueError, PermissionError) as exc:
        raise _PoolUnavailable(str(exc)) from exc

    # future -> (task, attempt, submit_time)
    pending: Dict[Any, Tuple[Task, int, float]] = {}
    abandoned: set = set()

    def submit(task: Task, attempt: int):
        forced_n = config.forced_failures.get(task.key, 0)
        future = pool.submit(_pool_entry, task.to_payload(), attempt, forced_n)
        pending[future] = (task, attempt, time.perf_counter())

    def retry_or_fail(task: Task, attempt: int, error: str) -> None:
        nonlocal retries
        if attempt >= config.max_retries:
            fail(task, attempt + 1, error)
            return
        delay = config.backoff_s * (config.backoff_factor ** attempt)
        say(f"task {task.key}: attempt {attempt} failed ({error}); "
            f"retrying in {delay:.2f}s")
        time.sleep(delay)
        retries += 1
        submit(task, attempt + 1)

    try:
        with pool:
            for task in tasks:
                submit(task, 0)
            while pending:
                wait_timeout = None
                if config.task_timeout_s is not None:
                    now = time.perf_counter()
                    deadlines = [
                        submitted + config.task_timeout_s
                        for (_t, _a, submitted) in pending.values()
                    ]
                    wait_timeout = max(0.0, min(deadlines) - now)
                done, _not_done = wait(
                    set(pending) | abandoned,
                    timeout=wait_timeout,
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    if future in abandoned:
                        abandoned.discard(future)
                        continue
                    task, attempt, submitted = pending.pop(future)
                    error = future.exception()
                    if error is None:
                        finish(
                            task,
                            future.result(),
                            attempt + 1,
                            time.perf_counter() - submitted,
                        )
                    else:
                        if isinstance(error, BrokenProcessPool_types):
                            raise _PoolUnavailable(str(error))
                        retry_or_fail(
                            task, attempt, f"{type(error).__name__}: {error}"
                        )
                if config.task_timeout_s is None:
                    continue
                # Expire tasks whose deadline passed without completing.
                now = time.perf_counter()
                for future in list(pending):
                    task, attempt, submitted = pending[future]
                    if now - submitted < config.task_timeout_s:
                        continue
                    del pending[future]
                    if not future.cancel():
                        # Still running in a worker we cannot preempt;
                        # ignore whatever it eventually returns.
                        abandoned.add(future)
                    retry_or_fail(
                        task,
                        attempt,
                        f"timeout after {config.task_timeout_s:.2f}s",
                    )
    except _PoolUnavailable:
        raise
    except BrokenProcessPool_types as exc:
        raise _PoolUnavailable(str(exc)) from exc
    return retries


try:  # concurrent.futures raises this when a worker dies hard (SIGKILL).
    from concurrent.futures.process import BrokenProcessPool as _BPP

    BrokenProcessPool_types: tuple = (_BPP,)
except ImportError:  # pragma: no cover - ancient pythons
    BrokenProcessPool_types = ()
