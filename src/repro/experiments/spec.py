"""Declarative campaign specs: scenarios, campaigns, tasks, fingerprints.

A :class:`Scenario` names one cell family of an evaluation sweep — a
topology, a workload, a stack/algorithm and its parameters, plus how many
seeded replicates to run.  A :class:`Campaign` is an ordered set of
scenarios sharing one campaign seed; :meth:`Campaign.expand` turns it into
concrete :class:`Task` objects, one per (scenario, replicate), each with a
deterministic seed derived via :func:`repro.core.derive_seed` and a
content fingerprint that keys the result cache.

Everything round-trips through JSON so specs can cross process boundaries
(the parallel executor ships task payloads to worker processes) and be
checked into manifests.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.seeds import derive_seed
from ..errors import ExperimentError

__all__ = ["CACHE_SCHEMA_VERSION", "Scenario", "Campaign", "Task"]

#: Bumped whenever task semantics change in a way that invalidates cached
#: results (it participates in every task fingerprint).  Version 2: the
#: event loop gained deterministic content-based tie-breaking for
#: same-instant packet deliveries (the invariant behind sharded execution),
#: which perturbs simulation results for the same seeds; sim-task telemetry
#: rollups also dropped the executor-dependent gauges.  Version 3: wire-loss
#: fault injection moved from one RNG shared by every port to per-port
#: streams keyed by link identity (the invariant behind sharding lossy
#: configurations), which perturbs lossy-run results for the same seeds;
#: sim tasks also gained scenario-from-spec hooks (clos topologies, link
#: latency, failure storms, loss/audit/horizon parameters) and richer
#: result fields.
CACHE_SCHEMA_VERSION = 3

#: Task kinds the executor knows how to run (see :mod:`.tasks`).
TASK_KINDS = ("probe", "routing", "sim", "selection", "crossval", "churn", "synth")

#: Scenario fields that choose *how* a result is computed, never *what* it
#: is — excluded from fingerprints so flipping them neither invalidates nor
#: forks cached results (the same precedent as :class:`.runner.
#: ExecutorConfig` living outside the scenario entirely).  ``shards`` can
#: sit here because sharded simulation is byte-identical to serial by
#: construction — and refuses configurations where it could not be.
EXECUTOR_POLICY_FIELDS = ("shards",)


def _freeze_params(params: Any) -> Tuple[Tuple[str, Any], ...]:
    """Canonicalize a params mapping into a sorted, hashable pair tuple."""
    if params is None:
        return ()
    if isinstance(params, Mapping):
        items = params.items()
    else:
        items = params  # already pairs
    frozen = []
    for key, value in sorted((str(k), v) for k, v in items):
        if isinstance(value, list):
            value = tuple(value)
        frozen.append((key, value))
    return tuple(frozen)


def _jsonable(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    if isinstance(value, list):
        return [_jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in sorted(value.items())}
    return value


def _fingerprint(payload: Any) -> str:
    """SHA-256 hex digest of the canonical JSON of *payload*."""
    text = json.dumps(_jsonable(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Scenario:
    """One sweep cell family: what to run and with how many replicates.

    ``params`` accepts any mapping and is canonicalized to a sorted tuple
    of pairs so scenarios are hashable and fingerprint-stable regardless
    of insertion order.
    """

    name: str
    kind: str = "sim"
    topology: str = "torus"
    dims: Tuple[int, ...] = (4, 4, 4)
    capacity_bps: Optional[float] = None
    params: Tuple[Tuple[str, Any], ...] = ()
    replicates: int = 1
    #: Executor policy for ``sim`` tasks: split the simulation across this
    #: many shards (:mod:`repro.distsim`).  1 means the serial engine.
    #: Outside the fingerprint — results are byte-identical either way.
    shards: int = 1

    def __post_init__(self) -> None:
        if self.kind not in TASK_KINDS:
            raise ExperimentError(
                f"scenario {self.name!r}: unknown kind {self.kind!r}; "
                f"choose from {TASK_KINDS}"
            )
        if self.replicates < 1:
            raise ExperimentError(
                f"scenario {self.name!r}: replicates must be >= 1"
            )
        if self.shards < 1:
            raise ExperimentError(
                f"scenario {self.name!r}: shards must be >= 1"
            )
        object.__setattr__(self, "dims", tuple(int(d) for d in self.dims))
        object.__setattr__(self, "params", _freeze_params(self.params))

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------
    @property
    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def param(self, key: str, default: Any = None) -> Any:
        for k, v in self.params:
            if k == key:
                return v
        return default

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "topology": self.topology,
            "dims": list(self.dims),
            "capacity_bps": self.capacity_bps,
            "params": {k: _jsonable(v) for k, v in self.params},
            "replicates": self.replicates,
            "shards": self.shards,
        }

    def content_dict(self) -> Dict[str, Any]:
        """:meth:`to_dict` minus executor-policy fields — the fingerprint
        surface.  A scenario run with 4 shards produces (provably, and
        oracle-checked) the same bytes as a serial run, so cached results
        stay valid when only the execution strategy changes."""
        data = self.to_dict()
        for policy_field in EXECUTOR_POLICY_FIELDS:
            data.pop(policy_field, None)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        try:
            return cls(
                name=data["name"],
                kind=data.get("kind", "sim"),
                topology=data.get("topology", "torus"),
                dims=tuple(data.get("dims", (4, 4, 4))),
                capacity_bps=data.get("capacity_bps"),
                params=data.get("params", {}),
                replicates=int(data.get("replicates", 1)),
                shards=int(data.get("shards", 1)),
            )
        except KeyError as exc:
            raise ExperimentError(f"scenario spec missing field {exc}") from None

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    def fingerprint(self) -> str:
        """Content hash of everything that affects this scenario's *results*
        (executor-policy fields like ``shards`` are excluded)."""
        return _fingerprint(self.content_dict())


@dataclass(frozen=True)
class Task:
    """One concrete unit of work: a scenario replicate with its own seed."""

    scenario: Scenario
    replicate: int
    seed: int
    key: str  # "scenario-name/rN" — stable, human-readable task id

    def fingerprint(self) -> str:
        """The result-cache key: scenario content + replicate + seed + the
        cache schema version (the "code-relevant config")."""
        return _fingerprint(
            {
                "schema": CACHE_SCHEMA_VERSION,
                "scenario": self.scenario.content_dict(),
                "replicate": self.replicate,
                "seed": self.seed,
            }
        )

    def to_payload(self) -> Dict[str, Any]:
        """JSON-able form shipped to worker processes."""
        return {
            "scenario": self.scenario.to_dict(),
            "replicate": self.replicate,
            "seed": self.seed,
            "key": self.key,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Task":
        return cls(
            scenario=Scenario.from_dict(payload["scenario"]),
            replicate=int(payload["replicate"]),
            seed=int(payload["seed"]),
            key=payload["key"],
        )


@dataclass(frozen=True)
class Campaign:
    """An ordered set of scenarios sharing one campaign seed."""

    name: str
    scenarios: Tuple[Scenario, ...] = ()
    seed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        names = [s.name for s in self.scenarios]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ExperimentError(
                f"campaign {self.name!r}: duplicate scenario names {dupes}"
            )

    def expand(self) -> List[Task]:
        """Concrete tasks, in deterministic (scenario order, replicate) order.

        Each task's seed is ``derive_seed(campaign seed, scenario
        fingerprint, replicate)`` — stable across processes and machines,
        distinct across scenarios and replicates.
        """
        tasks: List[Task] = []
        for scenario in self.scenarios:
            fp = scenario.fingerprint()
            for replicate in range(scenario.replicates):
                tasks.append(
                    Task(
                        scenario=scenario,
                        replicate=replicate,
                        seed=derive_seed(self.seed, fp, replicate),
                        key=f"{scenario.name}/r{replicate}",
                    )
                )
        return tasks

    def fingerprint(self) -> str:
        return _fingerprint(self.to_dict())

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "description": self.description,
            "scenarios": [s.to_dict() for s in self.scenarios],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Campaign":
        return cls(
            name=data["name"],
            scenarios=tuple(
                Scenario.from_dict(s) for s in data.get("scenarios", ())
            ),
            seed=int(data.get("seed", 0)),
            description=data.get("description", ""),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Campaign":
        return cls.from_dict(json.loads(text))
