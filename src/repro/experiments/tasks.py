"""Worker-side task execution: one function per scenario kind.

:func:`execute_payload` is the module-level entry point the parallel
executor submits to worker processes (it must be importable by name, so it
lives here rather than as a closure).  Each kind returns a plain JSON-able
dict; the campaign runner persists it in the result cache and aggregates
it into figure tables and the campaign manifest.

Kinds:

* ``probe``     — a trivial task for tests and smoke runs (echoes its seed,
  optionally sleeps or fails on early attempts).
* ``routing``   — one Figure 2 cell: saturation throughput of a routing
  protocol under a traffic pattern (or its adversarial worst case).
* ``sim``       — one packet-level simulation run (Figures 10-17 cells).
* ``selection`` — one Figure 18 cell: a protocol-selection search or
  baseline at a given load.
* ``crossval``  — the Figure 7 Maze-vs-simulator cross-validation pair.
* ``churn``     — a seeded flow arrival/departure replay against the
  control-plane service state with a scratch-vs-incremental cross-check.
* ``synth``     — one inter-rack fabric synthesis (:mod:`repro.topology.
  synth`): generate under budgets, fingerprint, and analyze per-tier
  channel load + bisection on the composed graph.

Any task kind can run *on* a synthesized fabric by setting the scenario's
``topology`` to ``"synth"`` — the fabric spec rides in ``params``
(``design``/``n_racks``/``gateway_ports``/``synth_seed``/...), so churn
and sim tasks scale past the rack without new plumbing.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Mapping, Optional

from ..errors import ExperimentError
from .spec import Task

__all__ = ["execute_payload", "execute_task", "InjectedWorkerFailure"]


class InjectedWorkerFailure(RuntimeError):
    """A deliberately injected worker failure (chaos/retry testing)."""


def _build_topology(task: Task):
    from ..topology import (
        FoldedClosTopology,
        HypercubeTopology,
        MeshTopology,
        TorusTopology,
    )

    params = task.scenario.params_dict
    kwargs = {}
    if task.scenario.capacity_bps is not None:
        kwargs["capacity_bps"] = task.scenario.capacity_bps
    if "latency_ns" in params:
        kwargs["latency_ns"] = int(params["latency_ns"])
    kind = task.scenario.topology
    if kind == "synth":
        from ..topology.synth import synthesize

        return synthesize(_synth_spec(task)).topology
    if kind == "torus":
        return TorusTopology(task.scenario.dims, **kwargs)
    if kind == "mesh":
        return MeshTopology(task.scenario.dims, **kwargs)
    if kind == "hypercube":
        return HypercubeTopology(task.scenario.dims[0], **kwargs)
    if kind == "clos":
        # dims = (n_hosts,); the switch radix rides in params.
        return FoldedClosTopology(
            n_hosts=task.scenario.dims[0],
            radix=int(params.get("radix", 8)),
            **kwargs,
        )
    raise ExperimentError(f"task {task.key}: unknown topology {kind!r}")


def _synth_spec(task: Task):
    """The :class:`~repro.topology.synth.FabricSpec` a scenario describes.

    ``dims`` are the per-rack dims; everything else rides in params.  The
    synthesis seed is ``synth_seed`` (default 0), *not* the task seed: the
    fabric is scenario content and must be identical across replicates.
    """
    from ..topology.synth import FabricSpec

    params = task.scenario.params_dict
    kwargs = {}
    if params.get("max_cost") is not None:
        kwargs["max_cost"] = float(params["max_cost"])
    return FabricSpec(
        design=params.get("design", "flat"),
        rack=params.get("rack", "torus"),
        rack_dims=task.scenario.dims,
        n_racks=int(params.get("n_racks", 8)),
        gateway_ports=int(params.get("gateway_ports", 4)),
        oversubscription=float(params.get("oversubscription", 64.0)),
        capacity_bps=task.scenario.capacity_bps,
        bridge_capacity_bps=params.get("bridge_capacity_bps"),
        bridge_latency_ns=int(params.get("bridge_latency_ns", 500)),
        seed=int(params.get("synth_seed", 0)),
        switch_radix=int(params.get("switch_radix", 64)),
        switch_cost=float(params.get("switch_cost", 300.0)),
        cable_cost=float(params.get("cable_cost", 10.0)),
        **kwargs,
    )


def _apply_failure_storm(task: Task, topology):
    """Degrade *topology* by failing ``fail_links`` seeded links.

    Returns ``(topology_view, failed_links)``; the sample is redrawn until
    the degraded fabric stays strongly connected, so every generated flow
    remains routable (partitions are a different failure class).  Failures
    are symmetric — a storm kills cables, not single transceivers — so
    reversed-path replies (TCP and reliable-transport ACKs) stay routable
    too.
    """
    params = task.scenario.params_dict
    k_links = int(params.get("fail_links", 0))
    if k_links <= 0:
        return topology, []
    from ..core.seeds import derive_seed
    from ..validation import FaultInjector

    injector = FaultInjector(
        seed=derive_seed(int(params.get("fail_seed", task.seed)), "fault-storm")
    )
    degraded, failed = injector.fail_links(
        topology, k_links, require_connected=True, symmetric=True
    )
    return degraded, failed


# ----------------------------------------------------------------------
# Kind executors
# ----------------------------------------------------------------------
def _run_probe(task: Task) -> Dict[str, Any]:
    params = task.scenario.params_dict
    sleep_s = float(params.get("sleep_s", 0.0))
    if sleep_s:
        time.sleep(sleep_s)
    return {
        "seed": task.seed,
        "replicate": task.replicate,
        "value": task.seed % 997,
    }


def _run_routing(task: Task) -> Dict[str, Any]:
    from ..analysis import saturation_throughput
    from ..routing.base import make_protocol
    from ..workloads import STANDARD_PATTERNS
    from ..workloads.worstcase import worst_case_throughput

    topology = _build_topology(task)
    protocol_name = task.scenario.param("protocol")
    pattern_name = task.scenario.param("pattern")
    if protocol_name is None or pattern_name is None:
        raise ExperimentError(
            f"task {task.key}: routing tasks need 'protocol' and 'pattern'"
        )
    protocol = make_protocol(protocol_name, topology)
    if pattern_name == "worst-case":
        throughput = worst_case_throughput(protocol)
    else:
        if pattern_name not in STANDARD_PATTERNS:
            raise ExperimentError(
                f"task {task.key}: unknown pattern {pattern_name!r}"
            )
        matrix = STANDARD_PATTERNS[pattern_name].matrix(topology)
        throughput = saturation_throughput(protocol, matrix)
    return {
        "protocol": protocol_name,
        "pattern": pattern_name,
        "throughput": float(throughput),
    }


def _make_sizes(params: Mapping[str, Any]):
    from ..workloads import FixedSize, ParetoSizes

    size_kind = params.get("sizes", "pareto")
    if size_kind == "fixed":
        return FixedSize(int(params.get("flow_bytes", 1_000_000)))
    return ParetoSizes(
        mean_bytes=int(params.get("mean_bytes", 100 * 1024)),
        shape=float(params.get("shape", 1.05)),
        cap_bytes=int(params.get("cap_bytes", 20_000_000)),
    )


def _make_trace(task: Task, topology):
    from ..workloads import permutation_load_trace, poisson_trace

    params = task.scenario.params_dict
    workload = params.get("workload", "poisson")
    trace_seed = int(params.get("trace_seed", task.seed))
    protocol = params.get("protocol", "rps")
    if workload == "poisson":
        return poisson_trace(
            topology,
            int(params.get("n_flows", 100)),
            float(params.get("tau_ns", 5_000)),
            sizes=_make_sizes(params),
            protocol=protocol,
            seed=trace_seed,
        )
    if workload == "permutation":
        return permutation_load_trace(
            topology,
            float(params.get("load", 0.25)),
            protocol=protocol,
            seed=trace_seed,
        )
    if workload == "hostpairs":
        # Random host-to-host pairs with geometric-ish start gaps.  On a
        # clos fabric only hosts terminate traffic (switches neither send
        # nor receive); on direct-connect fabrics every node is a host.
        import random

        from ..core.seeds import derive_seed
        from ..workloads.generator import FlowArrival

        rng = random.Random(derive_seed(trace_seed, "hostpairs"))
        sizes = _make_sizes(params)
        n_hosts = getattr(topology, "n_hosts", topology.n_nodes)
        if n_hosts < 2:
            raise ExperimentError(f"task {task.key}: hostpairs needs >= 2 hosts")
        gap_ns = max(1, int(params.get("tau_ns", 5_000)))
        trace = []
        start_ns = 0
        for flow_id in range(int(params.get("n_flows", 100))):
            src = rng.randrange(n_hosts)
            dst = rng.randrange(n_hosts - 1)
            if dst >= src:
                dst += 1
            trace.append(
                FlowArrival(
                    flow_id=flow_id,
                    src=src,
                    dst=dst,
                    size_bytes=sizes.sample(rng),
                    start_ns=start_ns,
                    protocol=protocol,
                )
            )
            start_ns += rng.randrange(1, 2 * gap_ns)
        return trace
    raise ExperimentError(f"task {task.key}: unknown workload {workload!r}")


def _run_sim(task: Task, flight_sink: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    from ..sim import SimConfig, run_simulation
    from ..telemetry import Telemetry, TelemetryConfig

    params = task.scenario.params_dict
    topology = _build_topology(task)
    topology, failed_links = _apply_failure_storm(task, topology)
    trace = _make_trace(task, topology)
    # The flight recorder is an out-of-band diagnostic channel: its dump
    # goes to *flight_sink*, never into the result dict, which must stay
    # byte-identical across executors (and the recorder is serial-only).
    record_flight = flight_sink is not None and task.scenario.shards <= 1
    config = SimConfig(
        stack=params.get("stack", "r2c2"),
        headroom=float(params.get("headroom", 0.05)),
        mtu_payload=int(params.get("mtu_payload", 1500)),
        control_plane=params.get("control_plane", "shared"),
        reliable=bool(params.get("reliable", False)),
        loss_rate=float(params.get("loss_rate", 0.0)),
        queue_limit_bytes=(
            int(params["queue_limit_bytes"])
            if params.get("queue_limit_bytes") is not None
            else None
        ),
        horizon_ns=(
            int(params["horizon_ns"]) if params.get("horizon_ns") is not None else None
        ),
        audit=bool(params.get("audit", False)),
        audit_strict=bool(params.get("audit_strict", False)),
        seed=int(params.get("sim_seed", task.seed)),
        flight=record_flight,
    )
    telemetry_config = TelemetryConfig(
        metrics=True, trace=False, per_link_series=False
    )
    if task.scenario.shards > 1:
        # Executor policy, not semantics: the sharded run is byte-identical
        # to the serial one (and refuses configurations where it could not
        # be — e.g. r2c2 needs control_plane='per_node' in params).
        from ..distsim import run_sharded_simulation

        sharded = run_sharded_simulation(
            topology,
            trace,
            config,
            shards=task.scenario.shards,
            executor=params.get("shard_executor", "virtual"),
            telemetry_config=telemetry_config,
            partition_strategy=params.get("partition_strategy", "auto"),
        )
        metrics = sharded.metrics
        snapshot = sharded.telemetry_snapshot or {}
    else:
        telemetry = Telemetry(telemetry_config)
        metrics = run_simulation(topology, trace, config, telemetry=telemetry)
        snapshot = telemetry.metrics.snapshot()
        if record_flight and metrics.flight_dump is not None:
            flight_sink["dump"] = metrics.flight_dump
    # The raw event count is an executor artifact (shards schedule extra
    # boundary-injection events), not a simulation result — drop it so the
    # result dict is byte-identical across executors.
    summary = metrics.summary()
    summary.pop("events", None)
    result: Dict[str, Any] = {
        "stack": config.stack,
        "summary": summary,
        "completion_rate": metrics.completion_rate(),
        "short_fcts_us": sorted(metrics.short_fcts_us()),
        "long_tputs_gbps": sorted(metrics.long_throughputs_gbps()),
        "queue_occupancy_bytes": sorted(metrics.max_queue_occupancy_bytes),
        "wire_losses": metrics.wire_losses,
        "reorder_max": max(
            (f.max_reorder_buffer for f in metrics.flows), default=0
        ),
        "telemetry": _rollup_snapshot(snapshot),
    }
    if failed_links:
        result["failed_links"] = [list(link) for link in failed_links]
    if config.audit:
        # Run-level verdict only: counters like the audited event count are
        # executor accounting, and violation *order* can differ between a
        # serial run and the shard-order concatenation, so the rollup keeps
        # the executor-independent surface (sorted unique messages).
        report = metrics.audit
        result["audit"] = {
            "ok": report is not None and report.ok,
            "violations": sorted(set(report.violations)) if report else [],
        }
    return result


def _make_objective(params: Mapping[str, Any]):
    """Resolve the scenario's utility metric (§3.4's operator-chosen
    objective): ``aggregate`` (default), ``tail`` or ``blended``."""
    from ..selection import AggregateThroughput, BlendedUtility, TailThroughput

    name = params.get("objective", "aggregate")
    if name == "aggregate":
        return AggregateThroughput()
    if name == "tail":
        return TailThroughput(percentile=float(params.get("percentile", 0.0)))
    if name == "blended":
        return BlendedUtility(alpha=float(params.get("alpha", 0.5)))
    raise ExperimentError(f"unknown selection objective {name!r}")


def _run_selection(task: Task) -> Dict[str, Any]:
    from ..congestion import FlowSpec
    from ..congestion.linkweights import WeightProvider
    from ..selection import (
        GeneticConfig,
        GeneticSelector,
        SelectionProblem,
        random_baseline,
        uniform_baseline,
    )
    from ..workloads import permutation_load_trace

    params = task.scenario.params_dict
    topology = _build_topology(task)
    load = float(params.get("load", 0.25))
    search_seed = int(params.get("search_seed", task.seed))
    trace = permutation_load_trace(
        topology, load, seed=int(params.get("trace_seed", task.seed))
    )
    flows = [FlowSpec(a.flow_id, a.src, a.dst, protocol="rps") for a in trace]
    problem = SelectionProblem(
        topology,
        flows,
        protocols=tuple(params.get("protocols", ("rps", "vlb"))),
        utility=_make_objective(params),
        provider=WeightProvider(topology),
    )
    selector = params.get("selector", "genetic")
    if selector == "genetic":
        result = GeneticSelector(
            GeneticConfig(
                max_generations=int(params.get("max_generations", 20)),
                patience=int(params.get("patience", 6)),
                seed=search_seed,
            )
        ).search(problem)
    elif selector == "uniform":
        result = uniform_baseline(problem, params.get("protocol", "rps"))
    elif selector == "random":
        result = random_baseline(problem, seed=search_seed)
    else:
        raise ExperimentError(
            f"task {task.key}: unknown selector {selector!r}"
        )
    return {
        "selector": selector,
        "objective": params.get("objective", "aggregate"),
        "load": load,
        "utility": float(result.utility),
        "evaluations": int(result.evaluations),
    }


def _run_crossval(task: Task) -> Dict[str, Any]:
    from ..analysis import ks_distance
    from ..maze import EmulationConfig, run_emulation
    from ..sim import SimConfig, run_simulation
    from ..workloads import FixedSize, poisson_trace

    params = task.scenario.params_dict
    topology = _build_topology(task)
    trace_seed = int(params.get("trace_seed", task.seed))
    trace = poisson_trace(
        topology,
        int(params.get("n_flows", 60)),
        float(params.get("tau_ns", 150_000)),
        sizes=FixedSize(int(params.get("flow_bytes", 1_000_000))),
        seed=trace_seed,
    )
    maze = run_emulation(topology, trace, EmulationConfig(seed=trace_seed))
    sim = run_simulation(
        topology, trace, SimConfig(stack="r2c2", mtu_payload=8192, seed=trace_seed)
    )
    tput_maze = sorted(f.average_throughput_bps() / 1e9 for f in maze.completed_flows())
    tput_sim = sorted(f.average_throughput_bps() / 1e9 for f in sim.completed_flows())
    q_maze = sorted(b / 1000 for b in maze.max_queue_occupancy_bytes)
    q_sim = sorted(b / 1000 for b in sim.max_queue_occupancy_bytes)
    return {
        "maze_completion_rate": maze.completion_rate(),
        "sim_completion_rate": sim.completion_rate(),
        "tput_maze_gbps": tput_maze,
        "tput_sim_gbps": tput_sim,
        "queue_maze_kb": q_maze,
        "queue_sim_kb": q_sim,
        "ks_throughput": float(ks_distance(tput_maze, tput_sim)),
        "ks_queue": float(ks_distance(q_maze, q_sim)),
    }


def _run_churn(task: Task) -> Dict[str, Any]:
    from ..service import run_churn

    params = task.scenario.params_dict
    topology = _build_topology(task)
    fallback_at = params.get("fallback_at")
    fail_seed = None
    if fallback_at is not None:
        from ..core.seeds import derive_seed

        fallback_at = int(fallback_at)
        fail_seed = derive_seed(
            int(params.get("fail_seed", task.seed)), "fault-storm"
        )
    return run_churn(
        topology,
        seed=int(params.get("op_seed", task.seed)),
        n_ops=int(params.get("n_ops", 200)),
        max_flows=int(params.get("max_flows", 24)),
        check_every=int(params.get("check_every", 1)),
        fallback_at=fallback_at,
        fail_links=int(params.get("fail_links", 1)),
        fail_seed=fail_seed,
        headroom=float(params.get("headroom", 0.0)),
    )


def _run_synth(task: Task) -> Dict[str, Any]:
    from ..analysis import tiered_channel_loads
    from ..routing.base import make_protocol
    from ..topology import bisection_bandwidth_bps
    from ..topology.synth import synthesize
    from ..workloads.patterns import COMPOSED_PATTERNS, STANDARD_PATTERNS

    params = task.scenario.params_dict
    spec = _synth_spec(task)
    fabric = synthesize(spec)
    topology = fabric.topology
    result: Dict[str, Any] = {
        "design": spec.design,
        "spec_fingerprint": spec.fingerprint(),
        "fingerprint": fabric.fingerprint,
        "report": dict(fabric.report),
        "n_bridges": len(fabric.bridges),
        "bisection_gbps": bisection_bandwidth_bps(topology) / 1e9,
    }
    protocol_name = params.get("protocol")
    if protocol_name:
        pattern_name = params.get("pattern", "rack-shift")
        pattern = COMPOSED_PATTERNS.get(pattern_name) or STANDARD_PATTERNS.get(
            pattern_name
        )
        if pattern is None:
            raise ExperimentError(
                f"task {task.key}: unknown pattern {pattern_name!r}"
            )
        protocol = make_protocol(protocol_name, topology)
        tier_load = tiered_channel_loads(protocol, pattern.matrix(topology))
        # An unloaded tier has infinite saturation; keep the JSON portable.
        if tier_load["saturation"] == float("inf"):
            tier_load["saturation"] = None
        for tier in tier_load["tiers"].values():
            if tier["saturation"] == float("inf"):
                tier["saturation"] = None
        result["protocol"] = protocol_name
        result["pattern"] = pattern_name
        result["tier_load"] = tier_load
    return result


_EXECUTORS = {
    "probe": _run_probe,
    "routing": _run_routing,
    "sim": _run_sim,
    "selection": _run_selection,
    "crossval": _run_crossval,
    "churn": _run_churn,
    "synth": _run_synth,
}


def _rollup_snapshot(snapshot: Mapping[str, Any]) -> Dict[str, Any]:
    """Shrink a metrics snapshot to the rollup-relevant sections.

    Executor-dependent gauges (event counts, last-writer table sizes) are
    dropped: task results must be byte-identical whether a cell ran
    serially or sharded, since ``Scenario.shards`` is outside the cache
    fingerprint.
    """
    from ..distsim.merge import EXECUTOR_DEPENDENT_GAUGES

    gauges = {
        name: value
        for name, value in snapshot.get("gauges", {}).items()
        if name not in EXECUTOR_DEPENDENT_GAUGES
    }
    return {
        "counters": dict(snapshot.get("counters", {})),
        "gauges": gauges,
    }


def execute_task(
    task: Task,
    attempt: int = 0,
    flight_sink: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Run *task* in-process and return its JSON-able result dict.

    ``fail_attempts`` in the scenario params injects a deterministic
    worker failure on attempts ``< fail_attempts`` — the hook the retry
    tests and the CI chaos smoke lean on.

    *flight_sink*, when given for a serial ``sim`` task, arms the flight
    recorder (:mod:`repro.obs.flight`) and receives its dump under
    ``"dump"`` — out of band, so result dicts stay executor-identical.
    """
    fail_attempts = int(task.scenario.param("fail_attempts", 0))
    if attempt < fail_attempts:
        raise InjectedWorkerFailure(
            f"injected failure for task {task.key} (attempt {attempt} "
            f"of {fail_attempts} forced failures)"
        )
    if task.scenario.kind == "sim" and flight_sink is not None:
        return _run_sim(task, flight_sink=flight_sink)
    executor = _EXECUTORS.get(task.scenario.kind)
    if executor is None:
        raise ExperimentError(f"task {task.key}: unknown kind {task.scenario.kind!r}")
    # Note: no wallclock (or any other nondeterministic value) goes into
    # the result — results must be byte-identical across runs and worker
    # counts; the runner records timing in the manifest instead.
    return executor(task)


def execute_payload(payload: Mapping[str, Any], attempt: int = 0) -> Dict[str, Any]:
    """Process-pool entry point: rebuild the task from its payload and run it."""
    return execute_task(Task.from_payload(payload), attempt=attempt)
