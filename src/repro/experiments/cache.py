"""Content-addressed result cache: atomic per-task records, resume for free.

Each completed task is written to ``<root>/<fp[:2]>/<fp>.json`` where
``fp`` is the task fingerprint (scenario content + replicate + seed +
cache schema version).  Writes go through
:func:`repro.core.atomic_write_json`, so a campaign killed mid-run leaves
only complete records behind; the next run loads those records as cache
hits and re-executes just the missing tasks.

A record is a small envelope around the task's result dict so the cache is
self-describing::

    {"fingerprint": ..., "key": ..., "scenario": {...},
     "replicate": N, "seed": S, "result": {...}}

Corrupt or unreadable records are treated as misses (and counted), never
as errors — a half-written file from a pre-atomic-write era or a foreign
file in the cache directory must not wedge a campaign.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..core.ioutil import atomic_write_json
from .spec import Task

__all__ = ["ResultCache"]


class ResultCache:
    """Filesystem-backed, content-addressed store of task results."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    def path_for(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def load(self, task: Task) -> Optional[Dict[str, Any]]:
        """The cached result for *task*, or ``None`` (counted as a miss)."""
        fingerprint = task.fingerprint()
        path = self.path_for(fingerprint)
        try:
            record = json.loads(path.read_text())
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self.corrupt += 1
            self.misses += 1
            return None
        if (
            not isinstance(record, dict)
            or record.get("fingerprint") != fingerprint
            or "result" not in record
        ):
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return record["result"]

    def store(self, task: Task, result: Dict[str, Any]) -> Path:
        """Atomically persist *result* for *task*; returns the record path."""
        fingerprint = task.fingerprint()
        path = self.path_for(fingerprint)
        atomic_write_json(
            path,
            {
                "fingerprint": fingerprint,
                "key": task.key,
                "scenario": task.scenario.to_dict(),
                "replicate": task.replicate,
                "seed": task.seed,
                "result": result,
            },
        )
        return path

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "corrupt": self.corrupt}
