"""Figure campaigns: the paper's evaluation grids as declarative specs.

Each entry in :data:`FIGURES` re-expresses one of the §5 benchmark grids
as a :class:`~repro.experiments.spec.Campaign` plus an aggregator that
turns per-task results into the text tables checked into
``benchmarks/results/``.  The specs reproduce the exact seeds the figure
benchmarks have always used, so a campaign run (serial or parallel)
produces byte-identical tables to the historical serial path.

``repro sweep <figure>`` drives the campaigns from the command line;
``benchmarks/test_fig02_routing_table.py`` and
``test_fig18_adaptive_routing.py`` run atop them inside pytest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Tuple

from ..analysis import format_series, format_table
from ..analysis.stats import percentile
from ..errors import ExperimentError
from .scales import Scale
from .spec import Campaign, Scenario

__all__ = [
    "FIGURES",
    "FIG02_PAPER",
    "FigureDef",
    "campaign_for",
    "fig02_table",
    "fig18_rows",
]

ResultMap = Mapping[str, Mapping[str, Any]]


@dataclass(frozen=True)
class FigureDef:
    """One figure: a campaign builder plus a results aggregator."""

    name: str
    title: str
    #: Result file stems this figure writes under ``benchmarks/results/``.
    outputs: Tuple[str, ...]
    build: Callable[[Scale], Campaign]
    aggregate: Callable[[ResultMap, Scale], Dict[str, str]]


# ----------------------------------------------------------------------
# Figure 2 — routing-throughput table (exact analysis, scale-independent)
# ----------------------------------------------------------------------
FIG02_PROTOCOLS = ("rps", "dor", "vlb", "wlb")
FIG02_PATTERNS = (
    "nearest-neighbor",
    "uniform",
    "bit-complement",
    "transpose",
    "tornado",
    "worst-case",
)

#: The paper's Figure 2 values (fractions of capacity).
FIG02_PAPER = {
    "nearest-neighbor": {"rps": 4.0, "dor": 4.0, "vlb": 0.5, "wlb": 2.33},
    "uniform": {"rps": 1.0, "dor": 1.0, "vlb": 0.5, "wlb": 0.76},
    "bit-complement": {"rps": 0.4, "dor": 0.5, "vlb": 0.5, "wlb": 0.42},
    "transpose": {"rps": 0.54, "dor": 0.25, "vlb": 0.5, "wlb": 0.57},
    "tornado": {"rps": 0.33, "dor": 0.33, "vlb": 0.5, "wlb": 0.53},
    "worst-case": {"rps": 0.21, "dor": 0.25, "vlb": 0.5, "wlb": 0.31},
}


def _build_fig02(scale: Scale) -> Campaign:
    scenarios = [
        Scenario(
            name=f"{protocol}/{pattern}",
            kind="routing",
            topology="torus",
            dims=(8, 8),
            params={"protocol": protocol, "pattern": pattern},
        )
        for protocol in FIG02_PROTOCOLS
        for pattern in FIG02_PATTERNS
    ]
    return Campaign(
        name="fig02",
        scenarios=scenarios,
        seed=2,
        description="Figure 2: saturation throughput, 8-ary 2-cube, "
        "four routing algorithms x six traffic patterns",
    )


def fig02_table(results: ResultMap) -> Dict[str, Dict[str, float]]:
    """Reassemble campaign results into ``table[pattern][protocol]``."""
    table: Dict[str, Dict[str, float]] = {p: {} for p in FIG02_PATTERNS}
    for protocol in FIG02_PROTOCOLS:
        for pattern in FIG02_PATTERNS:
            key = f"{protocol}/{pattern}/r0"
            if key not in results:
                raise ExperimentError(f"fig02: missing task result {key}")
            table[pattern][protocol] = results[key]["throughput"]
    return table


def _aggregate_fig02(results: ResultMap, scale: Scale) -> Dict[str, str]:
    table = fig02_table(results)
    rows = {}
    for pattern in FIG02_PATTERNS:
        measured = table[pattern]
        rows[pattern] = [
            measured["rps"], measured["dor"], measured["vlb"], measured["wlb"],
            "| paper:",
            FIG02_PAPER[pattern]["rps"], FIG02_PAPER[pattern]["dor"],
            FIG02_PAPER[pattern]["vlb"], FIG02_PAPER[pattern]["wlb"],
        ]
    text = format_table(
        "Throughput as fraction of capacity, 8-ary 2-cube (measured | paper)",
        ["rps", "dor", "vlb", "wlb", "", "rps", "dor", "vlb", "wlb"],
        rows,
    )
    return {"fig02_routing_table": text}


# ----------------------------------------------------------------------
# Figure 18 — adaptive routing-protocol selection vs baselines
# ----------------------------------------------------------------------
FIG18_SELECTORS = ("adaptive", "rps", "vlb", "random")


def _fig18_scenario(scale: Scale, load: float, selector: str) -> Scenario:
    params: Dict[str, Any] = {
        "load": load,
        "trace_seed": 18,
        "search_seed": 18,
        "protocols": ("rps", "vlb"),
    }
    if selector == "adaptive":
        params.update(selector="genetic", max_generations=20, patience=6)
    elif selector in ("rps", "vlb"):
        params.update(selector="uniform", protocol=selector)
    else:
        params.update(selector="random")
    return Scenario(
        name=f"L{load:g}/{selector}",
        kind="selection",
        topology="torus",
        dims=scale.torus_dims,
        params=params,
    )


def _build_fig18(scale: Scale) -> Campaign:
    scenarios = [
        _fig18_scenario(scale, load, selector)
        for load in scale.fig18_loads
        for selector in FIG18_SELECTORS
    ]
    return Campaign(
        name="fig18",
        scenarios=scenarios,
        seed=18,
        description="Figure 18: adaptive (GA) routing selection vs "
        "all-RPS / all-VLB / random across load",
    )


def fig18_rows(results: ResultMap, scale: Scale) -> Dict[float, Dict[str, float]]:
    """``rows[load][selector] = utility`` from campaign results."""
    rows: Dict[float, Dict[str, float]] = {}
    for load in scale.fig18_loads:
        rows[load] = {}
        for selector in FIG18_SELECTORS:
            key = f"L{load:g}/{selector}/r0"
            if key not in results:
                raise ExperimentError(f"fig18: missing task result {key}")
            rows[load][
                "adaptive" if selector == "adaptive" else selector
            ] = results[key]["utility"]
    return rows


def _aggregate_fig18(results: ResultMap, scale: Scale) -> Dict[str, str]:
    rows = fig18_rows(results, scale)
    loads = list(scale.fig18_loads)
    series = {
        name: [rows[load]["adaptive"] / rows[load][name] for load in loads]
        for name in ("rps", "vlb", "random")
    }
    text = format_series(
        "Fig 18: Adaptive (GA) aggregate throughput normalized to each baseline",
        "load",
        loads,
        {f"vs_{k}": v for k, v in series.items()},
    ) + "\n\n(>1 everywhere reproduces the paper's claim)"
    return {"fig18_adaptive_routing": text}


# ----------------------------------------------------------------------
# Figures 10-14 — stack comparison sweep over tau
# ----------------------------------------------------------------------
SWEEP_STACKS = ("r2c2", "tcp", "pfq")


def _build_fig10_14(scale: Scale) -> Campaign:
    scenarios = [
        Scenario(
            name=f"{stack}/tau{tau}",
            kind="sim",
            topology="torus",
            dims=scale.torus_dims,
            params={
                "workload": "poisson",
                "stack": stack,
                "tau_ns": tau,
                "n_flows": scale.n_flows,
                # The historical sweep seed (benchmarks/conftest.sweep_run).
                "trace_seed": 7,
                "sim_seed": 7,
            },
        )
        for tau in scale.tau_sweep_ns
        for stack in SWEEP_STACKS
    ]
    return Campaign(
        name="fig10_14",
        scenarios=scenarios,
        seed=7,
        description="Figures 10-14: R2C2 vs TCP vs PFQ across flow "
        "inter-arrival time tau",
    )


def _deciles(values: List[float]) -> List[float]:
    if not values:
        return [0.0] * 9
    return [percentile(values, p) for p in range(10, 100, 10)]


def _aggregate_fig10_14(results: ResultMap, scale: Scale) -> Dict[str, str]:
    taus = list(scale.tau_sweep_ns)

    def res(stack: str, tau: int) -> Mapping[str, Any]:
        key = f"{stack}/tau{tau}/r0"
        if key not in results:
            raise ExperimentError(f"fig10_14: missing task result {key}")
        return results[key]

    out: Dict[str, str] = {}
    tau0 = taus[0]
    out["fig10_fct_short"] = format_series(
        f"Fig 10: short-flow (<100KB) FCT CDF deciles (us), tau={tau0}ns",
        "pct",
        list(range(10, 100, 10)),
        {s: _deciles(res(s, tau0)["short_fcts_us"]) for s in SWEEP_STACKS},
    )
    out["fig11_tput_long"] = format_series(
        f"Fig 11: long-flow (>1MB) avg throughput CDF deciles (Gbps), tau={tau0}ns",
        "pct",
        list(range(10, 100, 10)),
        {s: _deciles(res(s, tau0)["long_tputs_gbps"]) for s in SWEEP_STACKS},
    )
    p99 = {
        s: [percentile(res(s, tau)["short_fcts_us"], 99) for tau in taus]
        for s in SWEEP_STACKS
    }
    out["fig12_fct_vs_load"] = format_series(
        "Fig 12: p99 short-flow FCT normalized to TCP vs tau (ns)",
        "tau_ns",
        taus,
        {
            s: [v / t for v, t in zip(p99[s], p99["tcp"])]
            for s in SWEEP_STACKS
        },
    )
    mean_tput = {
        s: [
            (sum(res(s, tau)["long_tputs_gbps"]) / len(res(s, tau)["long_tputs_gbps"]))
            if res(s, tau)["long_tputs_gbps"]
            else 0.0
            for tau in taus
        ]
        for s in SWEEP_STACKS
    }
    out["fig13_tput_vs_load"] = format_series(
        "Fig 13: mean long-flow throughput normalized to TCP vs tau (ns)",
        "tau_ns",
        taus,
        {
            s: [v / t if t else 0.0 for v, t in zip(mean_tput[s], mean_tput["tcp"])]
            for s in SWEEP_STACKS
        },
    )
    queues = {
        "p50_kb": [
            percentile(res("r2c2", tau)["queue_occupancy_bytes"], 50) / 1000.0
            for tau in taus
        ],
        "p99_kb": [
            percentile(res("r2c2", tau)["queue_occupancy_bytes"], 99) / 1000.0
            for tau in taus
        ],
    }
    out["fig14_queue_occupancy"] = format_series(
        "Fig 14: R2C2 per-port max queue occupancy (KB) vs tau (ns)",
        "tau_ns",
        taus,
        queues,
    )
    return out


# ----------------------------------------------------------------------
# Figure 17 — headroom sensitivity
# ----------------------------------------------------------------------
FIG17_HEADROOMS = (0.0, 0.05, 0.10, 0.20)


def _build_fig17(scale: Scale) -> Campaign:
    scenarios = [
        Scenario(
            name=f"headroom{headroom:g}",
            kind="sim",
            topology="torus",
            dims=scale.torus_dims,
            params={
                "workload": "poisson",
                "stack": "r2c2",
                "headroom": headroom,
                "tau_ns": scale.tau_default_ns,
                "n_flows": scale.n_flows,
                "trace_seed": 17,
                "sim_seed": 17,
            },
        )
        for headroom in FIG17_HEADROOMS
    ]
    return Campaign(
        name="fig17",
        scenarios=scenarios,
        seed=17,
        description="Figure 17: sensitivity to the bandwidth headroom",
    )


def _aggregate_fig17(results: ResultMap, scale: Scale) -> Dict[str, str]:
    fct, tput = [], []
    for headroom in FIG17_HEADROOMS:
        key = f"headroom{headroom:g}/r0"
        if key not in results:
            raise ExperimentError(f"fig17: missing task result {key}")
        result = results[key]
        fct.append(percentile(result["short_fcts_us"], 99))
        longs = result["long_tputs_gbps"]
        tput.append(sum(longs) / len(longs) if longs else 0.0)
    text = format_series(
        "Fig 17: p99 short-flow FCT (us) and mean long-flow throughput "
        "(Gbps) vs headroom",
        "headroom",
        [f"{h:.0%}" for h in FIG17_HEADROOMS],
        {"fct_p99_us": fct, "long_tput_gbps": tput},
    ) + (
        "\n\npaper: 5% headroom cuts p99 FCT by ~21.9% vs none, costs long"
        "\nflows < 3%; overall not very sensitive to the choice"
    )
    return {"fig17_headroom": text}


# ----------------------------------------------------------------------
# Figure 7 — Maze-vs-simulator cross-validation
# ----------------------------------------------------------------------
def _build_fig07(scale: Scale) -> Campaign:
    from ..types import gbps

    paper = scale.name == "paper"
    scenario = Scenario(
        name="crossval",
        kind="crossval",
        topology="torus",
        dims=(4, 4),
        capacity_bps=gbps(5),
        params={
            "n_flows": scale.crossval_flows,
            "flow_bytes": 10_000_000 if paper else 1_000_000,
            "tau_ns": 1_000_000 if paper else 150_000,
            "trace_seed": 21,
        },
    )
    return Campaign(
        name="fig07",
        scenarios=[scenario],
        seed=21,
        description="Figure 7: Maze emulation vs packet simulator "
        "cross-validation",
    )


def _aggregate_fig07(results: ResultMap, scale: Scale) -> Dict[str, str]:
    key = "crossval/r0"
    if key not in results:
        raise ExperimentError(f"fig07: missing task result {key}")
    r = results[key]
    text = format_series(
        "Fig 7a: flow throughput CDF deciles (Gbps)",
        "pct",
        list(range(10, 100, 10)),
        {
            "maze": _deciles(r["tput_maze_gbps"]),
            "simulator": _deciles(r["tput_sim_gbps"]),
        },
    )
    text += "\n\n" + format_series(
        "Fig 7b: max queue occupancy CDF deciles (KB)",
        "pct",
        list(range(10, 100, 10)),
        {
            "maze": _deciles(r["queue_maze_kb"]),
            "simulator": _deciles(r["queue_sim_kb"]),
        },
    )
    tput_maze, tput_sim = r["tput_maze_gbps"], r["tput_sim_gbps"]
    mean_maze = sum(tput_maze) / len(tput_maze) if tput_maze else 0.0
    mean_sim = sum(tput_sim) / len(tput_sim) if tput_sim else 0.0
    text += (
        f"\n\nKS(throughput) = {r['ks_throughput']:.3f}   "
        f"KS(queue) = {r['ks_queue']:.3f}"
        f"\nmean throughput: maze {mean_maze:.2f} Gbps, "
        f"simulator {mean_sim:.2f} Gbps"
    )
    return {"fig07_crossval": text}


# ----------------------------------------------------------------------
# Synth — inter-rack fabric synthesis and the multi-rack campaign
# ----------------------------------------------------------------------
#: Designs the synth campaign generates and compares at every scale.
SYNTH_DESIGNS = ("flat", "ring", "fattree")
#: Designs that get the per-tier channel-load analysis (MultiRackFabric
#: designs, analyzed with the template-lifted hierarchical protocols).
SYNTH_TIERED = (("flat", "hier_wlb"), ("ring", "hier_vlb"))


def _synth_scale_config(scale: Scale) -> Dict[str, Any]:
    """Campaign sizing per scale.  ``paper`` is the headline run: 125 racks
    x 80-node tori = exactly 10 000 nodes (the ROADMAP's 10k+ target)."""
    if scale.name == "paper":
        return {
            "n_racks": 125, "rack_dims": (4, 4, 5),
            "n_flows": 80, "churn_ops": 60,
        }
    if scale.name == "medium":
        return {
            "n_racks": 27, "rack_dims": (4, 4, 4),
            "n_flows": 60, "churn_ops": 50,
        }
    return {
        "n_racks": 8, "rack_dims": (3, 3, 3),
        "n_flows": 40, "churn_ops": 40,
    }


def _build_synth(scale: Scale) -> Campaign:
    cfg = _synth_scale_config(scale)
    fabric_params: Dict[str, Any] = {
        "n_racks": cfg["n_racks"],
        "gateway_ports": 4,
        "oversubscription": 320.0,
        "synth_seed": 10,
    }
    tiered = dict(SYNTH_TIERED)
    scenarios = [
        Scenario(
            name=f"synth-{design}",
            kind="synth",
            topology="synth",
            dims=cfg["rack_dims"],
            params={
                "design": design,
                **fabric_params,
                **(
                    {"protocol": tiered[design], "pattern": "rack-shift"}
                    if design in tiered
                    else {}
                ),
            },
        )
        for design in SYNTH_DESIGNS
    ]
    # The payoff runs, both on the flat fabric: a sharded packet simulation
    # under the rack cut, and the incremental-vs-scratch water-fill churn
    # oracle (<=1e-6 after every op, mid-sequence failure storm included).
    scenarios.append(
        Scenario(
            name="sim-flat",
            kind="sim",
            topology="synth",
            dims=cfg["rack_dims"],
            shards=4,
            params={
                "design": "flat",
                **fabric_params,
                "workload": "poisson",
                "stack": "tcp",
                "n_flows": cfg["n_flows"],
                "tau_ns": 20_000,
                "trace_seed": 10,
                "sim_seed": 10,
            },
        )
    )
    scenarios.append(
        Scenario(
            name="churn-flat",
            kind="churn",
            topology="synth",
            dims=cfg["rack_dims"],
            params={
                "design": "flat",
                **fabric_params,
                "n_ops": cfg["churn_ops"],
                "max_flows": 12,
                "check_every": 1,
                "fallback_at": cfg["churn_ops"] // 2,
                "fail_links": 1,
            },
        )
    )
    return Campaign(
        name="synth",
        scenarios=scenarios,
        seed=10,
        description="Synthesized inter-rack fabrics: design comparison, "
        "per-tier channel load, and the multi-rack sim + churn campaign",
    )


def _aggregate_synth(results: ResultMap, scale: Scale) -> Dict[str, str]:
    cfg = _synth_scale_config(scale)

    def res(name: str) -> Mapping[str, Any]:
        key = f"{name}/r0"
        if key not in results:
            raise ExperimentError(f"synth: missing task result {key}")
        return results[key]

    fabric_rows = {}
    for design in SYNTH_DESIGNS:
        r = res(f"synth-{design}")
        rep = r["report"]
        fabric_rows[design] = [
            rep["n_nodes"], rep["n_racks"], rep["switches"], rep["cables"],
            f"{rep['cost']:.0f}",
            f"{rep['oversubscription']:.2f}",
            f"{r['bisection_gbps']:.1f}",
            r["fingerprint"][:12],
        ]
    out = {
        "synth_fabrics": format_table(
            f"Synthesized fabrics, {cfg['n_racks']} racks x "
            f"{'x'.join(map(str, cfg['rack_dims']))} torus "
            "(cost model: switch 300 / cable 10)",
            ["nodes", "racks", "switches", "cables", "cost",
             "oversub", "bisect_gbps", "fingerprint"],
            fabric_rows,
        )
    }

    tier_rows = {}
    for design, protocol in SYNTH_TIERED:
        tl = res(f"synth-{design}")["tier_load"]
        for tier_name in sorted(tl["tiers"]):
            tier = tl["tiers"][tier_name]
            saturation = tier["saturation"]
            tier_rows[f"{design}[{protocol}]/{tier_name}"] = [
                tier["links"],
                f"{tier['capacity_bps'] / 1e9:g}",
                f"{tier['max_load']:.3f}",
                f"{tier['mean_load']:.3f}",
                "inf" if saturation is None else f"{saturation:.4f}",
                "<--" if tl["bottleneck"] == tier_name else "",
            ]
    out["synth_tier_load"] = format_table(
        "Per-tier channel load under rack-shift traffic "
        "(saturation = capacity-aware Fig. 2 throughput; <-- marks the "
        "fabric bottleneck)",
        ["links", "cap_gbps", "max_load", "mean_load", "saturation", ""],
        tier_rows,
    )

    sim = res("sim-flat")
    churn = res("churn-flat")["churn"]
    oracle_ok = churn["max_rel_error"] <= churn["tolerance"]
    n_nodes = res("synth-flat")["report"]["n_nodes"]
    out["synth_campaign"] = "\n".join(
        [
            f"Multi-rack campaign on the flat fabric "
            f"({cfg['n_racks']} racks, {n_nodes} nodes):",
            f"  sim (4-shard rack cut): completion_rate="
            f"{sim['completion_rate']:.3f}, "
            f"flows={sim['summary']['flows']}",
            f"  churn water-fill oracle: ops={churn['ops']}, "
            f"max_rel_error={churn['max_rel_error']:.2e} "
            f"(tolerance {churn['tolerance']:.0e}) "
            f"{'PASS' if oracle_ok else 'FAIL'}",
            f"  incremental_ops={churn['incremental_ops']}, "
            f"fallback_recomputes={churn['fallback_recomputes']}",
        ]
    )
    if not oracle_ok:
        raise ExperimentError(
            "synth: churn water-fill oracle exceeded tolerance "
            f"({churn['max_rel_error']:.3e} > {churn['tolerance']:.0e})"
        )
    return out


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
FIGURES: Dict[str, FigureDef] = {
    fig.name: fig
    for fig in (
        FigureDef(
            name="fig02",
            title="Figure 2: routing-throughput table",
            outputs=("fig02_routing_table",),
            build=_build_fig02,
            aggregate=_aggregate_fig02,
        ),
        FigureDef(
            name="fig07",
            title="Figure 7: Maze vs simulator cross-validation",
            outputs=("fig07_crossval",),
            build=_build_fig07,
            aggregate=_aggregate_fig07,
        ),
        FigureDef(
            name="fig10_14",
            title="Figures 10-14: stack comparison across tau",
            outputs=(
                "fig10_fct_short",
                "fig11_tput_long",
                "fig12_fct_vs_load",
                "fig13_tput_vs_load",
                "fig14_queue_occupancy",
            ),
            build=_build_fig10_14,
            aggregate=_aggregate_fig10_14,
        ),
        FigureDef(
            name="fig17",
            title="Figure 17: headroom sensitivity",
            outputs=("fig17_headroom",),
            build=_build_fig17,
            aggregate=_aggregate_fig17,
        ),
        FigureDef(
            name="fig18",
            title="Figure 18: adaptive routing selection",
            outputs=("fig18_adaptive_routing",),
            build=_build_fig18,
            aggregate=_aggregate_fig18,
        ),
        FigureDef(
            name="synth",
            title="Synthesized inter-rack fabrics and the multi-rack campaign",
            outputs=("synth_fabrics", "synth_tier_load", "synth_campaign"),
            build=_build_synth,
            aggregate=_aggregate_synth,
        ),
    )
}


def campaign_for(name: str, scale: Scale) -> Campaign:
    """The campaign for figure *name* at *scale*."""
    if name not in FIGURES:
        raise ExperimentError(
            f"unknown figure {name!r}; choose from {', '.join(sorted(FIGURES))}"
        )
    return FIGURES[name].build(scale)
