"""The assembled R2C2 stack: per-node control plane and the rack facade.

Also home to two small cross-cutting utilities every subsystem shares:
durable file output (:mod:`.ioutil`) and deterministic seed derivation
(:mod:`.seeds`).
"""

from .config import R2C2Config
from .ioutil import atomic_write_bytes, atomic_write_json, atomic_write_text
from .node import R2C2Node
from .rack import Rack
from .seeds import SEED_MASK, derive_seed

__all__ = [
    "R2C2Config",
    "R2C2Node",
    "Rack",
    "SEED_MASK",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "derive_seed",
]
