"""The assembled R2C2 stack: per-node control plane and the rack facade."""

from .config import R2C2Config
from .node import R2C2Node
from .rack import Rack

__all__ = ["R2C2Config", "R2C2Node", "Rack"]
