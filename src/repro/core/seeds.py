"""Deterministic seed derivation shared by workloads, simulators and sweeps.

A parameter sweep runs many tasks from one *campaign seed*; each task needs
its own RNG stream that is (a) reproducible bit-for-bit on any machine and
in any process — which rules out :func:`hash`, randomized per process —
and (b) distinct from every other task's stream.  :func:`derive_seed`
provides both by hashing the root seed together with a structured task key
through SHA-256 and folding the digest into a 64-bit integer seed.

The same helper backs per-run seeding in :mod:`repro.workloads.generator`,
:class:`repro.sim.runner.SimConfig` and
:class:`repro.maze.runner.EmulationConfig` (their ``seed_parts`` knobs), so
library code and the campaign runner derive identical streams for
identical keys.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping, Sequence

__all__ = ["derive_seed", "SEED_MASK"]

#: Derived seeds are folded into this range (64 bits).
SEED_MASK = (1 << 64) - 1


def _canonical(part: Any) -> Any:
    """Reduce *part* to a JSON-stable structure (no set/dict order hazards)."""
    if part is None or isinstance(part, (bool, int, str)):
        return part
    if isinstance(part, float):
        # repr() round-trips floats exactly and is stable across platforms.
        return f"float:{part!r}"
    if isinstance(part, bytes):
        return f"bytes:{part.hex()}"
    if isinstance(part, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(part.items())}
    if isinstance(part, (list, tuple)):
        return [_canonical(v) for v in part]
    if isinstance(part, (set, frozenset)):
        return sorted(f"{v!r}" for v in part)
    return f"{type(part).__name__}:{part!r}"


def derive_seed(root_seed: int, *key_parts: Any) -> int:
    """A deterministic 64-bit seed for the substream named by *key_parts*.

    With no key parts the root seed is returned unchanged, so existing
    call sites that seed directly (``random.Random(seed)``) keep their
    exact historical streams.  With key parts, the canonical JSON of
    ``[root_seed, *key_parts]`` is hashed with SHA-256; the result is
    stable across processes, platforms and Python versions (unlike
    :func:`hash`, which is salted per process) and changes completely for
    any change in the root seed, any part, or the part order.

    >>> derive_seed(7) == 7
    True
    >>> derive_seed(7, "fig02", "rps") == derive_seed(7, "fig02", "rps")
    True
    >>> derive_seed(7, "fig02", "rps") != derive_seed(7, "rps", "fig02")
    True
    """
    if not key_parts:
        return int(root_seed)
    payload = json.dumps(
        _canonical([int(root_seed), *key_parts]),
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") & SEED_MASK
