"""One R2C2 rack node: the complete control plane of §3.

An :class:`R2C2Node` owns the node's flow table (fed by decoding real
16-byte broadcast packets), its rate controller, its broadcast-tree selector
and reliability state.  Methods that *announce* something return the encoded
packets to put on the wire; the surrounding environment (the
:class:`~repro.core.rack.Rack` facade, the simulator, the Maze platform)
decides how those bytes travel.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..broadcast.fib import BroadcastFib
from ..broadcast.reliability import BroadcastSenderReliability, FailureRecovery
from ..broadcast.tree import TreeSelector
from ..congestion.controller import ControllerConfig, RateController
from ..congestion.flowstate import FlowSpec
from ..congestion.linkweights import WeightProvider
from ..errors import ReproError
from ..routing.base import protocol_class
from ..selection.genetic import GeneticConfig, GeneticSelector
from ..selection.objective import UtilityMetric
from ..selection.search import SelectionProblem
from ..types import FlowId, NodeId
from ..wire.packets import (
    EVENT_DEMAND_UPDATE,
    EVENT_FLOW_FINISH,
    EVENT_FLOW_START,
    EVENT_REANNOUNCE,
    BroadcastPacket,
    RouteUpdatePacket,
)
from .config import R2C2Config


class R2C2Node:
    """The per-node brain: flow table, rate computation, route selection."""

    def __init__(
        self,
        topology,
        node: NodeId,
        fib: BroadcastFib,
        provider: Optional[WeightProvider] = None,
        config: Optional[R2C2Config] = None,
    ) -> None:
        self.node = node
        self.config = config or R2C2Config()
        self._topology = topology
        self._fib = fib
        self._provider = provider if provider is not None else WeightProvider(topology)
        self.controller = RateController(
            topology,
            node,
            provider=self._provider,
            config=self.config.controller_config(),
        )
        self.tree_selector = TreeSelector(fib.trees_for(node))
        self.reliability = BroadcastSenderReliability()
        self.failure_recovery = FailureRecovery()
        self.broadcasts_sent = 0
        self.broadcasts_received = 0

    # ------------------------------------------------------------------
    # Local flow lifecycle (this node is the sender)
    # ------------------------------------------------------------------
    def start_flow(
        self,
        flow_id: FlowId,
        dst: NodeId,
        protocol: Optional[str] = None,
        weight: float = 1.0,
        priority: int = 0,
        now_ns: int = 0,
        tenant: Optional[str] = None,
    ) -> bytes:
        """Begin a flow; returns the encoded start broadcast.

        The local table learns the flow immediately (the sender always knows
        its own flows, §3.3.2); remote nodes learn when the returned packet
        reaches them.
        """
        protocol = protocol or self.config.default_protocol
        spec = FlowSpec(
            flow_id=flow_id,
            src=self.node,
            dst=dst,
            protocol=protocol,
            weight=weight,
            priority=priority,
            start_time_ns=now_ns,
            tenant=tenant,
        )
        self.controller.on_flow_started(spec, now_ns)
        return self._encode_event(spec, EVENT_FLOW_START)

    def finish_flow(self, flow_id: FlowId, now_ns: int = 0) -> bytes:
        """End a flow; returns the encoded finish broadcast."""
        spec = self.controller.table.get(flow_id)
        if spec is None or spec.src != self.node:
            raise ReproError(f"flow {flow_id} is not a local active flow")
        self.controller.on_flow_finished(flow_id, now_ns)
        return self._encode_event(spec, EVENT_FLOW_FINISH)

    def update_demand(self, flow_id: FlowId, demand_bps: float) -> bytes:
        """Announce a new demand estimate for a local host-limited flow."""
        spec = self.controller.table.get(flow_id)
        if spec is None or spec.src != self.node:
            raise ReproError(f"flow {flow_id} is not a local active flow")
        self.controller.on_demand_update(flow_id, demand_bps)
        spec = self.controller.table.get(flow_id)
        return self._encode_event(spec, EVENT_DEMAND_UPDATE)

    def reannounce_flows(self) -> List[bytes]:
        """After a failure: re-broadcast all ongoing local flows (§3.2)."""
        local = self.controller.table.flows_from(self.node)
        flows = self.failure_recovery.flows_to_reannounce(local)
        return [self._encode_event(spec, EVENT_REANNOUNCE) for spec in flows]

    def _encode_event(self, spec: FlowSpec, event: int) -> bytes:
        tree = self.tree_selector.choose()
        packet = BroadcastPacket(
            event=event,
            src=spec.src,
            dst=spec.dst,
            flow_id=spec.flow_id,
            weight=min(max(spec.weight, 1 / 16), 255 / 16),
            priority=min(spec.priority, 255),
            demand_bps=spec.demand_bps,
            tree_id=tree.tree_id,
            protocol_id=protocol_class(spec.protocol).protocol_id,
        )
        data = packet.encode()
        self.reliability.register(data, tree.tree_id)
        self.broadcasts_sent += 1
        return data

    # ------------------------------------------------------------------
    # Remote events (broadcast packets reaching this node)
    # ------------------------------------------------------------------
    def handle_broadcast(self, data: bytes, now_ns: int = 0) -> None:
        """Decode and apply a received broadcast packet."""
        packet = BroadcastPacket.decode(data)
        self.broadcasts_received += 1
        protocol = protocol_class(packet.protocol_id).name
        if packet.event in (EVENT_FLOW_START, EVENT_REANNOUNCE):
            if packet.src == self.node:
                return  # our own announcement echoed back
            spec = FlowSpec(
                flow_id=packet.flow_id,
                src=packet.src,
                dst=packet.dst,
                protocol=protocol,
                weight=packet.weight,
                priority=packet.priority,
                demand_bps=packet.demand_bps,
                start_time_ns=now_ns,
            )
            self.controller.on_flow_started(spec, now_ns)
        elif packet.event == EVENT_FLOW_FINISH:
            if packet.src != self.node:
                self.controller.on_flow_finished(packet.flow_id, now_ns)
        elif packet.event == EVENT_DEMAND_UPDATE:
            if packet.src != self.node:
                self.controller.on_demand_update(packet.flow_id, packet.demand_bps)
        else:
            raise ReproError(f"unknown broadcast event {packet.event}")

    def handle_route_update(self, data: bytes) -> None:
        """Apply a routing re-assignment packet (§3.4)."""
        packet = RouteUpdatePacket.decode(data)
        for flow_id, protocol_id in packet.assignments:
            protocol = protocol_class(protocol_id).name
            self.controller.on_protocol_update(flow_id, protocol)

    # ------------------------------------------------------------------
    # Rates
    # ------------------------------------------------------------------
    def maybe_recompute(self, now_ns: int):
        """Periodic recomputation hook (returns the allocation when run)."""
        return self.controller.maybe_recompute(now_ns)

    def rates(self) -> Dict[FlowId, float]:
        """Current enforced rates for this node's own flows."""
        return self.controller.local_rates()

    # ------------------------------------------------------------------
    # Routing-protocol selection (§3.4)
    # ------------------------------------------------------------------
    def select_routes(
        self,
        utility: Optional[UtilityMetric] = None,
        ga_config: Optional[GeneticConfig] = None,
        min_improvement: float = 0.01,
    ) -> Tuple[List[bytes], float]:
        """Run the selection heuristic over the rack's current flows.

        Returns ``(route_update_packets, relative_improvement)``.  Packets
        are empty when the best found assignment does not beat the current
        one by at least *min_improvement* ("if a significant improvement is
        possible, their routing protocols are changed").  The local table is
        updated; remote tables converge when the packets are delivered.
        """
        flows = self.controller.table.snapshot()
        if not flows:
            return [], 0.0
        problem = SelectionProblem(
            self._topology,
            flows,
            protocols=self.config.selection_protocols,
            utility=utility,
            provider=self._provider,
            headroom=self.config.headroom,
        )
        current = problem.current_assignment()
        current_utility = problem.fitness(current)
        result = GeneticSelector(ga_config).search(problem)
        if current_utility <= 0:
            improvement = math.inf if result.utility > 0 else 0.0
        else:
            improvement = (result.utility - current_utility) / current_utility
        if improvement < min_improvement:
            return [], improvement

        assignments = []
        for spec, idx in zip(flows, result.assignment):
            protocol = problem.protocols[idx]
            if protocol != spec.protocol:
                assignments.append(
                    (spec.flow_id, protocol_class(protocol).protocol_id)
                )
                self.controller.on_protocol_update(spec.flow_id, protocol)
        packets = []
        for start in range(0, len(assignments), RouteUpdatePacket.MAX_ENTRIES):
            chunk = tuple(assignments[start : start + RouteUpdatePacket.MAX_ENTRIES])
            packets.append(RouteUpdatePacket(assignments=chunk).encode())
        return packets, improvement
