"""Top-level R2C2 configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

from ..congestion.controller import ControllerConfig
from ..errors import ReproError
from ..types import usec


@dataclass
class R2C2Config:
    """Everything a rack deployment of R2C2 needs to agree on.

    All nodes must share this configuration (like they share the topology):
    broadcast trees, headroom and epochs are rack-wide invariants.
    """

    #: Link-capacity fraction withheld from allocation (paper: 5 %).
    headroom: float = 0.05
    #: Rate-recomputation interval ρ (paper sweet spot: 500 µs - 1 ms).
    recompute_interval_ns: int = usec(500)
    #: Broadcast trees enumerated per source node.
    n_broadcast_trees: int = 4
    #: Seed for deterministic tree construction (rack-wide).
    broadcast_seed: int = 0
    #: Protocol a new flow starts with (§3.4: "new flows start with minimal
    #: routing").
    default_protocol: str = "rps"
    #: Candidate protocols the routing-selection process may assign.
    selection_protocols: Tuple[str, ...] = ("rps", "vlb")
    #: Young-flow rate policy (see ControllerConfig).
    initial_rate_policy: str = "mean_allocated"

    def __post_init__(self) -> None:
        if self.n_broadcast_trees < 1:
            raise ReproError("n_broadcast_trees must be >= 1")
        if not self.selection_protocols:
            raise ReproError("selection_protocols must not be empty")

    def controller_config(self) -> ControllerConfig:
        """The per-node controller configuration implied by this config."""
        return ControllerConfig(
            headroom=self.headroom,
            recompute_interval_ns=self.recompute_interval_ns,
            initial_rate_policy=self.initial_rate_policy,
        )
