"""Durable file output: write → fsync → rename.

Campaign workers, the benchmark harness and the perf-history scripts all
persist JSON/text artifacts that other processes read back — sometimes
while writers are still running, sometimes after a run was killed half-way
through.  A plain ``open(path, "w").write(...)`` can leave a truncated file
in both situations; every writer in this repository therefore goes through
:func:`atomic_write_text` / :func:`atomic_write_json`, which stage the
content in a temporary sibling, flush it to disk, and atomically
``os.replace`` it over the destination.  Readers observe either the old
complete file or the new complete file, never a prefix.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Union

__all__ = ["atomic_write_bytes", "atomic_write_text", "atomic_write_json"]


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Atomically replace *path* with *data* (write → fsync → rename).

    The temporary file is created in the destination directory so the final
    ``os.replace`` stays on one filesystem (rename is only atomic within a
    filesystem).  On any failure the destination is left untouched and the
    temporary is removed.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    # Make the rename itself durable.  Not every filesystem supports
    # fsync on a directory fd; failure only weakens durability, never
    # atomicity, so it is best-effort.
    try:
        dir_fd = os.open(str(path.parent), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def atomic_write_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> None:
    """Atomically replace *path* with *text*."""
    atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(
    path: Union[str, Path],
    obj: Any,
    indent: int = 2,
    sort_keys: bool = True,
) -> None:
    """Atomically replace *path* with the JSON rendering of *obj*.

    ``sort_keys`` defaults on so two processes serializing the same logical
    object produce byte-identical files (the result cache depends on this
    for its byte-level resume guarantees).
    """
    text = json.dumps(obj, indent=indent, sort_keys=sort_keys) + "\n"
    atomic_write_bytes(path, text.encode("utf-8"))
