"""The rack facade: R2C2 as a library.

:class:`Rack` wires a topology, the broadcast FIB and one
:class:`~repro.core.node.R2C2Node` per node together, and plays the role of
an idealized control-plane fabric: packets a node emits are delivered to
every other node (optionally counting the bytes the broadcast trees would
carry).  This is the object the examples and the quickstart use; the packet
simulator and the Maze platform replace the idealized delivery with real
queues.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..broadcast.fib import BroadcastFib
from ..broadcast.overhead import broadcast_bytes_total
from ..congestion.linkweights import WeightProvider
from ..congestion.waterfill import RateAllocation
from ..errors import ReproError
from ..selection.genetic import GeneticConfig
from ..selection.objective import UtilityMetric
from ..topology.base import Topology
from ..types import FlowId, NodeId
from .config import R2C2Config
from .node import R2C2Node


class Rack:
    """A whole rack running R2C2, with instantaneous control delivery."""

    def __init__(self, topology: Topology, config: Optional[R2C2Config] = None) -> None:
        self.topology = topology
        self.config = config or R2C2Config()
        self.fib = BroadcastFib(
            topology,
            n_trees=self.config.n_broadcast_trees,
            seed=self.config.broadcast_seed,
        )
        self.provider = WeightProvider(topology)
        self.nodes: List[R2C2Node] = [
            R2C2Node(topology, node, self.fib, self.provider, self.config)
            for node in topology.nodes()
        ]
        self._next_flow_id = 0
        self._now_ns = 0
        self.control_bytes_on_wire = 0

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def now_ns(self) -> int:
        """The rack's logical clock."""
        return self._now_ns

    def advance_time(self, delta_ns: int) -> List[RateAllocation]:
        """Move the clock forward, triggering due recomputations."""
        if delta_ns < 0:
            raise ReproError("time cannot go backwards")
        self._now_ns += delta_ns
        allocations = []
        for node in self.nodes:
            allocation = node.maybe_recompute(self._now_ns)
            if allocation is not None:
                allocations.append(allocation)
        return allocations

    # ------------------------------------------------------------------
    # Flow API
    # ------------------------------------------------------------------
    def start_flow(
        self,
        src: NodeId,
        dst: NodeId,
        protocol: Optional[str] = None,
        weight: float = 1.0,
        priority: int = 0,
        tenant: Optional[str] = None,
    ) -> FlowId:
        """Start a flow from *src* to *dst*; returns its rack-unique id."""
        if src == dst:
            raise ReproError("flows must connect distinct nodes")
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        packet = self.nodes[src].start_flow(
            flow_id,
            dst,
            protocol=protocol,
            weight=weight,
            priority=priority,
            now_ns=self._now_ns,
            tenant=tenant,
        )
        self._deliver_broadcast(src, packet)
        return flow_id

    def finish_flow(self, flow_id: FlowId) -> None:
        """End a flow (its sender announces the finish)."""
        src = self._owner_of(flow_id)
        packet = self.nodes[src].finish_flow(flow_id, now_ns=self._now_ns)
        self._deliver_broadcast(src, packet)

    def update_demand(self, flow_id: FlowId, demand_bps: float) -> None:
        """Announce a host-limited flow's new demand."""
        src = self._owner_of(flow_id)
        packet = self.nodes[src].update_demand(flow_id, demand_bps)
        self._deliver_broadcast(src, packet)

    def _owner_of(self, flow_id: FlowId) -> NodeId:
        spec = self.nodes[0].controller.table.get(flow_id)
        if spec is None:
            # Tables are eventually consistent; scan for a node that knows.
            for node in self.nodes:
                spec = node.controller.table.get(flow_id)
                if spec is not None:
                    break
        if spec is None:
            raise ReproError(f"unknown flow {flow_id}")
        return spec.src

    def _deliver_broadcast(self, src: NodeId, packet: bytes) -> None:
        self.control_bytes_on_wire += broadcast_bytes_total(
            self.topology.n_nodes, len(packet)
        )
        for node in self.nodes:
            if node.node != src:
                node.handle_broadcast(packet, now_ns=self._now_ns)

    # ------------------------------------------------------------------
    # Rates
    # ------------------------------------------------------------------
    def recompute_all(self) -> RateAllocation:
        """Force an immediate recomputation on every node; returns node 0's
        allocation (all are identical given identical tables)."""
        allocation = None
        for node in self.nodes:
            allocation = node.controller.recompute(self._now_ns)
        assert allocation is not None
        return self.nodes[0].controller.allocation or allocation

    def rates(self) -> Dict[FlowId, float]:
        """Enforced rate of every active flow (gathered from its sender)."""
        out: Dict[FlowId, float] = {}
        for node in self.nodes:
            out.update(node.rates())
        return out

    def rate_of(self, flow_id: FlowId) -> float:
        """Enforced rate of one flow."""
        return self.nodes[self._owner_of(flow_id)].controller.rate_for(flow_id)

    def active_flows(self) -> List:
        """Snapshot of the rack's traffic matrix (node 0's view)."""
        return self.nodes[0].controller.table.snapshot()

    # ------------------------------------------------------------------
    # Routing selection
    # ------------------------------------------------------------------
    def select_routes(
        self,
        coordinator: NodeId = 0,
        utility: Optional[UtilityMetric] = None,
        ga_config: Optional[GeneticConfig] = None,
        min_improvement: float = 0.01,
    ) -> float:
        """Run §3.4's selection on *coordinator* and deliver the updates.

        Returns the relative utility improvement achieved (0.0 when the
        assignment was left unchanged).
        """
        packets, improvement = self.nodes[coordinator].select_routes(
            utility=utility, ga_config=ga_config, min_improvement=min_improvement
        )
        for packet in packets:
            self.control_bytes_on_wire += len(packet) * (self.topology.n_nodes - 1)
            for node in self.nodes:
                if node.node != coordinator:
                    node.handle_route_update(packet)
        return improvement

    # ------------------------------------------------------------------
    # Failures
    # ------------------------------------------------------------------
    def inject_link_failure(self, src: NodeId, dst: NodeId) -> int:
        """Report a failed link rack-wide; every node re-announces its flows.

        Returns the number of re-announcement broadcasts generated.
        """
        count = 0
        for node in self.nodes:
            node.failure_recovery.on_link_failure(src, dst)
        for node in self.nodes:
            for packet in node.reannounce_flows():
                self._deliver_broadcast(node.node, packet)
                count += 1
        return count

    def tables_consistent(self) -> bool:
        """True if every node sees the identical set of flows."""
        reference = {
            (s.flow_id, s.src, s.dst, s.protocol, s.weight, s.priority)
            for s in self.nodes[0].controller.table.snapshot()
        }
        for node in self.nodes[1:]:
            view = {
                (s.flow_id, s.src, s.dst, s.protocol, s.weight, s.priority)
                for s in node.controller.table.snapshot()
            }
            if view != reference:
                return False
        return True
