"""Shared primitive types and unit helpers.

The whole library agrees on a few conventions:

* Nodes are dense integer ids ``0 .. n_nodes - 1``.
* Links are *directed*; an undirected cable between two nodes appears as two
  links, one per direction.  Links are identified by a dense integer id that
  indexes :attr:`repro.topology.base.Topology.links`.
* Bandwidth is expressed in bits per second, time in nanoseconds and sizes in
  bytes.  The helpers below exist so call sites can say ``gbps(10)`` instead
  of ``10 * 10**9``.
"""

from __future__ import annotations

from dataclasses import dataclass

NodeId = int
LinkId = int
FlowId = int

#: Nanoseconds per second; simulator time is integer nanoseconds.
NS_PER_SEC = 1_000_000_000

#: Bits per byte, spelled out where the factor of eight would otherwise be a
#: magic number.
BITS_PER_BYTE = 8


def gbps(value: float) -> float:
    """Return *value* gigabits per second expressed in bits per second."""
    return value * 1e9


def mbps(value: float) -> float:
    """Return *value* megabits per second expressed in bits per second."""
    return value * 1e6


def kib(value: float) -> int:
    """Return *value* kibibytes expressed in bytes."""
    return int(value * 1024)


def mib(value: float) -> int:
    """Return *value* mebibytes expressed in bytes."""
    return int(value * 1024 * 1024)


def usec(value: float) -> int:
    """Return *value* microseconds expressed in integer nanoseconds."""
    return int(value * 1_000)


def msec(value: float) -> int:
    """Return *value* milliseconds expressed in integer nanoseconds."""
    return int(value * 1_000_000)


def sec(value: float) -> int:
    """Return *value* seconds expressed in integer nanoseconds."""
    return int(value * NS_PER_SEC)


def transmission_time_ns(size_bytes: int, capacity_bps: float) -> int:
    """Time to serialize *size_bytes* onto a link of *capacity_bps*.

    Rounds up to a whole nanosecond so that back-to-back packets never
    overlap on the wire.
    """
    bits = size_bytes * BITS_PER_BYTE
    return -(-bits * NS_PER_SEC // int(capacity_bps))


@dataclass(frozen=True)
class Link:
    """A directed network link.

    Attributes:
        link_id: Dense index of this link within its topology.
        src: Transmitting node.
        dst: Receiving node.
        capacity_bps: Line rate in bits per second.
        latency_ns: Propagation latency in nanoseconds.
    """

    link_id: LinkId
    src: NodeId
    dst: NodeId
    capacity_bps: float
    latency_ns: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"link#{self.link_id}({self.src}->{self.dst})"
