"""The routing-selection search problem and shared harness (paper §3.4).

A candidate solution ("genotype") assigns each flow one routing protocol
from a candidate set; its fitness is the operator's utility metric applied
to the water-filled rate allocation under that assignment.  The search
space is ``len(protocols) ** n_flows`` and the landscape has many local
maxima, which is why the paper moved from hill climbing to a genetic
algorithm; all the heuristics it mentions are implemented on top of this
harness for comparison.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..congestion.flowstate import FlowSpec
from ..congestion.linkweights import WeightProvider
from ..congestion.waterfill import waterfill
from ..errors import SelectionError
from ..topology.base import Topology
from .objective import AggregateThroughput, UtilityMetric

#: An assignment: protocol index per flow, parallel to the flow list.
Assignment = Tuple[int, ...]


class SelectionProblem:
    """Evaluates protocol assignments for a fixed set of flows.

    Evaluations are memoized: heuristics revisit genotypes constantly, and
    a water-fill is the expensive step.
    """

    def __init__(
        self,
        topology: Topology,
        flows: Sequence[FlowSpec],
        protocols: Sequence[str] = ("rps", "vlb"),
        utility: Optional[UtilityMetric] = None,
        provider: Optional[WeightProvider] = None,
        headroom: float = 0.0,
    ) -> None:
        if not flows:
            raise SelectionError("selection needs at least one flow")
        if not protocols:
            raise SelectionError("selection needs at least one candidate protocol")
        self.topology = topology
        self.flows = list(flows)
        self.protocols = list(protocols)
        self.utility = utility if utility is not None else AggregateThroughput()
        self.provider = provider if provider is not None else WeightProvider(topology)
        self.headroom = headroom
        self.evaluations = 0
        self._cache: Dict[Assignment, float] = {}

    @property
    def n_flows(self) -> int:
        """Number of flows being assigned."""
        return len(self.flows)

    @property
    def n_choices(self) -> int:
        """Number of candidate protocols per flow."""
        return len(self.protocols)

    def current_assignment(self) -> Assignment:
        """The flows' present protocols, as an assignment (for seeding)."""
        indices = []
        for spec in self.flows:
            try:
                indices.append(self.protocols.index(spec.protocol))
            except ValueError:
                indices.append(0)
        return tuple(indices)

    def random_assignment(self, rng: random.Random) -> Assignment:
        """A uniformly random genotype."""
        return tuple(rng.randrange(self.n_choices) for _ in range(self.n_flows))

    def fitness(self, assignment: Assignment) -> float:
        """Utility of the water-filled allocation under *assignment*."""
        if len(assignment) != self.n_flows:
            raise SelectionError(
                f"assignment length {len(assignment)} != {self.n_flows} flows"
            )
        cached = self._cache.get(assignment)
        if cached is not None:
            return cached
        specs = [
            spec.with_protocol(self.protocols[idx])
            for spec, idx in zip(self.flows, assignment)
        ]
        allocation = waterfill(
            self.topology, specs, self.provider, headroom=self.headroom
        )
        value = self.utility.evaluate(allocation)
        self._cache[assignment] = value
        self.evaluations += 1
        return value

    def assignment_as_protocols(self, assignment: Assignment) -> List[str]:
        """Protocol names per flow for an assignment."""
        return [self.protocols[idx] for idx in assignment]


@dataclass
class SearchResult:
    """Outcome of one heuristic run."""

    assignment: Assignment
    utility: float
    evaluations: int
    history: List[float] = field(default_factory=list)
    heuristic: str = ""

    def protocols(self, problem: SelectionProblem) -> List[str]:
        """Per-flow protocol names of the winning assignment."""
        return problem.assignment_as_protocols(self.assignment)


def uniform_baseline(problem: SelectionProblem, protocol: str) -> SearchResult:
    """Everyone uses *protocol* — the RPS/VLB baselines of Figure 18."""
    try:
        idx = problem.protocols.index(protocol)
    except ValueError:
        raise SelectionError(
            f"{protocol!r} not among candidates {problem.protocols}"
        ) from None
    assignment = (idx,) * problem.n_flows
    return SearchResult(
        assignment=assignment,
        utility=problem.fitness(assignment),
        evaluations=1,
        heuristic=f"all-{protocol}",
    )


def random_baseline(problem: SelectionProblem, seed: int = 0) -> SearchResult:
    """Each flow picks uniformly at random — Figure 18's Random baseline."""
    rng = random.Random(seed)
    assignment = problem.random_assignment(rng)
    return SearchResult(
        assignment=assignment,
        utility=problem.fitness(assignment),
        evaluations=1,
        heuristic="random",
    )
