"""Per-flow routing-protocol selection (paper §3.4).

The paper's production choice is the genetic algorithm
(:class:`GeneticSelector`); hill climbing, simulated annealing and
log-linear learning are provided as the baselines it was compared against,
plus the all-RPS / all-VLB / random baselines of Figure 18.
"""

from .annealing import AnnealingConfig, AnnealingSelector
from .genetic import GeneticConfig, GeneticSelector
from .hillclimb import HillClimbConfig, HillClimbSelector
from .loglinear import LogLinearConfig, LogLinearSelector
from .objective import (
    AggregateThroughput,
    BlendedUtility,
    TailThroughput,
    TenantTailThroughput,
    UtilityMetric,
)
from .search import (
    Assignment,
    SearchResult,
    SelectionProblem,
    random_baseline,
    uniform_baseline,
)

__all__ = [
    "AggregateThroughput",
    "AnnealingConfig",
    "AnnealingSelector",
    "Assignment",
    "BlendedUtility",
    "GeneticConfig",
    "GeneticSelector",
    "HillClimbConfig",
    "HillClimbSelector",
    "LogLinearConfig",
    "LogLinearSelector",
    "SearchResult",
    "SelectionProblem",
    "TailThroughput",
    "TenantTailThroughput",
    "UtilityMetric",
    "random_baseline",
    "uniform_baseline",
]
