"""Hill climbing — the simple greedy baseline the paper rejects (§3.4).

"The search landscape ... typically exhibits several local maxima.
Therefore, simple greedy heuristics (e.g., hill-climbing) are not
effective."  Included so the claim can be measured (the Figure 18 ablation
bench runs the heuristic shoot-out).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..errors import SelectionError
from .search import Assignment, SearchResult, SelectionProblem


@dataclass
class HillClimbConfig:
    """First-improvement hill climbing with random restarts."""

    max_steps: int = 2000
    restarts: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_steps < 1 or self.restarts < 1:
            raise SelectionError("max_steps and restarts must be >= 1")


class HillClimbSelector:
    """Repeated single-gene improvement until a local maximum."""

    def __init__(self, config: Optional[HillClimbConfig] = None) -> None:
        self.config = config or HillClimbConfig()

    def search(self, problem: SelectionProblem) -> SearchResult:
        cfg = self.config
        rng = random.Random(cfg.seed)
        best_assignment = problem.current_assignment()
        best_utility = problem.fitness(best_assignment)
        history: List[float] = [best_utility]

        for restart in range(cfg.restarts):
            current = (
                best_assignment
                if restart == 0
                else problem.random_assignment(rng)
            )
            utility = problem.fitness(current)
            steps = 0
            improved = True
            while improved and steps < cfg.max_steps:
                improved = False
                # Scan flows in random order, take the first improving move.
                order = list(range(problem.n_flows))
                rng.shuffle(order)
                for flow_idx in order:
                    for choice in range(problem.n_choices):
                        if choice == current[flow_idx]:
                            continue
                        candidate = (
                            current[:flow_idx] + (choice,) + current[flow_idx + 1 :]
                        )
                        steps += 1
                        value = problem.fitness(candidate)
                        if value > utility + 1e-12:
                            current, utility = candidate, value
                            improved = True
                            break
                    if improved or steps >= cfg.max_steps:
                        break
            history.append(utility)
            if utility > best_utility:
                best_assignment, best_utility = current, utility

        return SearchResult(
            assignment=best_assignment,
            utility=best_utility,
            evaluations=problem.evaluations,
            history=history,
            heuristic="hill-climb",
        )
