"""Simulated annealing — a heuristic the paper tried and found "very
sensitive to parameter tuning and workload characteristics" (§3.4).

Kept as an ablation baseline: the Figure 18 shoot-out bench compares it
against the genetic algorithm across loads.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional

from ..errors import SelectionError
from .search import SearchResult, SelectionProblem


@dataclass
class AnnealingConfig:
    """Geometric-cooling simulated annealing."""

    initial_temperature: float = 1.0
    cooling: float = 0.95
    steps_per_temperature: int = 20
    min_temperature: float = 1e-3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.initial_temperature <= 0 or self.min_temperature <= 0:
            raise SelectionError("temperatures must be positive")
        if not (0.0 < self.cooling < 1.0):
            raise SelectionError("cooling must be in (0, 1)")
        if self.steps_per_temperature < 1:
            raise SelectionError("steps_per_temperature must be >= 1")


class AnnealingSelector:
    """Single-gene random moves accepted by the Metropolis criterion."""

    def __init__(self, config: Optional[AnnealingConfig] = None) -> None:
        self.config = config or AnnealingConfig()

    def search(self, problem: SelectionProblem) -> SearchResult:
        cfg = self.config
        rng = random.Random(cfg.seed)
        current = problem.current_assignment()
        utility = problem.fitness(current)
        best, best_utility = current, utility
        history: List[float] = [utility]

        # Normalize the acceptance scale to the starting utility so the
        # temperature schedule is workload-independent (this is exactly the
        # tuning sensitivity the paper complains about).
        scale = max(abs(utility), 1.0)

        temperature = cfg.initial_temperature
        while temperature > cfg.min_temperature:
            for _ in range(cfg.steps_per_temperature):
                flow_idx = rng.randrange(problem.n_flows)
                choice = rng.randrange(problem.n_choices)
                if choice == current[flow_idx]:
                    continue
                candidate = current[:flow_idx] + (choice,) + current[flow_idx + 1 :]
                value = problem.fitness(candidate)
                delta = (value - utility) / scale
                if delta >= 0 or rng.random() < math.exp(delta / temperature):
                    current, utility = candidate, value
                    if utility > best_utility:
                        best, best_utility = current, utility
            history.append(utility)
            temperature *= cfg.cooling

        return SearchResult(
            assignment=best,
            utility=best_utility,
            evaluations=problem.evaluations,
            history=history,
            heuristic="annealing",
        )
