"""The genetic-algorithm selector R2C2 settled on (paper §3.4).

"We opted for genetic algorithms, a search heuristic that emulates natural
selection ... our problem can be naturally encoded as bit strings, where one
or more bits identify the routing protocol assigned to a given flow."

The implementation follows the paper's description: the initial population
contains the *current* routing allocation plus random genotypes; each
generation keeps the top genotypes (elitism) and fills the rest with
crossover + mutation offspring; the loop stops after a fixed number of
generations or once no improvement is seen for a patience window.  The
paper's experiment uses a population of 100 and a mutation probability of
0.01, which are the defaults here.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import SelectionError
from .search import Assignment, SearchResult, SelectionProblem


@dataclass
class GeneticConfig:
    """GA hyper-parameters (paper defaults)."""

    population_size: int = 100
    mutation_probability: float = 0.01
    elite_fraction: float = 0.1
    max_generations: int = 50
    patience: int = 10
    tournament_size: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise SelectionError("population_size must be >= 2")
        if not (0.0 <= self.mutation_probability <= 1.0):
            raise SelectionError("mutation_probability must be in [0, 1]")
        if not (0.0 < self.elite_fraction <= 1.0):
            raise SelectionError("elite_fraction must be in (0, 1]")
        if self.max_generations < 1 or self.patience < 1:
            raise SelectionError("max_generations and patience must be >= 1")
        if self.tournament_size < 1:
            raise SelectionError("tournament_size must be >= 1")


class GeneticSelector:
    """Evolves protocol assignments toward maximal utility."""

    def __init__(self, config: Optional[GeneticConfig] = None) -> None:
        self.config = config or GeneticConfig()

    def search(self, problem: SelectionProblem) -> SearchResult:
        """Run the GA; returns the best assignment found."""
        cfg = self.config
        rng = random.Random(cfg.seed)

        # Seed with the current allocation (the paper's choice) plus each
        # all-one-protocol genotype, so the search result can never fall
        # below the best uniform baseline; fill the rest randomly.
        population: List[Assignment] = [problem.current_assignment()]
        for choice in range(problem.n_choices):
            uniform = (choice,) * problem.n_flows
            if uniform not in population:
                population.append(uniform)
        while len(population) < cfg.population_size:
            population.append(problem.random_assignment(rng))
        population = population[: cfg.population_size]

        n_elite = max(1, int(cfg.elite_fraction * cfg.population_size))
        best: Tuple[float, Assignment] = (float("-inf"), population[0])
        history: List[float] = []
        stale = 0

        for _ in range(cfg.max_generations):
            scored = sorted(
                ((problem.fitness(g), g) for g in population),
                key=lambda pair: pair[0],
                reverse=True,
            )
            generation_best = scored[0]
            history.append(generation_best[0])
            if generation_best[0] > best[0] + 1e-12:
                best = generation_best
                stale = 0
            else:
                stale += 1
                if stale >= cfg.patience:
                    break

            elites = [g for _, g in scored[:n_elite]]
            next_population = list(elites)
            while len(next_population) < cfg.population_size:
                parent_a = self._tournament(scored, rng)
                parent_b = self._tournament(scored, rng)
                child = self._crossover(parent_a, parent_b, rng)
                child = self._mutate(child, problem.n_choices, rng)
                next_population.append(child)
            population = next_population

        return SearchResult(
            assignment=best[1],
            utility=best[0],
            evaluations=problem.evaluations,
            history=history,
            heuristic="genetic",
        )

    def _tournament(self, scored, rng: random.Random) -> Assignment:
        """Pick the fittest of a random handful (selection pressure)."""
        contenders = [scored[rng.randrange(len(scored))] for _ in range(self.config.tournament_size)]
        return max(contenders, key=lambda pair: pair[0])[1]

    @staticmethod
    def _crossover(a: Assignment, b: Assignment, rng: random.Random) -> Assignment:
        """Single-point crossover on the genotype string."""
        if len(a) <= 1:
            return a
        point = rng.randrange(1, len(a))
        return a[:point] + b[point:]

    def _mutate(
        self, genotype: Assignment, n_choices: int, rng: random.Random
    ) -> Assignment:
        """Per-gene resampling with the configured probability."""
        if n_choices < 2:
            return genotype
        p = self.config.mutation_probability
        mutated = list(genotype)
        for i in range(len(mutated)):
            if rng.random() < p:
                mutated[i] = rng.randrange(n_choices)
        return tuple(mutated)
