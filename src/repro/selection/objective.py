"""Global utility metrics for routing-protocol selection (paper §3.4).

The datacenter operator chooses what the selection process maximizes —
"example utility metrics include the rack's aggregate throughput or the tail
throughput, as measured across tenants or even across jobs".  A metric maps
a :class:`~repro.congestion.waterfill.RateAllocation` to a scalar; higher is
better.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional

import numpy as np

from ..congestion.waterfill import RateAllocation
from ..errors import SelectionError


class UtilityMetric(ABC):
    """Scores an allocation; selection heuristics maximize the score."""

    name: str = "abstract"

    @abstractmethod
    def evaluate(self, allocation: RateAllocation) -> float:
        """The utility of *allocation* (higher is better)."""


class AggregateThroughput(UtilityMetric):
    """Sum of all flow rates — the paper's running example."""

    name = "aggregate-throughput"

    def evaluate(self, allocation: RateAllocation) -> float:
        return allocation.aggregate_throughput_bps()


class TailThroughput(UtilityMetric):
    """A low percentile of flow rates (default: the minimum).

    Optimizing this prevents the selection process from starving a few
    flows to inflate the aggregate.
    """

    name = "tail-throughput"

    def __init__(self, percentile: float = 0.0) -> None:
        if not (0.0 <= percentile <= 100.0):
            raise SelectionError(f"percentile must be in [0, 100], got {percentile}")
        self._percentile = percentile

    def evaluate(self, allocation: RateAllocation) -> float:
        rates = list(allocation.rates_bps.values())
        if not rates:
            return 0.0
        if self._percentile == 0.0:
            return float(min(rates))
        return float(np.percentile(np.asarray(rates), self._percentile))


class TenantTailThroughput(UtilityMetric):
    """Minimum, over tenants, of the tenant's aggregate rate.

    Captures the paper's "tail throughput, as measured across tenants":
    the operator wants no tenant to fall behind, regardless of how the
    tenant's rate is distributed over its flows.
    """

    name = "tenant-tail-throughput"

    def __init__(self, tenant_of_flow: Dict[int, Optional[str]]) -> None:
        self._tenant_of_flow = dict(tenant_of_flow)

    def evaluate(self, allocation: RateAllocation) -> float:
        per_tenant: Dict[Optional[str], float] = {}
        for flow_id, rate in allocation.rates_bps.items():
            tenant = self._tenant_of_flow.get(flow_id)
            per_tenant[tenant] = per_tenant.get(tenant, 0.0) + rate
        if not per_tenant:
            return 0.0
        return min(per_tenant.values())


class BlendedUtility(UtilityMetric):
    """``alpha * aggregate + (1 - alpha) * n * tail`` — a tunable compromise."""

    name = "blended"

    def __init__(self, alpha: float = 0.5) -> None:
        if not (0.0 <= alpha <= 1.0):
            raise SelectionError(f"alpha must be in [0, 1], got {alpha}")
        self._alpha = alpha
        self._aggregate = AggregateThroughput()
        self._tail = TailThroughput()

    def evaluate(self, allocation: RateAllocation) -> float:
        n = max(len(allocation.rates_bps), 1)
        return self._alpha * self._aggregate.evaluate(allocation) + (
            1.0 - self._alpha
        ) * n * self._tail.evaluate(allocation)
