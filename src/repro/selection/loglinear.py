"""Log-linear learning — the game-theoretic baseline the paper considered
before settling on genetic algorithms (§3.4, citing Marden & Shamma [5]).

Each round one flow ("player") revises its protocol: it evaluates the
global utility of every candidate protocol (holding everyone else fixed)
and samples from the log-linear (softmax) distribution with temperature τ.
As τ → 0 the process concentrates on potential-function maximizers; because
every player optimizes the *global* utility, the game is a potential game
and there is no price-of-anarchy gap — matching the paper's argument that
nodes optimizing a global metric avoid selfish inefficiency.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional

from ..errors import SelectionError
from .search import SearchResult, SelectionProblem


@dataclass
class LogLinearConfig:
    """Asynchronous log-linear learning with geometric temperature decay."""

    rounds: int = 300
    initial_temperature: float = 0.1
    decay: float = 0.99
    min_temperature: float = 1e-4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise SelectionError("rounds must be >= 1")
        if self.initial_temperature <= 0 or self.min_temperature <= 0:
            raise SelectionError("temperatures must be positive")
        if not (0.0 < self.decay <= 1.0):
            raise SelectionError("decay must be in (0, 1]")


class LogLinearSelector:
    """One-player-at-a-time softmax best response on the global utility."""

    def __init__(self, config: Optional[LogLinearConfig] = None) -> None:
        self.config = config or LogLinearConfig()

    def search(self, problem: SelectionProblem) -> SearchResult:
        cfg = self.config
        rng = random.Random(cfg.seed)
        current = problem.current_assignment()
        utility = problem.fitness(current)
        best, best_utility = current, utility
        history: List[float] = [utility]
        scale = max(abs(utility), 1.0)
        temperature = cfg.initial_temperature

        for _ in range(cfg.rounds):
            flow_idx = rng.randrange(problem.n_flows)
            values = []
            for choice in range(problem.n_choices):
                candidate = current[:flow_idx] + (choice,) + current[flow_idx + 1 :]
                values.append(problem.fitness(candidate))
            # Softmax over normalized utilities.
            top = max(values)
            weights = [
                math.exp(((v - top) / scale) / temperature) for v in values
            ]
            total = sum(weights)
            roll = rng.random() * total
            acc = 0.0
            chosen = len(weights) - 1
            for i, w in enumerate(weights):
                acc += w
                if roll < acc:
                    chosen = i
                    break
            current = current[:flow_idx] + (chosen,) + current[flow_idx + 1 :]
            utility = values[chosen]
            history.append(utility)
            if utility > best_utility:
                best, best_utility = current, utility
            temperature = max(cfg.min_temperature, temperature * cfg.decay)

        return SearchResult(
            assignment=best,
            utility=best_utility,
            evaluations=problem.evaluations,
            history=history,
            heuristic="log-linear",
        )
