"""Analysis toolkit: channel-load throughput, statistics, table printers."""

from .channel_load import (
    TIER_GATEWAY,
    TIER_INTRA,
    channel_loads,
    link_tiers,
    max_channel_utilization,
    saturation_throughput,
    throughput_table,
    tiered_channel_loads,
)
from .stats import (
    SummaryStats,
    cdf_at,
    empirical_cdf,
    ks_distance,
    median,
    normalized_against,
    percentile,
)
from .tables import format_comparison, format_series, format_table

__all__ = [
    "SummaryStats",
    "TIER_GATEWAY",
    "TIER_INTRA",
    "cdf_at",
    "channel_loads",
    "empirical_cdf",
    "format_comparison",
    "format_series",
    "format_table",
    "ks_distance",
    "link_tiers",
    "max_channel_utilization",
    "median",
    "normalized_against",
    "percentile",
    "saturation_throughput",
    "throughput_table",
    "tiered_channel_loads",
]
