"""Channel-load throughput analysis (reproduces the Figure 2 table).

For oblivious routing, the saturation throughput on a traffic pattern is
determined by the most loaded channel: if every node injects at rate θ (in
units of link capacity) and γ_max is the largest per-unit-injection channel
load the pattern induces, the network saturates at ``θ = 1 / γ_max``.
Figure 2 reports exactly this number for four routing algorithms and six
patterns on an 8-ary 2-cube.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence

import numpy as np

from ..routing.base import RoutingProtocol
from ..workloads.patterns import TrafficMatrix, TrafficPattern
from ..workloads.worstcase import worst_case_throughput


def channel_loads(
    protocol: RoutingProtocol, matrix: TrafficMatrix
) -> np.ndarray:
    """Per-channel load for unit per-node injection under *matrix*.

    ``matrix[(s, d)]`` is the fraction of s's injection aimed at d; the
    returned vector has one entry per directed link, in units of
    (injection-rate x link-traversals).
    """
    topo = protocol.topology
    load = np.zeros(topo.n_links, dtype=np.float64)
    for (src, dst), frac in matrix.items():
        if frac <= 0 or src == dst:
            continue
        for link, weight in protocol.link_weights(src, dst).items():
            load[link] += frac * weight
    return load


def saturation_throughput(
    protocol: RoutingProtocol, matrix: TrafficMatrix
) -> float:
    """Saturation injection rate as a fraction of link capacity.

    1.0 means each node can inject one full link's worth of traffic before
    any channel saturates (the normalization Figure 2 uses, where uniform
    traffic under minimal routing on a torus achieves exactly 1.0).
    """
    loads = channel_loads(protocol, matrix)
    max_load = float(loads.max()) if loads.size else 0.0
    if max_load <= 0:
        return float("inf")
    return 1.0 / max_load


def throughput_table(
    protocols: Sequence[RoutingProtocol],
    patterns: Sequence[TrafficPattern],
    include_worst_case: bool = True,
) -> Dict[str, Dict[str, float]]:
    """The full Figure 2 table: ``table[pattern][protocol] = throughput``.

    All protocols must share one topology.  When *include_worst_case* is
    set, a ``"worst-case"`` row is added using each protocol's own
    adversarial permutation (so the row's entries correspond to different
    patterns, exactly as in the paper).
    """
    topologies = {id(p.topology) for p in protocols}
    if len(topologies) != 1:
        raise ValueError("all protocols must be bound to the same topology")
    topology = protocols[0].topology

    table: Dict[str, Dict[str, float]] = {}
    for pattern in patterns:
        matrix = pattern.matrix(topology)
        table[pattern.name] = {
            protocol.name: saturation_throughput(protocol, matrix)
            for protocol in protocols
        }
    if include_worst_case:
        table["worst-case"] = {
            protocol.name: worst_case_throughput(protocol) for protocol in protocols
        }
    return table


def max_channel_utilization(
    protocol: RoutingProtocol,
    matrix: TrafficMatrix,
    injection_bps: float,
) -> float:
    """Utilization of the busiest channel at a given per-node injection."""
    loads = channel_loads(protocol, matrix)
    capacity = protocol.topology.capacity_bps
    return float(loads.max()) * injection_bps / capacity if loads.size else 0.0
