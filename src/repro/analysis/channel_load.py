"""Channel-load throughput analysis (reproduces the Figure 2 table).

For oblivious routing, the saturation throughput on a traffic pattern is
determined by the most loaded channel: if every node injects at rate θ (in
units of link capacity) and γ_max is the largest per-unit-injection channel
load the pattern induces, the network saturates at ``θ = 1 / γ_max``.
Figure 2 reports exactly this number for four routing algorithms and six
patterns on an 8-ary 2-cube.

On *composed* multi-rack graphs (see :mod:`repro.topology.synth`) link
capacities are heterogeneous — gateway cables are typically thinner than
fabric links — so the single-number analysis generalizes to a per-tier one:
a link in tier *l* with capacity ``C_l`` saturates at
``θ_l = C_l / (C_ref · γ_l)`` where ``C_ref`` is the intra-rack (injection)
capacity, and the fabric saturates at the minimum over links.
:func:`tiered_channel_loads` reports this breakdown per tier (intra-rack vs
gateway), which is how a campaign shows *where* a synthesized fabric
bottlenecks.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from ..routing.base import RoutingProtocol
from ..workloads.patterns import TrafficMatrix, TrafficPattern
from ..workloads.worstcase import worst_case_throughput

#: Tier label for links inside a rack (and all links of plain topologies).
TIER_INTRA = "intra"
#: Tier label for gateway cables / uplinks between racks.
TIER_GATEWAY = "gateway"


def channel_loads(
    protocol: RoutingProtocol, matrix: TrafficMatrix
) -> np.ndarray:
    """Per-channel load for unit per-node injection under *matrix*.

    ``matrix[(s, d)]`` is the fraction of s's injection aimed at d; the
    returned vector has one entry per directed link, in units of
    (injection-rate x link-traversals).
    """
    topo = protocol.topology
    load = np.zeros(topo.n_links, dtype=np.float64)
    for (src, dst), frac in matrix.items():
        if frac <= 0 or src == dst:
            continue
        for link, weight in protocol.link_weights(src, dst).items():
            load[link] += frac * weight
    return load


def saturation_throughput(
    protocol: RoutingProtocol, matrix: TrafficMatrix
) -> float:
    """Saturation injection rate as a fraction of link capacity.

    1.0 means each node can inject one full link's worth of traffic before
    any channel saturates (the normalization Figure 2 uses, where uniform
    traffic under minimal routing on a torus achieves exactly 1.0).
    """
    loads = channel_loads(protocol, matrix)
    max_load = float(loads.max()) if loads.size else 0.0
    if max_load <= 0:
        return float("inf")
    return 1.0 / max_load


def throughput_table(
    protocols: Sequence[RoutingProtocol],
    patterns: Sequence[TrafficPattern],
    include_worst_case: bool = True,
) -> Dict[str, Dict[str, float]]:
    """The full Figure 2 table: ``table[pattern][protocol] = throughput``.

    All protocols must share one topology.  When *include_worst_case* is
    set, a ``"worst-case"`` row is added using each protocol's own
    adversarial permutation (so the row's entries correspond to different
    patterns, exactly as in the paper).
    """
    topologies = {id(p.topology) for p in protocols}
    if len(topologies) != 1:
        raise ValueError("all protocols must be bound to the same topology")
    topology = protocols[0].topology

    table: Dict[str, Dict[str, float]] = {}
    for pattern in patterns:
        matrix = pattern.matrix(topology)
        table[pattern.name] = {
            protocol.name: saturation_throughput(protocol, matrix)
            for protocol in protocols
        }
    if include_worst_case:
        table["worst-case"] = {
            protocol.name: worst_case_throughput(protocol) for protocol in protocols
        }
    return table


def link_tiers(topology) -> List[str]:
    """Tier label per directed link, indexed by link id.

    Composed graphs advertise their gateway links through an
    ``is_bridge_link`` (:class:`~repro.interrack.topology.MultiRackFabric`)
    or ``is_gateway_link`` (:class:`~repro.topology.synth.FatTreeFabric`)
    predicate; every other link — and every link of a plain single-rack
    topology — is ``TIER_INTRA``.
    """
    probe: Optional[Callable[[int], bool]] = getattr(
        topology, "is_bridge_link", None
    ) or getattr(topology, "is_gateway_link", None)
    if probe is None:
        return [TIER_INTRA] * topology.n_links
    return [
        TIER_GATEWAY if probe(link.link_id) else TIER_INTRA
        for link in topology.links
    ]


def tiered_channel_loads(
    protocol: RoutingProtocol,
    matrix: TrafficMatrix,
    loads: Optional[np.ndarray] = None,
) -> Dict[str, object]:
    """Per-tier (intra-rack vs gateway) channel-load breakdown.

    Returns a dict with a ``"tiers"`` mapping — per tier: link count, link
    capacity, max/mean per-unit-injection load and the capacity-aware
    saturation throughput of that tier alone — plus the fabric-wide
    ``"saturation"`` (the min over tiers) and the ``"bottleneck"`` tier
    name.  Pass a precomputed *loads* vector to avoid recomputing
    :func:`channel_loads`.  On homogeneous single-rack topologies the
    single ``intra`` tier reproduces :func:`saturation_throughput` exactly.
    """
    topo = protocol.topology
    if loads is None:
        loads = channel_loads(protocol, matrix)
    tiers = link_tiers(topo)
    ref_capacity = topo.capacity_bps
    by_tier: Dict[str, Dict[str, float]] = {}
    for link in topo.links:
        tier = by_tier.setdefault(
            tiers[link.link_id],
            {"links": 0, "capacity_bps": float(link.capacity_bps),
             "max_load": 0.0, "load_sum": 0.0, "saturation": float("inf")},
        )
        load = float(loads[link.link_id])
        tier["links"] += 1
        tier["load_sum"] += load
        if load > tier["max_load"]:
            tier["max_load"] = load
        if load > 0:
            theta = link.capacity_bps / (ref_capacity * load)
            if theta < tier["saturation"]:
                tier["saturation"] = theta
    overall = float("inf")
    bottleneck = None
    for name, tier in by_tier.items():
        tier["mean_load"] = tier.pop("load_sum") / max(tier["links"], 1)
        if tier["saturation"] < overall:
            overall = tier["saturation"]
            bottleneck = name
    return {"tiers": by_tier, "saturation": overall, "bottleneck": bottleneck}


def max_channel_utilization(
    protocol: RoutingProtocol,
    matrix: TrafficMatrix,
    injection_bps: float,
) -> float:
    """Utilization of the busiest channel at a given per-node injection."""
    loads = channel_loads(protocol, matrix)
    capacity = protocol.topology.capacity_bps
    return float(loads.max()) * injection_bps / capacity if loads.size else 0.0
