"""Statistics helpers: CDFs, percentiles, summary rows.

Everything the evaluation plots need: empirical CDFs (Figures 7, 10, 11),
percentiles (99th-percentile FCTs, 95th-percentile rate errors), and
normalized comparisons against a baseline (Figures 12, 13, 18).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import ReproError


def percentile(values: Sequence[float], pct: float) -> float:
    """The *pct*-th percentile (linear interpolation, numpy semantics)."""
    if not len(values):
        raise ReproError("percentile of empty sequence")
    if not (0.0 <= pct <= 100.0):
        raise ReproError(f"percentile must be in [0, 100], got {pct}")
    return float(np.percentile(np.asarray(values, dtype=np.float64), pct))


def median(values: Sequence[float]) -> float:
    """The 50th percentile."""
    return percentile(values, 50.0)


def empirical_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted values and cumulative probabilities (a plottable CDF)."""
    if not len(values):
        raise ReproError("CDF of empty sequence")
    xs = np.sort(np.asarray(values, dtype=np.float64))
    ps = np.arange(1, len(xs) + 1, dtype=np.float64) / len(xs)
    return xs, ps


def cdf_at(values: Sequence[float], x: float) -> float:
    """Fraction of samples <= x."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ReproError("CDF of empty sequence")
    return float((arr <= x).mean())


@dataclass
class SummaryStats:
    """Five-number-ish summary used in experiment printouts."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "SummaryStats":
        """Summary of *values*; the empty summary is all zeros.

        Empty-safe on purpose: telemetry exports summarize whatever a run
        produced, including nothing, and must not raise mid-export.
        """
        if not len(values):
            return cls(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, max=0.0)
        arr = np.asarray(values, dtype=np.float64)
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            p99=float(np.percentile(arr, 99)),
            max=float(arr.max()),
        )

    def row(self) -> Dict[str, float]:
        """Dict form for table printers."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }

    def to_dict(self) -> Dict[str, float]:
        """JSON-ready dict form (alias of :meth:`row`)."""
        return self.row()


def normalized_against(
    values: Dict[str, float], baseline_key: str
) -> Dict[str, float]:
    """Each entry divided by the baseline entry (Figures 12/13/18 style)."""
    if baseline_key not in values:
        raise ReproError(f"baseline {baseline_key!r} missing from {sorted(values)}")
    base = values[baseline_key]
    if base == 0:
        raise ReproError("cannot normalize against a zero baseline")
    return {key: value / base for key, value in values.items()}


def ks_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Two-sample Kolmogorov-Smirnov distance between empirical CDFs.

    Used by the Figure 7 cross-validation to quantify how closely the Maze
    emulation and the packet simulator agree.
    """
    xa, pa = empirical_cdf(a)
    xb, pb = empirical_cdf(b)
    grid = np.union1d(xa, xb)
    ca = np.searchsorted(xa, grid, side="right") / len(xa)
    cb = np.searchsorted(xb, grid, side="right") / len(xb)
    return float(np.abs(ca - cb).max())
