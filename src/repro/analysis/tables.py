"""Paper-style table and series printers for the benchmark harness.

Benchmarks print their results through these helpers so every experiment's
output has the same shape: a title, column headers, aligned rows, and an
optional "paper reports" reference column for eyeball comparison.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Mapping[str, Sequence],
    float_format: str = "{:.2f}",
) -> str:
    """Render ``rows[label] -> values`` as an aligned text table."""
    header = ["" ] + list(columns)
    body: List[List[str]] = []
    for label, values in rows.items():
        rendered = [label]
        for value in values:
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        body.append(rendered)
    widths = [
        max(len(row[i]) for row in [header] + body) for i in range(len(header))
    ]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in body:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    xs: Sequence,
    series: Mapping[str, Sequence[float]],
    float_format: str = "{:.3f}",
) -> str:
    """Render one or more y-series against a shared x axis (figure data)."""
    columns = [x_label] + list(series)
    body: List[List[str]] = []
    for i, x in enumerate(xs):
        row = [str(x)]
        for name in series:
            value = series[name][i]
            row.append(
                float_format.format(value) if isinstance(value, float) else str(value)
            )
        body.append(row)
    widths = [max(len(r[i]) for r in [columns] + body) for i in range(len(columns))]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(c.ljust(w) for c, w in zip(columns, widths)))
    for row in body:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_comparison(
    title: str,
    measured: Mapping[str, float],
    paper: Optional[Mapping[str, float]] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Measured-vs-paper two-column comparison."""
    lines = [title, "-" * len(title)]
    width = max((len(k) for k in measured), default=0)
    for key, value in measured.items():
        line = f"{key.ljust(width)}  measured={float_format.format(value)}"
        if paper and key in paper:
            line += f"  paper={float_format.format(paper[key])}"
        lines.append(line)
    return "\n".join(lines)
