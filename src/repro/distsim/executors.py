"""Shard executors: in-process (virtual) and multiprocessing back ends.

Both implement one interface the coordinator drives:

* ``start(...)`` — build the K shards, return their initial next-event
  times;
* ``run_round(end_ns, messages_by_shard, at_grid)`` — run one conservative
  window on every shard, return the per-shard round reports;
* ``finalize(duration_ns)`` — collect the per-shard result dicts;
* ``close()`` — tear down.

:class:`VirtualShardExecutor` runs every :class:`~repro.distsim.shard.
ShardSim` in the calling process — fully deterministic, debuggable with a
plain debugger, and what the tests and differential oracles use.
:class:`ProcessShardExecutor` runs one worker process per shard over
``multiprocessing`` pipes for actual parallelism; the protocol (and
therefore the simulated outcome) is identical, only the transport differs.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from .shard import ShardSim, shard_worker


class VirtualShardExecutor:
    """All shards in the calling process, stepped round-robin."""

    name = "virtual"

    def __init__(self) -> None:
        self._shards: List[ShardSim] = []

    def start(self, topology, trace, config, partition, telemetry_config) -> List[Optional[int]]:
        self._shards = [
            ShardSim(
                topology,
                trace,
                config,
                shard_id,
                partition.nodes_of(shard_id),
                telemetry_config,
            )
            for shard_id in range(partition.k)
        ]
        return [shard.next_event_time() for shard in self._shards]

    def run_round(
        self,
        end_ns: int,
        messages_by_shard: Sequence[Sequence[Tuple[int, int, int, object]]],
        at_grid: bool,
    ) -> List[tuple]:
        return [
            shard.run_round(end_ns, messages_by_shard[shard.shard_id], at_grid)
            for shard in self._shards
        ]

    def finalize(self, duration_ns: int) -> List[dict]:
        return [shard.finalize(duration_ns) for shard in self._shards]

    def close(self) -> None:
        self._shards = []


class ProcessShardExecutor:
    """One worker process per shard, commanded over duplex pipes.

    Rounds are dispatched to every worker before any reply is awaited, so
    shards genuinely execute their windows concurrently; the coordinator's
    barrier is the reply collection.  ``fork`` is preferred (the workers
    inherit the topology/trace without pickling them); where unavailable
    the spawn context works too since every shipped object pickles.
    """

    name = "process"

    def __init__(self, mp_context: Optional[str] = None) -> None:
        if mp_context is None:
            mp_context = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
        self._ctx = multiprocessing.get_context(mp_context)
        self._workers: List[multiprocessing.Process] = []
        self._pipes: List = []

    def start(self, topology, trace, config, partition, telemetry_config) -> List[Optional[int]]:
        initial: List[Optional[int]] = []
        for shard_id in range(partition.k):
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            worker = self._ctx.Process(
                target=shard_worker,
                args=(
                    child_conn,
                    topology,
                    trace,
                    config,
                    shard_id,
                    partition.nodes_of(shard_id),
                    telemetry_config,
                ),
                daemon=True,
            )
            worker.start()
            child_conn.close()
            self._workers.append(worker)
            self._pipes.append(parent_conn)
        for shard_id, conn in enumerate(self._pipes):
            initial.append(self._expect(conn, shard_id, "ready"))
        return initial

    def run_round(
        self,
        end_ns: int,
        messages_by_shard: Sequence[Sequence[Tuple[int, int, int, object]]],
        at_grid: bool,
    ) -> List[tuple]:
        for shard_id, conn in enumerate(self._pipes):
            conn.send(("round", end_ns, list(messages_by_shard[shard_id]), at_grid))
        return [
            self._expect(conn, shard_id, "ok")
            for shard_id, conn in enumerate(self._pipes)
        ]

    def finalize(self, duration_ns: int) -> List[dict]:
        for conn in self._pipes:
            conn.send(("finalize", duration_ns))
        return [
            self._expect(conn, shard_id, "ok")
            for shard_id, conn in enumerate(self._pipes)
        ]

    def close(self) -> None:
        for conn in self._pipes:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for worker in self._workers:
            worker.join(timeout=10)
            if worker.is_alive():  # pragma: no cover - stuck worker
                worker.terminate()
                worker.join(timeout=5)
        self._workers = []
        self._pipes = []

    def _expect(self, conn, shard_id: int, want: str):
        try:
            tag, payload = conn.recv()
        except EOFError as exc:
            raise SimulationError(f"shard {shard_id} worker died") from exc
        if tag == "error":
            raise SimulationError(f"shard {shard_id} failed: {payload}")
        if tag != want:  # pragma: no cover - protocol guard
            raise SimulationError(
                f"shard {shard_id} replied {tag!r}, expected {want!r}"
            )
        return payload


#: Executor registry for CLI/experiments string knobs.
EXECUTORS = {
    "virtual": VirtualShardExecutor,
    "process": ProcessShardExecutor,
}


def make_executor(name: str):
    """Instantiate an executor by name (``"virtual"`` or ``"process"``)."""
    try:
        return EXECUTORS[name]()
    except KeyError:
        raise SimulationError(
            f"unknown shard executor {name!r}; choose from {sorted(EXECUTORS)}"
        ) from None
