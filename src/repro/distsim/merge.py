"""Merging shard results back into serial-equivalent aggregates.

The sharded engine proves its correctness by *byte-identity*: merging the
K shards' flow states, port statistics and telemetry snapshots must yield
exactly what the serial engine produces for the same seeds.  The merge
rules below lean on three structural facts:

* :class:`~repro.sim.flows.SimFlow` fields split cleanly into sender-side
  (written only at ``flow.src``'s shard) and receiver-side (written only at
  ``flow.dst``'s shard), so a merged flow is the field-wise union of the
  two owning replicas;
* every output port lives in exactly one shard (the one owning its sending
  node), so port statistics concatenate in global link order;
* telemetry counters and histogram buckets are *sums of increments*, each
  increment attributed to exactly one owned node or port, so
  :func:`repro.telemetry.merge_snapshots` reassembles the serial totals.

Two quantities are executor-dependent by construction and excluded from
the canonical digests: ``events_processed`` (per-shard epoch ticks and
boundary hand-off events change scheduler accounting without changing any
simulated outcome) and wall-clock measurements (``wallclock_s``,
``recompute_overheads``).  Gauges are last-writer-wins point-in-time
values; the merge keeps a gauge when every shard that set it agrees (the
common case — they are deterministic replicas) and takes the maximum
otherwise (``controller.table_flows``, whose serial "last writer" is an
arbitrary controller).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..sim.flows import SimFlow
from ..sim.metrics import LatencyReservoir, SimMetrics
from ..telemetry.registry import merge_snapshots
from ..workloads.generator import FlowArrival

#: SimFlow fields written only by the sender-side stack (``flow.src``).
#: ``total_segments`` is sender-side: the reliable transport writes it at
#: ``start_flow`` (the receiver derives its own count locally).
SENDER_FIELDS = ("bytes_sent", "next_seq", "sender_done_ns", "total_segments")

#: SimFlow fields written only by the receiver-side stack (``flow.dst``).
RECEIVER_FIELDS = (
    "bytes_received",
    "completed_ns",
    "expected_seq",
    "reorder_buffer",
    "max_reorder_buffer",
    "received_seqs",
)

#: Gauges whose merged value is executor-dependent (see module docstring);
#: :func:`comparable_snapshot` drops them before equality checks.
EXECUTOR_DEPENDENT_GAUGES = ("sim.events_processed", "controller.table_flows")


def sender_state(flow: SimFlow) -> Tuple:
    """The sender-side field values of one shard's flow replica."""
    return tuple(getattr(flow, name) for name in SENDER_FIELDS)


def receiver_state(flow: SimFlow) -> Tuple:
    """The receiver-side field values of one shard's flow replica."""
    return tuple(getattr(flow, name) for name in RECEIVER_FIELDS)


def merge_flows(
    trace: Sequence[FlowArrival],
    sender_states: Dict[int, Tuple],
    receiver_states: Dict[int, Tuple],
) -> List[SimFlow]:
    """Rebuild the serial flow list from per-shard sender/receiver halves.

    Order matches the serial engine exactly: one flow per trace entry, in
    trace order.
    """
    flows: List[SimFlow] = []
    for arrival in trace:
        flow = SimFlow(arrival)
        for name, value in zip(SENDER_FIELDS, sender_states[arrival.flow_id]):
            setattr(flow, name, value)
        for name, value in zip(RECEIVER_FIELDS, receiver_states[arrival.flow_id]):
            setattr(flow, name, value)
        flows.append(flow)
    return flows


def merge_port_stats(
    topology, per_shard_ports: Sequence[Dict[Tuple[int, int], Tuple[int, int, int, int]]]
) -> Tuple[List[int], int, int, int]:
    """Merge per-shard port statistics in global link order.

    Each shard reports ``{(src, dst): (bytes_sent, max_occupancy, drops,
    wire_losses)}`` for the ports it owns; exactly one shard owns each
    link.  Returns ``(max_occupancies, total_bytes, total_drops,
    total_wire_losses)`` with the occupancy list in ``topology.links``
    order — the same order the serial network reports.
    """
    combined: Dict[Tuple[int, int], Tuple[int, int, int, int]] = {}
    for ports in per_shard_ports:
        combined.update(ports)
    max_occupancies: List[int] = []
    total_bytes = 0
    total_drops = 0
    total_losses = 0
    for link in topology.links:
        stats = combined.get((link.src, link.dst))
        if stats is None:
            continue
        bytes_sent, max_occ, drops, losses = stats
        max_occupancies.append(max_occ)
        total_bytes += bytes_sent
        total_drops += drops
        total_losses += losses
    return max_occupancies, total_bytes, total_drops, total_losses


def merge_latency(
    reservoirs: Sequence[Dict[str, object]], capacity: int = 8192
) -> LatencyReservoir:
    """Merge per-shard latency reservoirs.

    The exact aggregates (count, total, max) merge exactly; the sample list
    is the shard-order concatenation truncated to capacity, so percentile
    *estimates* match the serial run whenever the total count fits the
    reservoir (every latency was retained on both sides — same multiset),
    and remain unbiased-ish estimates beyond that.
    """
    merged = LatencyReservoir(capacity=capacity)
    samples: List[int] = []
    for entry in reservoirs:
        merged.count += entry["count"]
        merged.total_ns += entry["total_ns"]
        merged.max_ns = max(merged.max_ns, entry["max_ns"])
        samples.extend(entry["samples"])
    merged._samples = samples[:capacity]
    return merged


def merge_recompute(
    per_shard: Sequence[Dict[int, list]],
) -> list:
    """Flatten per-node recompute stats in global node order.

    Mirrors ``PerNodeControlPlane.recompute_stats`` on the serial engine,
    which extends per-controller lists in ascending node order.
    """
    by_node: Dict[int, list] = {}
    for shard_stats in per_shard:
        by_node.update(shard_stats)
    stats: list = []
    for node in sorted(by_node):
        stats.extend(by_node[node])
    return stats


def merge_telemetry_snapshots(snapshots: Sequence[Optional[dict]]) -> Optional[dict]:
    """Merge shard telemetry snapshots plus the coordinator's finalize pass.

    Counters and histograms are sums of per-shard increments and go through
    :func:`repro.telemetry.merge_snapshots`.  Gauges are not additive: each
    is kept when all writers agree (deterministic replicas, e.g.
    ``broadcast.fib_entries``) and collapsed to the maximum otherwise.
    """
    present = [s for s in snapshots if s]
    if not present:
        return None
    stripped = [
        {k: v for k, v in snap.items() if k != "gauges"} for snap in present
    ]
    merged = merge_snapshots(stripped)
    gauges: Dict[str, List[float]] = {}
    for snap in present:
        for name, value in snap.get("gauges", {}).items():
            gauges.setdefault(name, []).append(value)
    merged["gauges"] = {
        name: (values[0] if all(v == values[0] for v in values) else max(values))
        for name, values in sorted(gauges.items())
    }
    return merged


# ----------------------------------------------------------------------
# Canonical digests (what "byte-identical" means, precisely)
# ----------------------------------------------------------------------
def canonical_flow(flow: SimFlow) -> dict:
    """All simulation-semantic fields of one flow, JSON-ready."""
    return {
        "flow_id": flow.flow_id,
        "src": flow.src,
        "dst": flow.dst,
        "size_bytes": flow.size_bytes,
        "start_ns": flow.start_ns,
        "bytes_sent": flow.bytes_sent,
        "bytes_received": flow.bytes_received,
        "next_seq": flow.next_seq,
        "sender_done_ns": flow.sender_done_ns,
        "completed_ns": flow.completed_ns,
        "expected_seq": flow.expected_seq,
        "reorder_buffer": sorted(flow.reorder_buffer),
        "max_reorder_buffer": flow.max_reorder_buffer,
        "received_seqs": (
            None if flow.received_seqs is None else sorted(flow.received_seqs)
        ),
        "total_segments": flow.total_segments,
    }


def canonical_metrics(metrics: SimMetrics) -> dict:
    """Every deterministic quantity of a run, for exact-equality checks.

    Excludes only the executor-dependent scheduler accounting
    (``events_processed``), wall-clock measurements and the (sampling-order
    dependent) reservoir sample list; the reservoir's exact aggregates are
    kept.
    """
    return {
        "duration_ns": metrics.duration_ns,
        "flows": [canonical_flow(f) for f in metrics.flows],
        "max_queue_occupancy_bytes": list(metrics.max_queue_occupancy_bytes),
        "broadcast_bytes": metrics.broadcast_bytes,
        "broadcast_packets": metrics.broadcast_packets,
        "ack_bytes": metrics.ack_bytes,
        "data_bytes_on_wire": metrics.data_bytes_on_wire,
        "total_bytes_on_wire": metrics.total_bytes_on_wire,
        "drops": metrics.drops,
        "wire_losses": metrics.wire_losses,
        "epochs_recomputed": metrics.epochs_recomputed,
        "epochs_skipped": metrics.epochs_skipped,
        "packet_latency": {
            "count": metrics.packet_latency.count,
            "total_ns": metrics.packet_latency.total_ns,
            "max_ns": metrics.packet_latency.max_ns,
        },
    }


def _canonical_histogram(hist: dict) -> dict:
    """Round a histogram's float aggregates to reassociation precision.

    Bucket counts — the histogram proper — are integral and compare
    exactly.  The ``sum`` aggregate of a float-valued histogram (e.g.
    ``link.utilization``) is merged by adding K per-shard partial sums,
    which regroups the serial run's addition order; IEEE addition is not
    associative, so the merged sum can differ in the last ulp.  Ten
    significant digits is far below any quantity the analyses read and far
    above reassociation noise.
    """
    out = dict(hist)
    for key in ("sum", "min", "max"):
        value = out.get(key)
        if isinstance(value, float):
            out[key] = float(f"{value:.10g}")
    return out


def comparable_snapshot(snapshot: Optional[dict]) -> Optional[dict]:
    """Project a telemetry snapshot onto its executor-independent parts.

    Counters and histogram bucket counts compare exactly (float histogram
    aggregates at reassociation precision — see
    :func:`_canonical_histogram`).  Time series are per-session recordings
    that :func:`repro.telemetry.merge_snapshots` does not merge, and two
    gauges are last-writer/scheduler artifacts (see
    :data:`EXECUTOR_DEPENDENT_GAUGES`); those are dropped.
    """
    if snapshot is None:
        return None
    return {
        "counters": dict(snapshot.get("counters", {})),
        "gauges": {
            name: value
            for name, value in snapshot.get("gauges", {}).items()
            if name not in EXECUTOR_DEPENDENT_GAUGES
        },
        "histograms": {
            name: _canonical_histogram(hist)
            for name, hist in snapshot.get("histograms", {}).items()
        },
    }
