"""Sharded parallel discrete-event simulation (conservative protocol).

Splits one simulation across K event loops — one per topology shard — and
exchanges cross-shard packets as timestamped messages under a conservative
synchronization protocol whose lookahead is the minimum cut-link latency.
The defining property is *byte-identity*: for any supported configuration,
a K-shard run produces exactly the serial engine's metrics, flow states
and (merged) telemetry counters for the same seeds — parallelism is an
executor choice, never a semantics choice.

Public surface:

* :func:`run_sharded_simulation` — the sharded counterpart of
  :func:`repro.sim.runner.run_simulation`; returns a
  :class:`DistSimResult`.
* :class:`VirtualShardExecutor` / :class:`ProcessShardExecutor` — the two
  back ends behind one interface (in-process for tests/oracles/debugging,
  ``multiprocessing`` pipes for actual parallelism).
* :func:`canonical_metrics` / :func:`comparable_snapshot` — the precise
  equality surface the sharded-vs-serial differential oracle asserts.
* :func:`validate_sharded_config` — which configurations shard (and why
  the rest refuse).

Topology cuts live in :mod:`repro.topology.partition`; see DESIGN.md §6d
for the protocol, the lookahead derivation and the determinism argument.
"""

from .coordinator import (
    DistSimResult,
    run_sharded_simulation,
    validate_sharded_config,
)
from .executors import (
    EXECUTORS,
    ProcessShardExecutor,
    VirtualShardExecutor,
    make_executor,
)
from .merge import canonical_flow, canonical_metrics, comparable_snapshot
from .shard import ShardSim

__all__ = [
    "DistSimResult",
    "EXECUTORS",
    "ProcessShardExecutor",
    "ShardSim",
    "VirtualShardExecutor",
    "canonical_flow",
    "canonical_metrics",
    "comparable_snapshot",
    "make_executor",
    "run_sharded_simulation",
    "validate_sharded_config",
]
