"""The conservative synchronization protocol and result assembly.

:func:`run_sharded_simulation` reproduces :func:`repro.sim.runner.
run_simulation` exactly, with the event processing spread over K shards.

Protocol (synchronous conservative windows):

1. Let ``T_min`` be the global lower bound on unexecuted virtual time: the
   minimum over every shard's next pending event and every in-flight
   boundary message's arrival time.
2. Lookahead: a cut-crossing packet emitted at ``t`` (transmission finish)
   arrives at ``t + L_link >= t + L`` where ``L`` is the minimum cut-link
   latency.  Since no shard can act before ``T_min``, no new cross-shard
   arrival can land at or before ``E = T_min + L - 1``.
3. Every shard therefore safely executes the window ``(now, E]``; windows
   are additionally capped at the serial engine's progress-grid boundaries
   (``progress_chunk_ns``), where termination checks and link-probe
   samples happen exactly as the serial loop does them.
4. Boundary messages collected from round *r* are routed and injected at
   the start of round *r+1*, sorted by ``(arrival, emit_ns, src_shard,
   emit_idx)`` and scheduled with their cut link's delivery priority
   (:func:`repro.sim.network.link_prio`).  The event loop orders
   same-instant deliveries by link identity in *both* engines, so an
   injected arrival sorts against the destination shard's local events
   exactly as the serial propagation event would; the canonical sort
   merely keeps same-link injections FIFO and the injection order
   deterministic across executors.

Termination replicates the serial loop decision-for-decision: at each grid
boundary, stop when every flow has completed, when no events remain
anywhere (all heaps drained and no messages in flight), or at the horizon;
``duration_ns`` is that boundary.  See DESIGN.md §6d for the determinism
argument and its boundary conditions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..sim.metrics import SimMetrics
from ..sim.runner import SimConfig, _default_horizon, _finalize_telemetry
from ..topology.base import Topology
from ..topology.partition import Partition
from ..workloads.generator import FlowArrival
from .executors import make_executor
from ..obs import ObsSession
from ..telemetry.trace import merge_trace_documents
from .merge import (
    merge_flows,
    merge_latency,
    merge_port_stats,
    merge_recompute,
    merge_telemetry_snapshots,
)


@dataclass
class DistSimResult:
    """A sharded run's merged results plus protocol bookkeeping."""

    metrics: SimMetrics
    #: Merged telemetry snapshot (``None`` when telemetry was off).  The
    #: serial engine mutates a caller-provided registry; shards each own a
    #: private registry, so the merged *snapshot* is the deliverable here.
    telemetry_snapshot: Optional[dict]
    shards: int
    executor: str
    lookahead_ns: Optional[int]
    rounds: int = 0
    boundary_messages: int = 0
    shard_sizes: Tuple[int, ...] = ()
    cut_links: int = 0
    #: Synchronization-protocol profile (rounds, window sizes, lookahead
    #: utilization, per-shard blocked/executing wall time).  Wall-clock
    #: quantities live here, never in :attr:`metrics` — the merged
    #: ``SimMetrics`` must stay byte-identical to the serial run's.
    sync_profile: Optional[dict] = None
    #: Merged Chrome trace document (``None`` when tracing was off).
    trace_document: Optional[dict] = None


def validate_sharded_config(config: SimConfig, telemetry_config=None) -> None:
    """Reject configurations whose shared state defeats shard isolation.

    These are structural, not incidental: the shared control plane updates
    one global table at sender-emit time (zero lookahead), PFQ's
    coordinator applies instantaneous cross-node backpressure, and the
    flight recorder is a single bounded ring whose eviction order is only
    meaningful within one event loop.  Each has an exact-per-shard or
    serial alternative, named in the error.

    Tracing *does* shard: every trace event carries simulated-time order
    metadata, and the coordinator merges per-shard recorders into a
    document whose mergeable tracks are byte-identical to a serial trace
    (see :func:`repro.telemetry.trace.merge_trace_documents`).

    Wire loss (``loss_rate > 0``) and auditing (``audit=True``) are
    simulation semantics, not executor policy, and *do* shard: loss draws
    come from per-port RNG streams keyed by link identity, and each shard
    runs its own auditor whose report the coordinator merges
    (:func:`repro.validation.auditor.merge_audit_reports`).
    """
    if config.stack == "pfq":
        raise SimulationError(
            "sharded execution does not support the pfq stack: its "
            "coordinator applies instantaneous cross-node backpressure "
            "(zero lookahead); run pfq serially"
        )
    if config.stack == "r2c2" and config.control_plane != "per_node":
        raise SimulationError(
            "sharded r2c2 requires control_plane='per_node': the shared "
            "control plane updates one rack-wide table at sender-emit time, "
            "which has zero lookahead across shards; per-node controllers "
            "are updated by actual broadcast deliveries and shard exactly"
        )
    if config.flight:
        raise SimulationError(
            "sharded execution does not support the flight recorder: its "
            "bounded ring evicts in one event loop's execution order, "
            "which K independent loops cannot reproduce; record a serial "
            "run of the same seed"
        )


def run_sharded_simulation(
    topology: Topology,
    trace: Sequence[FlowArrival],
    config: Optional[SimConfig] = None,
    shards: int = 2,
    executor="virtual",
    telemetry_config=None,
    partition: Optional[Partition] = None,
    partition_strategy: str = "auto",
) -> DistSimResult:
    """Simulate *trace* on *topology* split across *shards* event loops.

    Byte-identical to :func:`repro.sim.runner.run_simulation` for the same
    config and seeds (see :func:`repro.distsim.merge.canonical_metrics`
    for the precise equality surface, and ``validate_sharded_config`` for
    the configurations where sharding is refused).

    Args:
        shards: Number of shards (K >= 1; K=1 degenerates to a serial run
            under the windowed protocol — useful for protocol tests).
        executor: ``"virtual"`` (in-process), ``"process"``
            (multiprocessing), or an executor instance.
        telemetry_config: Optional :class:`~repro.telemetry.
            TelemetryConfig`.  The merged metrics snapshot is returned in
            :attr:`DistSimResult.telemetry_snapshot`; with ``trace=True``
            the merged trace document (mergeable tracks only) is returned
            in :attr:`DistSimResult.trace_document`.
        partition: Pre-built :class:`Partition` (overrides *shards* /
            *partition_strategy*).
    """
    config = config or SimConfig()
    validate_sharded_config(config, telemetry_config)
    if not trace:
        raise SimulationError("empty flow trace")
    for arrival in trace:
        if arrival.src == arrival.dst:
            raise SimulationError(f"flow {arrival.flow_id} has src == dst")
    if len({a.flow_id for a in trace}) != len(trace):
        raise SimulationError("duplicate flow ids in trace")

    if partition is None:
        partition = topology.partition(shards, strategy=partition_strategy)
    if isinstance(executor, str):
        executor = make_executor(executor)

    lookahead = partition.lookahead_ns()
    if lookahead is not None and lookahead < 1:
        # A zero-latency cut link would allow same-instant cross-shard
        # causality, which windowed execution cannot order.
        raise SimulationError(
            "cannot shard across zero-latency links (lookahead would be 0); "
            "choose a partition whose cut links all have latency >= 1 ns"
        )

    horizon = config.horizon_ns
    if horizon is None:
        horizon = _default_horizon(topology, trace)
    chunk = max(config.progress_chunk_ns, 1)
    n_flows = len(trace)

    started_wall = time.perf_counter()
    result = DistSimResult(
        metrics=SimMetrics(),
        telemetry_snapshot=None,
        shards=partition.k,
        executor=getattr(executor, "name", type(executor).__name__),
        lookahead_ns=lookahead,
        shard_sizes=tuple(len(partition.nodes_of(s)) for s in range(partition.k)),
        cut_links=len(partition.cut_edges()),
    )

    try:
        shard_next = executor.start(
            topology, trace, config, partition, telemetry_config
        )
        pending: List[List[Tuple[int, int, int, int, int, int, object]]] = [
            [] for _ in range(partition.k)
        ]
        now = 0
        next_grid = min(chunk, horizon)
        duration: Optional[int] = None
        window_sum_ns = 0
        util_sum = 0.0
        util_rounds = 0
        while duration is None:
            t_min: Optional[int] = None
            for t in shard_next:
                if t is not None and (t_min is None or t < t_min):
                    t_min = t
            for route in pending:
                for message in route:
                    if t_min is None or message[0] < t_min:
                        t_min = message[0]
            if lookahead is None or t_min is None:
                end_ns = next_grid
            else:
                end_ns = min(t_min + lookahead - 1, next_grid)
            at_grid = end_ns == next_grid

            messages_by_shard = []
            for shard_id in range(partition.k):
                # Canonical injection order: arrival, then emission time
                # (the serial tie-breaker), then source shard, then
                # emission index.
                route = sorted(
                    pending[shard_id],
                    key=lambda m: (m[0], m[1], m[3], m[2]),
                )
                messages_by_shard.append([(m[0], m[4], m[5], m[6]) for m in route])
            pending = [[] for _ in range(partition.k)]

            reports = executor.run_round(end_ns, messages_by_shard, at_grid)
            result.rounds += 1
            window_ns = end_ns - now
            window_sum_ns += window_ns
            if lookahead is not None:
                # How much of the safe lookahead horizon each round
                # actually advanced; grid caps can make this exceed 1.
                util_sum += min(1.0, window_ns / lookahead)
                util_rounds += 1
            now = end_ns

            completed_total = 0
            for src_shard, (outbox, next_time, completed) in enumerate(reports):
                shard_next[src_shard] = next_time
                if completed is not None:
                    completed_total += completed
                for arrival_ns, emit_ns, emit_idx, src, dst, packet in outbox:
                    result.boundary_messages += 1
                    pending[partition.shard_of(dst)].append(
                        (arrival_ns, emit_ns, emit_idx, src_shard, src, dst, packet)
                    )

            if at_grid:
                if completed_total == n_flows:
                    duration = now
                elif all(t is None for t in shard_next) and not any(pending):
                    duration = now
                elif now >= horizon:
                    duration = now
                else:
                    next_grid = min(now + chunk, horizon)

        shard_results = executor.finalize(duration)
    finally:
        executor.close()

    _merge_results(result, topology, trace, config, duration, shard_results)
    shard_syncs = [
        s.get("sync") for s in sorted(shard_results, key=lambda r: r["shard_id"])
    ]
    result.sync_profile = {
        "rounds": result.rounds,
        "boundary_messages": result.boundary_messages,
        "lookahead_ns": lookahead,
        "mean_window_ns": (
            window_sum_ns / result.rounds if result.rounds else None
        ),
        "lookahead_utilization": (
            util_sum / util_rounds if util_rounds else None
        ),
        "blocked_s": sum(s["blocked_s"] for s in shard_syncs if s),
        "exec_s": sum(s["exec_s"] for s in shard_syncs if s),
        "shards": shard_syncs,
    }
    result.metrics.wallclock_s = time.perf_counter() - started_wall
    return result


def _merge_results(
    result: DistSimResult,
    topology: Topology,
    trace: Sequence[FlowArrival],
    config: SimConfig,
    duration_ns: int,
    shard_results: List[dict],
) -> None:
    """Assemble the serial-equivalent ``SimMetrics`` (and telemetry)."""
    shard_results = sorted(shard_results, key=lambda r: r["shard_id"])
    senders: Dict[int, tuple] = {}
    receivers: Dict[int, tuple] = {}
    for shard in shard_results:
        senders.update(shard["senders"])
        receivers.update(shard["receivers"])

    metrics = result.metrics
    metrics.flows = merge_flows(trace, senders, receivers)
    (
        metrics.max_queue_occupancy_bytes,
        metrics.total_bytes_on_wire,
        metrics.drops,
        metrics.wire_losses,
    ) = merge_port_stats(topology, [shard["ports"] for shard in shard_results])
    metrics.broadcast_bytes = sum(s["broadcast_bytes"] for s in shard_results)
    metrics.broadcast_packets = sum(s["broadcast_packets"] for s in shard_results)
    metrics.ack_bytes = sum(s["ack_bytes"] for s in shard_results)
    metrics.data_bytes_on_wire = (
        metrics.total_bytes_on_wire - metrics.broadcast_bytes - metrics.ack_bytes
    )
    metrics.events_processed = sum(s["events_processed"] for s in shard_results)
    metrics.duration_ns = duration_ns
    metrics.packet_latency = merge_latency([s["latency"] for s in shard_results])
    stats = merge_recompute([s["recompute"] for s in shard_results])
    if stats:
        metrics.recompute_overheads = [s.cpu_overhead for s in stats]
        metrics.epochs_skipped = sum(1 for s in stats if s.skipped)
        metrics.epochs_recomputed = len(stats) - metrics.epochs_skipped

    if config.audit:
        from ..validation.auditor import merge_audit_reports

        metrics.audit = merge_audit_reports(
            [s["audit"] for s in shard_results],
            flows=metrics.flows,
            drained=all(s["drained"] for s in shard_results),
            strict=config.audit_strict,
        )

    shard_obs = [s.get("flow_obs") for s in shard_results]
    if any(part is not None for part in shard_obs):
        metrics.flow_obs = ObsSession.merge(
            [part for part in shard_obs if part is not None]
        )

    shard_events = [s.get("trace_events") for s in shard_results]
    if any(events is not None for events in shard_events):
        result.trace_document = merge_trace_documents(
            [events or [] for events in shard_events],
            truncated=any(s.get("trace_truncated") for s in shard_results),
        )

    shard_snapshots = [s["telemetry"] for s in shard_results]
    if any(snapshot for snapshot in shard_snapshots):
        # One finalize pass over the *merged* metrics, exactly like the
        # serial runner's end-of-run rollup, then merge with the per-shard
        # snapshots (disjoint instrument sets: wire.*/sim.*/the
        # max-occupancy histogram come only from this pass).
        from ..telemetry import Telemetry, TelemetryConfig

        final_session = Telemetry(TelemetryConfig(metrics=True, trace=False))
        _finalize_telemetry(final_session, metrics)
        result.telemetry_snapshot = merge_telemetry_snapshots(
            shard_snapshots + [final_session.metrics.snapshot()]
        )
