"""One shard of a sharded simulation: build, windowed execution, results.

A :class:`ShardSim` is the serial engine restricted to one shard's nodes:
the same build sequence as :func:`repro.sim.runner.run_simulation` (stacks,
control plane, FIB, arrival scheduling — in the same order, so event-loop
sequence numbers assign identically), except that

* only ports/stacks/controllers of *owned* nodes exist,
* cut ports hand finished packets to the boundary outbox instead of
  scheduling local propagation (see ``RackNetwork(owned_nodes=...)``), and
* the event loop advances in externally granted windows
  (:meth:`run_round`) instead of free-running.

The coordinator (:mod:`repro.distsim.coordinator`) owns all global
decisions — window sizing, message routing, termination, merging — so this
class stays executor-agnostic: the in-process executor calls it directly
and the multiprocessing executor drives the identical object over a pipe
(:func:`shard_worker`).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..sim.engine import EventLoop
from ..sim.flows import SimFlow
from ..sim.metrics import SimMetrics
from ..sim.network import link_prio
from ..sim.runner import SimConfig, _build_r2c2, _build_tcp
from ..topology.base import Topology
from ..workloads.generator import FlowArrival
from .merge import receiver_state, sender_state

#: A cross-shard packet hand-off: emitted when a cut port finishes
#: serializing.  ``emit_ns`` is the transmission-finish time (the instant
#: the serial engine would have scheduled the propagation event) and
#: ``emit_idx`` preserves same-instant emission order within the shard —
#: together a deterministic routing order for the coordinator.  ``src`` is
#: the cut link's sending node: the receiving shard schedules the arrival
#: with that link's delivery priority (:func:`repro.sim.network.link_prio`),
#: which is how an injected event sorts against the destination's
#: same-instant local events exactly as the serial engine's propagation
#: event would.  Layout: (arrival_ns, emit_ns, emit_idx, src, dst, packet).
BoundaryMessage = Tuple[int, int, int, int, int, object]


class ShardSim:
    """One shard's event loop, network slice and stacks."""

    def __init__(
        self,
        topology: Topology,
        trace: Sequence[FlowArrival],
        config: SimConfig,
        shard_id: int,
        owned_nodes: Sequence[int],
        telemetry_config=None,
    ) -> None:
        self.shard_id = shard_id
        self.owned = frozenset(owned_nodes)
        self._n_nodes = topology.n_nodes
        self.loop = EventLoop()
        self.metrics = SimMetrics()
        self.flows: Dict[int, SimFlow] = {a.flow_id: SimFlow(a) for a in trace}
        self._trace = trace
        self._outbox: List[BoundaryMessage] = []
        self._recv_flows = [
            self.flows[a.flow_id] for a in trace if a.dst in self.owned
        ]

        self.telemetry = None
        if telemetry_config is not None and (
            telemetry_config.metrics or telemetry_config.trace
        ):
            # Per-link series are unmergeable (merge_snapshots drops
            # series), so shards skip them.  Traces *are* recorded when
            # asked: every shard keeps per-event (ts_ns, seq) order
            # metadata and the coordinator merges the streams
            # deterministically — but only executor-independent tracks
            # (see telemetry.trace.MERGEABLE_TRACKS), so event-loop batch
            # spans (windowed rounds, an executor artifact) and link-probe
            # counters (per-shard partial aggregates) stay out.
            from ..telemetry import Telemetry, TelemetryConfig

            self.telemetry = Telemetry(
                TelemetryConfig(
                    metrics=telemetry_config.metrics,
                    trace=telemetry_config.trace,
                    link_probe_interval_ns=telemetry_config.link_probe_interval_ns,
                    per_link_series=False,
                    packet_sample_every=telemetry_config.packet_sample_every,
                    trace_eventloop=False,
                    max_trace_events=telemetry_config.max_trace_events,
                )
            )

        # Causal critical-path tracing (repro.obs): each shard owns a
        # session; sender-side waits accumulate in the source node's shard
        # and travel on the packet as injection-time snapshots, completion
        # records freeze in the destination node's shard, and the
        # coordinator unions the (disjoint) completion maps.
        self.obs = None
        if config.obs:
            from ..obs import ObsSession

            self.obs = ObsSession()

        # Per-round synchronization accounting (the distsim sync profiler):
        # wall-clock blocked/executing split plus boundary-message traffic.
        # Wall-clock quantities stay on the DistSimResult — never in the
        # merged SimMetrics — so result dicts remain executor-independent.
        self._sync = {
            "rounds": 0,
            "boundary_in": 0,
            "boundary_out": 0,
            "blocked_s": 0.0,
            "exec_s": 0.0,
        }
        self._last_round_exit: Optional[float] = None

        self.auditor = None
        if config.audit:
            # Same wiring as the serial runner: the auditor observes this
            # shard's event loop, network slice and stacks.  The transit
            # (propagated == arrived) check is deferred to the coordinator,
            # which sums the per-shard counters (a cut port's packets arrive
            # in *another* shard's auditor); likewise the final per-flow
            # audit runs once over the merged flow states.
            from ..validation import InvariantAuditor

            self.auditor = InvariantAuditor(
                strict=config.audit_strict, telemetry=self.telemetry
            )
            self.auditor.attach_loop(self.loop)

        owned_sorted = sorted(self.owned)
        if config.stack == "r2c2":
            self.network, self.control = _build_r2c2(
                topology,
                self.loop,
                self.flows,
                self.metrics,
                config,
                provider=None,
                auditor=self.auditor,
                telemetry=self.telemetry,
                owned_nodes=owned_sorted,
                boundary=self._boundary,
                # Every shard builds an identical FIB; only shard 0 records
                # its (build-time) instruments so the merged registry counts
                # them once, like a serial run.
                fib_telemetry=(shard_id == 0),
                obs=self.obs,
            )
        elif config.stack == "tcp":
            self.network = _build_tcp(
                topology,
                self.loop,
                self.flows,
                self.metrics,
                config,
                auditor=self.auditor,
                owned_nodes=owned_sorted,
                boundary=self._boundary,
                obs=self.obs,
            )
            self.control = None
        else:
            raise SimulationError(
                f"stack {config.stack!r} does not support sharded execution"
            )
        if self.auditor is not None:
            for stack in self.network.stack_at:
                if stack is not None:
                    stack.auditor = self.auditor
            if self.control is not None:
                self.control.auditor = self.auditor

        self.probes = None
        if self.telemetry is not None and self.telemetry.metrics:
            # trace=False: probe counters are per-shard partial aggregates
            # with no exact merge, so they stay out of shard traces.
            self.probes = self.telemetry.link_probes(self.network, trace=False)

        # Arrival scheduling mirrors the serial runner: after the build, in
        # trace order, restricted to flows this shard sends.
        for arrival in trace:
            if arrival.src in self.owned:
                flow = self.flows[arrival.flow_id]
                self.loop.schedule_at(
                    arrival.start_ns,
                    lambda f=flow: self.network.stack_at[f.src].start_flow(f),
                )

    # ------------------------------------------------------------------
    def _boundary(self, arrival_ns: int, src: int, dst: int, packet) -> None:
        """Cut-port hand-off: record a timestamped cross-shard message."""
        self._outbox.append(
            (arrival_ns, self.loop.now, len(self._outbox), src, dst, packet)
        )

    def next_event_time(self) -> Optional[int]:
        """Earliest pending local event (lower bound on future emissions)."""
        return self.loop.next_event_time()

    def run_round(
        self,
        end_ns: int,
        messages: Sequence[Tuple[int, int, int, object]],
        at_grid: bool,
    ) -> Tuple[List[BoundaryMessage], Optional[int], Optional[int]]:
        """Inject *messages*, run the granted window, report back.

        Args:
            end_ns: Window edge; every local event with timestamp
                ``<= end_ns`` executes and the clock parks at ``end_ns``.
            messages: Cross-shard arrivals ``(arrival_ns, src, dst,
                packet)`` in the coordinator's canonical order; each is
                scheduled before the window runs (all arrivals are provably
                in the future — the conservative protocol guarantees it)
                with its cut link's delivery priority.
            at_grid: True when ``end_ns`` is a progress-grid boundary, where
                the serial engine samples link probes and checks
                termination; the shard mirrors the probe sample and reports
                its completed-flow count.

        Returns:
            ``(outbox, next_event_time, completed)`` — boundary messages
            emitted during the window, the earliest still-pending local
            event (``None`` if drained), and the number of owned completed
            flows (``None`` unless *at_grid*).
        """
        entered = time.perf_counter()
        sync = self._sync
        if self._last_round_exit is not None:
            # The gap since the previous round ended is coordinator wait:
            # barrier synchronization plus message routing.
            sync["blocked_s"] += entered - self._last_round_exit
        arrived = self.network.arrived
        schedule_at = self.loop.schedule_at
        n_nodes = self._n_nodes
        for arrival_ns, src, dst, packet in messages:
            schedule_at(
                arrival_ns,
                lambda d=dst, p=packet: arrived(d, p),
                link_prio(src, dst, n_nodes),
            )
        self.loop.run_window(end_ns)
        if at_grid and self.probes is not None:
            self.probes.maybe_sample(self.loop.now)
        outbox = self._outbox
        self._outbox = []
        completed = None
        if at_grid:
            completed = sum(1 for f in self._recv_flows if f.completed_ns is not None)
        exited = time.perf_counter()
        sync["rounds"] += 1
        sync["boundary_in"] += len(messages)
        sync["boundary_out"] += len(outbox)
        sync["exec_s"] += exited - entered
        self._last_round_exit = exited
        return outbox, self.loop.next_event_time(), completed

    def finalize(self, duration_ns: int) -> dict:
        """Collect this shard's contribution to the merged results."""
        if self.loop.now != duration_ns:
            raise SimulationError(
                f"shard {self.shard_id} clock at {self.loop.now} ns, "
                f"expected {duration_ns} ns"
            )
        if self.probes is not None:
            # The serial runner takes one unconditional final sample.
            self.probes.sample(self.loop.now)
        owned = self.owned
        ports = {
            (port.src, port.dst): (
                port.bytes_sent,
                port.max_occupancy_bytes,
                port.drops,
                port.wire_losses,
            )
            for port in self.network.ports()
        }
        recompute: Dict[int, list] = {}
        if self.control is not None:
            recompute = self.control.recompute_stats_by_node()
        drained = self.loop.pending() == 0
        audit = None
        if self.auditor is not None:
            # Per-shard end-of-run checks; the transit and final per-flow
            # checks belong to the coordinator (merge_audit_reports).
            self.auditor.check_conservation(drained=drained, check_transit=False)
            audit = self.auditor.report()
        reservoir = self.metrics.packet_latency
        return {
            "shard_id": self.shard_id,
            "senders": {
                a.flow_id: sender_state(self.flows[a.flow_id])
                for a in self._trace
                if a.src in owned
            },
            "receivers": {
                a.flow_id: receiver_state(self.flows[a.flow_id])
                for a in self._trace
                if a.dst in owned
            },
            "ports": ports,
            "broadcast_bytes": self.metrics.broadcast_bytes,
            "broadcast_packets": self.metrics.broadcast_packets,
            "ack_bytes": self.metrics.ack_bytes,
            "events_processed": self.loop.events_processed,
            "latency": {
                "count": reservoir.count,
                "total_ns": reservoir.total_ns,
                "max_ns": reservoir.max_ns,
                "samples": list(reservoir._samples),
            },
            "recompute": recompute,
            "drained": drained,
            "audit": audit,
            "telemetry": (
                self.telemetry.metrics.snapshot()
                if self.telemetry is not None and self.telemetry.metrics
                else None
            ),
            "trace_events": (
                self.telemetry.trace.export_events()
                if self.telemetry is not None and self.telemetry.trace
                else None
            ),
            "trace_truncated": (
                self.telemetry is not None and self.telemetry.trace.truncated
            ),
            "flow_obs": self.obs.results() if self.obs is not None else None,
            "sync": dict(self._sync),
        }


def shard_worker(conn, topology, trace, config, shard_id, owned_nodes, telemetry_config):
    """Child-process entry point for :class:`ProcessShardExecutor`.

    A tiny command loop over a duplex pipe: ``("round", end_ns, messages,
    at_grid)`` → round report, ``("finalize", duration_ns)`` → result dict,
    ``("stop",)`` → exit.  Any exception is shipped back as ``("error",
    repr)`` so the coordinator can fail loudly instead of deadlocking.
    """
    try:
        shard = ShardSim(
            topology, trace, config, shard_id, owned_nodes, telemetry_config
        )
        conn.send(("ready", shard.next_event_time()))
        while True:
            command = conn.recv()
            tag = command[0]
            if tag == "round":
                _, end_ns, messages, at_grid = command
                conn.send(("ok", shard.run_round(end_ns, messages, at_grid)))
            elif tag == "finalize":
                conn.send(("ok", shard.finalize(command[1])))
            elif tag == "stop":
                return
            else:  # pragma: no cover - protocol guard
                conn.send(("error", f"unknown command {tag!r}"))
                return
    except EOFError:  # pragma: no cover - parent died
        return
    except Exception as exc:  # noqa: BLE001 - relayed to the coordinator
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()
