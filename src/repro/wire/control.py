"""Control-plane messages for the ``repro serve`` daemon.

The rack controller daemon (:mod:`repro.service`) speaks a small binary
protocol over a stream transport.  Framing is a 4-byte big-endian length
prefix followed by the message body; bodies reuse the packet conventions of
:mod:`repro.wire.packets`: the high nibble of byte 0 is the message type,
fixed-width big-endian fields, and a 16-bit RFC 1071 Internet checksum
computed with the checksum field zeroed (store-zeroed convention, verified
by :func:`~repro.wire.checksum.internet_checksum` on decode).

Message types (continuing the packet-type code space of
:mod:`repro.wire.packets`, which ends at ``0x4``)::

    FLOW_ANNOUNCE  0x5  client -> daemon   announce/update one flow
    FLOW_FINISH    0x6  client -> daemon   retire one flow
    ALLOC_QUERY    0x7  client -> daemon   ask one flow's allocated rate
    ALLOC_REPLY    0x8  daemon -> client   rate + bottleneck (full f64)
    SNAPSHOT_SUB   0x9  client -> daemon   subscribe to telemetry snapshots
    SNAPSHOT_EVENT 0xA  daemon -> client   one JSON telemetry snapshot
    CONTROL_ACK    0xB  daemon -> client   announce/finish acknowledgement
    CONTROL_ERROR  0xC  daemon -> client   decode/dispatch failure report

Quantization follows the broadcast packet: allocation weight rides as an
unsigned byte in 1/16 steps and demand as 24-bit Mbps with the all-ones
value meaning "network limited" — the daemon allocates from the quantized
values, so a restored daemon and an uninterrupted one agree bit-for-bit.
"""

from __future__ import annotations

import json
import math
import struct
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..errors import WireFormatError
from ..types import FlowId, NodeId
from .checksum import internet_checksum
from .packets import _DEMAND_INF_MBPS, _WEIGHT_SCALE

#: Control-message type codes (high nibble of body byte 0).
TYPE_FLOW_ANNOUNCE = 0x5
TYPE_FLOW_FINISH = 0x6
TYPE_ALLOC_QUERY = 0x7
TYPE_ALLOC_REPLY = 0x8
TYPE_SNAPSHOT_SUB = 0x9
TYPE_SNAPSHOT_EVENT = 0xA
TYPE_CONTROL_ACK = 0xB
TYPE_CONTROL_ERROR = 0xC

#: Frames above this size are rejected before allocation (corrupt prefix).
MAX_FRAME_SIZE = 1 << 20

_ANNOUNCE_FMT = ">BBIHHBB3sH"  # type, proto, flow, src, dst, weight_q, prio, demand, csum
ANNOUNCE_SIZE = struct.calcsize(_ANNOUNCE_FMT)
assert ANNOUNCE_SIZE == 17

_FLOW_REF_FMT = ">BBIH"  # type, reserved, flow, csum (FINISH and QUERY)
FLOW_REF_SIZE = struct.calcsize(_FLOW_REF_FMT)
assert FLOW_REF_SIZE == 8

_ALLOC_REPLY_FMT = ">BBIdiH"  # type, flags, flow, rate_bps, bottleneck, csum
ALLOC_REPLY_SIZE = struct.calcsize(_ALLOC_REPLY_FMT)
assert ALLOC_REPLY_SIZE == 20

_SNAPSHOT_SUB_FMT = ">BBIH"  # type, reserved, max_events, csum
SNAPSHOT_SUB_SIZE = struct.calcsize(_SNAPSHOT_SUB_FMT)

_SNAPSHOT_EVENT_FMT = ">BBII"  # type, reserved, seq, payload_len (+ payload + csum)
_SNAPSHOT_EVENT_HEAD = struct.calcsize(_SNAPSHOT_EVENT_FMT)

_ACK_FMT = ">BBIH"  # type, code, flow, csum
ACK_SIZE = struct.calcsize(_ACK_FMT)

_ERROR_FMT = ">BBH"  # type, code, msg_len (+ msg + csum)
_ERROR_HEAD = struct.calcsize(_ERROR_FMT)

#: Reply flag bits.
_FLAG_KNOWN = 0x1
_FLAG_BOTTLENECK = 0x2

#: Ack codes.
ACK_OK = 0
ACK_UNKNOWN_FLOW = 1

#: Error codes.
ERR_MALFORMED = 1
ERR_UNSUPPORTED = 2
ERR_REJECTED = 3


def control_type(body: bytes) -> int:
    """Message type code of an (unverified) control body."""
    if not body:
        raise WireFormatError("empty control message")
    return body[0] >> 4


def _checked(body: bytes, csum_offset: int, what: str) -> None:
    """Verify the store-zeroed Internet checksum at *csum_offset*."""
    stored = struct.unpack_from(">H", body, csum_offset)[0]
    zeroed = body[:csum_offset] + b"\x00\x00" + body[csum_offset + 2:]
    if internet_checksum(zeroed) != stored:
        raise WireFormatError(f"{what} checksum mismatch")


def _sealed(body: bytearray, csum_offset: int) -> bytes:
    """Patch the store-zeroed Internet checksum into *body*."""
    csum = internet_checksum(bytes(body))
    struct.pack_into(">H", body, csum_offset, csum)
    return bytes(body)


@dataclass(frozen=True)
class FlowAnnounce:
    """FLOW_ANNOUNCE: (re)announce one flow to the daemon (17 bytes)."""

    flow_id: FlowId
    src: NodeId
    dst: NodeId
    protocol_id: int = 0
    weight: float = 1.0
    priority: int = 0
    demand_bps: float = math.inf

    def encode(self) -> bytes:
        """Serialize into exactly 17 checksummed bytes."""
        weight_q = round(self.weight * _WEIGHT_SCALE)
        if not (1 <= weight_q <= 0xFF):
            raise WireFormatError(
                f"weight {self.weight} outside encodable range "
                f"[{1 / _WEIGHT_SCALE}, {0xFF / _WEIGHT_SCALE}]"
            )
        if math.isinf(self.demand_bps):
            demand_mbps = _DEMAND_INF_MBPS
        else:
            # Sub-Mbps demands round *up* to the wire's 1 Mbps floor: a
            # zero-Mbps encoding would decode into a spec no allocator
            # accepts (demands must be positive).
            demand_mbps = max(1, int(round(self.demand_bps / 1e6)))
            if not (demand_mbps < _DEMAND_INF_MBPS):
                raise WireFormatError(
                    f"demand {self.demand_bps} bps outside 24-bit Mbps range"
                )
        if not (0 <= self.priority <= 0xFF):
            raise WireFormatError(f"priority {self.priority} does not fit one byte")
        if not (0 <= self.protocol_id <= 0xFF):
            raise WireFormatError(f"protocol id {self.protocol_id} does not fit one byte")
        body = bytearray(
            struct.pack(
                _ANNOUNCE_FMT,
                TYPE_FLOW_ANNOUNCE << 4,
                self.protocol_id,
                self.flow_id,
                self.src,
                self.dst,
                weight_q,
                self.priority,
                demand_mbps.to_bytes(3, "big"),
                0,
            )
        )
        return _sealed(body, ANNOUNCE_SIZE - 2)

    @staticmethod
    def decode(body: bytes) -> "FlowAnnounce":
        """Parse and checksum-verify a FLOW_ANNOUNCE body."""
        if len(body) != ANNOUNCE_SIZE:
            raise WireFormatError(
                f"FLOW_ANNOUNCE is {ANNOUNCE_SIZE} bytes, got {len(body)}"
            )
        (type_b, proto, flow, src, dst, weight_q, priority, demand_bytes, _csum) = (
            struct.unpack(_ANNOUNCE_FMT, body)
        )
        if (type_b >> 4) != TYPE_FLOW_ANNOUNCE:
            raise WireFormatError(f"not a FLOW_ANNOUNCE (type {type_b >> 4:#x})")
        _checked(body, ANNOUNCE_SIZE - 2, "FLOW_ANNOUNCE")
        demand_mbps = int.from_bytes(demand_bytes, "big")
        return FlowAnnounce(
            flow_id=flow,
            src=src,
            dst=dst,
            protocol_id=proto,
            weight=weight_q / _WEIGHT_SCALE,
            priority=priority,
            demand_bps=(
                math.inf if demand_mbps == _DEMAND_INF_MBPS else demand_mbps * 1e6
            ),
        )


def _encode_flow_ref(type_code: int, flow_id: FlowId) -> bytes:
    body = bytearray(struct.pack(_FLOW_REF_FMT, type_code << 4, 0, flow_id, 0))
    return _sealed(body, FLOW_REF_SIZE - 2)


def _decode_flow_ref(body: bytes, type_code: int, what: str) -> FlowId:
    if len(body) != FLOW_REF_SIZE:
        raise WireFormatError(f"{what} is {FLOW_REF_SIZE} bytes, got {len(body)}")
    type_b, _rsvd, flow, _csum = struct.unpack(_FLOW_REF_FMT, body)
    if (type_b >> 4) != type_code:
        raise WireFormatError(f"not a {what} (type {type_b >> 4:#x})")
    _checked(body, FLOW_REF_SIZE - 2, what)
    return flow


@dataclass(frozen=True)
class FlowFinish:
    """FLOW_FINISH: retire one flow from the daemon's table (8 bytes)."""

    flow_id: FlowId

    def encode(self) -> bytes:
        """Serialize into exactly 8 checksummed bytes."""
        return _encode_flow_ref(TYPE_FLOW_FINISH, self.flow_id)

    @staticmethod
    def decode(body: bytes) -> "FlowFinish":
        """Parse and checksum-verify a FLOW_FINISH body."""
        return FlowFinish(_decode_flow_ref(body, TYPE_FLOW_FINISH, "FLOW_FINISH"))


@dataclass(frozen=True)
class AllocQuery:
    """ALLOC_QUERY: ask the daemon for one flow's allocated rate (8 bytes)."""

    flow_id: FlowId

    def encode(self) -> bytes:
        """Serialize into exactly 8 checksummed bytes."""
        return _encode_flow_ref(TYPE_ALLOC_QUERY, self.flow_id)

    @staticmethod
    def decode(body: bytes) -> "AllocQuery":
        """Parse and checksum-verify an ALLOC_QUERY body."""
        return AllocQuery(_decode_flow_ref(body, TYPE_ALLOC_QUERY, "ALLOC_QUERY"))


@dataclass(frozen=True)
class AllocReply:
    """ALLOC_REPLY: one flow's rate at full float64 precision (20 bytes).

    ``known`` is ``False`` when the queried flow is not in the daemon's
    table (rate 0, no bottleneck).  The full-width rate — unlike the
    quantized announce demand — is what makes the kill/restore test's
    byte-identity meaningful.
    """

    flow_id: FlowId
    known: bool
    rate_bps: float = 0.0
    bottleneck_link: Optional[int] = None

    def encode(self) -> bytes:
        """Serialize into exactly 20 checksummed bytes."""
        flags = (_FLAG_KNOWN if self.known else 0) | (
            _FLAG_BOTTLENECK if self.bottleneck_link is not None else 0
        )
        body = bytearray(
            struct.pack(
                _ALLOC_REPLY_FMT,
                TYPE_ALLOC_REPLY << 4,
                flags,
                self.flow_id,
                self.rate_bps,
                -1 if self.bottleneck_link is None else self.bottleneck_link,
                0,
            )
        )
        return _sealed(body, ALLOC_REPLY_SIZE - 2)

    @staticmethod
    def decode(body: bytes) -> "AllocReply":
        """Parse and checksum-verify an ALLOC_REPLY body."""
        if len(body) != ALLOC_REPLY_SIZE:
            raise WireFormatError(
                f"ALLOC_REPLY is {ALLOC_REPLY_SIZE} bytes, got {len(body)}"
            )
        type_b, flags, flow, rate, bottleneck, _csum = struct.unpack(
            _ALLOC_REPLY_FMT, body
        )
        if (type_b >> 4) != TYPE_ALLOC_REPLY:
            raise WireFormatError(f"not an ALLOC_REPLY (type {type_b >> 4:#x})")
        _checked(body, ALLOC_REPLY_SIZE - 2, "ALLOC_REPLY")
        return AllocReply(
            flow_id=flow,
            known=bool(flags & _FLAG_KNOWN),
            rate_bps=rate,
            bottleneck_link=(bottleneck if flags & _FLAG_BOTTLENECK else None),
        )


@dataclass(frozen=True)
class SnapshotSubscribe:
    """SNAPSHOT_SUB: subscribe this connection to telemetry snapshots.

    ``max_events`` bounds how many SNAPSHOT_EVENTs the daemon will send
    (0 = unbounded); the daemon sends the current snapshot immediately and
    one per state mutation thereafter.
    """

    max_events: int = 0

    def encode(self) -> bytes:
        """Serialize into exactly 8 checksummed bytes."""
        body = bytearray(
            struct.pack(_SNAPSHOT_SUB_FMT, TYPE_SNAPSHOT_SUB << 4, 0, self.max_events, 0)
        )
        return _sealed(body, SNAPSHOT_SUB_SIZE - 2)

    @staticmethod
    def decode(body: bytes) -> "SnapshotSubscribe":
        """Parse and checksum-verify a SNAPSHOT_SUB body."""
        if len(body) != SNAPSHOT_SUB_SIZE:
            raise WireFormatError(
                f"SNAPSHOT_SUB is {SNAPSHOT_SUB_SIZE} bytes, got {len(body)}"
            )
        type_b, _rsvd, max_events, _csum = struct.unpack(_SNAPSHOT_SUB_FMT, body)
        if (type_b >> 4) != TYPE_SNAPSHOT_SUB:
            raise WireFormatError(f"not a SNAPSHOT_SUB (type {type_b >> 4:#x})")
        _checked(body, SNAPSHOT_SUB_SIZE - 2, "SNAPSHOT_SUB")
        return SnapshotSubscribe(max_events=max_events)


@dataclass(frozen=True)
class SnapshotEvent:
    """SNAPSHOT_EVENT: one telemetry snapshot, JSON payload (variable size).

    ``seq`` is the daemon's mutation sequence number at snapshot time; the
    payload is canonical (sorted-keys) JSON so identical state serializes
    identically.
    """

    seq: int
    payload: dict

    def encode(self) -> bytes:
        """Serialize header + canonical-JSON payload + trailing checksum."""
        blob = json.dumps(self.payload, sort_keys=True, separators=(",", ":")).encode()
        if _SNAPSHOT_EVENT_HEAD + len(blob) + 2 > MAX_FRAME_SIZE:
            raise WireFormatError("snapshot payload exceeds MAX_FRAME_SIZE")
        body = bytearray(
            struct.pack(
                _SNAPSHOT_EVENT_FMT,
                TYPE_SNAPSHOT_EVENT << 4,
                0,
                self.seq,
                len(blob),
            )
        )
        body += blob
        body += b"\x00\x00"
        return _sealed(body, len(body) - 2)

    @staticmethod
    def decode(body: bytes) -> "SnapshotEvent":
        """Parse and checksum-verify a SNAPSHOT_EVENT body."""
        if len(body) < _SNAPSHOT_EVENT_HEAD + 2:
            raise WireFormatError(f"SNAPSHOT_EVENT truncated at {len(body)} bytes")
        type_b, _rsvd, seq, payload_len = struct.unpack_from(_SNAPSHOT_EVENT_FMT, body)
        if (type_b >> 4) != TYPE_SNAPSHOT_EVENT:
            raise WireFormatError(f"not a SNAPSHOT_EVENT (type {type_b >> 4:#x})")
        if len(body) != _SNAPSHOT_EVENT_HEAD + payload_len + 2:
            raise WireFormatError(
                f"SNAPSHOT_EVENT length mismatch: header says {payload_len} "
                f"payload bytes, body has {len(body) - _SNAPSHOT_EVENT_HEAD - 2}"
            )
        _checked(body, len(body) - 2, "SNAPSHOT_EVENT")
        blob = body[_SNAPSHOT_EVENT_HEAD:-2]
        try:
            payload = json.loads(blob.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireFormatError(f"SNAPSHOT_EVENT payload is not JSON: {exc}") from None
        return SnapshotEvent(seq=seq, payload=payload)


@dataclass(frozen=True)
class ControlAck:
    """CONTROL_ACK: announce/finish acknowledgement (8 bytes)."""

    flow_id: FlowId
    code: int = ACK_OK

    def encode(self) -> bytes:
        """Serialize into exactly 8 checksummed bytes."""
        if not (0 <= self.code <= 0xFF):
            raise WireFormatError(f"ack code {self.code} does not fit one byte")
        body = bytearray(
            struct.pack(_ACK_FMT, TYPE_CONTROL_ACK << 4, self.code, self.flow_id, 0)
        )
        return _sealed(body, ACK_SIZE - 2)

    @staticmethod
    def decode(body: bytes) -> "ControlAck":
        """Parse and checksum-verify a CONTROL_ACK body."""
        if len(body) != ACK_SIZE:
            raise WireFormatError(f"CONTROL_ACK is {ACK_SIZE} bytes, got {len(body)}")
        type_b, code, flow, _csum = struct.unpack(_ACK_FMT, body)
        if (type_b >> 4) != TYPE_CONTROL_ACK:
            raise WireFormatError(f"not a CONTROL_ACK (type {type_b >> 4:#x})")
        _checked(body, ACK_SIZE - 2, "CONTROL_ACK")
        return ControlAck(flow_id=flow, code=code)


@dataclass(frozen=True)
class ControlError:
    """CONTROL_ERROR: decode/dispatch failure report (variable size)."""

    code: int
    message: str = ""

    def encode(self) -> bytes:
        """Serialize header + UTF-8 message + trailing checksum."""
        msg = self.message.encode()[:0xFFFF]
        body = bytearray(
            struct.pack(_ERROR_FMT, TYPE_CONTROL_ERROR << 4, self.code, len(msg))
        )
        body += msg
        body += b"\x00\x00"
        return _sealed(body, len(body) - 2)

    @staticmethod
    def decode(body: bytes) -> "ControlError":
        """Parse and checksum-verify a CONTROL_ERROR body."""
        if len(body) < _ERROR_HEAD + 2:
            raise WireFormatError(f"CONTROL_ERROR truncated at {len(body)} bytes")
        type_b, code, msg_len = struct.unpack_from(_ERROR_FMT, body)
        if (type_b >> 4) != TYPE_CONTROL_ERROR:
            raise WireFormatError(f"not a CONTROL_ERROR (type {type_b >> 4:#x})")
        if len(body) != _ERROR_HEAD + msg_len + 2:
            raise WireFormatError("CONTROL_ERROR length mismatch")
        _checked(body, len(body) - 2, "CONTROL_ERROR")
        return ControlError(code=code, message=body[_ERROR_HEAD:-2].decode("utf-8", "replace"))


ControlMessage = Union[
    FlowAnnounce,
    FlowFinish,
    AllocQuery,
    AllocReply,
    SnapshotSubscribe,
    SnapshotEvent,
    ControlAck,
    ControlError,
]

_DECODERS = {
    TYPE_FLOW_ANNOUNCE: FlowAnnounce.decode,
    TYPE_FLOW_FINISH: FlowFinish.decode,
    TYPE_ALLOC_QUERY: AllocQuery.decode,
    TYPE_ALLOC_REPLY: AllocReply.decode,
    TYPE_SNAPSHOT_SUB: SnapshotSubscribe.decode,
    TYPE_SNAPSHOT_EVENT: SnapshotEvent.decode,
    TYPE_CONTROL_ACK: ControlAck.decode,
    TYPE_CONTROL_ERROR: ControlError.decode,
}


def decode_control(body: bytes) -> ControlMessage:
    """Decode any control message body, dispatching on the type nibble.

    Raises :class:`~repro.errors.WireFormatError` on empty/truncated
    bodies, unknown types and checksum mismatches.
    """
    code = control_type(body)
    try:
        decoder = _DECODERS[code]
    except KeyError:
        raise WireFormatError(f"unknown control message type {code:#x}") from None
    return decoder(body)


def encode_frame(body: bytes) -> bytes:
    """Prefix *body* with its 4-byte big-endian length."""
    if len(body) > MAX_FRAME_SIZE:
        raise WireFormatError(f"frame of {len(body)} bytes exceeds MAX_FRAME_SIZE")
    return struct.pack(">I", len(body)) + body


def split_frames(buffer: bytes) -> Tuple[list, bytes]:
    """Split *buffer* into complete frame bodies plus the unconsumed tail.

    Raises :class:`~repro.errors.WireFormatError` when a length prefix
    exceeds :data:`MAX_FRAME_SIZE` (stream is considered corrupt).
    """
    bodies = []
    offset = 0
    while len(buffer) - offset >= 4:
        (length,) = struct.unpack_from(">I", buffer, offset)
        if length > MAX_FRAME_SIZE:
            raise WireFormatError(f"frame length {length} exceeds MAX_FRAME_SIZE")
        if len(buffer) - offset - 4 < length:
            break
        bodies.append(bytes(buffer[offset + 4 : offset + 4 + length]))
        offset += 4 + length
    return bodies, bytes(buffer[offset:])


__all__ = [
    "ACK_OK",
    "ACK_UNKNOWN_FLOW",
    "ALLOC_REPLY_SIZE",
    "ANNOUNCE_SIZE",
    "AllocQuery",
    "AllocReply",
    "ControlAck",
    "ControlError",
    "ControlMessage",
    "ERR_MALFORMED",
    "ERR_REJECTED",
    "ERR_UNSUPPORTED",
    "FLOW_REF_SIZE",
    "FlowAnnounce",
    "FlowFinish",
    "MAX_FRAME_SIZE",
    "SnapshotEvent",
    "SnapshotSubscribe",
    "TYPE_ALLOC_QUERY",
    "TYPE_ALLOC_REPLY",
    "TYPE_CONTROL_ACK",
    "TYPE_CONTROL_ERROR",
    "TYPE_FLOW_ANNOUNCE",
    "TYPE_FLOW_FINISH",
    "TYPE_SNAPSHOT_EVENT",
    "TYPE_SNAPSHOT_SUB",
    "control_type",
    "decode_control",
    "encode_frame",
    "split_frames",
]
