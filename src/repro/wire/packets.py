"""R2C2 packet formats (paper §4.2, Figure 6).

Two packet classes exist on the wire:

* **Data packets** are variable sized: a 35-byte header (route length and
  index, flow id, endpoints, sequence number, checksum, payload length and
  the 128-bit source route) followed by the payload.
* **Broadcast packets** are fixed 16-byte packets announcing flow events.

Layout of the broadcast packet (16 bytes)::

    type:4 event:4 | src:16 | dst:16 | flow:32 | weight:8 | priority:8 |
    demand_mbps:24 | tree:4 rp:4 | checksum:8

Deviation from the paper, documented: the paper's broadcast packet carries a
16-bit checksum and no flow identifier (flows are implicitly keyed by the
endpoint pair); we spend one checksum byte on distinguishing concurrent
flows between the same endpoints, and carry demand in Mbps over 24 bits
(max ≈16.7 Tbps, comfortably covering the paper's 4 Tbps ceiling).

A third, small format carries the §3.4 routing re-assignments: 4-byte flow
id plus 1-byte protocol per entry, ≈300 entries per 1500-byte packet.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import WireFormatError
from ..types import FlowId, NodeId
from .checksum import internet_checksum, xor8
from .route_encoding import MAX_HOPS, ROUTE_FIELD_BYTES, pack_route, unpack_route

#: Packet type codes (the high nibble of the first byte).
TYPE_DATA = 0x1
TYPE_BROADCAST = 0x2
TYPE_ROUTE_UPDATE = 0x3
TYPE_DROP_NOTIFICATION = 0x4

#: Broadcast event codes (the low nibble of the first byte).
EVENT_FLOW_START = 0x1
EVENT_FLOW_FINISH = 0x2
EVENT_DEMAND_UPDATE = 0x3
EVENT_REANNOUNCE = 0x4

#: Fixed sizes.
BROADCAST_PACKET_SIZE = 16
DATA_HEADER_SIZE = 35

_DATA_HEADER_FMT = ">BBBIHHIHH16s"  # type, rlen, ridx, flow, src, dst, seq, csum, plen, route
assert struct.calcsize(_DATA_HEADER_FMT) == DATA_HEADER_SIZE

_BROADCAST_FMT = ">BHHIBB3sBB"
assert struct.calcsize(_BROADCAST_FMT) == BROADCAST_PACKET_SIZE

#: Demand value meaning "network limited / unknown" (all ones).
_DEMAND_INF_MBPS = (1 << 24) - 1
#: Weight quantization: weights are carried as a byte with 1 <=> 16 units,
#: giving a range of 1/16 .. 15.9375 in steps of 1/16.
_WEIGHT_SCALE = 16.0


@dataclass(frozen=True)
class DataPacket:
    """A source-routed data packet.

    ``route_ports`` holds the full port list; ``route_index`` is the hop the
    packet is about to take (incremented by every forwarder).
    """

    flow_id: FlowId
    src: NodeId
    dst: NodeId
    seq: int
    route_ports: Tuple[int, ...]
    route_index: int
    payload: bytes

    def encode(self) -> bytes:
        """Serialize header plus payload, computing the checksum."""
        if not (0 <= self.route_index <= len(self.route_ports) <= MAX_HOPS):
            raise WireFormatError(
                f"route index {self.route_index} / length {len(self.route_ports)} invalid"
            )
        if len(self.payload) > 0xFFFF:
            raise WireFormatError(f"payload of {len(self.payload)} bytes exceeds 64 KiB")
        _check_u16("src", self.src)
        _check_u16("dst", self.dst)
        _check_u32("flow_id", self.flow_id)
        _check_u32("seq", self.seq)
        route_field = pack_route(self.route_ports)
        header = struct.pack(
            _DATA_HEADER_FMT,
            (TYPE_DATA << 4),
            len(self.route_ports),
            self.route_index,
            self.flow_id,
            self.src,
            self.dst,
            self.seq,
            0,  # checksum placeholder
            len(self.payload),
            route_field,
        )
        # The checksum excludes the route-index byte (offset 2) as well as
        # itself: forwarders increment ridx in place at every hop (§3.5) and
        # must not have to touch the checksum — the same rule IP applies to
        # TTL-excluding header checksums.  The checksum field sits at byte
        # offset 15 (after type, rlen, ridx, flow, src, dst, seq).
        coverage = header[:2] + b"\x00" + header[3:] + self.payload
        checksum = internet_checksum(coverage)
        return header[:15] + struct.pack(">H", checksum) + header[17:] + self.payload

    @staticmethod
    def decode(buffer: bytes, verify_checksum: bool = True) -> "DataPacket":
        """Parse and (optionally) checksum-verify a data packet."""
        if len(buffer) < DATA_HEADER_SIZE:
            raise WireFormatError(
                f"buffer of {len(buffer)} bytes shorter than data header"
            )
        (
            type_byte,
            rlen,
            ridx,
            flow_id,
            src,
            dst,
            seq,
            checksum,
            plen,
            route_field,
        ) = struct.unpack(_DATA_HEADER_FMT, buffer[:DATA_HEADER_SIZE])
        if (type_byte >> 4) != TYPE_DATA:
            raise WireFormatError(f"not a data packet (type {type_byte >> 4})")
        if len(buffer) != DATA_HEADER_SIZE + plen:
            raise WireFormatError(
                f"length mismatch: header says {plen} payload bytes, "
                f"buffer has {len(buffer) - DATA_HEADER_SIZE}"
            )
        if ridx > rlen or rlen > MAX_HOPS:
            raise WireFormatError(f"invalid route fields rlen={rlen} ridx={ridx}")
        if verify_checksum:
            zeroed = buffer[:2] + b"\x00" + buffer[3:15] + b"\x00\x00" + buffer[17:]
            if internet_checksum(zeroed) != checksum:
                raise WireFormatError("data packet checksum mismatch")
        return DataPacket(
            flow_id=flow_id,
            src=src,
            dst=dst,
            seq=seq,
            route_ports=tuple(unpack_route(route_field, rlen)),
            route_index=ridx,
            payload=buffer[DATA_HEADER_SIZE:],
        )

    def advance(self) -> "DataPacket":
        """The packet as re-emitted by a forwarder: route index + 1."""
        if self.route_index >= len(self.route_ports):
            raise WireFormatError("cannot advance past the end of the route")
        return DataPacket(
            flow_id=self.flow_id,
            src=self.src,
            dst=self.dst,
            seq=self.seq,
            route_ports=self.route_ports,
            route_index=self.route_index + 1,
            payload=self.payload,
        )

    @property
    def next_port(self) -> int:
        """The port this packet leaves on at the current hop."""
        if self.route_index >= len(self.route_ports):
            raise WireFormatError("packet is at its destination; no next port")
        return self.route_ports[self.route_index]

    @property
    def wire_size(self) -> int:
        """Total bytes on the wire."""
        return DATA_HEADER_SIZE + len(self.payload)


@dataclass(frozen=True)
class BroadcastPacket:
    """The fixed 16-byte flow-event announcement."""

    event: int
    src: NodeId
    dst: NodeId
    flow_id: FlowId
    weight: float = 1.0
    priority: int = 0
    demand_bps: float = math.inf
    tree_id: int = 0
    protocol_id: int = 0

    def encode(self) -> bytes:
        """Serialize into exactly 16 bytes."""
        if self.event not in (
            EVENT_FLOW_START,
            EVENT_FLOW_FINISH,
            EVENT_DEMAND_UPDATE,
            EVENT_REANNOUNCE,
        ):
            raise WireFormatError(f"unknown broadcast event {self.event}")
        _check_u16("src", self.src)
        _check_u16("dst", self.dst)
        _check_u32("flow_id", self.flow_id)
        if not (0 <= self.priority <= 0xFF):
            raise WireFormatError(f"priority {self.priority} does not fit one byte")
        if not (0 <= self.tree_id <= 0xF):
            raise WireFormatError(f"tree id {self.tree_id} does not fit four bits")
        if not (0 <= self.protocol_id <= 0xF):
            raise WireFormatError(f"protocol id {self.protocol_id} does not fit four bits")
        weight_q = round(self.weight * _WEIGHT_SCALE)
        if not (1 <= weight_q <= 0xFF):
            raise WireFormatError(
                f"weight {self.weight} outside encodable range "
                f"[{1 / _WEIGHT_SCALE}, {0xFF / _WEIGHT_SCALE}]"
            )
        if math.isinf(self.demand_bps):
            demand_mbps = _DEMAND_INF_MBPS
        else:
            demand_mbps = int(round(self.demand_bps / 1e6))
            if not (0 <= demand_mbps < _DEMAND_INF_MBPS):
                raise WireFormatError(
                    f"demand {self.demand_bps} bps outside 24-bit Mbps range"
                )
        body = struct.pack(
            _BROADCAST_FMT,
            (TYPE_BROADCAST << 4) | self.event,
            self.src,
            self.dst,
            self.flow_id,
            weight_q,
            self.priority,
            demand_mbps.to_bytes(3, "big"),
            (self.tree_id << 4) | self.protocol_id,
            0,  # checksum placeholder
        )
        return body[:-1] + bytes([xor8(body[:-1])])

    @staticmethod
    def decode(buffer: bytes, verify_checksum: bool = True) -> "BroadcastPacket":
        """Parse and (optionally) checksum-verify a broadcast packet."""
        if len(buffer) != BROADCAST_PACKET_SIZE:
            raise WireFormatError(
                f"broadcast packets are {BROADCAST_PACKET_SIZE} bytes, got {len(buffer)}"
            )
        (
            type_event,
            src,
            dst,
            flow_id,
            weight_q,
            priority,
            demand_bytes,
            tree_rp,
            checksum,
        ) = struct.unpack(_BROADCAST_FMT, buffer)
        if (type_event >> 4) != TYPE_BROADCAST:
            raise WireFormatError(f"not a broadcast packet (type {type_event >> 4})")
        if verify_checksum and xor8(buffer[:-1]) != checksum:
            raise WireFormatError("broadcast packet checksum mismatch")
        demand_mbps = int.from_bytes(demand_bytes, "big")
        demand_bps = (
            math.inf if demand_mbps == _DEMAND_INF_MBPS else demand_mbps * 1e6
        )
        return BroadcastPacket(
            event=type_event & 0xF,
            src=src,
            dst=dst,
            flow_id=flow_id,
            weight=weight_q / _WEIGHT_SCALE,
            priority=priority,
            demand_bps=demand_bps,
            tree_id=tree_rp >> 4,
            protocol_id=tree_rp & 0xF,
        )


@dataclass(frozen=True)
class RouteUpdatePacket:
    """Routing re-assignments from the selection process (§3.4).

    Each entry is a ``(flow_id, protocol_id)`` pair costing five bytes;
    about 300 fit in a 1500-byte packet, matching the paper's estimate.
    """

    assignments: Tuple[Tuple[FlowId, int], ...]

    #: type(1) + count(2) + checksum(2)
    HEADER_SIZE = 5
    ENTRY_SIZE = 5
    MAX_ENTRIES = (1500 - HEADER_SIZE) // ENTRY_SIZE

    def encode(self) -> bytes:
        if len(self.assignments) > self.MAX_ENTRIES:
            raise WireFormatError(
                f"{len(self.assignments)} assignments exceed the "
                f"{self.MAX_ENTRIES}-entry packet limit"
            )
        parts = [struct.pack(">BHH", TYPE_ROUTE_UPDATE << 4, len(self.assignments), 0)]
        for flow_id, protocol_id in self.assignments:
            _check_u32("flow_id", flow_id)
            if not (0 <= protocol_id <= 0xFF):
                raise WireFormatError(f"protocol id {protocol_id} does not fit a byte")
            parts.append(struct.pack(">IB", flow_id, protocol_id))
        raw = b"".join(parts)
        checksum = internet_checksum(raw)
        return raw[:3] + struct.pack(">H", checksum) + raw[5:]

    @staticmethod
    def decode(buffer: bytes, verify_checksum: bool = True) -> "RouteUpdatePacket":
        if len(buffer) < RouteUpdatePacket.HEADER_SIZE:
            raise WireFormatError("route-update packet too short")
        type_byte, count, checksum = struct.unpack(">BHH", buffer[:5])
        if (type_byte >> 4) != TYPE_ROUTE_UPDATE:
            raise WireFormatError(f"not a route-update packet (type {type_byte >> 4})")
        expected = RouteUpdatePacket.HEADER_SIZE + count * RouteUpdatePacket.ENTRY_SIZE
        if len(buffer) != expected:
            raise WireFormatError(
                f"route-update length mismatch: expected {expected}, got {len(buffer)}"
            )
        if verify_checksum:
            zeroed = buffer[:3] + b"\x00\x00" + buffer[5:]
            if internet_checksum(zeroed) != checksum:
                raise WireFormatError("route-update checksum mismatch")
        assignments = []
        offset = 5
        for _ in range(count):
            flow_id, protocol_id = struct.unpack_from(">IB", buffer, offset)
            assignments.append((flow_id, protocol_id))
            offset += RouteUpdatePacket.ENTRY_SIZE
        return RouteUpdatePacket(assignments=tuple(assignments))


@dataclass(frozen=True)
class DropNotificationPacket:
    """A forwarder informing a broadcast's source of a queue-overflow drop."""

    dropped_at: NodeId
    source: NodeId
    seq: int

    SIZE = 10  # type(1) + dropped_at(2) + source(2) + seq(4) + checksum(1)

    def encode(self) -> bytes:
        _check_u16("dropped_at", self.dropped_at)
        _check_u16("source", self.source)
        _check_u32("seq", self.seq)
        body = struct.pack(
            ">BHHIB", TYPE_DROP_NOTIFICATION << 4, self.dropped_at, self.source, self.seq, 0
        )
        return body[:-1] + bytes([xor8(body[:-1])])

    @staticmethod
    def decode(buffer: bytes, verify_checksum: bool = True) -> "DropNotificationPacket":
        if len(buffer) != DropNotificationPacket.SIZE:
            raise WireFormatError(
                f"drop notifications are {DropNotificationPacket.SIZE} bytes"
            )
        type_byte, dropped_at, source, seq, checksum = struct.unpack(">BHHIB", buffer)
        if (type_byte >> 4) != TYPE_DROP_NOTIFICATION:
            raise WireFormatError("not a drop-notification packet")
        if verify_checksum and xor8(buffer[:-1]) != checksum:
            raise WireFormatError("drop-notification checksum mismatch")
        return DropNotificationPacket(dropped_at=dropped_at, source=source, seq=seq)


def packet_type(buffer: bytes) -> int:
    """The type code of any encoded packet (dispatch helper)."""
    if not buffer:
        raise WireFormatError("empty buffer")
    return buffer[0] >> 4


def _check_u16(name: str, value: int) -> None:
    if not (0 <= value <= 0xFFFF):
        raise WireFormatError(f"{name} {value} does not fit 16 bits")


def _check_u32(name: str, value: int) -> None:
    if not (0 <= value <= 0xFFFFFFFF):
        raise WireFormatError(f"{name} {value} does not fit 32 bits")
