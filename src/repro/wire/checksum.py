"""Checksums for R2C2 packets.

Data packets carry the classic 16-bit Internet checksum (RFC 1071); the
16-byte broadcast packet only has room for a single byte, so it uses an
XOR-fold.  Both are cheap enough for software forwarding and catch the
corruption the paper's failure handling cares about (§3.2).
"""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones'-complement sum over 16-bit words.

    Odd-length input is zero-padded.  Returns a 16-bit value; a buffer whose
    checksum field already contains the correct checksum verifies to 0xFFFF
    complement semantics — here we use the simpler convention of storing the
    checksum computed with the field zeroed and comparing on receive.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def xor8(data: bytes) -> int:
    """One-byte XOR fold, used by the fixed-size broadcast packet."""
    acc = 0
    for b in data:
        acc ^= b
    # Fold in the length so truncations don't go unnoticed.
    return (acc ^ (len(data) & 0xFF)) & 0xFF
