"""Source-route encoding: 3 bits per hop, up to 42 hops (paper §4.2).

The data-packet header carries a 128-bit ``route`` field; each hop consumes
3 bits selecting one of up to eight outgoing links (ports) at the current
node.  42 hops fit, "sufficient for current rack-scale computers and even
non-minimal routing strategies".
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import WireFormatError

#: Bits used to select the forwarding port at each hop.
PORT_BITS = 3
#: Highest port expressible per hop.
MAX_PORT = (1 << PORT_BITS) - 1
#: The route field is 128 bits.
ROUTE_FIELD_BYTES = 16
#: Maximum encodable hop count: floor(128 / 3).
MAX_HOPS = (ROUTE_FIELD_BYTES * 8) // PORT_BITS


def pack_route(ports: Sequence[int]) -> bytes:
    """Pack a port list into the fixed 16-byte route field.

    Ports are packed little-endian-first: hop *i* occupies bits
    ``[3i, 3i+3)`` of the field, so forwarding can extract its port with a
    shift and mask using the header's route index.
    """
    if len(ports) > MAX_HOPS:
        raise WireFormatError(
            f"route of {len(ports)} hops exceeds the {MAX_HOPS}-hop limit"
        )
    acc = 0
    for i, port in enumerate(ports):
        if not (0 <= port <= MAX_PORT):
            raise WireFormatError(
                f"port {port} at hop {i} does not fit {PORT_BITS} bits "
                f"(nodes may have at most {MAX_PORT + 1} links)"
            )
        acc |= port << (PORT_BITS * i)
    return acc.to_bytes(ROUTE_FIELD_BYTES, "little")


def unpack_route(field: bytes, n_hops: int) -> List[int]:
    """Unpack the first *n_hops* ports from a 16-byte route field."""
    if len(field) != ROUTE_FIELD_BYTES:
        raise WireFormatError(
            f"route field must be {ROUTE_FIELD_BYTES} bytes, got {len(field)}"
        )
    if not (0 <= n_hops <= MAX_HOPS):
        raise WireFormatError(f"hop count {n_hops} outside 0..{MAX_HOPS}")
    acc = int.from_bytes(field, "little")
    return [(acc >> (PORT_BITS * i)) & MAX_PORT for i in range(n_hops)]


def port_at(field: bytes, index: int) -> int:
    """Extract a single hop's port — what a forwarding node does per packet."""
    if not (0 <= index < MAX_HOPS):
        raise WireFormatError(f"route index {index} outside 0..{MAX_HOPS - 1}")
    acc = int.from_bytes(field, "little")
    return (acc >> (PORT_BITS * index)) & MAX_PORT
