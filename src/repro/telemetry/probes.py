"""Per-link probes: utilization, queue depth and drops on a cadence.

A :class:`LinkProbeSet` samples every output port of a
:class:`~repro.sim.network.RackNetwork` (or anything exposing the same
``link_stats()`` shape) into the metrics registry and the trace:

* per-link **time series** — ``link.utilization{src,dst}`` (fraction of
  line rate over the sampling window) and ``link.queue_bytes{src,dst}``;
* rack-wide **histograms** — instantaneous queue occupancy and window
  utilization distributions (the Figure 7b/14 quantities, observed live
  instead of post hoc);
* aggregate **trace counters** — total queued bytes, mean utilization and
  cumulative drops as ``ph: "C"`` events, one per sample, so Perfetto
  shows the rack's load as area charts.  Per-link data stays out of the
  trace on purpose: N_links x N_samples counter tracks make traces
  unreadable and huge; the per-link resolution lives in the metrics
  snapshot.

The probe is *pulled*, not scheduled: the simulation runner calls
:meth:`maybe_sample` from its progress loop rather than planting recurring
events in the event heap.  That guarantees telemetry can never perturb the
simulation — no extra events, no termination-condition interference, and
byte-identical simulation results with probes on or off (a property the
telemetry tests assert).  Effective cadence is therefore
``max(interval_ns, runner progress chunk)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..types import usec
from .registry import RATIO_BUCKETS, MetricsRegistry
from .trace import TRACK_LINKS

#: Queue-occupancy histogram bounds: 0 B .. 16 MB, quarter-decade-ish.
QUEUE_BUCKETS: Tuple[float, ...] = (
    0.0, 1500.0, 4096.0, 16384.0, 65536.0, 262144.0,
    1048576.0, 4194304.0, 16777216.0,
)


class LinkProbeSet:
    """Samples link/queue statistics from a network into telemetry sinks."""

    def __init__(
        self,
        network,
        registry: MetricsRegistry,
        trace=None,
        interval_ns: int = usec(100),
        per_link_series: bool = True,
    ) -> None:
        if interval_ns < 1:
            raise ValueError("probe interval must be >= 1 ns")
        self._network = network
        self._registry = registry
        self._trace = trace
        self._interval_ns = interval_ns
        self._per_link = per_link_series
        self._next_due_ns = 0
        self._last_sample_ns: Optional[int] = None
        #: (src, dst) -> bytes_sent at the previous sample (for deltas).
        self._last_bytes: Dict[Tuple[int, int], int] = {}
        self.samples_taken = 0
        self._hist_queue = registry.histogram(
            "queue.occupancy_bytes", buckets=QUEUE_BUCKETS
        )
        self._hist_util = registry.histogram(
            "link.utilization", buckets=RATIO_BUCKETS
        )

    @property
    def interval_ns(self) -> int:
        return self._interval_ns

    def maybe_sample(self, now_ns: int) -> bool:
        """Sample if the cadence says one is due; returns True if sampled."""
        if now_ns < self._next_due_ns:
            return False
        self.sample(now_ns)
        # Skip ahead over missed windows instead of looping through them.
        self._next_due_ns = now_ns + self._interval_ns
        return True

    def sample(self, now_ns: int) -> None:
        """Take one sample of every link right now."""
        window_ns = (
            now_ns - self._last_sample_ns
            if self._last_sample_ns is not None
            else None
        )
        total_queued = 0
        total_drops = 0
        util_sum = 0.0
        n_links = 0
        registry = self._registry
        for src, dst, bytes_sent, occupancy, drops in self._network.link_stats():
            n_links += 1
            total_queued += occupancy
            total_drops += drops
            self._hist_queue.observe(occupancy)
            utilization = 0.0
            if window_ns:
                delta = bytes_sent - self._last_bytes.get((src, dst), 0)
                capacity = self._network.link_capacity_bps(src, dst)
                if capacity > 0:
                    utilization = min(1.0, delta * 8e9 / (capacity * window_ns))
                self._hist_util.observe(utilization)
                util_sum += utilization
            self._last_bytes[(src, dst)] = bytes_sent
            if self._per_link:
                registry.series("link.util", src=src, dst=dst).append(
                    now_ns, utilization
                )
                registry.series("link.queue_bytes", src=src, dst=dst).append(
                    now_ns, occupancy
                )
        registry.series("rack.queued_bytes").append(now_ns, total_queued)
        registry.series("rack.drops").append(now_ns, total_drops)
        if self._trace:
            self._trace.counter(
                "rack.queued_bytes", now_ns, {"bytes": total_queued}, tid=TRACK_LINKS
            )
            self._trace.counter(
                "rack.mean_utilization",
                now_ns,
                {"fraction": round(util_sum / n_links, 6) if n_links else 0.0},
                tid=TRACK_LINKS,
            )
            self._trace.counter(
                "rack.drops", now_ns, {"drops": total_drops}, tid=TRACK_LINKS
            )
        self._last_sample_ns = now_ns
        self.samples_taken += 1
