"""Chrome trace-event / Perfetto-compatible event tracing.

The :class:`TraceRecorder` accumulates trace events in the JSON object
format described by the Chrome Trace Event spec (the format Perfetto's
legacy importer and ``chrome://tracing`` both load):

* ``ph: "X"`` *complete* events — spans with a start and duration
  (event-loop batches, sampled packet lifecycles);
* ``ph: "i"`` *instant* events — points in time (controller epochs,
  broadcast announce/re-announce rounds, invariant violations);
* ``ph: "C"`` *counter* events — stacked time series rendered as area
  charts (aggregate link utilization, queued bytes, drops).

All timestamps are **simulated** nanoseconds converted to the format's
microsecond unit; no wall-clock value ever enters a trace, so two runs of
the same seeded scenario emit byte-identical files — determinism the test
suite asserts, and the property that makes traces diffable across
revisions.

Tracks: each instrumented component claims a ``tid`` below and labels it
with a thread-name metadata event, so Perfetto shows one named row per
subsystem instead of an anonymous pile.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

#: Track (tid) assignments; one row per subsystem in the viewer.
TRACK_SIM = 0        #: event-loop batches
TRACK_CONTROLLER = 1  #: recompute epochs
TRACK_BROADCAST = 2   #: announce / re-announce rounds
TRACK_LINKS = 3       #: link-probe counters
TRACK_PACKETS = 4     #: sampled packet lifecycles
TRACK_VALIDATION = 5  #: invariant violations

_TRACK_NAMES = {
    TRACK_SIM: "event loop",
    TRACK_CONTROLLER: "rate controller",
    TRACK_BROADCAST: "broadcast",
    TRACK_LINKS: "links",
    TRACK_PACKETS: "packets (sampled)",
    TRACK_VALIDATION: "validation",
}

#: Tracks whose events are pure functions of the simulation (content and
#: simulated timestamps identical between serial and sharded executions).
#: TRACK_SIM spans describe event-loop *batches* (progress chunks serially,
#: conservative windows sharded) and TRACK_LINKS counters are per-probe-set
#: aggregates (one set per shard) — both are executor artifacts, so shard
#: telemetry never records them and merged documents never contain them.
MERGEABLE_TRACKS = (
    TRACK_CONTROLLER,
    TRACK_BROADCAST,
    TRACK_PACKETS,
    TRACK_VALIDATION,
)


def _us(ts_ns: int) -> float:
    """Nanoseconds -> the trace format's microsecond unit."""
    return ts_ns / 1e3


class TraceRecorder:
    """Accumulates trace events; export with :meth:`save` / :meth:`to_json`.

    Args:
        max_events: Safety bound — recording silently stops once this many
            events have been captured (the ``truncated`` flag in the
            exported ``otherData`` says so).  Traces are diagnostic
            artifacts; a bounded, truncated trace beats an OOM.
    """

    def __init__(self, max_events: int = 1_000_000) -> None:
        self._events: List[dict] = []
        #: per-event ``(ts_ns, seq)`` order metadata, parallel to
        #: ``_events`` — the substrate for the deterministic sharded merge
        #: (:func:`merge_trace_documents`).  Metadata events carry -1 so
        #: they sort before all simulated time.
        self._order: List[tuple] = []
        self._seq = 0
        self._max_events = max_events
        self.truncated = False
        self._pid = 0
        for tid, name in sorted(_TRACK_NAMES.items()):
            self._meta_thread_name(tid, name)

    def __bool__(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------------
    # Event emission
    # ------------------------------------------------------------------
    def _append(self, event: dict, ts_ns: int = -1) -> None:
        if len(self._events) >= self._max_events:
            self.truncated = True
            return
        self._events.append(event)
        self._order.append((ts_ns, self._seq))
        self._seq += 1

    def _meta_thread_name(self, tid: int, name: str) -> None:
        self._append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": self._pid,
                "tid": tid,
                "args": {"name": name},
            }
        )

    def complete(
        self,
        name: str,
        cat: str,
        ts_ns: int,
        dur_ns: int,
        tid: int = TRACK_SIM,
        args: Optional[dict] = None,
    ) -> None:
        """A span: ``ph: "X"`` with simulated start time and duration."""
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": _us(ts_ns),
            "dur": _us(dur_ns),
            "pid": self._pid,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self._append(event, ts_ns)

    def instant(
        self,
        name: str,
        cat: str,
        ts_ns: int,
        tid: int = TRACK_SIM,
        args: Optional[dict] = None,
    ) -> None:
        """A point event: ``ph: "i"``, thread-scoped."""
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",
            "ts": _us(ts_ns),
            "pid": self._pid,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self._append(event, ts_ns)

    def counter(
        self,
        name: str,
        ts_ns: int,
        values: Dict[str, float],
        tid: int = TRACK_LINKS,
    ) -> None:
        """A counter sample: ``ph: "C"`` (rendered as a stacked area)."""
        self._append(
            {
                "name": name,
                "cat": "counter",
                "ph": "C",
                "ts": _us(ts_ns),
                "pid": self._pid,
                "tid": tid,
                "args": dict(values),
            },
            ts_ns,
        )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def events(self) -> List[dict]:
        """The recorded events (mutating the list is on you)."""
        return self._events

    def export_events(self) -> List[tuple]:
        """``(ts_ns, seq, event)`` triples with recording-order metadata.

        The hand-off format for sharded runs: each shard exports its
        triples and the coordinator merges them deterministically with
        :func:`merge_trace_documents`.
        """
        return [
            (ts_ns, seq, event)
            for (ts_ns, seq), event in zip(self._order, self._events)
        ]

    def to_document(self) -> dict:
        """The full trace document (JSON object format)."""
        return {
            "traceEvents": self._events,
            "displayTimeUnit": "ns",
            "otherData": {
                "generator": "repro.telemetry",
                "clock": "simulated-ns",
                "truncated": self.truncated,
            },
        }

    def to_json(self) -> str:
        """Deterministic JSON rendering (sorted keys, no wall clock)."""
        return json.dumps(self.to_document(), sort_keys=True)

    def save(self, path) -> None:
        """Write the trace JSON to *path* (load it in ui.perfetto.dev)."""
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")


class EventLoopTracer:
    """Adapter between :meth:`EventLoop.attach_batch_observer` and a trace.

    Each event-loop batch (one ``run``/``run_batch`` call that processed at
    least one event) becomes a span on the "event loop" track, annotated
    with its event count.
    """

    __slots__ = ("_trace",)

    def __init__(self, trace: TraceRecorder) -> None:
        self._trace = trace

    def on_batch(self, start_ns: int, end_ns: int, processed: int) -> None:
        self._trace.complete(
            "batch",
            "eventloop",
            start_ns,
            end_ns - start_ns,
            tid=TRACK_SIM,
            args={"events": processed},
        )


class NullTrace:
    """Falsy recorder whose every method is a no-op (tracing disabled)."""

    truncated = False

    def __bool__(self) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def complete(self, name, cat, ts_ns, dur_ns, tid=0, args=None) -> None:
        pass

    def instant(self, name, cat, ts_ns, tid=0, args=None) -> None:
        pass

    def counter(self, name, ts_ns, values, tid=0) -> None:
        pass

    def events(self) -> List[dict]:
        return []

    def export_events(self) -> List[tuple]:
        return []

    def to_document(self) -> dict:
        return {"traceEvents": [], "displayTimeUnit": "ns", "otherData": {}}

    def to_json(self) -> str:
        return json.dumps(self.to_document(), sort_keys=True)

    def save(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")


NULL_TRACE = NullTrace()


def merge_trace_documents(
    shard_events: List[List[tuple]], truncated: bool = False
) -> dict:
    """Merge per-shard :meth:`TraceRecorder.export_events` lists.

    Events sort by ``(ts_ns, seq, shard)`` — simulated time first, then
    each recorder's own appending order, then shard index.  Every quantity
    is a pure function of the simulation, so the merge is deterministic
    across executors and repeat runs.  Thread-name metadata events (every
    shard emits the full set at construction) are deduplicated by track.

    Note the merged *serialization order* is not the serial recorder's
    append order (a serial recorder appends sampled packet spans at
    delivery time but stamps them with their injection ``ts``); compare
    documents with :func:`canonical_trace_events`, which content-sorts.
    """
    tagged = []
    for shard, events in enumerate(shard_events):
        for ts_ns, seq, event in events:
            tagged.append((ts_ns, seq, shard, event))
    tagged.sort(key=lambda t: (t[0], t[1], t[2]))
    merged = []
    seen_meta = set()
    for _ts_ns, _seq, _shard, event in tagged:
        if event.get("ph") == "M":
            key = (event.get("tid"), json.dumps(event.get("args"), sort_keys=True))
            if key in seen_meta:
                continue
            seen_meta.add(key)
        merged.append(event)
    return {
        "traceEvents": merged,
        "displayTimeUnit": "ns",
        "otherData": {
            "generator": "repro.telemetry",
            "clock": "simulated-ns",
            "truncated": truncated,
        },
    }


def canonical_trace_events(doc: dict, tracks=None) -> List[str]:
    """Content-sorted projection of a trace document, for comparisons.

    Returns the JSON rendering of every event (restricted to *tracks* when
    given, e.g. :data:`MERGEABLE_TRACKS`), sorted — an order-insensitive
    equality surface.  Two documents describe the same trace iff their
    projections are byte-identical.
    """
    events = []
    for event in doc["traceEvents"]:
        if tracks is not None and event.get("tid") not in tracks:
            continue
        events.append(json.dumps(event, sort_keys=True))
    events.sort()
    return events
