"""Labeled metrics: counters, gauges, histograms, time series.

A :class:`MetricsRegistry` is the single sink every instrumented layer
writes into during a run — the simulator's network probes, the congestion
controller's epoch accounting, the broadcast substrate's announce counters
and the invariant auditor's violation tallies all share one registry so a
snapshot is a complete, self-consistent picture of the run.

Design constraints, in order:

1. **The disabled path must cost (almost) nothing.**  Instrumented code
   resolves its instruments once at construction time; when telemetry is
   off it receives the null instruments below, which are *falsy*, so hot
   paths guard with ``if self._ctr:`` — a single truthiness test, the same
   cost as the auditor's ``is not None`` pattern.  Calling a null
   instrument is also safe (every method is a no-op), so cold paths can
   skip the guard entirely.
2. **Snapshots are deterministic.**  Export orders instruments by
   ``(name, labels)`` and contains no wall-clock material, so two runs of
   the same seeded scenario produce byte-identical JSON (a property the
   telemetry test suite locks in).
3. **Fixed-bucket histograms.**  Buckets are chosen at creation and never
   rebalanced, which keeps ``observe`` O(log n_buckets) and makes
   snapshots comparable across runs and revisions.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError

LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelItems:
    """Canonical, hashable form of a label set (sorted, stringified)."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(labels: LabelItems) -> str:
    """Prometheus-style rendering: ``name{k="v",...}`` without the name."""
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing count (events, bytes, drops)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ReproError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def to_dict(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A value that goes up and down (queue depth, table size)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def to_dict(self) -> dict:
        return {"value": self.value}


#: Default histogram buckets for byte-ish quantities (64 B .. 16 MB).
BYTE_BUCKETS: Tuple[float, ...] = tuple(64 * 4 ** i for i in range(10))

#: Default buckets for ratios in [0, 1] (utilization, overhead fractions).
RATIO_BUCKETS: Tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0,
)


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max.

    ``buckets`` are *upper bounds* of each bin; observations above the last
    bound land in the implicit overflow bin.  The cumulative-count export
    mirrors the Prometheus convention, so snapshots feed straight into the
    usual quantile estimators.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "count", "total", "min", "max")

    def __init__(
        self, name: str, buckets: Sequence[float], labels: LabelItems = ()
    ) -> None:
        if not buckets:
            raise ReproError(f"histogram {name} needs at least one bucket bound")
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ReproError(f"histogram {name} bounds must be strictly increasing")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = overflow
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Fold one observation into the histogram."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated *q*-quantile (0..1) from bucket boundaries.

        Returns the upper bound of the bucket holding the target rank
        (the recorded max for the overflow bin); 0.0 when empty.
        """
        if not (0.0 <= q <= 1.0):
            raise ReproError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                if i < len(self.buckets):
                    return self.buckets[i]
                return self.max if self.max is not None else self.buckets[-1]
        return self.max if self.max is not None else self.buckets[-1]

    def to_dict(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }


class TimeSeries:
    """An append-only ``(t_ns, value)`` series (link-probe samples)."""

    __slots__ = ("name", "labels", "t_ns", "values")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.t_ns: List[int] = []
        self.values: List[float] = []

    def append(self, t_ns: int, value: float) -> None:
        self.t_ns.append(t_ns)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.t_ns)

    def __bool__(self) -> bool:
        # Truthy even when empty: ``if instrument:`` must mean "telemetry
        # is on", never "has samples" (the null instruments are falsy).
        return True

    def to_dict(self) -> dict:
        return {"t_ns": list(self.t_ns), "values": list(self.values)}


class MetricsRegistry:
    """The run-wide instrument namespace.

    ``counter`` / ``gauge`` / ``histogram`` / ``series`` return the same
    object for the same ``(name, labels)`` pair, so independent layers can
    contribute to one metric without coordination.  Asking for an existing
    name with a different instrument kind is an error (it would silently
    split the data).
    """

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, str, LabelItems], object] = {}

    def __bool__(self) -> bool:
        return True

    def _get(self, kind: str, name: str, labels: Dict[str, object], factory):
        key = (kind, name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            for other_kind, other_name, other_labels in self._instruments:
                if other_name == name and other_kind != kind:
                    raise ReproError(
                        f"metric {name!r} already registered as a {other_kind}"
                    )
            instrument = factory(name, key[2])
            self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels, Gauge)

    def histogram(self, name: str, buckets: Sequence[float] = BYTE_BUCKETS, **labels) -> Histogram:
        return self._get(
            "histogram", name, labels, lambda n, l: Histogram(n, buckets, l)
        )

    def series(self, name: str, **labels) -> TimeSeries:
        return self._get("series", name, labels, TimeSeries)

    def instruments(self) -> List[object]:
        """All instruments, deterministically ordered."""
        return [self._instruments[key] for key in sorted(self._instruments)]

    def snapshot(self) -> dict:
        """A JSON-ready dict of every instrument, deterministically ordered.

        Layout::

            {"counters":   {"name{labels}": value, ...},
             "gauges":     {"name{labels}": value, ...},
             "histograms": {"name{labels}": {...}, ...},
             "series":     {"name{labels}": {...}, ...}}
        """
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}, "series": {}}
        section = {
            "counter": "counters",
            "gauge": "gauges",
            "histogram": "histograms",
            "series": "series",
        }
        for key in sorted(self._instruments):
            kind, name, labels = key
            instrument = self._instruments[key]
            rendered = name + _format_labels(labels)
            if kind in ("counter", "gauge"):
                out[section[kind]][rendered] = instrument.value
            else:
                out[section[kind]][rendered] = instrument.to_dict()
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Deterministic JSON rendering of :meth:`snapshot`."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def save(self, path) -> None:
        """Write the snapshot JSON to *path*."""
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")


# ----------------------------------------------------------------------
# Null sinks: falsy, no-op, shared singletons.
# ----------------------------------------------------------------------
class _NullInstrument:
    """A falsy instrument whose every method is a no-op."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def append(self, t_ns: int, value: float) -> None:
        pass

    def to_dict(self) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Falsy registry handing out the shared null instrument.

    Threading this through the system instead of a real registry is the
    "telemetry disabled" mode: every instrumented site still resolves and
    may call its instruments, but nothing is recorded and hot paths that
    guard with ``if instrument:`` skip even the call.
    """

    def __bool__(self) -> bool:
        return False

    def counter(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets: Sequence[float] = BYTE_BUCKETS, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def series(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def instruments(self) -> List[object]:
        return []

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}, "series": {}}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def save(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")


NULL_REGISTRY = NullRegistry()


def merge_snapshots(snapshots) -> dict:
    """Roll up metrics snapshots from many runs/workers into one.

    The campaign runner aggregates per-task snapshots into a per-campaign
    manifest with this.  Semantics per section:

    * ``counters`` and ``gauges`` — summed (both record per-run totals
      here: events processed, bytes on wire, flows completed — the rollup
      of totals is their sum);
    * ``histograms`` — bucket counts, ``count`` and ``sum`` added; ``min``
      / ``max`` folded, provided the bucket bounds agree (mismatched
      bounds keep the first seen, counted under ``_dropped``);
    * ``series`` — dropped (per-run time axes are not comparable).
    """
    merged: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    dropped = 0
    for snap in snapshots:
        for section in ("counters", "gauges"):
            for name, value in snap.get(section, {}).items():
                merged[section][name] = merged[section].get(name, 0) + value
        for name, hist in snap.get("histograms", {}).items():
            if not hist:
                continue
            slot = merged["histograms"].get(name)
            if slot is None:
                merged["histograms"][name] = {
                    "buckets": list(hist.get("buckets", [])),
                    "counts": list(hist.get("counts", [])),
                    "count": hist.get("count", 0),
                    "sum": hist.get("sum", 0),
                    "min": hist.get("min"),
                    "max": hist.get("max"),
                }
                continue
            if slot["buckets"] != list(hist.get("buckets", [])):
                dropped += 1
                continue
            slot["counts"] = [
                a + b for a, b in zip(slot["counts"], hist.get("counts", []))
            ]
            slot["count"] += hist.get("count", 0)
            slot["sum"] += hist.get("sum", 0)
            for bound, pick in (("min", min), ("max", max)):
                theirs = hist.get(bound)
                if theirs is None:
                    continue
                slot[bound] = theirs if slot[bound] is None else pick(slot[bound], theirs)
    if dropped:
        merged["_dropped"] = dropped
    return merged
