"""Observability: metrics registry, event tracing, link probes.

One :class:`Telemetry` object is threaded through a run — the simulator,
the congestion controller, the broadcast substrate, the Maze runner and
the invariant auditor all write into its two sinks:

* :attr:`Telemetry.metrics` — a :class:`MetricsRegistry` of labeled
  counters, gauges, fixed-bucket histograms and time series, exported as
  deterministic JSON (``repro simulate --metrics FILE``; pretty-print with
  ``repro report FILE``);
* :attr:`Telemetry.trace` — a :class:`TraceRecorder` emitting Chrome
  trace-event JSON (``repro simulate --trace FILE``; open in
  https://ui.perfetto.dev).

Disabled telemetry is a *null sink*: every site still resolves its
instruments, but they are falsy no-ops, so hot paths pay one truthiness
test — the same discipline (and cost) as the validation auditor's
``is not None`` hooks.  ``benchmarks/perf/bench_telemetry_overhead.py``
guards this at <= 2 % versus a run with no telemetry object at all.

Metric naming: dotted ``subsystem.quantity`` names with unit suffixes
(``_bytes``, ``_ns``) and Prometheus-style labels, e.g.
``link.utilization{src="0",dst="1"}``.  See DESIGN.md's Observability
section for the full catalogue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..types import usec
from .probes import QUEUE_BUCKETS, LinkProbeSet
from .registry import (
    BYTE_BUCKETS,
    NULL_REGISTRY,
    RATIO_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    TimeSeries,
    merge_snapshots,
)
from .signature import (
    SIGNATURE_FEATURES,
    SIGNATURE_SCHEMA_VERSION,
    log2_bucket,
    sim_signature,
)
from .trace import (
    MERGEABLE_TRACKS,
    NULL_TRACE,
    TRACK_BROADCAST,
    TRACK_CONTROLLER,
    TRACK_LINKS,
    TRACK_PACKETS,
    TRACK_SIM,
    TRACK_VALIDATION,
    EventLoopTracer,
    NullTrace,
    TraceRecorder,
    canonical_trace_events,
    merge_trace_documents,
)

__all__ = [
    "BYTE_BUCKETS",
    "canonical_trace_events",
    "Counter",
    "EventLoopTracer",
    "Gauge",
    "Histogram",
    "LinkProbeSet",
    "log2_bucket",
    "MERGEABLE_TRACKS",
    "merge_snapshots",
    "merge_trace_documents",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACE",
    "NullRegistry",
    "NullTrace",
    "QUEUE_BUCKETS",
    "RATIO_BUCKETS",
    "SIGNATURE_FEATURES",
    "SIGNATURE_SCHEMA_VERSION",
    "sim_signature",
    "Telemetry",
    "TelemetryConfig",
    "TimeSeries",
    "TraceRecorder",
    "TRACK_BROADCAST",
    "TRACK_CONTROLLER",
    "TRACK_LINKS",
    "TRACK_PACKETS",
    "TRACK_SIM",
    "TRACK_VALIDATION",
]


@dataclass
class TelemetryConfig:
    """What to record and how often.

    ``TelemetryConfig(metrics=False, trace=False)`` is the *disabled*
    configuration: the session carries null sinks everywhere, which is the
    mode the overhead benchmark compares against a no-telemetry run.
    """

    #: Record labeled metrics (counters/gauges/histograms/series).
    metrics: bool = True
    #: Record Chrome trace events.
    trace: bool = True
    #: Link-probe cadence; effective cadence is bounded below by the
    #: runner's progress chunk (1 ms default) — see :mod:`.probes`.
    link_probe_interval_ns: int = usec(100)
    #: Record per-link time series (set False on big fabrics to keep
    #: snapshots small; rack-wide aggregates are always recorded).
    per_link_series: bool = True
    #: Trace one in N data-packet lifecycles as spans (0 disables).
    packet_sample_every: int = 64
    #: Trace event-loop batches as spans.
    trace_eventloop: bool = True
    #: Trace-recorder event cap (see :class:`TraceRecorder`).
    max_trace_events: int = 1_000_000


class Telemetry:
    """One run's telemetry session: a metrics registry plus a trace."""

    def __init__(self, config: Optional[TelemetryConfig] = None) -> None:
        self.config = config or TelemetryConfig()
        self.metrics = MetricsRegistry() if self.config.metrics else NULL_REGISTRY
        self.trace = (
            TraceRecorder(max_events=self.config.max_trace_events)
            if self.config.trace
            else NULL_TRACE
        )

    @property
    def enabled(self) -> bool:
        """True when at least one sink records anything."""
        return bool(self.metrics) or bool(self.trace)

    def link_probes(self, network, trace: bool = True) -> LinkProbeSet:
        """Build the link-probe sampler for *network*.

        ``trace=False`` keeps the probe's counter events out of the trace
        even when tracing is on — shards use this because per-probe-set
        aggregates are per-shard partials with no exact merge (see
        :data:`~repro.telemetry.trace.MERGEABLE_TRACKS`).
        """
        return LinkProbeSet(
            network,
            self.metrics,
            trace=self.trace if trace else None,
            interval_ns=self.config.link_probe_interval_ns,
            per_link_series=self.config.per_link_series,
        )

    def save_metrics(self, path) -> None:
        """Write the metrics snapshot JSON to *path*."""
        self.metrics.save(path)

    def save_trace(self, path) -> None:
        """Write the Chrome trace JSON to *path*."""
        self.trace.save(path)
