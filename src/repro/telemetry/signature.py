"""Behavioral signatures: quantize a run's telemetry into a coverage key.

A *signature* compresses what a simulation run **did** — how deep queues
got, how much reordering the spraying caused, how many control-plane
epochs actually recomputed, how many packets were dropped or lost — into a
small tuple of quantized features.  Two runs with the same signature
exercised the stack in (approximately) the same way; a run with a new
signature reached behavior no earlier run reached.  That makes signatures
the "coverage" in :mod:`repro.fuzz`'s coverage-guided scenario search: the
fuzzer keeps a scenario for further mutation exactly when its signature is
new.

Quantization is logarithmic (power-of-two buckets): raw counters are far
too fine (every run would be "new") while booleans are far too coarse.
``log2_bucket`` maps 0 to 0 and any positive x to ``1 + floor(log2(x))``,
so the buckets are [0], [1], [2..3], [4..7], ...

Everything here is a pure function of the task result dict produced by
``repro.experiments`` sim tasks (summary + telemetry rollup), so
signatures are exactly as deterministic and executor-independent as the
results they compress.
"""

from __future__ import annotations

from typing import Any, Mapping, Tuple

__all__ = [
    "SIGNATURE_FEATURES",
    "SIGNATURE_SCHEMA_VERSION",
    "log2_bucket",
    "sim_signature",
]

#: Version of the signature layout.  The fuzz corpus stores signatures on
#: disk and deduplicates against them across sessions, so the feature set
#: below is **pinned**: adding, removing, renaming or reordering a feature
#: (or changing any feature's quantization) invalidates every stored
#: signature and MUST bump this number — the schema test computes a digest
#: of known-input signatures and fails loudly when the layout drifts
#: without a bump.
SIGNATURE_SCHEMA_VERSION = 1

#: The pinned feature names, in emission order (see :func:`sim_signature`).
SIGNATURE_FEATURES = (
    "completed",
    "queue_p99",
    "reorder",
    "drops",
    "losses",
    "epochs",
    "bcast",
    "audit",
)


def log2_bucket(value: float) -> int:
    """Power-of-two bucket index: 0 for <= 0, else ``1 + floor(log2(v))``."""
    value = int(value)
    if value <= 0:
        return 0
    return 1 + value.bit_length() - 1


def _counter(result: Mapping[str, Any], name: str) -> float:
    return result.get("telemetry", {}).get("counters", {}).get(name, 0)


def sim_signature(result: Mapping[str, Any]) -> Tuple[Tuple[str, int], ...]:
    """The quantized behavioral signature of one sim-task result.

    Features (each ``(name, bucket)``):

    * ``completed`` — completion-rate decile (0..10): did the workload
      finish, and how badly if not;
    * ``queue_p99`` — log2 bucket of the p99 per-port max queue occupancy
      in KB (the Figure 7b/14 congestion axis);
    * ``reorder`` — log2 bucket of the worst per-flow reorder-buffer
      occupancy in packets (multi-path skew);
    * ``drops`` / ``losses`` — log2 buckets of queue drops and injected
      wire losses (loss-path coverage);
    * ``epochs`` — log2 bucket of recomputed control-plane epochs (how
      alive the control plane was);
    * ``bcast`` — log2 bucket of broadcast KB on the wire (control-plane
      traffic volume);
    * ``audit`` — 0 when the invariant auditor was silent, 1 when it
      collected violations (always interesting).
    """
    summary = result.get("summary", {})
    completion = float(result.get("completion_rate", 1.0))
    features = (
        ("completed", int(round(completion * 10))),
        ("queue_p99", log2_bucket(summary.get("queue_p99_kb", 0))),
        ("reorder", log2_bucket(result.get("reorder_max", 0))),
        ("drops", log2_bucket(summary.get("drops", 0))),
        ("losses", log2_bucket(result.get("wire_losses", _counter(result, "wire.losses")))),
        ("epochs", log2_bucket(summary.get("epochs_recomputed", 0))),
        ("bcast", log2_bucket(summary.get("broadcast_bytes", 0) / 1024.0)),
        ("audit", 0 if result.get("audit", {}).get("ok", True) else 1),
    )
    assert tuple(name for name, _ in features) == SIGNATURE_FEATURES
    return features
