"""The ``repro serve`` asyncio daemon.

One :class:`ControlDaemon` wraps a :class:`~repro.service.state.ServiceState`
behind an ``asyncio.start_server`` listener speaking the length-prefixed
control protocol of :mod:`repro.wire.control`:

* FLOW_ANNOUNCE / FLOW_FINISH mutate the flow table (each acked with
  CONTROL_ACK) and fan a fresh SNAPSHOT_EVENT out to subscribers;
* ALLOC_QUERY is answered with ALLOC_REPLY straight from the live
  incremental allocation — no recompute on the query path;
* SNAPSHOT_SUB registers the connection for telemetry snapshots (the
  current one is sent immediately);
* malformed frames get a CONTROL_ERROR and the connection is closed
  (a corrupt length prefix leaves the stream unrecoverable).

Readiness handshake: ``serve()`` optionally writes the bound port to a
``port_file`` (atomically) only *after* the listener is accepting, so
supervisors and tests can discover an ephemeral port without polling the
socket.  Shutdown: SIGTERM/SIGINT (or ``max_seconds``) stops the loop
gracefully; because every mutation already persisted a snapshot, SIGKILL
at any point is also recoverable.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import List, Optional, Tuple

from ..errors import ReproError, ServiceError, WireFormatError
from ..wire import control as ctl
from .state import ServiceState, spec_from_announce


class ControlDaemon:
    """Serve one :class:`ServiceState` over the binary control protocol."""

    def __init__(
        self,
        state: ServiceState,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.state = state
        self.host = host
        self.port = port  # 0 = ephemeral; set to the bound port by start()
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop = None  # asyncio.Event, created inside the running loop
        self._conn_tasks = set()
        #: live snapshot subscriptions: (writer, remaining-events or None)
        self._subscribers: List[Tuple[asyncio.StreamWriter, Optional[int]]] = []

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Bind the listener; ``self.port`` holds the real port after."""
        if self._server is not None:
            raise ServiceError("daemon already started")
        self._stop = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_client, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Close the listener and all connections."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()
        for writer, _ in self._subscribers:
            writer.close()
        self._subscribers.clear()

    def request_stop(self) -> None:
        """Ask :meth:`serve` to exit (signal-handler safe)."""
        if self._stop is not None:
            self._stop.set()

    async def serve(
        self,
        port_file: Optional[str] = None,
        max_seconds: Optional[float] = None,
        install_signal_handlers: bool = False,
    ) -> None:
        """Run until :meth:`request_stop`, SIGTERM/SIGINT or *max_seconds*.

        When *port_file* is given the bound port is written there
        (atomically) once the listener accepts connections — the readiness
        handshake used by the kill/restart tests and the CI smoke.
        """
        await self.start()
        if install_signal_handlers:
            import signal

            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError):
                    loop.add_signal_handler(sig, self.request_stop)
        if port_file:
            from ..core.ioutil import atomic_write_text

            atomic_write_text(port_file, f"{self.port}\n")
        try:
            if max_seconds is None:
                await self._stop.wait()
            else:
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(self._stop.wait(), timeout=max_seconds)
        finally:
            await self.stop()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                body = await self._read_frame(reader)
                if body is None:
                    break
                try:
                    message = ctl.decode_control(body)
                except WireFormatError as exc:
                    await self._send(
                        writer, ctl.ControlError(ctl.ERR_MALFORMED, str(exc))
                    )
                    break
                if not await self._dispatch(message, writer):
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Only stop() cancels connection tasks; finishing normally keeps
            # asyncio.streams' connected-callback from logging the cancel.
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            self._drop_subscriber(writer)
            writer.close()
            with contextlib.suppress(ConnectionError, asyncio.CancelledError):
                await writer.wait_closed()

    @staticmethod
    async def _read_frame(reader: asyncio.StreamReader) -> Optional[bytes]:
        """One length-prefixed frame body, or ``None`` on clean EOF."""
        try:
            prefix = await reader.readexactly(4)
        except asyncio.IncompleteReadError:
            return None
        length = int.from_bytes(prefix, "big")
        if length > ctl.MAX_FRAME_SIZE:
            raise WireFormatError(f"frame length {length} exceeds MAX_FRAME_SIZE")
        return await reader.readexactly(length)

    async def _send(self, writer: asyncio.StreamWriter, message) -> None:
        writer.write(ctl.encode_frame(message.encode()))
        await writer.drain()

    async def _dispatch(self, message, writer: asyncio.StreamWriter) -> bool:
        """Handle one decoded message; ``False`` closes the connection."""
        if isinstance(message, ctl.FlowAnnounce):
            try:
                self.state.announce(spec_from_announce(message))
            except ReproError as exc:
                # Bad spec (unroutable endpoints, unknown protocol id...):
                # reject the announce, keep the connection serving.
                await self._send(writer, ctl.ControlError(ctl.ERR_REJECTED, str(exc)))
                return True
            await self._send(writer, ctl.ControlAck(message.flow_id, ctl.ACK_OK))
            await self._publish_snapshot()
        elif isinstance(message, ctl.FlowFinish):
            known = self.state.finish(message.flow_id)
            code = ctl.ACK_OK if known else ctl.ACK_UNKNOWN_FLOW
            await self._send(writer, ctl.ControlAck(message.flow_id, code))
            if known:
                await self._publish_snapshot()
        elif isinstance(message, ctl.AllocQuery):
            await self._send(writer, self.state.query(message.flow_id))
        elif isinstance(message, ctl.SnapshotSubscribe):
            remaining = message.max_events if message.max_events > 0 else None
            event = ctl.SnapshotEvent(
                seq=self.state.seq, payload=self.state.telemetry_snapshot()
            )
            await self._send(writer, event)
            if remaining is not None:
                remaining -= 1
                if remaining <= 0:
                    return True
            self._subscribers.append((writer, remaining))
        else:
            await self._send(
                writer,
                ctl.ControlError(
                    ctl.ERR_UNSUPPORTED,
                    f"daemon does not accept {type(message).__name__}",
                ),
            )
            return False
        return True

    # ------------------------------------------------------------------ #
    # Snapshot streaming
    # ------------------------------------------------------------------ #

    def _drop_subscriber(self, writer: asyncio.StreamWriter) -> None:
        self._subscribers = [(w, n) for w, n in self._subscribers if w is not writer]

    async def _publish_snapshot(self) -> None:
        """Stream the current telemetry snapshot to every subscriber."""
        if not self._subscribers:
            return
        event = ctl.SnapshotEvent(
            seq=self.state.seq, payload=self.state.telemetry_snapshot()
        )
        frame = ctl.encode_frame(event.encode())
        kept: List[Tuple[asyncio.StreamWriter, Optional[int]]] = []
        for writer, remaining in self._subscribers:
            try:
                writer.write(frame)
                await writer.drain()
            except (ConnectionError, RuntimeError):
                continue
            if remaining is not None:
                remaining -= 1
                if remaining <= 0:
                    continue
            kept.append((writer, remaining))
        self._subscribers = kept


def serve_forever(
    state: ServiceState,
    host: str = "127.0.0.1",
    port: int = 0,
    port_file: Optional[str] = None,
    max_seconds: Optional[float] = None,
) -> None:
    """Blocking entry point used by ``repro serve``."""
    daemon = ControlDaemon(state, host=host, port=port)
    asyncio.run(
        daemon.serve(
            port_file=port_file,
            max_seconds=max_seconds,
            install_signal_handlers=True,
        )
    )


__all__ = ["ControlDaemon", "serve_forever"]
